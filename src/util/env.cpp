#include "util/env.hpp"

#include <cstdlib>

namespace tcb {

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<std::int64_t>(v);
}

bool fast_mode() { return env_int("TCB_FAST", 0) != 0; }

}  // namespace tcb
