// Lightweight descriptive statistics used by the serving simulator, the
// benchmark harnesses and the tests.
#pragma once

#include <cstddef>
#include <vector>

#include "util/lifetime.hpp"

namespace tcb {

/// Streaming mean / variance (Welford). O(1) space, numerically stable.
class RunningStat {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (count_ == 1 || x < min_) min_ = x;
    if (count_ == 1 || x > max_) max_ = x;
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept {
    return mean_ * static_cast<double>(count_);
  }

  void merge(const RunningStat& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Retains all samples so exact quantiles can be reported. Used for latency
/// distributions in serving reports; sample counts there are modest (one per
/// completed request), so memory is not a concern.
class Samples {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] std::size_t count() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double sum() const noexcept;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Exact quantile with linear interpolation; q in [0, 1]. Requires a
  /// non-empty sample set.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p95() const { return quantile(0.95); }
  [[nodiscard]] double p99() const { return quantile(0.99); }

  [[nodiscard]] const std::vector<double>& values() const noexcept
      TCB_LIFETIME_BOUND {
    return values_;
  }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

}  // namespace tcb
