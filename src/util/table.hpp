// Aligned plain-text tables: the bench binaries print the paper's series in
// this format so the output reads like the figure it reproduces.
#pragma once

#include <string>
#include <vector>

namespace tcb {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void row(std::vector<std::string> cells);
  void row_numeric(const std::vector<double>& cells);

  /// Renders the whole table (header, rule, rows) as a string.
  [[nodiscard]] std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tcb
