// Lifetime-safety annotations — the escape/borrow contracts of every API
// that hands out a non-owning view (Tensor::data() spans, SegmentCache row
// pointers) or accepts a callable (ThreadPool::submit, parallel_for).
//
// Three macros, one per contract:
//
//   TCB_LIFETIME_BOUND   the returned reference/span/pointer borrows from
//                        the annotated object (the implicit `this`, or the
//                        annotated parameter) and must not outlive it.
//                        Expands to [[clang::lifetimebound]]; clang then
//                        diagnoses `auto v = Tensor{...}.data();` style
//                        dangles via -Wdangling at every call site.
//   TCB_NO_ESCAPE        the callee uses the annotated pointer/reference
//                        parameter only for the duration of the call and
//                        never stores it.  Expands to [[clang::noescape]].
//                        parallel_for's chunk body carries this: capturing
//                        locals by reference into it is safe by contract.
//   TCB_ESCAPES          documentation-only counterpart: the callee *does*
//                        retain the callable/pointer beyond the call
//                        (ThreadPool::submit queues it for a worker thread).
//                        Compiles to nothing everywhere; tcb-lint's
//                        no-ref-capture-escape rule keys on it to flag
//                        by-reference captures flowing into such APIs
//                        without a structured join.
//
// Like the strong-index and sync layers, the whole header is zero-overhead
// and compiles away entirely off clang (the gcc CI jobs keep that honest);
// enforcement comes from the TCB_LIFETIME_SAFETY CMake option, which
// promotes -Wdangling / -Wreturn-stack-address / -Wdangling-gsl to errors
// under clang, plus the negative-compile fixtures in tests/util/.
#pragma once

#include <type_traits>

#if defined(__clang__) && !defined(SWIG)
#if defined(__has_cpp_attribute) && __has_cpp_attribute(clang::lifetimebound)
#define TCB_LIFETIME_BOUND [[clang::lifetimebound]]
#endif
#if defined(__has_cpp_attribute) && __has_cpp_attribute(clang::noescape)
#define TCB_NO_ESCAPE [[clang::noescape]]
#endif
#endif

#ifndef TCB_LIFETIME_BOUND
#define TCB_LIFETIME_BOUND
#endif
#ifndef TCB_NO_ESCAPE
#define TCB_NO_ESCAPE
#endif

/// Doc-only on every compiler: marks parameters whose callable is retained
/// beyond the call (queued, stored, handed to another thread).  tcb-lint's
/// no-ref-capture-escape rule treats any argument to such a parameter as
/// escaping its creating scope.
#define TCB_ESCAPES

namespace tcb::lifetime_detail {

// The annotations must be pure metadata: same layout, same member-function
// types, no runtime footprint — mirroring the static_assert contracts of
// strong_index.hpp and sync.hpp.
struct Annotated {
  int v = 0;
  [[nodiscard]] const int& get() const noexcept TCB_LIFETIME_BOUND {
    return v;
  }
  void call(const int& r TCB_NO_ESCAPE) noexcept { v = r; }
  void keep(int r TCB_ESCAPES) noexcept { v = r; }
};

struct Plain {
  int v = 0;
  // The deliberately-unannotated control the static_asserts compare
  // against; the one reference-returning accessor allowed to stay bare.
  // tcb-lint: allow(span-source-stability)
  [[nodiscard]] const int& get() const noexcept { return v; }
  void call(const int& r) noexcept { v = r; }
  void keep(int r) noexcept { v = r; }
};

static_assert(sizeof(Annotated) == sizeof(Plain) &&
                  alignof(Annotated) == alignof(Plain),
              "lifetime annotations must not change object layout");
static_assert(
    std::is_same_v<decltype(&Annotated::get),
                   const int& (Annotated::*)() const noexcept>,
    "TCB_LIFETIME_BOUND must not change the member-function type");
static_assert(std::is_same_v<decltype(&Annotated::call),
                             void (Annotated::*)(const int&) noexcept>,
              "TCB_NO_ESCAPE must not change the member-function type");
static_assert(std::is_same_v<decltype(&Annotated::keep),
                             void (Annotated::*)(int) noexcept>,
              "TCB_ESCAPES must compile to nothing");

}  // namespace tcb::lifetime_detail
