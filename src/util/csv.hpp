// Minimal CSV writer. Every bench binary writes its series as CSV so that the
// paper's figures can be re-plotted from the raw data.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "util/lifetime.hpp"

namespace tcb {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws on I/O error.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  /// One row; cell count must match the header.
  void row(const std::vector<std::string>& cells);

  /// Convenience for numeric rows.
  void row_numeric(const std::vector<double>& cells);

  [[nodiscard]] const std::string& path() const noexcept TCB_LIFETIME_BOUND {
    return path_;
  }

 private:
  std::string path_;
  std::size_t columns_;
  std::ofstream out_;

  static std::string escape(std::string_view cell);
};

/// Formats a double without trailing-zero noise ("12.5", not "12.500000").
[[nodiscard]] std::string format_number(double v);

}  // namespace tcb
