// Invariant-checking macros for the batching/tensor hot paths.
//
// Two tiers, mirroring the usual CHECK/DCHECK split:
//
//   * TCB_CHECK(cond, msg)  — always on, in every build type. For cheap
//     boundary conditions whose violation means a caller bug (bad geometry,
//     shape mismatch). Failure throws tcb::CheckError (an std::logic_error)
//     so tests can assert on it and serving code can surface it; it never
//     aborts the process.
//   * TCB_DCHECK(cond, msg) — compiled away unless TCB_ENABLE_DCHECKS is
//     defined (Debug builds and every sanitizer preset define it; see
//     cmake/Sanitizers.cmake). For per-element checks on hot loops — tensor
//     indexing, slot-offset math, mask construction — that are too hot to
//     validate in Release but exactly what ASan/TSan/UBSan runs should
//     exercise at full strength.
//
// Both expand to a single statement and evaluate `cond` exactly once (or not
// at all for disabled DCHECKs), so they are safe inside if/else without
// braces. The message is only formatted on failure.
#pragma once

#include <stdexcept>
#include <string>

namespace tcb {

/// Thrown by TCB_CHECK / TCB_DCHECK on violation.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::string what = "TCB_CHECK failed: ";
  what += expr;
  what += " at ";
  what += file;
  what += ":";
  what += std::to_string(line);
  if (!msg.empty()) {
    what += " — ";
    what += msg;
  }
  throw CheckError(what);
}

}  // namespace detail
}  // namespace tcb

#define TCB_CHECK(cond, msg)                                              \
  do {                                                                    \
    if (!(cond))                                                          \
      ::tcb::detail::check_failed(#cond, __FILE__, __LINE__, (msg));      \
  } while (false)

#if defined(TCB_ENABLE_DCHECKS)
#define TCB_DCHECK(cond, msg) TCB_CHECK(cond, msg)
#else
#define TCB_DCHECK(cond, msg) \
  do {                        \
  } while (false)
#endif
