// Fixed-width histogram for request-length / latency distributions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tcb {

/// Equal-width bins over [lo, hi); out-of-range samples are clamped into the
/// first / last bin so totals are conserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t bin) const noexcept;

  /// ASCII rendering for example programs ("#"-bar per bin).
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace tcb
