#include "util/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace tcb {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo) {
  if (bins == 0) throw std::invalid_argument("Histogram needs >= 1 bin");
  if (!(hi > lo)) throw std::invalid_argument("Histogram needs hi > lo");
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
  auto bin = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_lo(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[128];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = counts_[i] * width / peak;
    std::snprintf(line, sizeof line, "[%8.2f, %8.2f) %8zu ", bin_lo(i),
                  bin_hi(i), counts_[i]);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace tcb
