#include "util/rng.hpp"

#include <cmath>

namespace tcb {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Debiased modulo via rejection sampling (Lemire-style threshold).
  const std::uint64_t threshold = (0 - span) % span;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return lo + static_cast<std::int64_t>(r % span);
  }
}

double Rng::gaussian() noexcept {
  if (cached_gauss_valid_) {
    cached_gauss_valid_ = false;
    return cached_gauss_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  cached_gauss_ = v * mul;
  cached_gauss_valid_ = true;
  return u * mul;
}

double Rng::exponential(double rate) noexcept {
  // Inverse-CDF; guard next_double() == 0 so log never sees 0.
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

}  // namespace tcb
