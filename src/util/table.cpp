#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "util/csv.hpp"

namespace tcb {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("TablePrinter: row width mismatch");
  rows_.push_back(std::move(cells));
}

void TablePrinter::row_numeric(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (const double v : cells) text.push_back(format_number(v));
  row(std::move(text));
}

std::string TablePrinter::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  auto emit = [&](const std::vector<std::string>& cells, std::string& out) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += cells[c];
      out.append(widths[c] - cells[c].size() + 2, ' ');
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };

  std::string out;
  emit(header_, out);
  std::size_t rule = 0;
  for (const auto w : widths) rule += w + 2;
  out.append(rule - 2, '-');
  out += '\n';
  for (const auto& r : rows_) emit(r, out);
  return out;
}

void TablePrinter::print() const {
  const std::string text = render();
  std::fwrite(text.data(), 1, text.size(), stdout);
}

}  // namespace tcb
