// Numeric-contract annotations — the bitwise concat-equivalence contracts
// of every kernel and geometry accessor (DESIGN.md §14).
//
// TCB's core invariant (PAPER.md §3) is *bitwise*: a request executed
// inside a concatenated row must produce output identical, bit for bit, to
// the same request executed alone.  That only holds while two things stay
// true: (a) no per-request arithmetic depends on batch-global shape (the
// property that forced span-relative kTile tiling, DESIGN.md §13), and
// (b) every floating-point reduction runs in one centralized, fixed
// ascending-k order (simd.hpp's lane layout).  These macros make both
// contracts visible in signatures; tcb-lint's numeric rule pack
// (tools/tcb-lint/tcb_lint/rules/numeric.py) enforces them whole-program.
//
// Three macros, one per contract:
//
//   TCB_BITWISE         the function's output is part of the concat
//                       invariant: for a fixed per-request input it must be
//                       bitwise-identical no matter which row/batch the
//                       request rides in.  The bitwise-closure rule keeps
//                       such functions inside the closure of other
//                       TCB_BITWISE code and simd:: primitives; the
//                       batch-geometry-taint rule keeps batch-global shape
//                       out of their loop bounds and float casts.
//   TCB_BATCH_GEOMETRY  the accessor exposes *batch-global* shape (a
//                       materialized width, a row count, a padded total) as
//                       opposed to per-segment geometry.  Such values may
//                       steer packing and scheduling, but inside a
//                       TCB_BITWISE function they are radioactive: a
//                       reduction bound or an FP operand derived from one
//                       silently varies with co-batched requests.
//   TCB_REASSOC         deliberately tolerance-governed code: reference
//                       kernels and any future reduced-precision path
//                       (fp16/int8 packed panels, ROADMAP) whose results
//                       are compared under max_ulp_diff, not bitwise.
//                       TCB_BITWISE code may never call into it.
//
// Like the lifetime and sync layers the header is zero-overhead: every
// macro compiles to nothing on every compiler (there is no language-level
// attribute for numeric determinism); enforcement is entirely tcb-lint's.
#pragma once

#include <type_traits>

/// Output must be bitwise concat-invariant; see file comment.
#define TCB_BITWISE
/// Exposes batch-global shape; must not reach TCB_BITWISE arithmetic.
#define TCB_BATCH_GEOMETRY
/// Tolerance-governed (ULP-compared) code; outside the bitwise closure.
#define TCB_REASSOC

namespace tcb::numeric_detail {

// The annotations must be pure metadata: same layout, same member-function
// types, no runtime footprint — mirroring the static_assert contracts of
// strong_index.hpp, sync.hpp and lifetime.hpp.
struct Annotated {
  int v = 0;
  [[nodiscard]] int kernel() const noexcept TCB_BITWISE { return v; }
  [[nodiscard]] int shape() const noexcept TCB_BATCH_GEOMETRY { return v; }
  [[nodiscard]] int loose() const noexcept TCB_REASSOC { return v; }
};

struct Plain {
  int v = 0;
  [[nodiscard]] int kernel() const noexcept { return v; }
  [[nodiscard]] int shape() const noexcept { return v; }
  [[nodiscard]] int loose() const noexcept { return v; }
};

static_assert(sizeof(Annotated) == sizeof(Plain) &&
                  alignof(Annotated) == alignof(Plain),
              "numeric annotations must not change object layout");
static_assert(std::is_same_v<decltype(&Annotated::kernel),
                             int (Annotated::*)() const noexcept>,
              "TCB_BITWISE must compile to nothing");
static_assert(std::is_same_v<decltype(&Annotated::shape),
                             int (Annotated::*)() const noexcept>,
              "TCB_BATCH_GEOMETRY must compile to nothing");
static_assert(std::is_same_v<decltype(&Annotated::loose),
                             int (Annotated::*)() const noexcept>,
              "TCB_REASSOC must compile to nothing");

}  // namespace tcb::numeric_detail
