// Deterministic random number generation for workloads, weights and tests.
//
// Everything in this repository that needs randomness goes through Rng so that
// every experiment is reproducible from a single 64-bit seed. The generator is
// xoshiro256** seeded via SplitMix64 (the reference seeding procedure), which
// is fast, high quality, and trivially portable.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace tcb {

/// SplitMix64 step. Used to expand a single seed into generator state and to
/// derive independent per-stream seeds (e.g. one stream per thread or module).
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG with convenience samplers.
///
/// Satisfies UniformRandomBitGenerator, so it can also be plugged into
/// <random> distributions, although the built-in samplers below are what the
/// library uses (they are exactly reproducible across standard libraries,
/// unlike std::normal_distribution).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1234abcdULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
    cached_gauss_valid_ = false;
  }

  /// Derive an independent child generator; `stream` distinguishes children
  /// created from the same parent state.
  [[nodiscard]] Rng fork(std::uint64_t stream) const noexcept {
    std::uint64_t sm = state_[0] ^ (state_[3] + 0x9e3779b97f4a7c15ULL * (stream + 1));
    return Rng{splitmix64(sm)};
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next_u64(); }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Marsaglia polar method (deterministic, portable).
  double gaussian() noexcept;

  /// Normal with given mean / standard deviation.
  double gaussian(double mean, double stddev) noexcept {
    return mean + stddev * gaussian();
  }

  /// Exponential with given rate (mean 1/rate); used for Poisson inter-arrival
  /// gaps in the workload generator.
  double exponential(double rate) noexcept;

  /// Uniform float in [-scale, scale]; used for weight initialization.
  float weight(float scale) noexcept {
    return static_cast<float>(uniform(-scale, scale));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_gauss_ = 0.0;
  bool cached_gauss_valid_ = false;
};

}  // namespace tcb
