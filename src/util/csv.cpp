#include "util/csv.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace tcb {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : path_(path), columns_(header.size()), out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  row(header);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_)
    throw std::invalid_argument("CsvWriter: row width mismatch in " + path_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::row_numeric(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (const double v : cells) text.push_back(format_number(v));
  row(text);
}

std::string CsvWriter::escape(std::string_view cell) {
  if (cell.find_first_of(",\"\n") == std::string_view::npos)
    return std::string(cell);
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string format_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace tcb
