#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace tcb {

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Samples::mean() const noexcept {
  if (values_.empty()) return 0.0;
  return sum() / static_cast<double>(values_.size());
}

double Samples::sum() const noexcept {
  return std::accumulate(values_.begin(), values_.end(), 0.0);
}

double Samples::min() const {
  if (values_.empty()) throw std::logic_error("Samples::min on empty set");
  ensure_sorted();
  return values_.front();
}

double Samples::max() const {
  if (values_.empty()) throw std::logic_error("Samples::max on empty set");
  ensure_sorted();
  return values_.back();
}

double Samples::quantile(double q) const {
  if (values_.empty()) throw std::logic_error("Samples::quantile on empty set");
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  ensure_sorted();
  const double pos = q * static_cast<double>(values_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

}  // namespace tcb
