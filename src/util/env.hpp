// Environment-variable knobs shared by benches and examples.
//
// TCB_FAST=1 shrinks bench workloads (useful in CI); TCB_THREADS=<n>
// overrides the worker count of the global thread pool.
#pragma once

#include <cstdint>
#include <string>

namespace tcb {

/// Reads an integral environment variable; returns `fallback` when unset or
/// unparsable.
[[nodiscard]] std::int64_t env_int(const char* name, std::int64_t fallback);

/// True when TCB_FAST is set to a non-zero value.
[[nodiscard]] bool fast_mode();

}  // namespace tcb
