#include "text/vocabulary.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "text/tokenizer.hpp"

namespace tcb {

Vocabulary::Vocabulary() {
  words_ = {"<pad>", "<bos>", "<eos>", "<unk>"};
  for (std::size_t i = 0; i < words_.size(); ++i)
    ids_.emplace(words_[i], static_cast<Index>(i));
}

Vocabulary Vocabulary::build(const std::vector<std::string>& corpus,
                             std::size_t max_size) {
  if (max_size <= static_cast<std::size_t>(kFirstVocabWord))
    throw std::invalid_argument("Vocabulary::build: max_size too small");
  std::map<std::string, std::size_t> freq;  // ordered: lexicographic ties
  for (const auto& sentence : corpus)
    for (const auto& word : split_words(sentence)) ++freq[word];

  std::vector<std::pair<std::string, std::size_t>> ranked(freq.begin(),
                                                          freq.end());
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });

  Vocabulary vocab;
  const std::size_t budget = max_size - static_cast<std::size_t>(kFirstVocabWord);
  for (std::size_t i = 0; i < ranked.size() && i < budget; ++i)
    vocab.add_word(ranked[i].first);
  return vocab;
}

Index Vocabulary::add_word(std::string_view word) {
  const auto it = ids_.find(std::string(word));
  if (it != ids_.end()) return it->second;
  const Index id = static_cast<Index>(words_.size());
  words_.emplace_back(word);
  ids_.emplace(words_.back(), id);
  return id;
}

Index Vocabulary::id_of(std::string_view word) const {
  const auto it = ids_.find(std::string(word));
  return it == ids_.end() ? kUnkToken : it->second;
}

const std::string& Vocabulary::word_of(Index id) const {
  if (id < 0 || id >= size())
    throw std::out_of_range("Vocabulary::word_of: id " + std::to_string(id));
  return words_[static_cast<std::size_t>(id)];
}

void Vocabulary::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Vocabulary::save: cannot open " + path);
  for (Index id = kFirstVocabWord; id < size(); ++id)
    out << words_[static_cast<std::size_t>(id)] << '\n';
}

Vocabulary Vocabulary::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Vocabulary::load: cannot open " + path);
  Vocabulary vocab;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) vocab.add_word(line);
  return vocab;
}

}  // namespace tcb
