// Word-level vocabulary for the NLP service frontend. The paper's requests
// are sentences ("language translation services receive requests in the form
// of sentences"); this vocabulary maps words to the engine's token ids and
// back, with the reserved PAD/BOS/EOS ids from batching/packed_batch.hpp and
// an <unk> id for out-of-vocabulary words.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "batching/packed_batch.hpp"
#include "util/lifetime.hpp"

namespace tcb {

inline constexpr Index kUnkToken = 3;
/// First id available for real words (kUnkToken is the last reserved one).
inline constexpr Index kFirstVocabWord = 4;

class Vocabulary {
 public:
  /// Creates a vocabulary holding only the reserved tokens.
  Vocabulary();

  /// Builds from a corpus: words are ranked by frequency (ties
  /// lexicographic) and the top `max_size - kFirstVocabWord` become ids.
  static Vocabulary build(const std::vector<std::string>& corpus,
                          std::size_t max_size);

  /// Adds a word if absent; returns its id either way.
  Index add_word(std::string_view word);

  /// Id for a word; kUnkToken when unknown.
  [[nodiscard]] Index id_of(std::string_view word) const;

  /// Word for an id; reserved ids render as "<pad>", "<bos>", "<eos>",
  /// "<unk>". Out-of-range ids throw.
  [[nodiscard]] const std::string& word_of(Index id) const TCB_LIFETIME_BOUND;

  [[nodiscard]] Index size() const noexcept {
    return static_cast<Index>(words_.size());
  }
  [[nodiscard]] bool contains(std::string_view word) const {
    return ids_.find(std::string(word)) != ids_.end();
  }

  /// Persistence: one word per line, line number = id - kFirstVocabWord.
  void save(const std::string& path) const;
  static Vocabulary load(const std::string& path);

 private:
  std::vector<std::string> words_;              ///< id -> word
  std::unordered_map<std::string, Index> ids_;  ///< word -> id
};

}  // namespace tcb
