// Sentence <-> token-id conversion on top of a Vocabulary, plus the request
// factory that turns raw sentences into schedulable Requests — the glue
// between user applications and the TCB scheduler/engine (paper Fig. 3).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "batching/request.hpp"
#include "text/vocabulary.hpp"
#include "util/lifetime.hpp"

namespace tcb {

/// Lower-cases and splits on whitespace/punctuation. Exposed for vocabulary
/// building and tests.
[[nodiscard]] std::vector<std::string> split_words(std::string_view sentence);

class Tokenizer {
 public:
  explicit Tokenizer(Vocabulary vocab);

  [[nodiscard]] const Vocabulary& vocabulary() const noexcept
      TCB_LIFETIME_BOUND {
    return vocab_;
  }

  /// Sentence -> token ids (no BOS/EOS; the engine handles those).
  [[nodiscard]] std::vector<Index> encode(std::string_view sentence) const;

  /// Token ids -> sentence (reserved ids are skipped).
  [[nodiscard]] std::string decode(const std::vector<Index>& ids) const;

  /// Builds a ready-to-schedule Request from a sentence. Sentences that
  /// tokenize to nothing throw (a zero-length request is unschedulable).
  [[nodiscard]] Request make_request(RequestId id, std::string_view sentence,
                                     double arrival, double deadline) const;

 private:
  Vocabulary vocab_;
};

}  // namespace tcb
