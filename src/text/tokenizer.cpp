#include "text/tokenizer.hpp"

#include <cctype>
#include <stdexcept>

namespace tcb {

std::vector<std::string> split_words(std::string_view sentence) {
  std::vector<std::string> words;
  std::string current;
  for (const char raw : sentence) {
    const auto c = static_cast<unsigned char>(raw);
    if (std::isalnum(c) || raw == '\'') {
      current += static_cast<char>(std::tolower(c));
    } else if (!current.empty()) {
      words.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) words.push_back(std::move(current));
  return words;
}

Tokenizer::Tokenizer(Vocabulary vocab) : vocab_(std::move(vocab)) {}

std::vector<Index> Tokenizer::encode(std::string_view sentence) const {
  std::vector<Index> ids;
  for (const auto& word : split_words(sentence))
    ids.push_back(vocab_.id_of(word));
  return ids;
}

std::string Tokenizer::decode(const std::vector<Index>& ids) const {
  std::string out;
  for (const Index id : ids) {
    if (id < kFirstVocabWord) continue;  // skip reserved tokens
    if (!out.empty()) out += ' ';
    // Ids beyond this vocabulary (a model may have a larger output space)
    // render as <unk> rather than failing.
    out += id < vocab_.size() ? vocab_.word_of(id) : "<unk>";
  }
  return out;
}

Request Tokenizer::make_request(RequestId id, std::string_view sentence,
                                double arrival, double deadline) const {
  Request req;
  req.id = id;
  req.arrival = arrival;
  req.deadline = deadline;
  req.tokens = encode(sentence);
  req.length = static_cast<Index>(req.tokens.size());
  if (req.length == 0)
    throw std::invalid_argument("Tokenizer::make_request: empty sentence");
  return req;
}

}  // namespace tcb
