// Baseline scheduling policies the paper compares DAS against (§6.2.4):
// first-come-first-served (FCFS), shortest-job-first (SJF) and
// deadline-early-first (DEF).
//
// Each baseline has two modes, matching the two ways the paper uses them:
//
//   * classic (default, used in the Fig. 15 scheduling study): the scheduler
//     thinks of a batch as "B requests" and selects the first B pending
//     requests under its ordering criterion. It is NOT ConcatBatching-aware
//     — unlike DAS it does not know that a batch row can hold several
//     requests, so it never selects more than B requests per slot even when
//     the rows could fit far more. Exploiting that capacity is precisely
//     what the paper's jointly-designed DAS adds (§1: "fully exploit the
//     potential capacity of ConcatBatching").
//
//   * concat-aware (Fig. 11/12's engine study, where "the influence of our
//     designed scheduling algorithm" is eliminated): the policy only fixes
//     the queue ORDER; the engine's batcher then pulls as much of the queue
//     as the batch geometry fits. Used to compare batching schemes under a
//     scheduling-neutral policy.
#pragma once

#include "sched/scheduler.hpp"

namespace tcb {

class FcfsScheduler final : public Scheduler {
 public:
  explicit FcfsScheduler(SchedulerConfig cfg, bool concat_aware = false)
      : Scheduler(cfg), concat_aware_(concat_aware) {}
  [[nodiscard]] std::string name() const override { return "FCFS"; }
  [[nodiscard]] Selection select(
      double now, const std::vector<Request>& pending) const override;

 private:
  bool concat_aware_;
};

class SjfScheduler final : public Scheduler {
 public:
  explicit SjfScheduler(SchedulerConfig cfg, bool concat_aware = false)
      : Scheduler(cfg), concat_aware_(concat_aware) {}
  [[nodiscard]] std::string name() const override { return "SJF"; }
  [[nodiscard]] Selection select(
      double now, const std::vector<Request>& pending) const override;

 private:
  bool concat_aware_;
};

class DefScheduler final : public Scheduler {
 public:
  explicit DefScheduler(SchedulerConfig cfg, bool concat_aware = false)
      : Scheduler(cfg), concat_aware_(concat_aware) {}
  [[nodiscard]] std::string name() const override { return "DEF"; }
  [[nodiscard]] Selection select(
      double now, const std::vector<Request>& pending) const override;

 private:
  bool concat_aware_;
};

}  // namespace tcb
