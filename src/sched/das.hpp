// DAS — the online Deadline-Aware Scheduling algorithm (paper Algorithm 1,
// §5.2). For each of the B batch rows it mixes:
//
//   * N^U_t, the utility-dominant set: the first p_tk = eta * s_tk requests
//     of the pending set sorted by utility v_n = 1/l_n (s_tk = how many of
//     the highest-utility requests saturate a row);
//   * N^D_t, the deadline-aware set: remaining requests with utility >=
//     q * avg-utility(N^U_t), taken in earliest-deadline order;
//   * the rest, greedily, if the row still has space.
//
// With eta + q = 1 the algorithm is eta*q/(eta*q + 1)-competitive
// (Theorem 5.1); eta = q = 1/2 gives the paper's 1/5 bound.
#pragma once

#include "sched/scheduler.hpp"

namespace tcb {

class DasScheduler final : public Scheduler {
 public:
  explicit DasScheduler(SchedulerConfig cfg);

  [[nodiscard]] std::string name() const override { return "DAS"; }
  [[nodiscard]] Selection select(
      double now, const std::vector<Request>& pending) const override;

  /// One row of Algorithm 1: picks requests for a single row of capacity L
  /// from `candidates` (mutated: picked requests are removed). Returns the
  /// row's picks in placement order, and reports how many of them came from
  /// the utility-dominant prefix via `utility_dominant_count`.
  [[nodiscard]] std::vector<Request> select_row(
      std::vector<Request>& candidates, Index* utility_dominant_count) const;

  /// The same Algorithm 1 fill at an arbitrary capacity — the slot-sized
  /// variant select_for_slots drives against vacated spans. Every candidate
  /// must fit `capacity` individually (that is what keeps the s_tk >= 1
  /// invariant of the saturating prefix at capacities below L).
  [[nodiscard]] std::vector<Request> select_row_at_capacity(
      std::vector<Request>& candidates, Index capacity,
      Index* utility_dominant_count) const;

  /// Slot-span backfill for continuous batching: for each vacated slot, the
  /// candidates that fit it individually are packed greedily in utility-rate
  /// order (utility per occupied decode step) — the span is held until its
  /// longest admitted request retires, so utility density, not raw utility,
  /// is the right per-span objective.
  [[nodiscard]] std::vector<std::vector<Request>> select_for_slots(
      double now, const std::vector<Index>& slot_widths,
      std::vector<Request>& pending) const override;
};

}  // namespace tcb
