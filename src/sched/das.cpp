#include "sched/das.hpp"

#include <algorithm>
#include <cmath>

namespace tcb {
namespace {

/// Utility order: v_n = w_n/l_n non-increasing (shortest first for uniform
/// weights); ties by id for determinism.
void sort_by_utility(std::vector<Request>& requests) {
  std::sort(requests.begin(), requests.end(),
            [](const Request& a, const Request& b) {
              const double ua = a.utility();
              const double ub = b.utility();
              if (ua != ub) return ua > ub;
              return a.id < b.id;
            });
}

}  // namespace

DasScheduler::DasScheduler(SchedulerConfig cfg) : Scheduler(cfg) {}

std::vector<Request> DasScheduler::select_row(
    std::vector<Request>& candidates, Index* utility_dominant_count) const {
  return select_row_at_capacity(candidates, cfg_.row_capacity,
                                utility_dominant_count);
}

std::vector<Request> DasScheduler::select_row_at_capacity(
    std::vector<Request>& candidates, Index capacity,
    Index* utility_dominant_count) const {
  const Index L = capacity;
  std::vector<Request> row;
  if (utility_dominant_count != nullptr) *utility_dominant_count = 0;
  if (candidates.empty()) return row;

  // Line 4-5: if everything fits, take everything.
  Index total = 0;
  for (const auto& r : candidates) total += r.length;
  if (total <= L) {
    row = std::move(candidates);
    candidates.clear();
    if (utility_dominant_count != nullptr)
      *utility_dominant_count = static_cast<Index>(row.size());
    return row;
  }

  // Line 7: sort by utility, non-increasing.
  sort_by_utility(candidates);

  // Line 8: s_tk = the longest utility prefix that saturates the row.
  Index s = 0;
  Index prefix_len = 0;
  for (const auto& r : candidates) {
    if (prefix_len + r.length > L) break;
    prefix_len += r.length;
    ++s;
  }
  // All candidates fit the capacity individually (the serving loop evicts
  // what exceeds L; select_for_slots pre-filters to the slot width), so
  // s >= 1 always holds here.

  // Lines 9-10: utility-dominant set N^U_t = first p = eta * s requests.
  const Index p = std::clamp<Index>(
      static_cast<Index>(std::floor(cfg_.eta * static_cast<double>(s))), 1, s);
  Index used = 0;
  double utility_sum = 0.0;
  std::vector<bool> taken(candidates.size(), false);
  for (Index i = 0; i < p; ++i) {
    row.push_back(candidates[static_cast<std::size_t>(i)]);
    used += row.back().length;
    utility_sum += row.back().utility();
    taken[static_cast<std::size_t>(i)] = true;
  }
  if (utility_dominant_count != nullptr) *utility_dominant_count = p;
  const double avg_utility = utility_sum / static_cast<double>(p);

  // Line 11: deadline-aware set N^D_t = remaining requests with utility >=
  // q * avg(N^U_t), considered in earliest-deadline order.
  std::vector<std::size_t> deadline_set;
  for (std::size_t i = static_cast<std::size_t>(p); i < candidates.size(); ++i)
    if (candidates[i].utility() >= cfg_.q * avg_utility)
      deadline_set.push_back(i);
  std::sort(deadline_set.begin(), deadline_set.end(),
            [&](std::size_t a, std::size_t b) {
              if (candidates[a].deadline != candidates[b].deadline)
                return candidates[a].deadline < candidates[b].deadline;
              return candidates[a].id < candidates[b].id;
            });

  // Line 12: greedily admit deadline-set requests that still fit.
  for (const auto i : deadline_set) {
    if (used + candidates[i].length > L) continue;
    row.push_back(candidates[i]);
    used += candidates[i].length;
    taken[i] = true;
  }

  // Lines 13-14: if space remains, fill from the rest (utility order).
  for (std::size_t i = static_cast<std::size_t>(p); i < candidates.size(); ++i) {
    if (taken[i] || used + candidates[i].length > L) continue;
    row.push_back(candidates[i]);
    used += candidates[i].length;
    taken[i] = true;
  }

  // Remove picked requests from the candidate pool.
  std::vector<Request> rest;
  rest.reserve(candidates.size() - row.size());
  for (std::size_t i = 0; i < candidates.size(); ++i)
    if (!taken[i]) rest.push_back(std::move(candidates[i]));
  candidates = std::move(rest);
  return row;
}

std::vector<std::vector<Request>> DasScheduler::select_for_slots(
    double /*now*/, const std::vector<Index>& slot_widths,
    std::vector<Request>& pending) const {
  std::vector<std::vector<Request>> out(slot_widths.size());
  for (std::size_t s = 0; s < slot_widths.size(); ++s) {
    if (pending.empty()) break;
    const Index width = std::min(slot_widths[s], cfg_.row_capacity);
    if (width <= 0) continue;
    // Only candidates that fit this slot individually are considered.
    std::vector<Request> fits;
    std::vector<Request> rest;
    for (auto& req : pending)
      (req.length <= width ? fits : rest).push_back(std::move(req));
    if (!fits.empty()) {
      // A vacated span is held until its longest admitted request retires,
      // so the objective here is utility *rate* — utility per occupied
      // decode step — not raw utility as in the row fill: one span-filling
      // request blocks the slot for its whole length where several short
      // ones would turn it over. Greedy in utility-density order
      // (utility / length, compared by cross-multiplication) is the
      // knapsack heuristic for that, with deterministic tie-breaks.
      std::sort(fits.begin(), fits.end(),
                [](const Request& a, const Request& b) {
                  const double da =
                      a.utility() * static_cast<double>(b.length);
                  const double db =
                      b.utility() * static_cast<double>(a.length);
                  if (da != db) return da > db;
                  if (a.deadline != b.deadline) return a.deadline < b.deadline;
                  return a.id < b.id;
                });
      Index used = 0;
      std::vector<Request> unpicked;
      for (auto& req : fits) {
        if (used + req.length <= width) {
          used += req.length;
          out[s].push_back(std::move(req));
        } else {
          unpicked.push_back(std::move(req));
        }
      }
      fits = std::move(unpicked);
    }
    for (auto& req : fits) rest.push_back(std::move(req));  // unpicked return
    pending = std::move(rest);
  }
  return out;
}

Selection DasScheduler::select(double /*now*/,
                               const std::vector<Request>& pending) const {
  Selection sel;
  std::vector<Request> candidates = pending;
  for (Index k = 0; k < cfg_.batch_rows && !candidates.empty(); ++k) {
    auto row = select_row(candidates, nullptr);
    for (auto& r : row) sel.ordered.push_back(std::move(r));
  }
  return sel;
}

}  // namespace tcb
