#include "sched/factory.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "sched/baselines.hpp"
#include "sched/das.hpp"
#include "sched/slotted_das.hpp"

namespace tcb {

std::unique_ptr<Scheduler> make_scheduler(const std::string& name,
                                          const SchedulerConfig& cfg) {
  std::string key = name;
  std::transform(key.begin(), key.end(), key.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (key == "das") return std::make_unique<DasScheduler>(cfg);
  if (key == "slotted-das") return std::make_unique<SlottedDasScheduler>(cfg);
  if (key == "fcfs") return std::make_unique<FcfsScheduler>(cfg);
  if (key == "sjf") return std::make_unique<SjfScheduler>(cfg);
  if (key == "def") return std::make_unique<DefScheduler>(cfg);
  // "-full" variants: concat-aware queue policies (order only, no request
  // cap) — the scheduling-neutral mode of the Fig. 11/12 engine study.
  if (key == "fcfs-full") return std::make_unique<FcfsScheduler>(cfg, true);
  if (key == "sjf-full") return std::make_unique<SjfScheduler>(cfg, true);
  if (key == "def-full") return std::make_unique<DefScheduler>(cfg, true);
  throw std::invalid_argument("make_scheduler: unknown scheduler '" + name + "'");
}

std::vector<std::string> scheduler_names() {
  return {"das", "slotted-das", "fcfs", "sjf", "def",
          "fcfs-full", "sjf-full", "def-full"};
}

}  // namespace tcb
