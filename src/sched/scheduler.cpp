#include "sched/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/check.hpp"

namespace tcb {

void SchedulerConfig::validate() const {
  if (batch_rows <= 0)
    throw std::invalid_argument("SchedulerConfig: batch_rows must be >= 1");
  if (row_capacity <= 0)
    throw std::invalid_argument("SchedulerConfig: row_capacity must be >= 1");
  if (eta <= 0.0 || eta >= 1.0)
    throw std::invalid_argument("SchedulerConfig: eta must be in (0, 1)");
  if (q <= 0.0 || q >= 1.0)
    throw std::invalid_argument("SchedulerConfig: q must be in (0, 1)");
}

Scheduler::Scheduler(SchedulerConfig cfg) : cfg_(cfg) { cfg_.validate(); }

std::vector<Request> evict_unschedulable(double now, Index row_capacity,
                                         std::vector<Request>& pending) {
  std::vector<Request> failed;
  auto keep = pending.begin();
  for (auto it = pending.begin(); it != pending.end(); ++it) {
    if (it->deadline < now || it->length > row_capacity || it->length < 1) {
      failed.push_back(std::move(*it));
    } else {
      if (keep != it) *keep = std::move(*it);
      ++keep;
    }
  }
  pending.erase(keep, pending.end());
  // Post-condition: every survivor has schedulable geometry. This is the
  // admission sanitizer downstream stages rely on — batch formation and slot
  // math (src/batching/, DAS row packing) use length/deadline in raw
  // arithmetic and the tainted-admission lint rule keys on these checks.
  for (const Request& r : pending) {
    TCB_DCHECK(r.length >= 1 && r.length <= row_capacity,
               "evict_unschedulable: survivor with unschedulable length");
    TCB_DCHECK(r.deadline >= now,
               "evict_unschedulable: survivor with expired deadline");
  }
  return failed;
}

}  // namespace tcb
