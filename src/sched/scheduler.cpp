#include "sched/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/check.hpp"

namespace tcb {

void SchedulerConfig::validate() const {
  if (batch_rows <= 0)
    throw std::invalid_argument("SchedulerConfig: batch_rows must be >= 1");
  if (row_capacity <= 0)
    throw std::invalid_argument("SchedulerConfig: row_capacity must be >= 1");
  if (eta <= 0.0 || eta >= 1.0)
    throw std::invalid_argument("SchedulerConfig: eta must be in (0, 1)");
  if (q <= 0.0 || q >= 1.0)
    throw std::invalid_argument("SchedulerConfig: q must be in (0, 1)");
}

Scheduler::Scheduler(SchedulerConfig cfg) : cfg_(cfg) { cfg_.validate(); }

std::vector<std::vector<Request>> Scheduler::select_for_slots(
    double /*now*/, const std::vector<Index>& slot_widths,
    std::vector<Request>& pending) const {
  std::vector<std::vector<Request>> out(slot_widths.size());
  if (pending.empty() || slot_widths.empty()) return out;

  // Greedy first-fit in utility order (v_n = w_n/l_n non-increasing, ties by
  // id): the highest-utility request lands in the first slot it fits.
  std::sort(pending.begin(), pending.end(),
            [](const Request& a, const Request& b) {
              const double ua = a.utility();
              const double ub = b.utility();
              if (ua != ub) return ua > ub;
              return a.id < b.id;
            });
  std::vector<Index> remaining = slot_widths;
  std::vector<Request> leftover;
  leftover.reserve(pending.size());
  for (auto& req : pending) {
    std::size_t dest = remaining.size();
    for (std::size_t s = 0; s < remaining.size(); ++s) {
      if (req.length > remaining[s]) continue;
      remaining[s] -= req.length;
      dest = s;
      break;
    }
    if (dest < remaining.size())
      out[dest].push_back(std::move(req));
    else
      leftover.push_back(std::move(req));
  }
  pending = std::move(leftover);
  return out;
}

std::vector<Request> evict_unschedulable(double now, Index row_capacity,
                                         std::vector<Request>& pending) {
  std::vector<Request> failed;
  auto keep = pending.begin();
  for (auto it = pending.begin(); it != pending.end(); ++it) {
    if (it->deadline < now || it->length > row_capacity || it->length < 1) {
      failed.push_back(std::move(*it));
    } else {
      if (keep != it) *keep = std::move(*it);
      ++keep;
    }
  }
  pending.erase(keep, pending.end());
  // Post-condition: every survivor has schedulable geometry. This is the
  // admission sanitizer downstream stages rely on — batch formation and slot
  // math (src/batching/, DAS row packing) use length/deadline in raw
  // arithmetic and the tainted-admission lint rule keys on these checks.
  for (const Request& r : pending) {
    TCB_DCHECK(r.length >= 1 && r.length <= row_capacity,
               "evict_unschedulable: survivor with unschedulable length");
    TCB_DCHECK(r.deadline >= now,
               "evict_unschedulable: survivor with expired deadline");
  }
  return failed;
}

}  // namespace tcb
