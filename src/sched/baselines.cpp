#include "sched/baselines.hpp"

#include <algorithm>

namespace tcb {
namespace {

template <typename Less>
Selection ordered_selection(const std::vector<Request>& pending, Less less,
                            Index batch_rows, bool concat_aware) {
  Selection sel;
  sel.ordered = pending;
  std::sort(sel.ordered.begin(), sel.ordered.end(), less);
  // Classic batch notion: one batch = B requests. A concat-aware policy only
  // fixes the order and lets the batcher fill the geometry.
  if (!concat_aware && static_cast<Index>(sel.ordered.size()) > batch_rows)
    sel.ordered.resize(static_cast<std::size_t>(batch_rows));
  return sel;
}

}  // namespace

Selection FcfsScheduler::select(double /*now*/,
                                const std::vector<Request>& pending) const {
  return ordered_selection(
      pending,
      [](const Request& a, const Request& b) {
        if (a.arrival != b.arrival) return a.arrival < b.arrival;
        return a.id < b.id;
      },
      cfg_.batch_rows, concat_aware_);
}

Selection SjfScheduler::select(double /*now*/,
                               const std::vector<Request>& pending) const {
  return ordered_selection(
      pending,
      [](const Request& a, const Request& b) {
        if (a.length != b.length) return a.length < b.length;
        return a.id < b.id;
      },
      cfg_.batch_rows, concat_aware_);
}

Selection DefScheduler::select(double /*now*/,
                               const std::vector<Request>& pending) const {
  return ordered_selection(
      pending,
      [](const Request& a, const Request& b) {
        if (a.deadline != b.deadline) return a.deadline < b.deadline;
        return a.id < b.id;
      },
      cfg_.batch_rows, concat_aware_);
}

}  // namespace tcb
