// Slotted-DAS (paper Algorithm 2, §5.3): runs DAS to obtain the per-row
// candidate sets, then sets the slot size z to the longest request in the
// utility-dominant set H^U — so nothing DAS chose for its utility is ever
// discarded by the slot limit — and lets the slotted batcher place requests
// into slots greedily.
#pragma once

#include "sched/das.hpp"

namespace tcb {

class SlottedDasScheduler final : public Scheduler {
 public:
  explicit SlottedDasScheduler(SchedulerConfig cfg);

  [[nodiscard]] std::string name() const override { return "Slotted-DAS"; }
  [[nodiscard]] Selection select(
      double now, const std::vector<Request>& pending) const override;

  /// Mid-batch splicing admits into *existing* slots, whose size was fixed
  /// when the batch formed — so slotted-DAS delegates straight to DAS at
  /// each slot's width (there is no slot size left to choose).
  [[nodiscard]] std::vector<std::vector<Request>> select_for_slots(
      double now, const std::vector<Index>& slot_widths,
      std::vector<Request>& pending) const override;

 private:
  DasScheduler das_;
};

}  // namespace tcb
