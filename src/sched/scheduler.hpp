// Online request scheduling (paper §5). The scheduler is a pluggable module:
// at the start of every time slot (GPU idle) it receives the pending request
// set N_t and returns an ordered selection to batch. Which rows/slots the
// requests land in is the batcher's job; the scheduler owns *which* requests
// are served and in what priority.
#pragma once

#include <string>
#include <vector>

#include "batching/request.hpp"
#include "util/lifetime.hpp"

namespace tcb {

struct SchedulerConfig {
  Index batch_rows = 64;     ///< B (paper §5.1)
  Index row_capacity = 100;  ///< L, tokens per row
  double eta = 0.5;          ///< DAS utility-dominant fraction (paper §5.2)
  double q = 0.5;            ///< DAS deadline-set threshold; eta + q = 1

  void validate() const;
};

/// The scheduler's verdict for one time slot.
struct Selection {
  /// Requests to batch now, highest priority first. The batcher must respect
  /// this precedence when space runs out.
  std::vector<Request> ordered;
  /// Slot length chosen by Slotted-DAS (paper Alg. 2); 0 = unslotted.
  Index slot_len = 0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// `pending` holds requests that have arrived, are unserved and unexpired
  /// (deadline >= now), and fit a row (length <= L). Returns the slot's
  /// selection. Must not mutate shared state other than its own.
  [[nodiscard]] virtual Selection select(
      double now, const std::vector<Request>& pending) const = 0;

  /// Continuous-batching entry point (DESIGN.md §15): picks requests for a
  /// set of *vacated slot spans* of a live batch rather than for fresh rows.
  /// `slot_widths[i]` is the token capacity of the i-th vacant slot; the
  /// result has one (possibly empty) admission list per slot, each list's
  /// total length within its slot's width. Picked requests are removed from
  /// `pending`; the survivors' order is unspecified (the serving loop
  /// re-sorts its pending pool canonically after every scheduler call).
  ///
  /// Default: greedy first-fit in utility order — the natural baseline for
  /// schedulers without a slot-aware policy. DAS-family schedulers override
  /// this with Algorithm 1 run per slot at the slot's capacity.
  [[nodiscard]] virtual std::vector<std::vector<Request>> select_for_slots(
      double now, const std::vector<Index>& slot_widths,
      std::vector<Request>& pending) const;

  [[nodiscard]] const SchedulerConfig& config() const noexcept
      TCB_LIFETIME_BOUND {
    return cfg_;
  }

 protected:
  explicit Scheduler(SchedulerConfig cfg);
  SchedulerConfig cfg_;
};

/// Removes requests whose deadline has passed (deadline < now) or that can
/// never fit a row (length > L); returns the removed ones (failed requests).
[[nodiscard]] std::vector<Request> evict_unschedulable(
    double now, Index row_capacity, std::vector<Request>& pending);

}  // namespace tcb
