// Name-based scheduler construction for benches and examples.
#pragma once

#include <memory>
#include <string>

#include "sched/scheduler.hpp"

namespace tcb {

/// Known names: "das", "slotted-das", "fcfs", "sjf", "def"
/// (case-insensitive). Throws std::invalid_argument for unknown names.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(
    const std::string& name, const SchedulerConfig& cfg);

/// All registered scheduler names, in a stable order.
[[nodiscard]] std::vector<std::string> scheduler_names();

}  // namespace tcb
