#include "sched/slotted_das.hpp"

#include <algorithm>

namespace tcb {

SlottedDasScheduler::SlottedDasScheduler(SchedulerConfig cfg)
    : Scheduler(cfg), das_(cfg) {}

Selection SlottedDasScheduler::select(
    double /*now*/, const std::vector<Request>& pending) const {
  Selection sel;
  std::vector<Request> candidates = pending;

  // Line 2: invoke DAS row by row; lines 3-4: the slot size is the largest
  // length among the utility-dominant picks H^U.
  Index slot_len = 0;
  for (Index k = 0; k < cfg_.batch_rows && !candidates.empty(); ++k) {
    Index dominant = 0;
    auto row = das_.select_row(candidates, &dominant);
    for (Index i = 0; i < dominant; ++i)
      slot_len = std::max(slot_len, row[static_cast<std::size_t>(i)].length);
    for (auto& r : row) sel.ordered.push_back(std::move(r));
  }

  sel.slot_len = std::clamp<Index>(slot_len, 1, cfg_.row_capacity);
  return sel;
}

std::vector<std::vector<Request>> SlottedDasScheduler::select_for_slots(
    double now, const std::vector<Index>& slot_widths,
    std::vector<Request>& pending) const {
  return das_.select_for_slots(now, slot_widths, pending);
}

}  // namespace tcb
