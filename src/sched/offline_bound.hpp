// Offline upper bound on the achievable total utility of a trace — the
// hindsight yardstick for the online schedulers (Theorem 5.1 guarantees DAS
// reaches at least eta*q/(eta*q+1) of OPT; this bound sandwiches OPT from
// above so benches can report an empirical competitive ratio).
//
// The bound relaxes the problem twice, so it always dominates OPT:
//   1. deadlines are dropped (any request may run in any slot after arrival);
//   2. batch-row packing is relaxed to a single token budget
//      C = B * L * (horizon / batch_time) — the total tokens the accelerator
//      could possibly serve — and the best utility subset under a token
//      budget is the fractional knapsack greedy by utility density
//      v_n / l_n = 1 / l_n^2 (shortest first).
#pragma once

#include <vector>

#include "batching/request.hpp"
#include "sched/scheduler.hpp"

namespace tcb {

struct OfflineBoundConfig {
  Index batch_rows = 64;
  Index row_capacity = 100;
  /// Seconds one full batch occupies the accelerator (from the cost model).
  double batch_seconds = 0.5;
  /// Serving horizon; defaults to last arrival + one batch if <= 0.
  double horizon = 0.0;
};

/// Upper bound on the total utility any schedule (online or offline) can
/// collect from `trace`.
[[nodiscard]] double offline_utility_upper_bound(
    const std::vector<Request>& trace, const OfflineBoundConfig& cfg);

}  // namespace tcb
