#include "sched/offline_bound.hpp"

#include <algorithm>
#include <stdexcept>

namespace tcb {

double offline_utility_upper_bound(const std::vector<Request>& trace,
                                   const OfflineBoundConfig& cfg) {
  if (cfg.batch_rows <= 0 || cfg.row_capacity <= 0 || cfg.batch_seconds <= 0.0)
    throw std::invalid_argument("offline_utility_upper_bound: bad config");
  if (trace.empty()) return 0.0;

  double horizon = cfg.horizon;
  if (horizon <= 0.0) {
    double last_arrival = 0.0;
    for (const auto& r : trace) last_arrival = std::max(last_arrival, r.arrival);
    horizon = last_arrival + cfg.batch_seconds;
  }

  // Total token budget the accelerator could serve within the horizon.
  const double batches = horizon / cfg.batch_seconds;
  double budget = batches * static_cast<double>(cfg.batch_rows) *
                  static_cast<double>(cfg.row_capacity);

  // Fractional knapsack by utility density 1/l^2 — for v = 1/l that is
  // simply shortest-first.
  std::vector<const Request*> by_length;
  by_length.reserve(trace.size());
  for (const auto& r : trace)
    if (r.length > 0 && r.length <= cfg.row_capacity) by_length.push_back(&r);
  std::sort(by_length.begin(), by_length.end(),
            [](const Request* a, const Request* b) {
              return a->length < b->length;
            });

  double bound = 0.0;
  for (const Request* r : by_length) {
    const double len = static_cast<double>(r->length);
    if (budget <= 0.0) break;
    if (len <= budget) {
      bound += r->utility();
      budget -= len;
    } else {
      bound += r->utility() * (budget / len);  // fractional tail
      budget = 0.0;
    }
  }
  return bound;
}

}  // namespace tcb
