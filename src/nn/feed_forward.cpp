#include "nn/feed_forward.hpp"

#include "tensor/ops.hpp"

namespace tcb {

FeedForward::FeedForward(const ModelConfig& cfg, Rng& rng)
    : lin1_(cfg.d_model, cfg.d_ff, rng), lin2_(cfg.d_ff, cfg.d_model, rng) {}

Tensor FeedForward::forward(const Tensor& x) const {
  Tensor h = lin1_.forward(x);
  relu_inplace(h);
  return lin2_.forward(h);
}

}  // namespace tcb
