#include "nn/feed_forward.hpp"

#include "tensor/ops.hpp"

namespace tcb {

FeedForward::FeedForward(const ModelConfig& cfg, Rng& rng)
    : lin1_(cfg.d_model, cfg.d_ff, rng), lin2_(cfg.d_ff, cfg.d_model, rng) {}

Tensor FeedForward::forward(const Tensor& x) const {
  // Hidden-activation scratch reused across layers and forwards: the d_ff
  // expansion is the largest intermediate in the encoder, and matmul's
  // out-param path keeps same-shape storage, so a warmed steady state
  // allocates nothing here.
  static thread_local Tensor h;
  lin1_.forward(x, h);
  relu_inplace(h);
  return lin2_.forward(h);
}

}  // namespace tcb
