#include "nn/model_config.hpp"

#include <stdexcept>

namespace tcb {

void ModelConfig::validate() const {
  auto fail = [](const char* what) { throw std::invalid_argument(what); };
  if (d_model <= 0) fail("ModelConfig: d_model must be positive");
  if (n_heads <= 0) fail("ModelConfig: n_heads must be positive");
  if (d_model % n_heads != 0) fail("ModelConfig: d_model % n_heads != 0");
  if (d_ff <= 0) fail("ModelConfig: d_ff must be positive");
  if (n_encoder_layers <= 0) fail("ModelConfig: need >= 1 encoder layer");
  if (n_decoder_layers <= 0) fail("ModelConfig: need >= 1 decoder layer");
  if (vocab_size <= 3) fail("ModelConfig: vocab must exceed reserved tokens");
  if (max_len <= 0) fail("ModelConfig: max_len must be positive");
  if (layer_norm_eps <= 0.0f) fail("ModelConfig: eps must be positive");
}

ModelConfig ModelConfig::paper_scale() {
  ModelConfig cfg;
  cfg.d_model = 768;
  cfg.n_heads = 8;
  cfg.d_ff = 3072;
  cfg.n_encoder_layers = 3;
  cfg.n_decoder_layers = 3;
  cfg.vocab_size = 32000;
  cfg.max_len = 400;
  return cfg;
}

ModelConfig ModelConfig::test_scale() {
  ModelConfig cfg;
  cfg.d_model = 32;
  cfg.n_heads = 4;
  cfg.d_ff = 64;
  cfg.n_encoder_layers = 2;
  cfg.n_decoder_layers = 2;
  cfg.vocab_size = 64;
  cfg.max_len = 128;
  return cfg;
}

}  // namespace tcb
