// Encoder-only classification head (BERT-style service): mean-pools each
// request's encoder states over its own segment and projects to class
// logits. The paper motivates TCB with GLUE/DIA-style workloads; this head
// shows ConcatBatching serves classification requests too — the pooling is
// segment-restricted, so concat-batched classification matches per-request
// classification exactly (same property as decoding).
#pragma once

#include <unordered_map>

#include "nn/model.hpp"

namespace tcb {

class ClassificationHead {
 public:
  ClassificationHead() = default;

  /// `d_model` must match the encoder producing the memories; weights are
  /// deterministic in `seed`.
  ClassificationHead(Index d_model, Index n_classes, std::uint64_t seed);

  [[nodiscard]] Index n_classes() const noexcept {
    return proj_.out_features();
  }

  /// Per-request class logits from an encoded batch.
  [[nodiscard]] std::unordered_map<RequestId, std::vector<float>> logits(
      const EncoderMemory& memory) const;

  /// Per-request argmax class.
  [[nodiscard]] std::unordered_map<RequestId, Index> classify(
      const EncoderMemory& memory) const;

 private:
  Linear proj_;
};

}  // namespace tcb
