#include "nn/decoder.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "nn/model.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/ops.hpp"
#include "tensor/simd.hpp"
#include "tensor/workspace.hpp"

namespace tcb {

DecoderLayer::DecoderLayer(const ModelConfig& cfg, Rng& rng)
    : self_attn_(cfg, rng),
      cross_attn_(cfg, rng),
      ffn_(cfg, rng),
      eps_(cfg.layer_norm_eps) {
  for (int i = 0; i < 3; ++i) {
    ln_gamma_.emplace_back(Shape{cfg.d_model}, 1.0f);
    ln_beta_.emplace_back(Shape{cfg.d_model}, 0.0f);
  }
}

namespace {

struct Group {
  std::vector<std::size_t> members;  ///< track indices
  bool released = false;
};

/// Per-decoder-layer mutable state.
struct LayerState {
  std::vector<std::vector<float>> k_cache;  ///< per track, [step][d] interleaved
  std::vector<std::vector<float>> v_cache;
  Tensor cross_k;  ///< (src_rows * src_width, d), computed once
  Tensor cross_v;
};

/// Residual + LayerNorm helper: returns LN(x + delta).
Tensor residual_norm(const Tensor& x, Tensor delta, const Tensor& gamma,
                     const Tensor& beta, float eps) {
  add_inplace(delta, x);
  Tensor out;
  layer_norm(delta, gamma, beta, eps, out);
  return out;
}

/// Top-k temperature sampling over one logits row; the candidate set is the
/// k largest logits (ties by lower index, like argmax).
Index sample_top_k(const float* logits, Index vocab, Index k,
                   float temperature, Rng& rng) {
  k = std::min(k, vocab);
  // Partial selection of the k best indices.
  std::vector<Index> best;
  best.reserve(static_cast<std::size_t>(k));
  for (Index v = 0; v < vocab; ++v) {
    if (static_cast<Index>(best.size()) < k) {
      best.push_back(v);
      if (static_cast<Index>(best.size()) == k)
        std::sort(best.begin(), best.end(), [&](Index a, Index b) {
          return logits[a] > logits[b] || (logits[a] == logits[b] && a < b);
        });
      continue;
    }
    if (logits[v] > logits[best.back()]) {
      best.back() = v;
      for (std::size_t i = best.size() - 1;
           i > 0 && (logits[best[i]] > logits[best[i - 1]] ||
                     (logits[best[i]] == logits[best[i - 1]] &&
                      best[i] < best[i - 1]));
           --i)
        std::swap(best[i], best[i - 1]);
    }
  }

  const float inv_t = 1.0f / std::max(temperature, 1e-6f);
  const float mx = logits[best[0]];
  std::vector<double> weights(best.size());
  double total = 0.0;
  for (std::size_t i = 0; i < best.size(); ++i) {
    weights[i] = std::exp(static_cast<double>((logits[best[i]] - mx) * inv_t));
    total += weights[i];
  }
  double u = rng.next_double() * total;
  for (std::size_t i = 0; i < best.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return best[i];
  }
  return best.back();
}

}  // namespace

DecodeResult greedy_decode(const Seq2SeqModel& model,
                           const EncoderMemory& memory,
                           const DecodeOptions& opts) {
  const ModelConfig& cfg = model.config();
  const Index d = cfg.d_model;
  const Index heads = cfg.n_heads;
  const Index dh = cfg.head_dim();
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(dh));
  const bool slotted =
      opts.mode == AttentionMode::kSlotted && memory.plan.slot_len > 0;

  DecodeResult result;

  // --- Build tracks and groups --------------------------------------------
  std::vector<DecodeTrack> tracks;
  for (std::size_t r = 0; r < memory.plan.rows.size(); ++r) {
    const auto& row = memory.plan.rows[r];
    for (std::size_t si = 0; si < row.segments.size(); ++si) {
      const auto& seg = row.segments[si];
      DecodeTrack t;
      t.request_id = seg.request_id;
      t.row = Row{static_cast<Index>(r)};
      t.slot = seg.slot_index();
      t.seg_index = static_cast<Index>(si);
      t.src_offset = seg.begin_col();
      t.src_len = seg.length;
      tracks.push_back(std::move(t));
    }
  }
  if (tracks.empty()) return result;

  std::vector<Group> groups;
  std::vector<std::size_t> group_of(tracks.size());
  {
    std::unordered_map<Index, std::size_t> key_to_group;
    for (std::size_t i = 0; i < tracks.size(); ++i) {
      const Index key = tracks[i].row.value() * (memory.width.value() + 1) +
                        (slotted ? tracks[i].slot.value() : 0);
      auto [it, inserted] = key_to_group.try_emplace(key, groups.size());
      if (inserted) groups.emplace_back();
      groups[it->second].members.push_back(i);
      group_of[i] = it->second;
    }
  }

  // Source mask geometry, shared with the encoder via the plan's cache
  // (previously rebuilt per decode call). Touched here, before any fan-out,
  // per the cache's threading contract; outside debug builds the warm-up is
  // the only use, hence maybe_unused.
  [[maybe_unused]] const SegmentCache& src_cache =
      memory.plan.segment_cache(memory.width);

  // --- Layer state: caches + precomputed cross K/V -------------------------
  const auto& layers = model.decoder_layers();
  std::vector<LayerState> states(layers.size());
  for (std::size_t l = 0; l < layers.size(); ++l) {
    states[l].k_cache.resize(tracks.size());
    states[l].v_cache.resize(tracks.size());
    states[l].cross_k = layers[l].cross_attn().wk().forward(memory.states);
    states[l].cross_v = layers[l].cross_attn().wv().forward(memory.states);
  }

  std::size_t cur_kv_bytes = 0;
  const Index max_steps = std::min<Index>(opts.max_steps, cfg.max_len);

  // Per-request sampling streams: forked by request id so a request draws
  // the same randomness no matter which batch it rides in.
  std::vector<Rng> track_rng;
  if (opts.strategy == DecodeStrategy::kTopK) {
    const Rng base(opts.sample_seed);
    track_rng.reserve(tracks.size());
    for (const auto& track : tracks)
      track_rng.push_back(
          base.fork(static_cast<std::uint64_t>(track.request_id)));
  }

  for (Index t = 0; t < max_steps; ++t) {
    std::vector<std::size_t> active;
    for (std::size_t i = 0; i < tracks.size(); ++i)
      if (!tracks[i].finished) active.push_back(i);
    if (active.empty()) break;
    result.steps = t + 1;
    const Index a_count = static_cast<Index>(active.size());

    // Input embeddings: previous token (BOS at step 0) + separate PE at the
    // track-local position t.
    std::vector<Index> prev;
    prev.reserve(active.size());
    for (const auto a : active)
      prev.push_back(tracks[a].emitted.empty() ? kBosToken
                                               : tracks[a].emitted.back());
    Tensor x = model.embedding().lookup(prev);
    const float* pe = model.positional_encoding().at(Pos{t});
    for (Index ai = 0; ai < a_count; ++ai) {
      float* row = x.row(ai);
      for (Index j = 0; j < d; ++j) row[j] += pe[j];
    }

    for (std::size_t l = 0; l < layers.size(); ++l) {
      const DecoderLayer& layer = layers[l];
      LayerState& st = states[l];

      // ---- Masked self-attention over the group's cached K/V -------------
      const Tensor q = layer.self_attn().wq().forward(x);
      const Tensor k_new = layer.self_attn().wk().forward(x);
      const Tensor v_new = layer.self_attn().wv().forward(x);
      for (Index ai = 0; ai < a_count; ++ai) {
        const std::size_t a = active[static_cast<std::size_t>(ai)];
        const float* krow = k_new.row(ai);
        const float* vrow = v_new.row(ai);
        st.k_cache[a].insert(st.k_cache[a].end(), krow, krow + d);
        st.v_cache[a].insert(st.v_cache[a].end(), vrow, vrow + d);
        cur_kv_bytes += 2 * static_cast<std::size_t>(d) * sizeof(float);
      }
      result.peak_kv_bytes = std::max(result.peak_kv_bytes, cur_kv_bytes);

      Tensor attn(Shape{a_count, d});
      parallel_for(
          static_cast<std::size_t>(a_count) * static_cast<std::size_t>(heads),
          [&](std::size_t begin, std::size_t end) {
            for (std::size_t task = begin; task < end; ++task) {
              const Index ai = static_cast<Index>(task / heads);
              const Index h = static_cast<Index>(task % heads);
              const std::size_t a = active[static_cast<std::size_t>(ai)];
              const Group& group = groups[group_of[a]];
              const std::size_t head_off = static_cast<std::size_t>(h) * dh;
              const float* qv = q.row(ai) + head_off;

              // Score scratch from this worker's arena (rewound per task;
              // steady-state decode steps allocate nothing).
              std::size_t total = 0;
              for (const auto m : group.members)
                total += st.k_cache[m].size() / static_cast<std::size_t>(d);
              WorkspaceScope scope;
              float* scores = scope.alloc(total);
              // Scores over every member's cached steps; the redundant
              // cross-request entries are computed, then masked (paper
              // Eq. 5-6 applied step-wise).
              std::size_t idx = 0;
              for (const auto m : group.members) {
                const auto& kc = st.k_cache[m];
                const std::size_t steps_m = kc.size() / static_cast<std::size_t>(d);
                // Additive mask: adding kMaskedOut to a score of ordinary
                // magnitude rounds to exactly kMaskedOut, so the foreign
                // entries are computed (the redundancy) yet contribute
                // exactly zero after softmax.
                const float mask_add = m == a ? 0.0f : kMaskedOut;
                for (std::size_t s = 0; s < steps_m; ++s) {
                  const float* kv = kc.data() + s * static_cast<std::size_t>(d) + head_off;
                  scores[idx++] = simd::dot(qv, kv, dh) * inv_sqrt + mask_add;
                }
              }

              float mx = kMaskedOut;
              for (std::size_t s = 0; s < total; ++s) mx = std::max(mx, scores[s]);
              float sum = 0.0f;
              for (std::size_t s = 0; s < total; ++s) {
                scores[s] = std::exp(scores[s] - mx);
                // Walks only this track's own KV slot in step order — the
                // chain is per-request and pinned by the decode equivalence
                // tests.
                // tcb-lint: allow(raw-fp-accumulation)
                sum += scores[s];
              }
              const float inv = 1.0f / sum;
              float* out = attn.row(ai) + head_off;
              for (Index c = 0; c < dh; ++c) out[c] = 0.0f;
              // Second walk over the members recovers each score's V row
              // without a parallel pointer array (the arena only holds
              // floats, and the walk order is identical by construction).
              idx = 0;
              for (const auto m : group.members) {
                const auto& vc = st.v_cache[m];
                const std::size_t steps_m = vc.size() / static_cast<std::size_t>(d);
                for (std::size_t s = 0; s < steps_m; ++s)
                  simd::axpy(scores[idx++] * inv,
                             vc.data() + s * static_cast<std::size_t>(d) + head_off,
                             out, dh);
              }
            }
          });
      Tensor x1 = residual_norm(x, layer.self_attn().wo().forward(attn),
                                layer.ln_gamma(0), layer.ln_beta(0), layer.eps());

      // ---- Cross-attention over the source span ---------------------------
      const Tensor q2 = layer.cross_attn().wq().forward(x1);
      Tensor attn2(Shape{a_count, d});
      parallel_for(
          static_cast<std::size_t>(a_count) * static_cast<std::size_t>(heads),
          [&](std::size_t begin, std::size_t end) {
            for (std::size_t task = begin; task < end; ++task) {
              const Index ai = static_cast<Index>(task / heads);
              const Index h = static_cast<Index>(task % heads);
              const std::size_t a = active[static_cast<std::size_t>(ai)];
              const DecodeTrack& tr = tracks[a];
              const std::size_t head_off = static_cast<std::size_t>(h) * dh;
              const float* qv = q2.row(ai) + head_off;
              const Index row_base = static_cast<Index>(
                  flat_offset(tr.row, Col{0}, memory.width));

              // Fused cross-attention mask: a track may only attend its own
              // source segment (every other column of the row — other
              // requests' tokens and padding — would be masked to exp == 0),
              // so the kernel walks exactly [src_offset, src_offset +
              // src_len) and skips the score-then-mask sweep entirely. The
              // slotted path's slot always contains the segment.
              const Index span_begin = tr.src_offset.value();
              const Index span = tr.src_len;
              TCB_DCHECK(
                  span > 0 && span_begin >= 0 &&
                      span_begin + span <= memory.width.value(),
                  "decode: source segment outside the materialized row");
              TCB_DCHECK(
                  src_cache.seg_row(tr.row.value())[span_begin] ==
                      static_cast<std::int32_t>(tr.seg_index),
                  "decode: track's source segment disagrees with the plan");

              WorkspaceScope scope;
              float* scores = scope.alloc(static_cast<std::size_t>(span));
              for (Index j = 0; j < span; ++j) {
                const float* kv = st.cross_k.row(row_base + span_begin + j) + head_off;
                scores[j] = simd::dot(qv, kv, dh) * inv_sqrt;
              }

              float mx = kMaskedOut;
              for (Index j = 0; j < span; ++j) mx = std::max(mx, scores[j]);
              float* out = attn2.row(ai) + head_off;
              for (Index c = 0; c < dh; ++c) out[c] = 0.0f;
              if (mx <= kMaskedOut / 2) continue;  // empty source segment
              float sum = 0.0f;
              for (Index j = 0; j < span; ++j) {
                scores[j] = std::exp(scores[j] - mx);
                // Cross-attention sums span-relative j over the track's own
                // source segment only — per-request chain, pinned numerics.
                // tcb-lint: allow(raw-fp-accumulation)
                sum += scores[j];
              }
              const float inv = 1.0f / sum;
              for (Index j = 0; j < span; ++j) {
                const float w = scores[j] * inv;
                const float* vv =
                    st.cross_v.row(row_base + span_begin + j) + head_off;
                simd::axpy(w, vv, out, dh);
              }
            }
          });
      Tensor x2 = residual_norm(x1, layer.cross_attn().wo().forward(attn2),
                                layer.ln_gamma(1), layer.ln_beta(1), layer.eps());

      // ---- Feed-forward ----------------------------------------------------
      x = residual_norm(x2, layer.ffn().forward(x2), layer.ln_gamma(2),
                        layer.ln_beta(2), layer.eps());
    }

    // ---- Next-token selection & track bookkeeping --------------------------
    const Tensor logits = model.output_projection().forward(x);
    std::vector<Index> next;
    if (opts.strategy == DecodeStrategy::kGreedy) {
      next = argmax_rows(logits);
    } else {
      next.resize(static_cast<std::size_t>(a_count));
      for (Index ai = 0; ai < a_count; ++ai) {
        const std::size_t a = active[static_cast<std::size_t>(ai)];
        next[static_cast<std::size_t>(ai)] =
            sample_top_k(logits.row(ai), cfg.vocab_size, opts.top_k,
                         opts.temperature, track_rng[a]);
      }
    }
    for (Index ai = 0; ai < a_count; ++ai) {
      const std::size_t a = active[static_cast<std::size_t>(ai)];
      const Index token = next[static_cast<std::size_t>(ai)];
      tracks[a].emitted.push_back(token);
      const Index cap = opts.cap_at_source_length
                            ? std::min(max_steps, tracks[a].src_len)
                            : max_steps;
      if (token == kEosToken ||
          static_cast<Index>(tracks[a].emitted.size()) >= cap)
        tracks[a].finished = true;
    }

    // ---- Early memory cleaning (paper §4.2.2) ------------------------------
    if (slotted && opts.early_memory_cleaning) {
      for (auto& group : groups) {
        if (group.released) continue;
        const bool done = std::all_of(
            group.members.begin(), group.members.end(),
            [&](std::size_t m) { return tracks[m].finished; });
        if (!done) continue;
        for (const auto m : group.members) {
          for (auto& st : states) {
            const std::size_t bytes =
                (st.k_cache[m].size() + st.v_cache[m].size()) * sizeof(float);
            cur_kv_bytes -= bytes;
            result.early_freed_bytes += bytes;
            st.k_cache[m] = {};
            st.v_cache[m] = {};
          }
        }
        group.released = true;
      }
    }
  }

  for (auto& track : tracks) {
    auto tokens = std::move(track.emitted);
    if (!tokens.empty() && tokens.back() == kEosToken) tokens.pop_back();
    result.outputs.emplace(track.request_id, std::move(tokens));
  }
  return result;
}

}  // namespace tcb
