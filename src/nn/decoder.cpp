#include "nn/decoder.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "batching/packed_batch.hpp"
#include "nn/model.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/ops.hpp"
#include "tensor/simd.hpp"
#include "tensor/workspace.hpp"
#include "util/check.hpp"

namespace tcb {

DecoderLayer::DecoderLayer(const ModelConfig& cfg, Rng& rng)
    : self_attn_(cfg, rng),
      cross_attn_(cfg, rng),
      ffn_(cfg, rng),
      eps_(cfg.layer_norm_eps) {
  for (int i = 0; i < 3; ++i) {
    ln_gamma_.emplace_back(Shape{cfg.d_model}, 1.0f);
    ln_beta_.emplace_back(Shape{cfg.d_model}, 0.0f);
  }
}

namespace {

/// Residual + LayerNorm helper: returns LN(x + delta).
Tensor residual_norm(const Tensor& x, Tensor delta, const Tensor& gamma,
                     const Tensor& beta, float eps) {
  add_inplace(delta, x);
  Tensor out;
  layer_norm(delta, gamma, beta, eps, out);
  return out;
}

/// Top-k temperature sampling over one logits row; the candidate set is the
/// k largest logits (ties by lower index, like argmax).
Index sample_top_k(const float* logits, Index vocab, Index k,
                   float temperature, Rng& rng) {
  k = std::min(k, vocab);
  // Partial selection of the k best indices.
  std::vector<Index> best;
  best.reserve(static_cast<std::size_t>(k));
  for (Index v = 0; v < vocab; ++v) {
    if (static_cast<Index>(best.size()) < k) {
      best.push_back(v);
      if (static_cast<Index>(best.size()) == k)
        std::sort(best.begin(), best.end(), [&](Index a, Index b) {
          return logits[a] > logits[b] || (logits[a] == logits[b] && a < b);
        });
      continue;
    }
    if (logits[v] > logits[best.back()]) {
      best.back() = v;
      for (std::size_t i = best.size() - 1;
           i > 0 && (logits[best[i]] > logits[best[i - 1]] ||
                     (logits[best[i]] == logits[best[i - 1]] &&
                      best[i] < best[i - 1]));
           --i)
        std::swap(best[i], best[i - 1]);
    }
  }

  const float inv_t = 1.0f / std::max(temperature, 1e-6f);
  const float mx = logits[best[0]];
  std::vector<double> weights(best.size());
  double total = 0.0;
  for (std::size_t i = 0; i < best.size(); ++i) {
    weights[i] = std::exp(static_cast<double>((logits[best[i]] - mx) * inv_t));
    total += weights[i];
  }
  double u = rng.next_double() * total;
  for (std::size_t i = 0; i < best.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return best[i];
  }
  return best.back();
}

}  // namespace

DecodeSession::DecodeSession(const Seq2SeqModel& model, EncoderMemory memory,
                             DecodeOptions opts)
    : model_(model), memory_(std::move(memory)), opts_(opts) {
  const ModelConfig& cfg = model_.config();
  slotted_ =
      opts_.mode == AttentionMode::kSlotted && memory_.plan.slot_len > 0;
  max_steps_ = std::min<Index>(opts_.max_steps, cfg.max_len);

  // --- Build tracks and groups --------------------------------------------
  for (std::size_t r = 0; r < memory_.plan.rows.size(); ++r) {
    const auto& row = memory_.plan.rows[r];
    for (std::size_t si = 0; si < row.segments.size(); ++si) {
      const auto& seg = row.segments[si];
      DecodeTrack t;
      t.request_id = seg.request_id;
      t.row = Row{static_cast<Index>(r)};
      t.slot = seg.slot_index();
      t.seg_index = static_cast<Index>(si);
      t.src_offset = seg.begin_col();
      t.src_len = seg.length;
      tracks_.push_back(std::move(t));
    }
  }
  if (tracks_.empty()) return;

  {
    std::unordered_map<Index, std::size_t> key_to_group;
    group_of_.resize(tracks_.size());
    for (std::size_t i = 0; i < tracks_.size(); ++i) {
      const Index key = tracks_[i].row.value() * (memory_.width.value() + 1) +
                        (slotted_ ? tracks_[i].slot.value() : 0);
      auto [it, inserted] = key_to_group.try_emplace(key, groups_.size());
      if (inserted) {
        Group g;
        g.row = tracks_[i].row;
        g.slot = slotted_ ? tracks_[i].slot : Slot{0};
        const Index row_width =
            memory_.plan.rows[static_cast<std::size_t>(g.row.value())].width;
        if (slotted_) {
          const Index z = memory_.plan.slot_len;
          g.begin = Col{g.slot.value() * z};
          g.width = std::min(z, row_width - g.begin.value());
        } else {
          g.begin = Col{0};
          g.width = row_width;
        }
        groups_.push_back(std::move(g));
      }
      groups_[it->second].members.push_back(i);
      group_of_[i] = it->second;
    }
  }

  // Source mask geometry, shared with the encoder via the plan's cache.
  // Touched here, before any fan-out, per the cache's threading contract;
  // outside debug builds the warm-up is the only use, hence maybe_unused.
  [[maybe_unused]] const SegmentCache& src_cache =
      memory_.plan.segment_cache(memory_.width);

  // --- Layer state: caches + precomputed cross K/V -------------------------
  const auto& layers = model_.decoder_layers();
  states_.resize(layers.size());
  for (std::size_t l = 0; l < layers.size(); ++l) {
    states_[l].k_cache.resize(tracks_.size());
    states_[l].v_cache.resize(tracks_.size());
    states_[l].cross_k = layers[l].cross_attn().wk().forward(memory_.states);
    states_[l].cross_v = layers[l].cross_attn().wv().forward(memory_.states);
  }

  // Per-request sampling streams: forked by request id so a request draws
  // the same randomness no matter which batch it rides in.
  if (opts_.strategy == DecodeStrategy::kTopK) {
    const Rng base(opts_.sample_seed);
    track_rng_.reserve(tracks_.size());
    for (const auto& track : tracks_)
      track_rng_.push_back(
          base.fork(static_cast<std::uint64_t>(track.request_id)));
  }
}

DecodeSession::~DecodeSession() = default;

bool DecodeSession::done() const noexcept {
  return std::all_of(tracks_.begin(), tracks_.end(),
                     [](const DecodeTrack& t) { return t.finished; });
}

std::vector<std::size_t> DecodeSession::active_tracks() const {
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < tracks_.size(); ++i)
    if (!tracks_[i].finished) active.push_back(i);
  return active;
}

DecodeStepOutcome DecodeSession::step() {
  const ModelConfig& cfg = model_.config();
  const Index d = cfg.d_model;
  const Index heads = cfg.n_heads;
  const Index dh = cfg.head_dim();
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(dh));
  const auto& layers = model_.decoder_layers();

  DecodeStepOutcome outcome;
  const std::vector<std::size_t> active = active_tracks();
  TCB_CHECK(!active.empty(), "DecodeSession::step called when done");
  step_count_ += 1;
  result_.steps = step_count_;
  const Index a_count = static_cast<Index>(active.size());

  // Source mask geometry (debug-checked below); the build was warmed in the
  // constructor, so this is the lock-free published-pointer fast path.
  [[maybe_unused]] const SegmentCache& src_cache =
      memory_.plan.segment_cache(memory_.width);

  // Input embeddings: previous token (BOS before a track's first step) +
  // separate PE at the track-local position |emitted|. Before any splice all
  // active tracks sit at the same position (== global step index), so this
  // is bitwise what the monolithic loop's shared `Pos{t}` computed; after a
  // splice the per-track position is what keeps each request's numerics
  // independent of when it was admitted.
  std::vector<Index> prev;
  prev.reserve(active.size());
  for (const auto a : active)
    prev.push_back(tracks_[a].emitted.empty() ? kBosToken
                                              : tracks_[a].emitted.back());
  Tensor x = model_.embedding().lookup(prev);
  for (Index ai = 0; ai < a_count; ++ai) {
    const std::size_t a = active[static_cast<std::size_t>(ai)];
    const float* pe = model_.positional_encoding().at(
        Pos{static_cast<Index>(tracks_[a].emitted.size())});
    float* row = x.row(ai);
    for (Index j = 0; j < d; ++j) row[j] += pe[j];
  }

  for (std::size_t l = 0; l < layers.size(); ++l) {
    const DecoderLayer& layer = layers[l];
    LayerState& st = states_[l];

    // ---- Masked self-attention over the group's cached K/V -------------
    const Tensor q = layer.self_attn().wq().forward(x);
    const Tensor k_new = layer.self_attn().wk().forward(x);
    const Tensor v_new = layer.self_attn().wv().forward(x);
    for (Index ai = 0; ai < a_count; ++ai) {
      const std::size_t a = active[static_cast<std::size_t>(ai)];
      const float* krow = k_new.row(ai);
      const float* vrow = v_new.row(ai);
      st.k_cache[a].insert(st.k_cache[a].end(), krow, krow + d);
      st.v_cache[a].insert(st.v_cache[a].end(), vrow, vrow + d);
      cur_kv_bytes_ += 2 * static_cast<std::size_t>(d) * sizeof(float);
    }
    result_.peak_kv_bytes = std::max(result_.peak_kv_bytes, cur_kv_bytes_);

    Tensor attn(Shape{a_count, d});
    parallel_for(
        static_cast<std::size_t>(a_count) * static_cast<std::size_t>(heads),
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t task = begin; task < end; ++task) {
            const Index ai = static_cast<Index>(task / heads);
            const Index h = static_cast<Index>(task % heads);
            const std::size_t a = active[static_cast<std::size_t>(ai)];
            const Group& group = groups_[group_of_[a]];
            const std::size_t head_off = static_cast<std::size_t>(h) * dh;
            const float* qv = q.row(ai) + head_off;

            // Score scratch from this worker's arena (rewound per task;
            // steady-state decode steps allocate nothing).
            std::size_t total = 0;
            for (const auto m : group.members)
              total += st.k_cache[m].size() / static_cast<std::size_t>(d);
            WorkspaceScope scope;
            float* scores = scope.alloc(total);
            // Scores over every member's cached steps; the redundant
            // cross-request entries are computed, then masked (paper
            // Eq. 5-6 applied step-wise).
            std::size_t idx = 0;
            for (const auto m : group.members) {
              const auto& kc = st.k_cache[m];
              const std::size_t steps_m =
                  kc.size() / static_cast<std::size_t>(d);
              // Additive mask: adding kMaskedOut to a score of ordinary
              // magnitude rounds to exactly kMaskedOut, so the foreign
              // entries are computed (the redundancy) yet contribute
              // exactly zero after softmax.
              const float mask_add = m == a ? 0.0f : kMaskedOut;
              for (std::size_t s = 0; s < steps_m; ++s) {
                const float* kv =
                    kc.data() + s * static_cast<std::size_t>(d) + head_off;
                scores[idx++] = simd::dot(qv, kv, dh) * inv_sqrt + mask_add;
              }
            }

            float mx = kMaskedOut;
            for (std::size_t s = 0; s < total; ++s)
              mx = std::max(mx, scores[s]);
            float sum = 0.0f;
            for (std::size_t s = 0; s < total; ++s) {
              scores[s] = std::exp(scores[s] - mx);
              // Walks only this track's own KV slot in step order — the
              // chain is per-request and pinned by the decode equivalence
              // tests.
              // tcb-lint: allow(raw-fp-accumulation)
              sum += scores[s];
            }
            const float inv = 1.0f / sum;
            float* out = attn.row(ai) + head_off;
            for (Index c = 0; c < dh; ++c) out[c] = 0.0f;
            // Second walk over the members recovers each score's V row
            // without a parallel pointer array (the arena only holds
            // floats, and the walk order is identical by construction).
            idx = 0;
            for (const auto m : group.members) {
              const auto& vc = st.v_cache[m];
              const std::size_t steps_m =
                  vc.size() / static_cast<std::size_t>(d);
              for (std::size_t s = 0; s < steps_m; ++s)
                simd::axpy(scores[idx++] * inv,
                           vc.data() + s * static_cast<std::size_t>(d) +
                               head_off,
                           out, dh);
            }
          }
        });
    Tensor x1 = residual_norm(x, layer.self_attn().wo().forward(attn),
                              layer.ln_gamma(0), layer.ln_beta(0), layer.eps());

    // ---- Cross-attention over the source span ---------------------------
    const Tensor q2 = layer.cross_attn().wq().forward(x1);
    Tensor attn2(Shape{a_count, d});
    parallel_for(
        static_cast<std::size_t>(a_count) * static_cast<std::size_t>(heads),
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t task = begin; task < end; ++task) {
            const Index ai = static_cast<Index>(task / heads);
            const Index h = static_cast<Index>(task % heads);
            const std::size_t a = active[static_cast<std::size_t>(ai)];
            const DecodeTrack& tr = tracks_[a];
            const std::size_t head_off = static_cast<std::size_t>(h) * dh;
            const float* qv = q2.row(ai) + head_off;
            const Index row_base = static_cast<Index>(
                flat_offset(tr.row, Col{0}, memory_.width));

            // Fused cross-attention mask: a track may only attend its own
            // source segment (every other column of the row — other
            // requests' tokens and padding — would be masked to exp == 0),
            // so the kernel walks exactly [src_offset, src_offset +
            // src_len) and skips the score-then-mask sweep entirely. The
            // slotted path's slot always contains the segment.
            const Index span_begin = tr.src_offset.value();
            const Index span = tr.src_len;
            TCB_DCHECK(
                span > 0 && span_begin >= 0 &&
                    span_begin + span <= memory_.width.value(),
                "decode: source segment outside the materialized row");
            // Spliced tracks are not in the formation-time plan, so the
            // plan-derived segment table cannot vouch for them.
            TCB_DCHECK(
                tr.spliced ||
                    src_cache.seg_row(tr.row.value())[span_begin] ==
                        static_cast<std::int32_t>(tr.seg_index),
                "decode: track's source segment disagrees with the plan");

            WorkspaceScope scope;
            float* scores = scope.alloc(static_cast<std::size_t>(span));
            for (Index j = 0; j < span; ++j) {
              const float* kv =
                  st.cross_k.row(row_base + span_begin + j) + head_off;
              scores[j] = simd::dot(qv, kv, dh) * inv_sqrt;
            }

            float mx = kMaskedOut;
            for (Index j = 0; j < span; ++j) mx = std::max(mx, scores[j]);
            float* out = attn2.row(ai) + head_off;
            for (Index c = 0; c < dh; ++c) out[c] = 0.0f;
            if (mx <= kMaskedOut / 2) continue;  // empty source segment
            float sum = 0.0f;
            for (Index j = 0; j < span; ++j) {
              scores[j] = std::exp(scores[j] - mx);
              // Cross-attention sums span-relative j over the track's own
              // source segment only — per-request chain, pinned numerics.
              // tcb-lint: allow(raw-fp-accumulation)
              sum += scores[j];
            }
            const float inv = 1.0f / sum;
            for (Index j = 0; j < span; ++j) {
              const float w = scores[j] * inv;
              const float* vv =
                  st.cross_v.row(row_base + span_begin + j) + head_off;
              simd::axpy(w, vv, out, dh);
            }
          }
        });
    Tensor x2 = residual_norm(x1, layer.cross_attn().wo().forward(attn2),
                              layer.ln_gamma(1), layer.ln_beta(1), layer.eps());

    // ---- Feed-forward ----------------------------------------------------
    x = residual_norm(x2, layer.ffn().forward(x2), layer.ln_gamma(2),
                      layer.ln_beta(2), layer.eps());
  }

  // ---- Next-token selection & track bookkeeping --------------------------
  const Tensor logits = model_.output_projection().forward(x);
  std::vector<Index> next;
  if (opts_.strategy == DecodeStrategy::kGreedy) {
    next = argmax_rows(logits);
  } else {
    next.resize(static_cast<std::size_t>(a_count));
    for (Index ai = 0; ai < a_count; ++ai) {
      const std::size_t a = active[static_cast<std::size_t>(ai)];
      next[static_cast<std::size_t>(ai)] =
          sample_top_k(logits.row(ai), cfg.vocab_size, opts_.top_k,
                       opts_.temperature, track_rng_[a]);
    }
  }
  for (Index ai = 0; ai < a_count; ++ai) {
    const std::size_t a = active[static_cast<std::size_t>(ai)];
    const Index token = next[static_cast<std::size_t>(ai)];
    tracks_[a].emitted.push_back(token);
    const Index cap = opts_.cap_at_source_length
                          ? std::min(max_steps_, tracks_[a].src_len)
                          : max_steps_;
    if (token == kEosToken ||
        static_cast<Index>(tracks_[a].emitted.size()) >= cap) {
      tracks_[a].finished = true;
      outcome.finished.push_back(tracks_[a].request_id);
      // The track's caches stop growing now: these bytes are what an ideal
      // per-request cleaner could reclaim from here on, whether or not the
      // scheme's group-granular cleaning can.
      std::size_t bytes = 0;
      for (const auto& st : states_)
        bytes += (st.k_cache[a].size() + st.v_cache[a].size()) * sizeof(float);
      result_.reclaimable_kv_bytes += bytes;
    }
  }

  // ---- Group completion: release events + early cleaning (§4.2.2) --------
  for (auto& group : groups_) {
    if (group.completed) continue;
    const bool group_done =
        std::all_of(group.members.begin(), group.members.end(),
                    [&](std::size_t m) { return tracks_[m].finished; });
    if (!group_done) continue;
    group.completed = true;
    SlotRelease rel;
    rel.row = group.row;
    rel.slot = group.slot;
    rel.begin = group.begin;
    rel.width = group.width;
    for (const auto m : group.members)
      rel.finished.push_back(tracks_[m].request_id);
    outcome.released.push_back(std::move(rel));
    if (slotted_ && opts_.early_memory_cleaning) {
      for (const auto m : group.members) {
        for (auto& st : states_) {
          const std::size_t bytes =
              (st.k_cache[m].size() + st.v_cache[m].size()) * sizeof(float);
          cur_kv_bytes_ -= bytes;
          result_.early_freed_bytes += bytes;
          st.k_cache[m] = {};
          st.v_cache[m] = {};
        }
      }
      group.released = true;
    }
  }
  return outcome;
}

void DecodeSession::append_track(DecodeTrack track, std::size_t group_index) {
  tracks_.push_back(std::move(track));
  group_of_.push_back(group_index);
  groups_[group_index].members.push_back(tracks_.size() - 1);
  for (auto& st : states_) {
    st.k_cache.emplace_back();
    st.v_cache.emplace_back();
  }
  if (opts_.strategy == DecodeStrategy::kTopK) {
    const Rng base(opts_.sample_seed);
    track_rng_.push_back(
        base.fork(static_cast<std::uint64_t>(tracks_.back().request_id)));
  }
}

void DecodeSession::splice(Row row, Slot slot, Col begin, Index width,
                           const std::vector<Request>& reqs) {
  TCB_CHECK(!reqs.empty(), "splice: empty request list");
  TCB_CHECK(row >= Row{0} &&
                static_cast<std::size_t>(row.value()) < memory_.plan.rows.size(),
            "splice: row outside the plan");
  const RowLayout& plan_row =
      memory_.plan.rows[static_cast<std::size_t>(row.value())];
  TCB_CHECK(width > 0 && begin.value() >= 0 &&
                begin.value() + width <= plan_row.width,
            "splice: span outside the row");
  Index total_len = 0;
  for (const auto& req : reqs) {
    TCB_CHECK(req.length > 0 && !req.tokens.empty() &&
                  static_cast<Index>(req.tokens.size()) == req.length,
              "splice: request must carry its tokens");
    total_len += req.length;
  }
  TCB_CHECK(total_len <= width, "splice: requests overflow the slot span");

  // The span must be vacant: any group occupying this (row, slot) has to
  // have completed. Its caches — still resident when early cleaning is off
  // or the scheme is unslotted — are dead the moment the slot is reused, so
  // reclaim them now (they count as freed-before-batch-completion).
  for (auto& group : groups_) {
    if (group.row != row) continue;
    if (slotted_ && group.slot != slot) continue;
    TCB_CHECK(group.completed, "splice: slot still has live decode tracks");
    if (group.released) continue;
    for (const auto m : group.members) {
      for (auto& st : states_) {
        const std::size_t bytes =
            (st.k_cache[m].size() + st.v_cache[m].size()) * sizeof(float);
        cur_kv_bytes_ -= bytes;
        result_.early_freed_bytes += bytes;
        st.k_cache[m] = {};
        st.v_cache[m] = {};
      }
    }
    group.released = true;
  }

  // Mini-encode the spliced requests alone, as one concatenated row. With
  // separate PE + segment mask each request's encoded states are bitwise
  // identical to a solo encode (Seq2SeqModel::encode's TCB_BITWISE
  // contract), so splicing cannot perturb any request's numerics.
  BatchPlan mini;
  mini.scheme = Scheme::kConcatPure;
  mini.row_capacity = total_len;
  mini.slot_len = 0;
  RowLayout mini_row;
  mini_row.width = total_len;
  Index cursor = 0;
  for (const auto& req : reqs) {
    Segment seg;
    seg.request_id = req.id;
    seg.offset = cursor;
    seg.length = req.length;
    seg.slot = 0;
    mini_row.segments.push_back(seg);
    cursor += req.length;
  }
  mini.rows.push_back(std::move(mini_row));

  InferenceOptions enc_opts;
  // Always encode the mini plan in pure-concat mode: the plan above carries
  // no slot grid (slot_len 0), and under separate PE + segment masking the
  // encode is bitwise identical to solo encodes in either mode anyway.
  enc_opts.mode = AttentionMode::kPureConcat;
  enc_opts.separate_positional_encoding = opts_.separate_positional_encoding;
  enc_opts.mask_policy = opts_.mask_policy;
  const EncoderMemory mini_mem =
      model_.encode(pack_batch(mini, reqs), enc_opts);
  TCB_CHECK(mini_mem.width.value() == total_len,
            "splice: mini-encode width mismatch");

  // Overwrite the vacated span's encoder states and per-layer cross K/V.
  // Stale columns beyond total_len are never read: cross-attention walks
  // exactly each track's [src_offset, src_offset + src_len).
  const ModelConfig& cfg = model_.config();
  const std::size_t d = static_cast<std::size_t>(cfg.d_model);
  const std::size_t dest_base =
      flat_offset(row, begin, memory_.width);
  for (Index c = 0; c < total_len; ++c) {
    std::memcpy(memory_.states.row(static_cast<Index>(dest_base) + c),
                mini_mem.states.row(c), d * sizeof(float));
  }
  const auto& layers = model_.decoder_layers();
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const Tensor ck = layers[l].cross_attn().wk().forward(mini_mem.states);
    const Tensor cv = layers[l].cross_attn().wv().forward(mini_mem.states);
    for (Index c = 0; c < total_len; ++c) {
      std::memcpy(states_[l].cross_k.row(static_cast<Index>(dest_base) + c),
                  ck.row(c), d * sizeof(float));
      std::memcpy(states_[l].cross_v.row(static_cast<Index>(dest_base) + c),
                  cv.row(c), d * sizeof(float));
    }
  }

  // Admit one fresh track per request; together they form a new group over
  // the span, so their self-attention group is exactly the spliced cohort.
  const Slot group_slot = slotted_ ? slot : Slot{0};
  Group g;
  g.row = row;
  g.slot = group_slot;
  g.begin = begin;
  g.width = width;
  groups_.push_back(std::move(g));
  const std::size_t group_index = groups_.size() - 1;
  cursor = 0;
  for (const auto& req : reqs) {
    DecodeTrack t;
    t.request_id = req.id;
    t.row = row;
    t.slot = group_slot;
    t.seg_index = 0;  // not in the plan; unused for spliced tracks
    t.src_offset = Col{begin.value() + cursor};
    t.src_len = req.length;
    t.spliced = true;
    cursor += req.length;
    append_track(std::move(t), group_index);
  }
}

DecodeResult DecodeSession::take_result() {
  TCB_CHECK(done(), "DecodeSession::take_result before completion");
  for (auto& track : tracks_) {
    auto tokens = std::move(track.emitted);
    if (!tokens.empty() && tokens.back() == kEosToken) tokens.pop_back();
    result_.outputs.emplace(track.request_id, std::move(tokens));
  }
  return std::move(result_);
}

DecodeResult greedy_decode(const Seq2SeqModel& model,
                           const EncoderMemory& memory,
                           const DecodeOptions& opts) {
  DecodeSession session(model, memory, opts);
  while (!session.done()) session.step();
  return session.take_result();
}

}  // namespace tcb
