#include "nn/attention.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "tensor/ops.hpp"
#include "tensor/simd.hpp"
#include "tensor/workspace.hpp"
#include "util/check.hpp"

namespace tcb {
namespace {

/// One attention task: a (row, span, head) triple. For the pure path the
/// span is the whole materialized row; for the slotted path it is one slot.
struct Task {
  Index row;
  Index begin;  ///< first column of the span
  Index width;  ///< span width
  Index head;
};

std::vector<Task> build_tasks(const BatchPlan& plan, Index width,
                              AttentionMode mode, Index n_heads) {
  std::vector<Task> tasks;
  const Index rows = static_cast<Index>(plan.rows.size());
  for (Index r = 0; r < rows; ++r) {
    const auto& row = plan.rows[static_cast<std::size_t>(r)];
    if (mode == AttentionMode::kSlotted && plan.slot_len > 0) {
      // Slots cover only the row's used extent; unused tail slots are never
      // materialized (that is the saving).
      for (Index begin = 0; begin < row.width; begin += plan.slot_len) {
        const Index w = std::min(plan.slot_len, row.width - begin);
        for (Index h = 0; h < n_heads; ++h) tasks.push_back({r, begin, w, h});
      }
    } else {
      // Pure path: rectangular tensor semantics — every row spans the full
      // materialized batch width, padding included.
      for (Index h = 0; h < n_heads; ++h) tasks.push_back({r, 0, width, h});
    }
  }
  return tasks;
}

void check_forward_args(const Tensor& x, const BatchPlan& plan, Index width,
                        AttentionMode mode, Index rows, Index d,
                        const char* who) {
  if (x.rank() != 2 || x.dim(0) != rows * width || x.dim(1) != d)
    throw std::invalid_argument(std::string(who) + ": x shape mismatch");
  if (mode == AttentionMode::kSlotted && plan.slot_len <= 0)
    throw std::invalid_argument(std::string(who) +
                                ": slotted mode needs slot_len");
}

/// Key-tile width of the flash kernel. One tile of scores lives on the
/// stack (kTile floats = one 256-byte strip, L1-resident by construction);
/// spans are walked tile-relative-to-their-own-start, so a segment's tile
/// sequence is a function of the segment alone — batching a request with
/// others never changes where its tile boundaries fall, which keeps the
/// concat-vs-single outputs bitwise identical (see DESIGN.md §13).
constexpr Index kTile = 64;

}  // namespace

MultiHeadAttention::MultiHeadAttention(const ModelConfig& cfg, Rng& rng)
    : wq_(cfg.d_model, cfg.d_model, rng),
      wk_(cfg.d_model, cfg.d_model, rng),
      wv_(cfg.d_model, cfg.d_model, rng),
      wo_(cfg.d_model, cfg.d_model, rng),
      n_heads_(cfg.n_heads),
      head_dim_(cfg.head_dim()) {}

Tensor MultiHeadAttention::encoder_forward(const Tensor& x,
                                           const BatchPlan& plan,
                                           Col width_col, AttentionMode mode,
                                           MaskPolicy mask) const {
  // Unwrap the typed width once; everything below is deliberately raw index
  // math on the flattened (rows * width, d) buffers.
  const Index width = width_col.value();
  const Index rows = static_cast<Index>(plan.rows.size());
  const Index d = n_heads_ * head_dim_;
  check_forward_args(x, plan, width, mode, rows, d, "encoder_forward");

  // Projection scratch, reused across layers and forwards: after the first
  // call at a shape these allocate nothing (matmul's out-param path keeps
  // same-shape storage). Thread-local because concurrent sessions may drive
  // separate forwards from separate threads.
  static thread_local Tensor q_tl, k_tl, v_tl, heads_tl;
  wq_.forward(x, q_tl);
  wk_.forward(x, k_tl);
  wv_.forward(x, v_tl);

  // Mask geometry, built once per (plan, width) and reused across every
  // layer and head of the batch (the per-forward rebuild used to dominate
  // narrow batches). Touched here, before the fan-out, per the cache's
  // threading contract.
  const SegmentCache& sc = plan.segment_cache(width_col);
  TCB_CHECK(sc.row_count() == rows && sc.width() == width,
            "encoder_forward: segment cache geometry mismatch");

  const Shape out_shape{rows * width, d};
  if (!(heads_tl.shape() == out_shape)) {
    heads_tl = Tensor(out_shape);  // zero-initialized
  } else if (mode == AttentionMode::kSlotted) {
    // Reused storage: slotted tasks never touch columns past a row's used
    // extent, so stale tail values from a previous forward must be cleared.
    // (Pure tasks cover every column, padding included — nothing to clear.)
    float* p = heads_tl.raw();
    for (Index r = 0; r < rows; ++r) {
      const Index used = plan.rows[static_cast<std::size_t>(r)].width;
      if (used >= width) continue;
      std::fill(p + (static_cast<std::size_t>(r) * width + used) *
                        static_cast<std::size_t>(d),
                p + (static_cast<std::size_t>(r) + 1) * width *
                        static_cast<std::size_t>(d),
                0.0f);
    }
  }

  const auto tasks = build_tasks(plan, width, mode, n_heads_);
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  // Bind raw pointers on the calling thread: the thread_local names above
  // would re-resolve to a *worker's* (empty) tensors inside the lambda.
  const float* pq = q_tl.raw();
  const float* pk = k_tl.raw();
  const float* pv = v_tl.raw();
  float* pout = heads_tl.raw();
  const Index dh = head_dim_;

  parallel_for(tasks.size(), [&, pq, pk, pv,
                              pout](std::size_t begin_task,
                                    std::size_t end_task) {
    // Flash-style tiled kernel (paper Eq. 5-6 fused like the fused kernel,
    // plus FlashAttention's online softmax): scores exist only one kTile
    // strip at a time, in L1. Per key tile the kernel keeps a running max m,
    // running exp-sum l, and an output accumulator that is rescaled by
    // alpha = exp(m_old - m_new) whenever the max advances; the final
    // normalize is one multiply by 1/l. Masked-out entries are never
    // computed at all — each query walks only the contiguous column spans
    // its mask admits (its own segment under kSegment, every non-padding
    // span under kRowShared), exactly like the fused kernel.
    //
    // Scores are produced by vertical FMAs over a K^T panel packed per task
    // into workspace scratch: s[j] += q[c] * kt[c][j] for each of the dh
    // channels, so the hot loop is straight-line axpy with no horizontal
    // reductions, and exp runs vectorized over the strip.
    std::vector<std::pair<Index, Index>> spans;
    for (std::size_t ti = begin_task; ti < end_task; ++ti) {
      const Task& t = tasks[ti];
      const Index w = t.width;
      // Span/slot geometry: the task's span must lie inside the materialized
      // row, and the mask source must cover the span — out-of-bounds here
      // reads another request's K/V rows and produces plausible-but-wrong
      // attention, not a crash.
      TCB_DCHECK(t.row >= 0 && t.row < rows, "attention task row out of range");
      TCB_DCHECK(t.head >= 0 && t.head < n_heads_,
                 "attention task head out of range");
      TCB_DCHECK(w > 0 && t.begin >= 0 && t.begin + w <= width,
                 "attention span outside the materialized row");
      const std::size_t row_base = static_cast<std::size_t>(t.row) * width;
      const std::size_t head_off = static_cast<std::size_t>(t.head) * dh;
      const std::int32_t* smap = sc.seg_row(t.row);
      const Index* slo = sc.span_lo_row(t.row);
      const Index* shi = sc.span_hi_row(t.row);
      const Index t_end = t.begin + w;

      // Task-lifetime scratch from this worker's arena; rewound on scope
      // exit, so steady state allocates nothing.
      WorkspaceScope scope;
      // kt: the task's K rows transposed to channel-major, kt[c*w + j] =
      // K[t.begin + j][c] — the layout that makes the score update a
      // contiguous axpy per channel.
      float* kt =
          scope.alloc(static_cast<std::size_t>(w) * static_cast<std::size_t>(dh));
      float* qs = scope.alloc(static_cast<std::size_t>(dh));
      for (Index j = 0; j < w; ++j) {
        const float* kr = pk + (row_base + static_cast<std::size_t>(t.begin + j)) *
                                   static_cast<std::size_t>(d) +
                          head_off;
        for (Index c = 0; c < dh; ++c) kt[c * w + j] = kr[c];
      }

      for (Index i = 0; i < w; ++i) {
        const Index pos = t.begin + i;
        float* out = pout + (row_base + static_cast<std::size_t>(pos)) *
                                static_cast<std::size_t>(d) +
                     head_off;
        for (Index c = 0; c < dh; ++c) out[c] = 0.0f;
        if (smap[pos] < 0) continue;  // padding query: defined as zeros

        spans.clear();
        if (mask == MaskPolicy::kSegment) {
          // One contiguous span: the query's own segment, clipped to the
          // task (slots never split a segment, so the clip is a no-op for
          // valid plans; it guards degenerate hand-built ones).
          const Index lo = std::max(slo[pos], t.begin);
          const Index hi = std::min(shi[pos], t_end);
          if (lo < hi) spans.emplace_back(lo, hi);
        } else {
          for (const auto& span : sc.used_spans(t.row)) {
            const Index lo = std::max(span.first, t.begin);
            const Index hi = std::min(span.second, t_end);
            if (lo < hi) spans.emplace_back(lo, hi);
          }
        }

        // Fold 1/sqrt(d) into the query so the score loop is pure FMA.
        const float* qi = pq + (row_base + static_cast<std::size_t>(pos)) *
                                   static_cast<std::size_t>(d) +
                          head_off;
        for (Index c = 0; c < dh; ++c) qs[c] = qi[c] * inv_sqrt_d;

        float m = kMaskedOut;  // running max over keys seen so far
        float l = 0.0f;        // running sum of exp(s - m)
        alignas(64) float s[kTile];
        for (const auto& [lo, hi] : spans) {
          // Tiles step from the span's own start (not the task's), so the
          // tile sequence — and with it every rounding decision below — is
          // identical whether this segment runs alone or inside a batch.
          for (Index j0 = lo; j0 < hi; j0 += kTile) {
            const Index tw = std::min(kTile, hi - j0);
            const Index koff = j0 - t.begin;
            std::fill_n(s, static_cast<std::size_t>(tw), 0.0f);
            for (Index c = 0; c < dh; ++c)
              simd::axpy(qs[c], kt + c * w + koff, s, tw);

            const float tile_mx = simd::reduce_max(s, tw);
            if (tile_mx > m) {
              // The max advanced: rescale history into the new frame. On
              // the first tile alpha = exp(kMaskedOut - finite) == 0.0f
              // exactly, wiping the (already zero) accumulator.
              const float alpha = std::exp(m - tile_mx);
              l *= alpha;
              simd::scale(out, alpha, dh);
              m = tile_mx;
            }
            simd::exp_shift_inplace(s, m, tw);
            // Online-softmax running sum: one scalar add per kTile tile,
            // in span-relative tile order — concat-invariant and pinned by
            // the flash-vs-fused ULP suite.
            // tcb-lint: allow(raw-fp-accumulation)
            l += simd::reduce_add(s, tw);
            for (Index j = 0; j < tw; ++j)
              simd::axpy(s[j],
                         pv + (row_base + static_cast<std::size_t>(j0 + j)) *
                                  static_cast<std::size_t>(d) +
                             head_off,
                         out, dh);
          }
        }
        // l == 0 means no admissible key (fully-masked query): stay zeros.
        if (l > 0.0f) simd::scale(out, 1.0f / l, dh);
      }
    }
  });

  return wo_.forward(heads_tl);
}

Tensor MultiHeadAttention::encoder_forward_fused(const Tensor& x,
                                                 const BatchPlan& plan,
                                                 Col width_col,
                                                 AttentionMode mode,
                                                 MaskPolicy mask) const {
  const Index width = width_col.value();
  const Index rows = static_cast<Index>(plan.rows.size());
  const Index d = n_heads_ * head_dim_;
  check_forward_args(x, plan, width, mode, rows, d, "encoder_forward_fused");

  const Tensor q = wq_.forward(x);
  const Tensor k = wk_.forward(x);
  const Tensor v = wv_.forward(x);

  const SegmentCache& sc = plan.segment_cache(width_col);
  TCB_CHECK(sc.row_count() == rows && sc.width() == width,
            "encoder_forward_fused: segment cache geometry mismatch");

  Tensor heads_out(Shape{rows * width, d});
  const auto tasks = build_tasks(plan, width, mode, n_heads_);
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  const float* pq = q.raw();
  const float* pk = k.raw();
  const float* pv = v.raw();
  float* pout = heads_out.raw();
  const Index dh = head_dim_;

  parallel_for(tasks.size(), [&](std::size_t begin_task, std::size_t end_task) {
    // Fused mask + score pass (paper Eq. 5-6): instead of materializing the
    // full w x w matrix and masking it in a second sweep, each query walks
    // only the contiguous column spans its mask admits — its own segment
    // under kSegment, every non-padding span under kRowShared. Masked
    // entries would contribute exp(kMaskedOut - mx) == 0.0f exactly, so
    // skipping them is bitwise-neutral; the score buffer is reused across
    // queries and never read outside the admitted spans.
    std::vector<float> scores;
    std::vector<std::pair<Index, Index>> spans;
    for (std::size_t ti = begin_task; ti < end_task; ++ti) {
      const Task& t = tasks[ti];
      const Index w = t.width;
      // Span/slot geometry: the task's span must lie inside the materialized
      // row, and the mask source must cover the span — out-of-bounds here
      // reads another request's K/V rows and produces plausible-but-wrong
      // attention, not a crash.
      TCB_DCHECK(t.row >= 0 && t.row < rows, "attention task row out of range");
      TCB_DCHECK(t.head >= 0 && t.head < n_heads_,
                 "attention task head out of range");
      TCB_DCHECK(w > 0 && t.begin >= 0 && t.begin + w <= width,
                 "attention span outside the materialized row");
      scores.resize(static_cast<std::size_t>(w));
      const std::size_t row_base = static_cast<std::size_t>(t.row) * width;
      const std::size_t head_off = static_cast<std::size_t>(t.head) * dh;
      const std::int32_t* smap = sc.seg_row(t.row);
      const Index* slo = sc.span_lo_row(t.row);
      const Index* shi = sc.span_hi_row(t.row);
      const Index t_end = t.begin + w;

      for (Index i = 0; i < w; ++i) {
        const Index pos = t.begin + i;
        float* out = pout + (row_base + static_cast<std::size_t>(pos)) *
                                static_cast<std::size_t>(d) +
                     head_off;
        for (Index c = 0; c < dh; ++c) out[c] = 0.0f;
        if (smap[pos] < 0) continue;  // padding query: defined as zeros

        spans.clear();
        if (mask == MaskPolicy::kSegment) {
          // One contiguous span: the query's own segment, clipped to the
          // task (slots never split a segment, so the clip is a no-op for
          // valid plans; it guards degenerate hand-built ones).
          const Index lo = std::max(slo[pos], t.begin);
          const Index hi = std::min(shi[pos], t_end);
          if (lo < hi) spans.emplace_back(lo, hi);
        } else {
          for (const auto& span : sc.used_spans(t.row)) {
            const Index lo = std::max(span.first, t.begin);
            const Index hi = std::min(span.second, t_end);
            if (lo < hi) spans.emplace_back(lo, hi);
          }
        }

        // Step 2 (Fig. 6), fused with step 3: S = Q K^T / sqrt(d) over the
        // admitted spans only, tracking the running max for the softmax.
        const float* qi = pq + (row_base + static_cast<std::size_t>(pos)) *
                                   static_cast<std::size_t>(d) +
                          head_off;
        float mx = kMaskedOut;
        for (const auto& [lo, hi] : spans) {
          for (Index j = lo; j < hi; ++j) {
            const float* kj = pk + (row_base + static_cast<std::size_t>(j)) *
                                       static_cast<std::size_t>(d) +
                              head_off;
            const float s = simd::dot(qi, kj, dh) * inv_sqrt_d;
            scores[static_cast<std::size_t>(j - t.begin)] = s;
            mx = std::max(mx, s);
          }
        }
        if (mx <= kMaskedOut / 2) continue;  // no admissible key

        // Step 4 (Fig. 6): softmax over the spans, then the V product with
        // the head-dim inner loop vectorized.
        float sum = 0.0f;
        for (const auto& [lo, hi] : spans) {
          for (Index j = lo; j < hi; ++j) {
            const float e = std::exp(scores[static_cast<std::size_t>(j - t.begin)] - mx);
            scores[static_cast<std::size_t>(j - t.begin)] = e;
            // Ascending-j walk over the task's own spans: the chain shape
            // is per-request, and these exact numerics are the
            // concat-neutrality suite's baseline.
            // tcb-lint: allow(raw-fp-accumulation)
            sum += e;
          }
        }
        const float inv = 1.0f / sum;
        for (const auto& [lo, hi] : spans) {
          for (Index j = lo; j < hi; ++j) {
            const float a = scores[static_cast<std::size_t>(j - t.begin)] * inv;
            const float* vj = pv + (row_base + static_cast<std::size_t>(j)) *
                                       static_cast<std::size_t>(d) +
                              head_off;
            simd::axpy(a, vj, out, dh);
          }
        }
      }
    }
  });

  return wo_.forward(heads_out);
}

Tensor MultiHeadAttention::encoder_forward_reference(const Tensor& x,
                                                     const BatchPlan& plan,
                                                     Col width_col,
                                                     AttentionMode mode,
                                                     MaskPolicy mask) const {
  const Index width = width_col.value();
  const Index rows = static_cast<Index>(plan.rows.size());
  const Index d = n_heads_ * head_dim_;
  check_forward_args(x, plan, width, mode, rows, d,
                     "encoder_forward_reference");

  const Tensor q = wq_.forward(x);
  const Tensor k = wk_.forward(x);
  const Tensor v = wv_.forward(x);

  // Per-row segment maps padded to the materialized width (-1 = padding).
  std::vector<std::vector<std::int32_t>> seg(static_cast<std::size_t>(rows));
  for (Index r = 0; r < rows; ++r) {
    auto map = segment_map(plan.rows[static_cast<std::size_t>(r)]);
    map.resize(static_cast<std::size_t>(width), -1);
    seg[static_cast<std::size_t>(r)] = std::move(map);
  }

  Tensor heads_out(Shape{rows * width, d});
  const auto tasks = build_tasks(plan, width, mode, n_heads_);
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  const float* pq = q.raw();
  const float* pk = k.raw();
  const float* pv = v.raw();
  float* pout = heads_out.raw();
  const Index dh = head_dim_;

  // Materialized score matrix per task — like the GPU kernels in Fig. 6/7,
  // the whole (masked) matrix exists before softmax.
  std::vector<float> scores;
  for (const Task& t : tasks) {
    const Index w = t.width;
    TCB_DCHECK(w > 0 && t.begin >= 0 && t.begin + w <= width,
               "attention span outside the materialized row");
    scores.assign(static_cast<std::size_t>(w) * static_cast<std::size_t>(w),
                  0.0f);
    const std::size_t row_base = static_cast<std::size_t>(t.row) * width;
    const std::size_t head_off = static_cast<std::size_t>(t.head) * dh;
    const auto& smap = seg[static_cast<std::size_t>(t.row)];

    // Step 2 (Fig. 6): S = Q K^T / sqrt(d) over the whole span.
    for (Index i = 0; i < w; ++i) {
      const float* qi =
          pq + (row_base + static_cast<std::size_t>(t.begin + i)) *
                   static_cast<std::size_t>(d) +
          head_off;
      float* srow = scores.data() + static_cast<std::size_t>(i) * w;
      for (Index j = 0; j < w; ++j) {
        const float* kj =
            pk + (row_base + static_cast<std::size_t>(t.begin + j)) *
                     static_cast<std::size_t>(d) +
            head_off;
        float acc = 0.0f;
        for (Index c = 0; c < dh; ++c) acc += qi[c] * kj[c];
        srow[j] = acc * inv_sqrt_d;
      }
    }

    // Step 3 (Fig. 6): mask the redundant entries (Eq. 6) in a second sweep.
    for (Index i = 0; i < w; ++i) {
      const std::int32_t si = smap[static_cast<std::size_t>(t.begin + i)];
      float* srow = scores.data() + static_cast<std::size_t>(i) * w;
      for (Index j = 0; j < w; ++j) {
        const std::int32_t sj = smap[static_cast<std::size_t>(t.begin + j)];
        const bool allowed = mask == MaskPolicy::kSegment
                                 ? (si >= 0 && si == sj)
                                 : (si >= 0 && sj >= 0);
        if (!allowed) srow[j] = kMaskedOut;
      }
    }

    // Step 4 (Fig. 6): softmax, then multiply with V.
    for (Index i = 0; i < w; ++i) {
      float* srow = scores.data() + static_cast<std::size_t>(i) * w;
      float mx = srow[0];
      for (Index j = 1; j < w; ++j) mx = std::max(mx, srow[j]);
      float* out = pout + (row_base + static_cast<std::size_t>(t.begin + i)) *
                              static_cast<std::size_t>(d) +
                   head_off;
      for (Index c = 0; c < dh; ++c) out[c] = 0.0f;
      if (mx <= kMaskedOut / 2) continue;  // fully-masked padding query
      float sum = 0.0f;
      for (Index j = 0; j < w; ++j) {
        srow[j] = std::exp(srow[j] - mx);
        sum += srow[j];
      }
      const float inv = 1.0f / sum;
      for (Index j = 0; j < w; ++j) {
        const float a = srow[j] * inv;
        const float* vj =
            pv + (row_base + static_cast<std::size_t>(t.begin + j)) *
                     static_cast<std::size_t>(d) +
            head_off;
        for (Index c = 0; c < dh; ++c) out[c] += a * vj[c];
      }
    }
  }

  return wo_.forward(heads_out);
}

Index score_entries(const BatchPlan& plan, Col width_col, AttentionMode mode) {
  const Index width = width_col.value();
  Index total = 0;
  for (const auto& row : plan.rows) {
    if (mode == AttentionMode::kSlotted && plan.slot_len > 0) {
      for (Index begin = 0; begin < row.width; begin += plan.slot_len) {
        const Index w = std::min(plan.slot_len, row.width - begin);
        total += w * w;
      }
    } else {
      total += width * width;
    }
  }
  return total;
}

}  // namespace tcb
