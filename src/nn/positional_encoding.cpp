#include "nn/positional_encoding.hpp"

#include <cmath>
#include <stdexcept>

#include "util/check.hpp"

namespace tcb {

SinusoidalPositionalEncoding::SinusoidalPositionalEncoding(Index max_len,
                                                           Index d_model)
    : table_(Shape{max_len, d_model}) {
  // PE(pos, 2e)   = sin(pos / 10000^(2e/d))
  // PE(pos, 2e+1) = cos(pos / 10000^(2e/d))
  for (Index pos = 0; pos < max_len; ++pos) {
    float* row = table_.row(pos);
    for (Index e = 0; 2 * e < d_model; ++e) {
      const double angle =
          static_cast<double>(pos) /
          std::pow(10000.0, (2.0 * static_cast<double>(e)) /
                                static_cast<double>(d_model));
      row[2 * e] = static_cast<float>(std::sin(angle));
      if (2 * e + 1 < d_model)
        row[2 * e + 1] = static_cast<float>(std::cos(angle));
    }
  }
}

const float* SinusoidalPositionalEncoding::at(Pos pos) const {
  if (pos < Pos{0} || pos.value() >= max_len())
    throw std::out_of_range("PositionalEncoding: position " +
                            to_string(pos) + " exceeds max_len " +
                            std::to_string(max_len()));
  return table_.row(pos.value());
}

void SinusoidalPositionalEncoding::add_traditional(Tensor& x, Row rows,
                                                   Col width) const {
  const Index d = x.dim(1);
  if (x.dim(0) != rows.value() * width.value())
    throw std::invalid_argument("add_traditional: geometry mismatch");
  for (Row r{0}; r < rows; ++r) {
    for (Col p{0}; p < width; ++p) {
      // The traditional scheme *is* the bug under concatenation: the batch
      // column doubles as the position. The conversion is therefore explicit.
      const float* pe = at(Pos{p.value()});
      float* row = x.row(static_cast<Index>(flat_offset(r, p, width)));
      for (Index j = 0; j < d; ++j) row[j] += pe[j];
    }
  }
}

void SinusoidalPositionalEncoding::add_separate(Tensor& x,
                                                const BatchPlan& plan,
                                                Col width) const {
  const Index d = x.dim(1);
  if (x.dim(0) != static_cast<Index>(plan.rows.size()) * width.value())
    throw std::invalid_argument("add_separate: geometry mismatch");
  for (std::size_t r = 0; r < plan.rows.size(); ++r) {
    for (const auto& seg : plan.rows[r].segments) {
      // Position-restart invariant (paper §4.1): each concatenated request
      // re-counts positions from 0 inside its own segment, and the segment
      // must fit the materialized row it writes into.
      TCB_DCHECK(seg.offset >= 0 && seg.end_col() <= width,
                 "add_separate: segment outside the materialized row");
      for (Index i = 0; i < seg.length; ++i) {
        const float* pe = at(Pos{i});  // restart at position 0 per request
        float* row = x.row(static_cast<Index>(
            flat_offset(Row{static_cast<Index>(r)}, seg.begin_col() + i, width)));
        for (Index j = 0; j < d; ++j) row[j] += pe[j];
      }
    }
  }
}

}  // namespace tcb
