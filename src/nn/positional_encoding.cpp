#include "nn/positional_encoding.hpp"

#include <cmath>
#include <stdexcept>

#include "util/check.hpp"

namespace tcb {

SinusoidalPositionalEncoding::SinusoidalPositionalEncoding(Index max_len,
                                                           Index d_model)
    : table_(Shape{max_len, d_model}) {
  // PE(pos, 2e)   = sin(pos / 10000^(2e/d))
  // PE(pos, 2e+1) = cos(pos / 10000^(2e/d))
  for (Index pos = 0; pos < max_len; ++pos) {
    float* row = table_.row(pos);
    for (Index e = 0; 2 * e < d_model; ++e) {
      const double angle =
          static_cast<double>(pos) /
          std::pow(10000.0, (2.0 * static_cast<double>(e)) /
                                static_cast<double>(d_model));
      row[2 * e] = static_cast<float>(std::sin(angle));
      if (2 * e + 1 < d_model)
        row[2 * e + 1] = static_cast<float>(std::cos(angle));
    }
  }
}

const float* SinusoidalPositionalEncoding::at(Index pos) const {
  if (pos < 0 || pos >= max_len())
    throw std::out_of_range("PositionalEncoding: position " +
                            std::to_string(pos) + " exceeds max_len " +
                            std::to_string(max_len()));
  return table_.row(pos);
}

void SinusoidalPositionalEncoding::add_traditional(Tensor& x, Index rows,
                                                   Index width) const {
  const Index d = x.dim(1);
  if (x.dim(0) != rows * width)
    throw std::invalid_argument("add_traditional: geometry mismatch");
  for (Index r = 0; r < rows; ++r) {
    for (Index p = 0; p < width; ++p) {
      const float* pe = at(p);
      float* row = x.row(r * width + p);
      for (Index j = 0; j < d; ++j) row[j] += pe[j];
    }
  }
}

void SinusoidalPositionalEncoding::add_separate(Tensor& x,
                                                const BatchPlan& plan,
                                                Index width) const {
  const Index d = x.dim(1);
  if (x.dim(0) != static_cast<Index>(plan.rows.size()) * width)
    throw std::invalid_argument("add_separate: geometry mismatch");
  for (std::size_t r = 0; r < plan.rows.size(); ++r) {
    for (const auto& seg : plan.rows[r].segments) {
      // Position-restart invariant (paper §4.1): each concatenated request
      // re-counts positions from 0 inside its own segment, and the segment
      // must fit the materialized row it writes into.
      TCB_DCHECK(seg.offset >= 0 && seg.offset + seg.length <= width,
                 "add_separate: segment outside the materialized row");
      for (Index i = 0; i < seg.length; ++i) {
        const float* pe = at(i);  // restart at position 0 per request
        float* row = x.row(static_cast<Index>(r) * width + seg.offset + i);
        for (Index j = 0; j < d; ++j) row[j] += pe[j];
      }
    }
  }
}

}  // namespace tcb
