// Transformer encoder stack (post-LayerNorm, as in Vaswani et al.).
#pragma once

#include <vector>

#include "nn/attention.hpp"
#include "nn/feed_forward.hpp"
#include "nn/model_config.hpp"
#include "util/numeric.hpp"

namespace tcb {

class EncoderLayer {
 public:
  EncoderLayer(const ModelConfig& cfg, Rng& rng);

  /// x: (rows*width, d) laid out by `plan`; returns the same shape.
  [[nodiscard]] Tensor forward(const Tensor& x, const BatchPlan& plan,
                               Col width, AttentionMode mode,
                               MaskPolicy mask) const TCB_BITWISE;

 private:
  MultiHeadAttention self_attn_;
  FeedForward ffn_;
  Tensor ln1_gamma_, ln1_beta_, ln2_gamma_, ln2_beta_;
  float eps_;
};

class Encoder {
 public:
  Encoder() = default;
  Encoder(const ModelConfig& cfg, Rng& rng);

  [[nodiscard]] Tensor forward(const Tensor& x, const BatchPlan& plan,
                               Col width, AttentionMode mode,
                               MaskPolicy mask) const TCB_BITWISE;

 private:
  std::vector<EncoderLayer> layers_;
};

}  // namespace tcb
