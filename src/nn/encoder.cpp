#include "nn/encoder.hpp"

#include "tensor/ops.hpp"

namespace tcb {

EncoderLayer::EncoderLayer(const ModelConfig& cfg, Rng& rng)
    : self_attn_(cfg, rng),
      ffn_(cfg, rng),
      ln1_gamma_(Shape{cfg.d_model}, 1.0f),
      ln1_beta_(Shape{cfg.d_model}, 0.0f),
      ln2_gamma_(Shape{cfg.d_model}, 1.0f),
      ln2_beta_(Shape{cfg.d_model}, 0.0f),
      eps_(cfg.layer_norm_eps) {}

Tensor EncoderLayer::forward(const Tensor& x, const BatchPlan& plan,
                             Col width, AttentionMode mode,
                             MaskPolicy mask) const {
  Tensor attn = self_attn_.encoder_forward(x, plan, width, mode, mask);
  add_inplace(attn, x);
  Tensor h;
  layer_norm(attn, ln1_gamma_, ln1_beta_, eps_, h);

  Tensor f = ffn_.forward(h);
  add_inplace(f, h);
  Tensor out;
  layer_norm(f, ln2_gamma_, ln2_beta_, eps_, out);
  return out;
}

Encoder::Encoder(const ModelConfig& cfg, Rng& rng) {
  layers_.reserve(static_cast<std::size_t>(cfg.n_encoder_layers));
  for (Index l = 0; l < cfg.n_encoder_layers; ++l) layers_.emplace_back(cfg, rng);
}

Tensor Encoder::forward(const Tensor& x, const BatchPlan& plan, Col width,
                        AttentionMode mode, MaskPolicy mask) const {
  Tensor h = x;
  for (const auto& layer : layers_) h = layer.forward(h, plan, width, mode, mask);
  return h;
}

}  // namespace tcb
