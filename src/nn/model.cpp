#include "nn/model.hpp"

#include <stdexcept>

#include "util/check.hpp"

namespace tcb {

Seq2SeqModel::Seq2SeqModel(ModelConfig cfg) : cfg_(cfg) {
  cfg_.validate();
  Rng rng(cfg_.seed);
  embedding_ = Embedding(cfg_.vocab_size, cfg_.d_model, rng);
  pe_ = SinusoidalPositionalEncoding(cfg_.max_len, cfg_.d_model);
  encoder_ = Encoder(cfg_, rng);
  decoder_layers_.reserve(static_cast<std::size_t>(cfg_.n_decoder_layers));
  for (Index l = 0; l < cfg_.n_decoder_layers; ++l)
    decoder_layers_.emplace_back(cfg_, rng);
  output_proj_ = Linear(cfg_.d_model, cfg_.vocab_size, rng);
}

EncoderMemory Seq2SeqModel::encode(const PackedBatch& batch,
                                   const InferenceOptions& opts) const {
  if (batch.width().value() > cfg_.max_len)
    throw std::invalid_argument(
        "Seq2SeqModel::encode: batch width " + to_string(batch.width()) +
        " exceeds max_len " + std::to_string(cfg_.max_len));
#if defined(TCB_ENABLE_DCHECKS)
  // Debug/sanitizer builds re-validate the whole plan at the engine boundary
  // (segment ordering, slot boundaries, widths) before any kernel reads it.
  batch.plan.validate();
  TCB_CHECK(batch.tokens.size() == batch.rows().usize() * batch.width().usize(),
            "Seq2SeqModel::encode: token buffer does not match plan geometry");
#endif

  Tensor x = embedding_.lookup(batch.tokens);
  if (opts.separate_positional_encoding)
    pe_.add_separate(x, batch.plan, batch.width());
  else
    pe_.add_traditional(x, batch.rows(), batch.width());

  Tensor states = encoder_.forward(x, batch.plan, batch.width(), opts.mode,
                                   opts.mask_policy);
  return EncoderMemory{std::move(states), batch.plan, batch.width()};
}

InferenceResult Seq2SeqModel::infer(const PackedBatch& batch,
                                    const InferenceOptions& opts) const {
  const EncoderMemory memory = encode(batch, opts);
  DecodeOptions dopts;
  dopts.mode = opts.mode;
  dopts.max_steps = opts.max_decode_steps;
  dopts.early_memory_cleaning = opts.early_memory_cleaning;
  dopts.cap_at_source_length = opts.cap_decode_at_source_length;
  dopts.strategy = opts.decode_strategy;
  dopts.top_k = opts.top_k;
  dopts.temperature = opts.temperature;
  dopts.sample_seed = opts.sample_seed;
  dopts.separate_positional_encoding = opts.separate_positional_encoding;
  dopts.mask_policy = opts.mask_policy;
  DecodeResult dec = greedy_decode(*this, memory, dopts);

  InferenceResult out;
  out.outputs = std::move(dec.outputs);
  out.decode_steps = dec.steps;
  out.peak_kv_bytes = dec.peak_kv_bytes;
  out.early_freed_bytes = dec.early_freed_bytes;
  out.reclaimable_kv_bytes = dec.reclaimable_kv_bytes;
  return out;
}

}  // namespace tcb
