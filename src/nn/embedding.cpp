#include "nn/embedding.hpp"

#include <cstring>
#include <stdexcept>

namespace tcb {

Embedding::Embedding(Index vocab, Index d_model, Rng& rng)
    : table_(Tensor::random_uniform(Shape{vocab, d_model}, rng, 0.1f)) {}

Tensor Embedding::lookup(std::span<const Index> ids) const {
  const Index d = d_model();
  Tensor out(Shape{static_cast<Index>(ids.size()), d});
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const Index id = ids[i];
    if (id < 0 || id >= vocab())
      throw std::out_of_range("Embedding::lookup: token id " +
                              std::to_string(id) + " outside vocab");
    std::memcpy(out.raw() + static_cast<std::size_t>(i) * d,
                table_.raw() + static_cast<std::size_t>(id) * d,
                static_cast<std::size_t>(d) * sizeof(float));
  }
  return out;
}

}  // namespace tcb
