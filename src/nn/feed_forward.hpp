// Position-wise feed-forward network: Linear -> ReLU -> Linear.
#pragma once

#include "nn/linear.hpp"
#include "nn/model_config.hpp"
#include "util/numeric.hpp"

namespace tcb {

class FeedForward {
 public:
  FeedForward() = default;
  FeedForward(const ModelConfig& cfg, Rng& rng);

  /// x: (m, d_model) -> (m, d_model). Purely row-wise: concat-invariant.
  [[nodiscard]] Tensor forward(const Tensor& x) const TCB_BITWISE;

 private:
  Linear lin1_, lin2_;
};

}  // namespace tcb
