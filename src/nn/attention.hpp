// Multi-head self-attention with the two concat-aware execution paths the
// paper contrasts:
//
//   * kPureConcat (paper §4.1, Fig. 6): the full width x width score matrix
//     of every row is computed, the off-(block-)diagonal entries are masked
//     to -inf (Eq. 5-6), then softmax and the value multiplication run over
//     the full matrix. The masked work is the redundancy the paper measures.
//   * kSlotted (paper §4.2, Fig. 7): each row is split into slots of length
//     z; scores/softmax/value products are computed per slot only, and the
//     slots of a batch run in parallel on the thread pool.
//
// Both paths produce the same values for every real token (masked entries
// contribute exactly 0 after softmax); the slotted path simply never touches
// the inter-slot blocks. That equivalence is property-tested.
#pragma once

#include "batching/batch_plan.hpp"
#include "nn/linear.hpp"
#include "nn/model_config.hpp"
#include "tensor/tensor.hpp"
#include "util/lifetime.hpp"
#include "util/numeric.hpp"

namespace tcb {

enum class AttentionMode : std::uint8_t {
  kPureConcat,
  kSlotted,
};

/// How the attention mask is derived. kSegment is TCB's customized mask;
/// kRowShared is the uncustomized default (whole row attends to itself),
/// kept so tests and examples can demonstrate that concatenation without the
/// mask produces wrong results.
enum class MaskPolicy : std::uint8_t {
  kSegment,
  kRowShared,
};

class MultiHeadAttention {
 public:
  MultiHeadAttention() = default;
  MultiHeadAttention(const ModelConfig& cfg, Rng& rng);

  /// Bidirectional (encoder) self-attention over a batch laid out by `plan`.
  /// x is (rows * width, d_model) with `width` = materialized tensor width
  /// (strong-typed: a row count passed here is a compile error).
  /// Returns a tensor of the same shape (already through the output
  /// projection W^O).
  ///
  /// Executes as a flash-style tiled kernel (DESIGN.md §13): scores exist
  /// one kTile-wide strip at a time with an online softmax (running max /
  /// running sum, rescaled accumulator), never as a q_len x k_len matrix.
  /// Equivalent to encoder_forward_reference under float tolerance; the
  /// equivalence suite pins both that and the bitwise concat-vs-single
  /// invariance.
  /// Bitwise concat-invariant: a request's rows depend only on its own
  /// segment span (the span-relative kTile tiles), never on batch shape.
  [[nodiscard]] Tensor encoder_forward(const Tensor& x, const BatchPlan& plan,
                                       Col width, AttentionMode mode,
                                       MaskPolicy mask = MaskPolicy::kSegment)
      const TCB_BITWISE;

  /// The previous production kernel: fused masking (each query walks only
  /// its admitted spans) but two-pass softmax — a full span-wide score
  /// buffer per query, one pass for scores + max, one for exp/normalize.
  /// Kept as the head-to-head baseline the flash kernel is benchmarked
  /// against (BM_AttentionFused) and as a second differential oracle.
  [[nodiscard]] Tensor encoder_forward_fused(
      const Tensor& x, const BatchPlan& plan, Col width, AttentionMode mode,
      MaskPolicy mask = MaskPolicy::kSegment) const TCB_BITWISE;

  /// The pre-optimization execution: materializes every task's full w x w
  /// score matrix, masks it in a second sweep, then runs softmax and the
  /// value product with scalar loops (paper Fig. 6 literally). Kept as the
  /// reference the fused kernel is differentially tested against, and as the
  /// baseline BM_AttentionPureRef measures.
  /// TCB_REASSOC: the scalar loops here are the tolerance-governed oracle
  /// the fast kernels are ULP-compared against, not part of the bitwise
  /// closure.
  [[nodiscard]] Tensor encoder_forward_reference(
      const Tensor& x, const BatchPlan& plan, Col width, AttentionMode mode,
      MaskPolicy mask = MaskPolicy::kSegment) const TCB_REASSOC;

  [[nodiscard]] Index n_heads() const noexcept { return n_heads_; }
  [[nodiscard]] Index head_dim() const noexcept { return head_dim_; }

  /// Projection weights, exposed for the step-wise decoder which drives the
  /// same parameters through cached K/V.
  [[nodiscard]] const Linear& wq() const noexcept TCB_LIFETIME_BOUND {
    return wq_;
  }
  [[nodiscard]] const Linear& wk() const noexcept TCB_LIFETIME_BOUND {
    return wk_;
  }
  [[nodiscard]] const Linear& wv() const noexcept TCB_LIFETIME_BOUND {
    return wv_;
  }
  [[nodiscard]] const Linear& wo() const noexcept TCB_LIFETIME_BOUND {
    return wo_;
  }

 private:
  Linear wq_, wk_, wv_, wo_;
  Index n_heads_ = 0;
  Index head_dim_ = 0;
};

/// Counts the score-matrix entries each mode computes for `plan` (per head,
/// per layer). The slotted/pure ratio is the redundancy removed — used by
/// the analytical cost model and asserted in tests.
[[nodiscard]] Index score_entries(const BatchPlan& plan, Col width,
                                  AttentionMode mode);

}  // namespace tcb
