#include "nn/classifier.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace tcb {

ClassificationHead::ClassificationHead(Index d_model, Index n_classes,
                                       std::uint64_t seed) {
  if (d_model <= 0 || n_classes <= 1)
    throw std::invalid_argument("ClassificationHead: need d_model > 0, >= 2 classes");
  Rng rng(seed);
  proj_ = Linear(d_model, n_classes, rng);
}

std::unordered_map<RequestId, std::vector<float>> ClassificationHead::logits(
    const EncoderMemory& memory) const {
  const Index d = proj_.in_features();
  if (memory.states.rank() != 2 || memory.states.dim(1) != d)
    throw std::invalid_argument("ClassificationHead: d_model mismatch");

  // Mean-pool every segment over its own span only.
  std::vector<RequestId> ids;
  Index segments = 0;
  for (const auto& row : memory.plan.rows)
    segments += static_cast<Index>(row.segments.size());
  Tensor pooled(Shape{segments, d});
  Index cursor = 0;
  for (std::size_t r = 0; r < memory.plan.rows.size(); ++r) {
    for (const auto& seg : memory.plan.rows[r].segments) {
      float* out = pooled.row(cursor);
      for (Index i = 0; i < seg.length; ++i) {
        const float* state = memory.states.row(static_cast<Index>(flat_offset(
            Row{static_cast<Index>(r)}, seg.begin_col() + i, memory.width)));
        for (Index c = 0; c < d; ++c) out[c] += state[c];
      }
      const float inv = 1.0f / static_cast<float>(seg.length);
      for (Index c = 0; c < d; ++c) out[c] *= inv;
      ids.push_back(seg.request_id);
      ++cursor;
    }
  }

  const Tensor scores = proj_.forward(pooled);
  std::unordered_map<RequestId, std::vector<float>> result;
  for (Index i = 0; i < segments; ++i) {
    const float* row = scores.row(i);
    result.emplace(ids[static_cast<std::size_t>(i)],
                   std::vector<float>(row, row + n_classes()));
  }
  return result;
}

std::unordered_map<RequestId, Index> ClassificationHead::classify(
    const EncoderMemory& memory) const {
  std::unordered_map<RequestId, Index> result;
  for (auto& [id, scores] : logits(memory)) {
    Index best = 0;
    for (Index c = 1; c < static_cast<Index>(scores.size()); ++c)
      if (scores[static_cast<std::size_t>(c)] >
          scores[static_cast<std::size_t>(best)])
        best = c;
    result.emplace(id, best);
  }
  return result;
}

}  // namespace tcb
