#include "nn/linear.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace tcb {

Linear::Linear(Index in, Index out, Rng& rng)
    : weight_(Tensor::random_uniform(
          Shape{in, out}, rng, 1.0f / std::sqrt(static_cast<float>(in)))),
      bias_(Shape{out}) {}

Tensor Linear::forward(const Tensor& x) const {
  Tensor y;
  forward(x, y);
  return y;
}

void Linear::forward(const Tensor& x, Tensor& y) const {
  matmul(x, weight_, y);
  add_bias_inplace(y, bias_);
}

}  // namespace tcb
