// Sinusoidal positional encoding (paper Eq. 1-2, after Vaswani et al.) with
// the two application modes the paper contrasts in Fig. 5:
//
//   * traditional — every batch-row position p gets PE(p): correct when a row
//     holds one request, wrong under concatenation (tokens of the second
//     request would look like a continuation of the first).
//   * separate    — each concatenated request restarts at PE(0): TCB's
//     customization (§4.1.1), required for correct inference.
#pragma once

#include "batching/batch_plan.hpp"
#include "tensor/tensor.hpp"
#include "util/numeric.hpp"

namespace tcb {

class SinusoidalPositionalEncoding {
 public:
  SinusoidalPositionalEncoding() = default;
  SinusoidalPositionalEncoding(Index max_len, Index d_model);

  [[nodiscard]] Index max_len() const noexcept { return table_.rank() ? table_.dim(0) : 0; }

  /// PE row for position `pos`. Pos is the *within-request* position axis:
  /// under TCB's separate encoding it restarts at Pos{0} per segment, so a
  /// caller cannot accidentally feed a batch column where a request-local
  /// position belongs.
  [[nodiscard]] const float* at(Pos pos) const TCB_BITWISE;

  /// Adds PE(column index) to every position of x, which holds `rows` rows of
  /// `width` positions flattened to (rows*width, d). Paper Fig. 5(a).
  void add_traditional(Tensor& x, Row rows, Col width) const;

  /// Adds PE(position within segment) to the positions covered by segments of
  /// `plan`; padding positions receive no PE. Paper Fig. 5(b). Positions are
  /// segment-relative, so a request's PE rows never depend on its placement:
  /// concat-invariant (add_traditional deliberately is not — Fig. 5(a)).
  void add_separate(Tensor& x, const BatchPlan& plan, Col width) const
      TCB_BITWISE;

 private:
  Tensor table_;  ///< (max_len, d_model)
};

}  // namespace tcb
