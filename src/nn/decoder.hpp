// Auto-regressive decoder with concat-aware, resumable decoding.
//
// Each request placed in the encoder batch gets a decode "track". Tracks in
// the same row (pure ConcatBatching) or the same slot (slotted) form a group:
// a track's self-attention and cross-attention compute scores over the whole
// group's cached keys / source span — exactly the redundant computation the
// paper describes — and a segment mask removes the foreign contributions
// before softmax. The slotted path's groups are smaller, which is where its
// decoder-side saving comes from.
//
// Decoding is driven through DecodeSession: one explicit step() per decoder
// iteration over persistent per-track K/V cache state, so a batch can be
// suspended between iterations, finished slots can be released to a
// SlotAllocator, and newly-admitted requests can be spliced into vacated
// slots mid-batch (continuous iteration-level batching, DESIGN.md §15).
// greedy_decode() survives as the run-to-completion wrapper: construct a
// session, step it dry, take the result — bitwise identical to the old
// monolithic loop (tests/nn/decode_session_test.cpp freezes that).
//
// Early memory cleaning (paper §4.2.2): under the slotted scheme, when every
// track of a slot has finished, that slot's K/V caches are released
// immediately; under pure ConcatBatching request data cannot be separated
// from the row tensor, so caches are only released when the whole batch
// completes. The decoder accounts peak, early-freed, and reclaimable KV
// bytes (bytes whose track had finished but that the scheme could not free
// early) so the difference — and the honesty gap between "could free" and
// "did free" — is measurable per scheme.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "batching/request.hpp"
#include "nn/attention.hpp"
#include "nn/feed_forward.hpp"
#include "nn/model_config.hpp"
#include "util/lifetime.hpp"

namespace tcb {

class Seq2SeqModel;

/// Encoded source batch — the decoder's input. Lives here (not model.hpp)
/// because DecodeSession owns one by value; Seq2SeqModel::encode() produces
/// it.
struct EncoderMemory {
  Tensor states;   ///< (rows * width, d_model)
  BatchPlan plan;  ///< source layout
  Col width{0};    ///< materialized width of the encoded batch
};

class DecoderLayer {
 public:
  DecoderLayer(const ModelConfig& cfg, Rng& rng);

  [[nodiscard]] const MultiHeadAttention& self_attn() const noexcept
      TCB_LIFETIME_BOUND {
    return self_attn_;
  }
  [[nodiscard]] const MultiHeadAttention& cross_attn() const noexcept
      TCB_LIFETIME_BOUND {
    return cross_attn_;
  }
  [[nodiscard]] const FeedForward& ffn() const noexcept TCB_LIFETIME_BOUND {
    return ffn_;
  }
  [[nodiscard]] const Tensor& ln_gamma(int which) const TCB_LIFETIME_BOUND {
    return ln_gamma_.at(static_cast<std::size_t>(which));
  }
  [[nodiscard]] const Tensor& ln_beta(int which) const TCB_LIFETIME_BOUND {
    return ln_beta_.at(static_cast<std::size_t>(which));
  }
  [[nodiscard]] float eps() const noexcept { return eps_; }

 private:
  MultiHeadAttention self_attn_;
  MultiHeadAttention cross_attn_;
  FeedForward ffn_;
  std::vector<Tensor> ln_gamma_, ln_beta_;  ///< three LayerNorms
  float eps_;
};

/// One request's decoding state. The source coordinates carry their axis in
/// the type: mixing up the batch row, the slot, and the column offset of a
/// track is exactly the kind of swap that used to type-check.
struct DecodeTrack {
  RequestId request_id = -1;
  Row row{0};             ///< batch row in the source plan
  Slot slot{0};           ///< slot within the row (0 when unslotted)
  Index seg_index = 0;    ///< index of the request's segment within the row
  Col src_offset{0};      ///< source span start (columns)
  Index src_len = 0;
  std::vector<Index> emitted;
  bool finished = false;
  /// True for tracks admitted by DecodeSession::splice(); their source
  /// segment is not in the formation-time plan, so plan-derived debug checks
  /// are skipped for them.
  bool spliced = false;
};

struct DecodeResult {
  /// Generated token ids per request (EOS, if produced, is trimmed).
  std::unordered_map<RequestId, std::vector<Index>> outputs;
  Index steps = 0;
  /// Peak bytes of K/V cache held simultaneously, under the scheme's
  /// memory-cleaning policy.
  std::size_t peak_kv_bytes = 0;
  /// Bytes released before the batch completed (slotted early cleaning).
  std::size_t early_freed_bytes = 0;
  /// Bytes that *became eligible* for release before the batch completed
  /// (their track had emitted its last token) — whether or not the scheme
  /// could actually free them. early_freed_bytes / reclaimable_kv_bytes is
  /// the honest per-scheme reclamation ratio: 0 for pure concat and naive
  /// rows (caches die only with the whole batch), 1 for slotted early
  /// cleaning at slot granularity.
  std::size_t reclaimable_kv_bytes = 0;
};

/// Next-token selection rule.
enum class DecodeStrategy : std::uint8_t {
  kGreedy,  ///< argmax (deterministic)
  kTopK,    ///< sample from the top-k logits with temperature
};

struct DecodeOptions {
  AttentionMode mode = AttentionMode::kPureConcat;
  Index max_steps = 32;
  DecodeStrategy strategy = DecodeStrategy::kGreedy;
  Index top_k = 4;           ///< kTopK: candidate pool size
  float temperature = 1.0f;  ///< kTopK: logit temperature (> 0)
  /// kTopK: base seed; each request gets its own deterministic stream
  /// (forked by request id), so sampled outputs are identical no matter how
  /// the request is batched — the equivalence property extends to sampling.
  std::uint64_t sample_seed = 1;
  bool early_memory_cleaning = false;  ///< effective under kSlotted only
  /// Translation-style budget: request n decodes at most min(max_steps,
  /// src_len(n)) tokens, so requests finish at different times (what makes
  /// early memory cleaning effective — paper §4.2.2's observation that
  /// "inference results of requests in a batch are generated at different
  /// time").
  bool cap_at_source_length = false;
  /// Options for the mini-encode DecodeSession::splice() runs for spliced
  /// requests (must match how the original batch was encoded; the defaults
  /// are TCB's correct configuration).
  bool separate_positional_encoding = true;
  MaskPolicy mask_policy = MaskPolicy::kSegment;
};

/// A slot whose every track finished — vacated and ready for re-use by the
/// continuous-batching coordinator. `begin`/`width` give the reusable column
/// span of the row (the slot span under kSlotted, the whole row otherwise).
struct SlotRelease {
  Row row{0};
  Slot slot{0};
  Col begin{0};
  Index width = 0;
  std::vector<RequestId> finished;  ///< the requests that occupied it
};

/// What one decoder iteration produced, beyond the cached state.
struct DecodeStepOutcome {
  /// Requests that emitted their final token during this iteration.
  std::vector<RequestId> finished;
  /// Slots whose last track finished during this iteration (their K/V caches
  /// are additionally freed when early cleaning is active).
  std::vector<SlotRelease> released;
};

/// Resumable decoding over an encoded batch: one step() per decoder
/// iteration, with slot release events out and mid-batch request splicing
/// in. The session owns its EncoderMemory (splicing mutates the encoded
/// states in place).
///
/// Driving a session to completion is bitwise identical to the frozen
/// monolithic decode loop: token selection, KV byte accounting and step
/// count all match exactly (tests/nn/decode_session_test.cpp). Splicing
/// preserves the paper's concat-equivalence invariant: a spliced request's
/// tokens are bitwise identical to decoding it alone, because its encode is
/// span-relative and its group never mixes unmasked foreign state.
class DecodeSession {
 public:
  /// `model` must outlive the session; `memory` is consumed.
  DecodeSession(const Seq2SeqModel& model, EncoderMemory memory,
                DecodeOptions opts);
  ~DecodeSession();

  DecodeSession(const DecodeSession&) = delete;
  DecodeSession& operator=(const DecodeSession&) = delete;

  /// True when no track is active (every emitted list is final).
  [[nodiscard]] bool done() const noexcept;
  /// Iterations run so far (== DecodeResult::steps at completion).
  [[nodiscard]] Index steps() const noexcept { return step_count_; }
  /// Live tracks, formation-time and spliced, in admission order.
  [[nodiscard]] const std::vector<DecodeTrack>& tracks() const noexcept
      TCB_LIFETIME_BOUND {
    return tracks_;
  }
  /// K/V bytes currently resident (for occupancy reporting).
  [[nodiscard]] std::size_t live_kv_bytes() const noexcept {
    return cur_kv_bytes_;
  }

  /// Runs one decoder iteration over every active track. Must not be called
  /// when done().
  DecodeStepOutcome step();

  /// Splices `reqs` into the vacated span [begin, begin + width) of `row`:
  /// encodes them alone (separate PE, segment mask — so their states are
  /// bitwise what any batch would produce), overwrites the span's encoder
  /// states and cross-K/V, and admits one fresh decode track per request as
  /// a new group. The slot must have been released (or never occupied) and
  /// the requests' total length must fit `width`. Requests must carry
  /// tokens.
  void splice(Row row, Slot slot, Col begin, Index width,
              const std::vector<Request>& reqs);

  /// Final outputs and accounting; the session must be done(). Call once.
  [[nodiscard]] DecodeResult take_result();

 private:
  struct Group {
    std::vector<std::size_t> members;  ///< track indices
    Row row{0};
    Slot slot{0};
    Col begin{0};     ///< reusable span start (column)
    Index width = 0;  ///< reusable span width
    bool released = false;   ///< K/V caches freed (early cleaning)
    bool completed = false;  ///< all members finished (release event fired)
  };

  /// Per-decoder-layer mutable state.
  struct LayerState {
    std::vector<std::vector<float>> k_cache;  ///< per track, [step][d]
    std::vector<std::vector<float>> v_cache;
    Tensor cross_k;  ///< (src_rows * src_width, d), computed once
    Tensor cross_v;
  };

  [[nodiscard]] std::vector<std::size_t> active_tracks() const;
  void append_track(DecodeTrack track, std::size_t group_index);

  const Seq2SeqModel& model_;
  EncoderMemory memory_;
  DecodeOptions opts_;
  bool slotted_ = false;
  Index max_steps_ = 0;
  std::vector<DecodeTrack> tracks_;
  std::vector<Group> groups_;
  std::vector<std::size_t> group_of_;  ///< track index -> group index
  std::vector<LayerState> states_;     ///< one per decoder layer
  std::vector<Rng> track_rng_;         ///< kTopK per-request streams
  std::size_t cur_kv_bytes_ = 0;
  Index step_count_ = 0;
  DecodeResult result_;
};

/// Runs greedy decoding for every request of an encoded batch
/// (run-to-completion wrapper over DecodeSession).
[[nodiscard]] DecodeResult greedy_decode(const Seq2SeqModel& model,
                                         const EncoderMemory& memory,
                                         const DecodeOptions& opts);

}  // namespace tcb
