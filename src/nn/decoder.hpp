// Auto-regressive decoder with concat-aware greedy decoding.
//
// Each request placed in the encoder batch gets a decode "track". Tracks in
// the same row (pure ConcatBatching) or the same slot (slotted) form a group:
// a track's self-attention and cross-attention compute scores over the whole
// group's cached keys / source span — exactly the redundant computation the
// paper describes — and a segment mask removes the foreign contributions
// before softmax. The slotted path's groups are smaller, which is where its
// decoder-side saving comes from.
//
// Early memory cleaning (paper §4.2.2): under the slotted scheme, when every
// track of a slot has finished, that slot's K/V caches are released
// immediately; under pure ConcatBatching request data cannot be separated
// from the row tensor, so caches are only released when the whole batch
// completes. The decoder accounts peak and early-freed KV bytes so the
// difference is measurable.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "nn/attention.hpp"
#include "nn/feed_forward.hpp"
#include "nn/model_config.hpp"
#include "util/lifetime.hpp"

namespace tcb {

class Seq2SeqModel;
struct EncoderMemory;

class DecoderLayer {
 public:
  DecoderLayer(const ModelConfig& cfg, Rng& rng);

  [[nodiscard]] const MultiHeadAttention& self_attn() const noexcept
      TCB_LIFETIME_BOUND {
    return self_attn_;
  }
  [[nodiscard]] const MultiHeadAttention& cross_attn() const noexcept
      TCB_LIFETIME_BOUND {
    return cross_attn_;
  }
  [[nodiscard]] const FeedForward& ffn() const noexcept TCB_LIFETIME_BOUND {
    return ffn_;
  }
  [[nodiscard]] const Tensor& ln_gamma(int which) const TCB_LIFETIME_BOUND {
    return ln_gamma_.at(static_cast<std::size_t>(which));
  }
  [[nodiscard]] const Tensor& ln_beta(int which) const TCB_LIFETIME_BOUND {
    return ln_beta_.at(static_cast<std::size_t>(which));
  }
  [[nodiscard]] float eps() const noexcept { return eps_; }

 private:
  MultiHeadAttention self_attn_;
  MultiHeadAttention cross_attn_;
  FeedForward ffn_;
  std::vector<Tensor> ln_gamma_, ln_beta_;  ///< three LayerNorms
  float eps_;
};

/// One request's decoding state. The source coordinates carry their axis in
/// the type: mixing up the batch row, the slot, and the column offset of a
/// track is exactly the kind of swap that used to type-check.
struct DecodeTrack {
  RequestId request_id = -1;
  Row row{0};             ///< batch row in the source plan
  Slot slot{0};           ///< slot within the row (0 when unslotted)
  Index seg_index = 0;    ///< index of the request's segment within the row
  Col src_offset{0};      ///< source span start (columns)
  Index src_len = 0;
  std::vector<Index> emitted;
  bool finished = false;
};

struct DecodeResult {
  /// Generated token ids per request (EOS, if produced, is trimmed).
  std::unordered_map<RequestId, std::vector<Index>> outputs;
  Index steps = 0;
  /// Peak bytes of K/V cache held simultaneously, under the scheme's
  /// memory-cleaning policy.
  std::size_t peak_kv_bytes = 0;
  /// Bytes released before the batch completed (slotted early cleaning).
  std::size_t early_freed_bytes = 0;
};

/// Next-token selection rule.
enum class DecodeStrategy : std::uint8_t {
  kGreedy,  ///< argmax (deterministic)
  kTopK,    ///< sample from the top-k logits with temperature
};

struct DecodeOptions {
  AttentionMode mode = AttentionMode::kPureConcat;
  Index max_steps = 32;
  DecodeStrategy strategy = DecodeStrategy::kGreedy;
  Index top_k = 4;           ///< kTopK: candidate pool size
  float temperature = 1.0f;  ///< kTopK: logit temperature (> 0)
  /// kTopK: base seed; each request gets its own deterministic stream
  /// (forked by request id), so sampled outputs are identical no matter how
  /// the request is batched — the equivalence property extends to sampling.
  std::uint64_t sample_seed = 1;
  bool early_memory_cleaning = false;  ///< effective under kSlotted only
  /// Translation-style budget: request n decodes at most min(max_steps,
  /// src_len(n)) tokens, so requests finish at different times (what makes
  /// early memory cleaning effective — paper §4.2.2's observation that
  /// "inference results of requests in a batch are generated at different
  /// time").
  bool cap_at_source_length = false;
};

/// Runs greedy decoding for every request of an encoded batch.
[[nodiscard]] DecodeResult greedy_decode(const Seq2SeqModel& model,
                                         const EncoderMemory& memory,
                                         const DecodeOptions& opts);

}  // namespace tcb
