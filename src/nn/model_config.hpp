// Architecture hyper-parameters of the Seq2Seq transformer (paper §6.1: a
// Vaswani encoder-decoder with 3 encoder and 3 decoder layers, 8 attention
// heads, max sentence length 400). Dimensions are configurable; the default
// is scaled to finish in seconds on a small CPU box while preserving the
// attention/GEMM cost ratio the batching experiments depend on.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace tcb {

struct ModelConfig {
  Index d_model = 128;          ///< embedding width
  Index n_heads = 8;            ///< self-attention heads (paper: 8)
  Index d_ff = 512;             ///< feed-forward inner width
  Index n_encoder_layers = 3;   ///< paper: 3
  Index n_decoder_layers = 3;   ///< paper: 3
  Index vocab_size = 1024;      ///< includes PAD/BOS/EOS
  Index max_len = 512;          ///< positional-encoding table size (paper: 400)
  float layer_norm_eps = 1e-5f;
  std::uint64_t seed = 42;      ///< weight-init seed; fixes the whole model

  [[nodiscard]] Index head_dim() const noexcept { return d_model / n_heads; }

  /// Throws std::invalid_argument on inconsistent settings
  /// (e.g. d_model % n_heads != 0).
  void validate() const;

  /// The paper's evaluation configuration (d_model chosen so d_ff = 3072
  /// mirrors "hidden dimension of 3072"); used by the analytical cost model's
  /// V100-like profile, not by the CPU engine.
  [[nodiscard]] static ModelConfig paper_scale();

  /// Tiny configuration for unit tests.
  [[nodiscard]] static ModelConfig test_scale();
};

}  // namespace tcb
