// Affine layer y = xW + b.
#pragma once

#include "tensor/tensor.hpp"
#include "util/lifetime.hpp"
#include "util/numeric.hpp"

namespace tcb {

class Linear {
 public:
  Linear() = default;

  /// Weights U[-scale, scale] with scale = 1/sqrt(in); bias zero.
  Linear(Index in, Index out, Rng& rng);

  [[nodiscard]] Index in_features() const noexcept { return weight_.rank() ? weight_.dim(0) : 0; }
  [[nodiscard]] Index out_features() const noexcept { return weight_.rank() ? weight_.dim(1) : 0; }

  /// x: (m, in) -> (m, out). Row r of the output depends only on row r of
  /// x — bitwise-identical whatever else is in the batch.
  [[nodiscard]] Tensor forward(const Tensor& x) const TCB_BITWISE;
  void forward(const Tensor& x, Tensor& y) const TCB_BITWISE;

  [[nodiscard]] const Tensor& weight() const noexcept TCB_LIFETIME_BOUND {
    return weight_;
  }
  [[nodiscard]] const Tensor& bias() const noexcept TCB_LIFETIME_BOUND {
    return bias_;
  }

 private:
  Tensor weight_;  ///< (in, out)
  Tensor bias_;    ///< (out)
};

}  // namespace tcb
