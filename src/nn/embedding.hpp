// Token-id -> feature-vector lookup table.
#pragma once

#include <span>

#include "tensor/tensor.hpp"
#include "util/numeric.hpp"

namespace tcb {

class Embedding {
 public:
  Embedding() = default;
  Embedding(Index vocab, Index d_model, Rng& rng);

  [[nodiscard]] Index vocab() const noexcept { return table_.rank() ? table_.dim(0) : 0; }
  [[nodiscard]] Index d_model() const noexcept { return table_.rank() ? table_.dim(1) : 0; }

  /// ids (n) -> embeddings (n, d_model). Out-of-range ids throw.
  /// A pure per-id copy: trivially concat-invariant.
  [[nodiscard]] Tensor lookup(std::span<const Index> ids) const TCB_BITWISE;

 private:
  Tensor table_;  ///< (vocab, d_model)
};

}  // namespace tcb
