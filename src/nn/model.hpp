// Seq2SeqModel: the paper's evaluation model (§6.1) — a Vaswani
// encoder-decoder transformer with TCB's engine customizations (separate
// positional encoding, concat-aware masked attention, slotted attention,
// early memory cleaning).
//
// All weights are deterministic functions of ModelConfig::seed, so two model
// instances with the same config are identical — the equivalence tests and
// the benches rely on this.
#pragma once

#include "batching/packed_batch.hpp"
#include "nn/decoder.hpp"
#include "nn/embedding.hpp"
#include "nn/encoder.hpp"
#include "nn/positional_encoding.hpp"
#include "util/lifetime.hpp"
#include "util/numeric.hpp"

namespace tcb {

// EncoderMemory lives in nn/decoder.hpp (DecodeSession holds one by value).

struct InferenceOptions {
  AttentionMode mode = AttentionMode::kPureConcat;
  /// TCB's separate positional encoding (paper §4.1.1). Turning it off
  /// applies the traditional whole-row encoding — wrong under concatenation;
  /// kept for the correctness demonstrations.
  bool separate_positional_encoding = true;
  /// TCB's customized attention mask (paper §4.1.2). kRowShared demonstrates
  /// the wrong results the default inference algorithm would produce.
  MaskPolicy mask_policy = MaskPolicy::kSegment;
  Index max_decode_steps = 32;
  bool early_memory_cleaning = false;
  /// See DecodeOptions::cap_at_source_length.
  bool cap_decode_at_source_length = false;
  /// Next-token rule; kTopK samples with per-request streams, preserving the
  /// batching-equivalence property (see DecodeOptions).
  DecodeStrategy decode_strategy = DecodeStrategy::kGreedy;
  Index top_k = 4;
  float temperature = 1.0f;
  std::uint64_t sample_seed = 1;
};

struct InferenceResult {
  std::unordered_map<RequestId, std::vector<Index>> outputs;
  Index decode_steps = 0;
  std::size_t peak_kv_bytes = 0;
  std::size_t early_freed_bytes = 0;
  /// See DecodeResult::reclaimable_kv_bytes.
  std::size_t reclaimable_kv_bytes = 0;
};

class Seq2SeqModel {
 public:
  explicit Seq2SeqModel(ModelConfig cfg);

  [[nodiscard]] const ModelConfig& config() const noexcept TCB_LIFETIME_BOUND {
    return cfg_;
  }

  /// Runs the encoder stack over a packed batch.
  /// TCB_BITWISE under the default options (separate positional encoding +
  /// segment mask): a request's encoded states are identical whatever rides
  /// alongside it. The traditional-PE / row-shared fallbacks break that by
  /// design — they exist as the paper's wrong-baseline demonstrations.
  [[nodiscard]] EncoderMemory encode(const PackedBatch& batch,
                                     const InferenceOptions& opts) const
      TCB_BITWISE;

  /// Full inference: encode + greedy decode, returning generated tokens per
  /// request.
  [[nodiscard]] InferenceResult infer(const PackedBatch& batch,
                                      const InferenceOptions& opts) const;

  // Internals exposed to the step-wise decoder ------------------------------
  [[nodiscard]] const Embedding& embedding() const noexcept TCB_LIFETIME_BOUND {
    return embedding_;
  }
  [[nodiscard]] const SinusoidalPositionalEncoding& positional_encoding()
      const noexcept TCB_LIFETIME_BOUND {
    return pe_;
  }
  [[nodiscard]] const std::vector<DecoderLayer>& decoder_layers() const noexcept
      TCB_LIFETIME_BOUND {
    return decoder_layers_;
  }
  [[nodiscard]] const Linear& output_projection() const noexcept
      TCB_LIFETIME_BOUND {
    return output_proj_;
  }

 private:
  ModelConfig cfg_;
  Embedding embedding_;
  SinusoidalPositionalEncoding pe_;
  Encoder encoder_;
  std::vector<DecoderLayer> decoder_layers_;
  Linear output_proj_;
};

}  // namespace tcb
