// Capability-annotated synchronization layer (DESIGN.md §9).
//
// Every mutex and condition variable in the engine goes through the wrappers
// below, for two reasons:
//
//   * Clang Thread Safety Analysis. `tcb::Mutex` is a capability and
//     `tcb::MutexLock` a scoped capability, so shared state declared
//     `TCB_GUARDED_BY(mutex_)` is *compile-time checked*: touching it without
//     the lock, calling a `TCB_REQUIRES` function lock-free, or re-entering a
//     `TCB_EXCLUDES` entry point while holding the lock is a build error
//     under `-Werror=thread-safety-analysis` (the `clang-tsa` preset / CI
//     job). TSan stays as the dynamic complement; the static analysis covers
//     every path on every build, not just the interleavings a run happens to
//     hit.
//   * One choke point. tcb-lint's `use-tcb-sync` rule bans raw `std::mutex`,
//     `std::condition_variable`, `std::lock_guard` and `std::unique_lock`
//     outside this header, so lock discipline cannot quietly fork per module.
//
// The macros compile to nothing on non-clang compilers (gcc builds see plain
// `std::mutex` behavior), and the wrappers add no state: the static_asserts
// at the bottom pin size and alignment to the std counterparts, the same
// zero-overhead contract `strong_index.hpp` makes for the index types.
//
// Annotation cheat sheet (the full attribute reference is in the clang docs):
//
//   TCB_GUARDED_BY(m)     member may only be read/written while holding m
//   TCB_PT_GUARDED_BY(m)  pointer member: the *pointee* is guarded by m
//   TCB_REQUIRES(m)       function must be called with m held
//   TCB_EXCLUDES(m)       function must be called with m NOT held (it will
//                         acquire m itself; re-entry would deadlock)
//   TCB_ACQUIRE(m) / TCB_RELEASE(m)   function acquires / releases m
//   TCB_ACQUIRED_BEFORE/AFTER(...)    documents (and, under
//                         -Wthread-safety-beta, checks) lock ordering
//   TCB_GUARDS(...)       documentation-only: on a Mutex member, lists the
//                         state it protects (tcb-lint's annotated-shared-state
//                         rule requires it; see below)
//   TCB_LOCK_FREE         documentation-only: marks a deliberately unguarded
//                         atomic member (published with acquire/release)
//
// `TCB_GUARDS` / `TCB_LOCK_FREE` expand to nothing on every compiler; they
// exist so the capability map is written at the declaration site where the
// `annotated-shared-state` lint rule can insist on it, instead of drifting in
// a comment nobody updates.
#pragma once

#include <condition_variable>
#include <mutex>
#include <type_traits>
#include <utility>

#if defined(__clang__) && !defined(SWIG)
#define TCB_TSA_ATTRIBUTE(x) __attribute__((x))
#else
#define TCB_TSA_ATTRIBUTE(x)  // compiled away off-clang
#endif

#define TCB_CAPABILITY(x) TCB_TSA_ATTRIBUTE(capability(x))
#define TCB_SCOPED_CAPABILITY TCB_TSA_ATTRIBUTE(scoped_lockable)
#define TCB_GUARDED_BY(x) TCB_TSA_ATTRIBUTE(guarded_by(x))
#define TCB_PT_GUARDED_BY(x) TCB_TSA_ATTRIBUTE(pt_guarded_by(x))
#define TCB_REQUIRES(...) TCB_TSA_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define TCB_ACQUIRE(...) TCB_TSA_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define TCB_RELEASE(...) TCB_TSA_ATTRIBUTE(release_capability(__VA_ARGS__))
#define TCB_TRY_ACQUIRE(...) \
  TCB_TSA_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define TCB_EXCLUDES(...) TCB_TSA_ATTRIBUTE(locks_excluded(__VA_ARGS__))
#define TCB_ACQUIRED_BEFORE(...) TCB_TSA_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define TCB_ACQUIRED_AFTER(...) TCB_TSA_ATTRIBUTE(acquired_after(__VA_ARGS__))
#define TCB_RETURN_CAPABILITY(x) TCB_TSA_ATTRIBUTE(lock_returned(x))
#define TCB_ASSERT_CAPABILITY(x) TCB_TSA_ATTRIBUTE(assert_capability(x))
#define TCB_NO_THREAD_SAFETY_ANALYSIS \
  TCB_TSA_ATTRIBUTE(no_thread_safety_analysis)

/// Documentation-only annotations (expand to nothing everywhere); see the
/// header comment and tcb-lint's annotated-shared-state rule.
#define TCB_GUARDS(...)
#define TCB_LOCK_FREE
/// Marks a never-locked `lock_order` anchor mutex (see namespace lock_order
/// below): it exists only as a rank in the canonical acquisition order, so
/// it guards nothing and needs no TCB_GUARDS map.
#define TCB_LOCK_ORDER_ANCHOR

namespace tcb {

class CondVar;

/// A std::mutex carrying the "mutex" capability. Lock it for a scope with
/// MutexLock; lock()/unlock() exist for the rare manual pairing and for
/// adopting code, and are themselves annotated so the analysis tracks them.
class TCB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TCB_ACQUIRE() { m_.lock(); }
  void unlock() TCB_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() TCB_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex m_;
};

/// RAII scope holding a Mutex — the project's lock_guard *and* unique_lock:
/// the held mutex can be waited on through CondVar, which needs the
/// unlock/relock underneath that a plain lock_guard cannot do.
class TCB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) TCB_ACQUIRE(mutex) : lock_(mutex.m_) {}
  ~MutexLock() TCB_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with Mutex/MutexLock. wait() must be called
/// with the lock held (enforced by construction: only a live MutexLock can
/// be passed). As with std::condition_variable, the predicate-less overload
/// is subject to spurious wakeups — call it in a while loop over the guarded
/// condition, which also keeps the analysis checking every condition read.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// The canonical cross-class lock order (DESIGN.md §11), expressed as a
/// chain of never-locked anchor mutexes. TSA's ACQUIRED_BEFORE/AFTER
/// attributes need in-scope capability expressions, and one class's private
/// mutex cannot name another class's private mutex — so each pipeline stage
/// gets an anchor here, the anchors chain into a total order, and every
/// real mutex declares its stage with TCB_ACQUIRED_AFTER(lock_order::...).
/// Under `-Wthread-safety-beta` clang checks the order per TU; tcb-lint's
/// lock-order-graph rule checks the same ranks whole-program, so the two
/// analyses enforce one canonical order:
///
///   admission < formation < execution < pool < latch
///
/// i.e. the admission queue's lock is acquired before (never inside) any
/// batch-formation lock, which precedes the execution ledger, which
/// precedes the thread-pool queue lock, with the pool's completion latch
/// innermost. The anchors are zero-cost: never locked, and `inline` vars
/// of an empty-beyond-std::mutex type.
namespace lock_order {
inline Mutex admission TCB_LOCK_ORDER_ANCHOR;
inline Mutex formation TCB_LOCK_ORDER_ANCHOR
    TCB_ACQUIRED_AFTER(lock_order::admission);
inline Mutex execution TCB_LOCK_ORDER_ANCHOR
    TCB_ACQUIRED_AFTER(lock_order::formation);
inline Mutex pool TCB_LOCK_ORDER_ANCHOR
    TCB_ACQUIRED_AFTER(lock_order::execution);
inline Mutex latch TCB_LOCK_ORDER_ANCHOR
    TCB_ACQUIRED_AFTER(lock_order::pool);
}  // namespace lock_order

// Zero-overhead contract: the wrappers are their std counterparts plus
// compile-time attributes, nothing else. Same guarantee style as
// strong_index.hpp.
static_assert(sizeof(Mutex) == sizeof(std::mutex) &&
                  alignof(Mutex) == alignof(std::mutex),
              "tcb::Mutex must add no state over std::mutex");
static_assert(sizeof(CondVar) == sizeof(std::condition_variable) &&
                  alignof(CondVar) == alignof(std::condition_variable),
              "tcb::CondVar must add no state over std::condition_variable");
static_assert(sizeof(MutexLock) == sizeof(std::unique_lock<std::mutex>) &&
                  alignof(MutexLock) == alignof(std::unique_lock<std::mutex>),
              "tcb::MutexLock must add no state over std::unique_lock");
static_assert(!std::is_copy_constructible_v<Mutex> &&
                  !std::is_copy_constructible_v<MutexLock>,
              "locks and capabilities never copy");

}  // namespace tcb
