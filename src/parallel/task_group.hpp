// TaskGroup — structured join for a set of ThreadPool::submit futures.
//
// The serving pipeline dispatches engine batches to the pool and must not
// let any of them outlive the state they write into. TaskGroup gives that
// guarantee the RAII way: declare the shared state first, the TaskGroup
// after it, and every task is joined (by join() or, on an exception path,
// by the destructor) before the state can be destroyed.
//
// join() rethrows the first task exception it encounters; the destructor
// then still waits for the remaining tasks, so a throwing join never leaves
// a task running against freed state.
#pragma once

#include <functional>
#include <future>
#include <utility>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "util/lifetime.hpp"

namespace tcb {

class TaskGroup {
 public:
  TaskGroup() = default;
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Waits for every task still in flight; exceptions are swallowed here
  /// (call join() to observe them).
  ~TaskGroup() {
    for (auto& f : futures_)
      if (f.valid()) f.wait();
  }

  /// Tracks a future returned by ThreadPool::submit.
  void add(std::future<void> f) { futures_.push_back(std::move(f)); }

  /// Submits `fn` to `pool` and tracks the resulting future in one step —
  /// the sanctioned spelling for reference-capturing worker lambdas. The
  /// callable still TCB_ESCAPES (a worker runs it later), but the group
  /// guarantees the join: declare the captured state above the group and
  /// every task retires before that state can die. tcb-lint's
  /// no-ref-capture-escape rule recognizes exactly this shape.
  void spawn(ThreadPool& pool, std::function<void()> fn TCB_ESCAPES) {
    add(pool.submit(std::move(fn)));
  }

  /// Waits for every tracked task and rethrows the first stored exception.
  /// If one throws, the destructor still waits out the rest.
  void join() {
    for (auto& f : futures_) f.get();
    futures_.clear();
  }

  [[nodiscard]] std::size_t size() const noexcept { return futures_.size(); }

 private:
  std::vector<std::future<void>> futures_;
};

}  // namespace tcb
