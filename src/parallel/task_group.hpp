// TaskGroup — structured join for a set of ThreadPool::submit futures.
//
// The serving pipeline dispatches engine batches to the pool and must not
// let any of them outlive the state they write into. TaskGroup gives that
// guarantee the RAII way: declare the shared state first, the TaskGroup
// after it, and every task is joined (by join() or, on an exception path,
// by the destructor) before the state can be destroyed.
//
// join() rethrows the first task exception it encounters; the destructor
// then still waits for the remaining tasks, so a throwing join never leaves
// a task running against freed state.
#pragma once

#include <future>
#include <utility>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace tcb {

class TaskGroup {
 public:
  TaskGroup() = default;
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Waits for every task still in flight; exceptions are swallowed here
  /// (call join() to observe them).
  ~TaskGroup() {
    for (auto& f : futures_)
      if (f.valid()) f.wait();
  }

  /// Tracks a future returned by ThreadPool::submit.
  void add(std::future<void> f) { futures_.push_back(std::move(f)); }

  /// Waits for every tracked task and rethrows the first stored exception.
  /// If one throws, the destructor still waits out the rest.
  void join() {
    for (auto& f : futures_) f.get();
    futures_.clear();
  }

  [[nodiscard]] std::size_t size() const noexcept { return futures_.size(); }

 private:
  std::vector<std::future<void>> futures_;
};

}  // namespace tcb
