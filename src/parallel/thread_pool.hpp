// Work-sharing thread pool used by the tensor kernels and the slotted
// attention path (paper Fig. 7: "Different slots can run self-attention
// computation in parallel").
//
// The pool exposes two primitives:
//   * submit(fn)              — fire-and-forget task with future.
//   * parallel_for(n, fn)     — static range split across workers; the caller
//                               participates, so a 1-item loop costs nothing.
//
// Design notes (per the C++ Core Guidelines: CP.* rules):
//   * Workers are joined in the destructor (RAII); no detached threads.
//   * No task may block on another parallel_for from inside the pool — the
//     kernels only use flat loops, so nesting simply runs inline.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tcb {

class ThreadPool {
 public:
  /// `workers` = number of extra threads; 0 means run everything inline.
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide pool. Size = TCB_THREADS env var if set, else
  /// hardware_concurrency(). Construction is thread-safe (magic static).
  static ThreadPool& global();

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return threads_.size();
  }
  /// Workers + the calling thread; the natural divisor for static splits.
  [[nodiscard]] std::size_t parallelism() const noexcept {
    return threads_.size() + 1;
  }

  /// Enqueue one task.
  std::future<void> submit(std::function<void()> fn);

  /// Splits [0, n) into contiguous chunks of at least `grain` items and runs
  /// `fn(begin, end)` on each chunk. Blocks until every chunk finishes. The
  /// calling thread executes one chunk itself. Exceptions from chunks are
  /// rethrown (first one wins).
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Convenience wrapper over the global pool with a default grain of 1.
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn,
                  std::size_t grain = 1);

}  // namespace tcb
