// Work-sharing thread pool used by the tensor kernels and the slotted
// attention path (paper Fig. 7: "Different slots can run self-attention
// computation in parallel").
//
// The pool exposes two primitives:
//   * submit(fn)              — fire-and-forget task with future.
//   * parallel_for(n, fn)     — static range split across workers; the caller
//                               participates, so a 1-item loop costs nothing.
//
// Design notes (per the C++ Core Guidelines: CP.* rules):
//   * Workers are joined in the destructor (RAII); no detached threads.
//     Tasks already queued at teardown are drained before the workers exit;
//     submit() racing a teardown runs the task on the calling thread.
//   * parallel_for called from inside a pool task (nested loops, or a
//     submitted task that fans out) runs its whole range inline on that
//     worker — blocking on sibling queue slots would deadlock the pool.
//   * parallel_for's completion latch notifies while holding its mutex, so
//     the caller can never unwind the latch's stack frame while a worker is
//     still signalling it. The suite in tests/parallel/ hammers these paths
//     under TSan.
//   * Lock discipline is compiler-checked: the queue state is
//     TCB_GUARDED_BY(mutex_) and every entry point carries its capability
//     contract, so a clang build with TCB_THREAD_SAFETY=ON proves (not just
//     tests) that no path touches the queue lock-free. See
//     src/parallel/sync.hpp and DESIGN.md §9.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "parallel/sync.hpp"
#include "util/lifetime.hpp"

namespace tcb {

class ThreadPool {
 public:
  /// `workers` = number of extra threads; 0 means run everything inline.
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide pool. Size = TCB_THREADS env var if set, else
  /// hardware_concurrency(). Construction is thread-safe (magic static).
  static ThreadPool& global();

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return threads_.size();
  }
  /// Workers + the calling thread; the natural divisor for static splits.
  [[nodiscard]] std::size_t parallelism() const noexcept {
    return threads_.size() + 1;
  }

  /// Enqueue one task. The callable is TCB_ESCAPES: it is queued and runs
  /// later on a worker thread, so anything it captures by reference must be
  /// kept alive until the returned future is waited on (TaskGroup is the
  /// structured way; tcb-lint's no-ref-capture-escape rule enforces it).
  std::future<void> submit(std::function<void()> fn TCB_ESCAPES)
      TCB_EXCLUDES(mutex_);

  /// Splits [0, n) into contiguous chunks of at least `grain` items and runs
  /// `fn(begin, end)` on each chunk; every dispatched chunk is non-empty.
  /// Blocks until every chunk finishes. The calling thread executes one
  /// chunk itself, and a `grain` of 0 is treated as 1. Exceptions from
  /// chunks are rethrown after all chunks retire (first one wins).
  /// `fn` is TCB_NO_ESCAPE — every chunk retires before this returns, so
  /// by-reference captures of locals are safe by contract.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn
                        TCB_NO_ESCAPE) TCB_EXCLUDES(mutex_);

 private:
  void worker_loop() TCB_EXCLUDES(mutex_);

  /// Immutable after construction; read lock-free by worker_count() et al.
  std::vector<std::thread> threads_;
  Mutex mutex_ TCB_GUARDS(queue_, stop_)
      TCB_ACQUIRED_AFTER(lock_order::pool);
  CondVar cv_;  ///< waited by workers; signalled by submit/parallel_for/dtor
  std::queue<std::function<void()>> queue_ TCB_GUARDED_BY(mutex_);
  bool stop_ TCB_GUARDED_BY(mutex_) = false;
};

/// Convenience wrapper over the global pool with a default grain of 1.
/// `fn` is TCB_NO_ESCAPE, same contract as the member parallel_for.
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn
                      TCB_NO_ESCAPE,
                  std::size_t grain = 1);

}  // namespace tcb
