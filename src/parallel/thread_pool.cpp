#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "util/env.hpp"

namespace tcb {

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool{[] {
    const std::int64_t env = env_int("TCB_THREADS", -1);
    if (env >= 1) return static_cast<std::size_t>(env - 1);
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(hw > 1 ? hw - 1 : 0);
  }()};
  return pool;
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  auto task = std::make_shared<std::packaged_task<void()>>(std::move(fn));
  std::future<void> fut = task->get_future();
  if (threads_.empty()) {
    (*task)();
    return fut;
  }
  {
    const std::lock_guard lock(mutex_);
    queue_.emplace([task] { (*task)(); });
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t max_chunks = (n + grain - 1) / grain;
  const std::size_t chunks = std::min(parallelism(), max_chunks);
  if (chunks <= 1 || threads_.empty()) {
    fn(0, n);
    return;
  }

  const std::size_t step = (n + chunks - 1) / chunks;
  std::atomic<std::size_t> remaining{chunks - 1};
  std::exception_ptr error;
  std::mutex error_mutex;
  std::promise<void> done;
  auto done_future = done.get_future();

  auto run_chunk = [&](std::size_t begin, std::size_t end) {
    try {
      fn(begin, end);
    } catch (...) {
      const std::lock_guard lock(error_mutex);
      if (!error) error = std::current_exception();
    }
  };

  for (std::size_t c = 1; c < chunks; ++c) {
    const std::size_t begin = c * step;
    const std::size_t end = std::min(n, begin + step);
    {
      const std::lock_guard lock(mutex_);
      queue_.emplace([&, begin, end] {
        run_chunk(begin, end);
        if (remaining.fetch_sub(1) == 1) done.set_value();
      });
    }
  }
  cv_.notify_all();

  run_chunk(0, std::min(n, step));
  done_future.wait();

  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn,
                  std::size_t grain) {
  ThreadPool::global().parallel_for(n, grain, fn);
}

}  // namespace tcb
