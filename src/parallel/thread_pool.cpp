#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "util/check.hpp"
#include "util/env.hpp"

namespace tcb {
namespace {

/// True on threads owned by a pool. Nested parallel_for / submit-spawned
/// loops must not block on queue slots their own siblings occupy — a worker
/// that waits for queued chunks while every other worker does the same
/// deadlocks the pool — so nested calls run their range inline instead.
thread_local bool tls_in_worker = false;

/// Stack-allocated completion latch for one parallel_for call. The last
/// worker notifies while *holding* the mutex: the caller cannot return from
/// wait() (and destroy this object) until that worker releases it, so no
/// thread ever touches a dead latch. This is the lifetime guarantee the
/// previous promise/future scheme lacked — promise::set_value() may still be
/// executing inside the promise after the waiter has been released, and the
/// waiter's stack frame (promise included) could be gone by then.
class ForLatch {
 public:
  explicit ForLatch(std::size_t chunks) : remaining_(chunks) {}

  /// Records `err` (first one wins) and retires one chunk.
  void complete(std::exception_ptr err) TCB_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    if (err && !error_) error_ = std::move(err);
    TCB_DCHECK(remaining_ > 0, "ForLatch: more completions than chunks");
    if (--remaining_ == 0) cv_.notify_one();
  }

  void wait() TCB_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (remaining_ != 0) cv_.wait(lock);
  }

  /// Merges the caller chunk's exception under the first-one-wins rule and
  /// returns the winner. Called after wait(), but still locks: the guarded
  /// state has no unlocked back door even on the quiescent path.
  [[nodiscard]] std::exception_ptr take_error(std::exception_ptr caller_err)
      TCB_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    if (caller_err && !error_) error_ = std::move(caller_err);
    return error_;
  }

 private:
  Mutex mutex_ TCB_GUARDS(remaining_, error_)
      TCB_ACQUIRED_AFTER(lock_order::latch);
  CondVar cv_;  ///< signals remaining_ == 0 to the single waiter
  std::size_t remaining_ TCB_GUARDED_BY(mutex_);
  std::exception_ptr error_ TCB_GUARDED_BY(mutex_);
};

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool{[] {
    const std::int64_t env = env_int("TCB_THREADS", -1);
    if (env >= 1) return static_cast<std::size_t>(env - 1);
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(hw > 1 ? hw - 1 : 0);
  }()};
  return pool;
}

std::future<void> ThreadPool::submit(std::function<void()> fn TCB_ESCAPES) {
  auto task = std::make_shared<std::packaged_task<void()>>(std::move(fn));
  std::future<void> fut = task->get_future();
  // No workers — or the pool is tearing down, so the queue will never be
  // drained again: run on the calling thread.
  bool inline_run = threads_.empty();
  if (!inline_run) {
    const MutexLock lock(mutex_);
    if (stop_)
      inline_run = true;
    else
      queue_.emplace([task] { (*task)(); });
  }
  if (inline_run)
    (*task)();
  else
    cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn TCB_NO_ESCAPE) {
  if (n == 0) return;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t max_chunks = (n + grain - 1) / grain;
  std::size_t chunks = std::min(parallelism(), max_chunks);
  // Single chunk, no workers, or a nested call from inside the pool: run the
  // whole range inline on the calling thread.
  if (chunks <= 1 || threads_.empty() || tls_in_worker) {
    fn(0, n);
    return;
  }

  const std::size_t step = (n + chunks - 1) / chunks;
  // Rounding step up can leave trailing chunks empty (n=5, chunks=4 gives
  // step=2 but only 3 real chunks); recompute so no worker ever sees an
  // empty or out-of-range span.
  chunks = (n + step - 1) / step;
  TCB_DCHECK(chunks >= 2, "parallel_for: recomputed chunk count below 2");

  ForLatch latch(chunks - 1);
  {
    const MutexLock lock(mutex_);
    for (std::size_t c = 1; c < chunks; ++c) {
      const std::size_t begin = c * step;
      const std::size_t end = std::min(n, begin + step);
      TCB_DCHECK(begin < end, "parallel_for: empty chunk dispatched");
      queue_.emplace([&latch, &fn, begin, end] {
        std::exception_ptr err;
        try {
          fn(begin, end);
        } catch (...) {
          err = std::current_exception();
        }
        latch.complete(std::move(err));
      });
    }
  }
  cv_.notify_all();

  // The caller executes the first chunk itself; its exception competes with
  // the workers' under the same first-one-wins rule, and the wait below must
  // happen even on a throwing caller chunk — the queued chunks reference this
  // frame's latch and fn.
  std::exception_ptr caller_err;
  try {
    fn(0, step);
  } catch (...) {
    caller_err = std::current_exception();
  }
  latch.wait();

  if (auto err = latch.take_error(std::move(caller_err)))
    std::rethrow_exception(err);
}

void ThreadPool::worker_loop() {
  tls_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      // Manual wait loop (not the predicate overload): the condition reads
      // guarded state, and keeping it in this frame lets the thread-safety
      // analysis check it against the held capability.
      while (!stop_ && queue_.empty()) cv_.wait(lock);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn
                      TCB_NO_ESCAPE,
                  std::size_t grain) {
  ThreadPool::global().parallel_for(n, grain, fn);
}

}  // namespace tcb
