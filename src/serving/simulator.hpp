// Discrete-event serving simulator (paper §3 / §5.1 system model): one or
// more accelerators serve batches priced by a CostModel; whenever a worker
// goes idle the scheduler selects from the pending set, the scheme's batcher
// lays the selection out, and simulated time advances by the batch price.
//
// Since the pipeline refactor (DESIGN.md §10) this class is a thin
// configuration of ServingPipeline: AnalyticalBackend (price, don't
// execute) + WallClock (reports quote real stage overheads — Fig. 16 needs
// scheduler_seconds). TcbSystem::simulate is the VirtualClock flavor.
#pragma once

#include "sched/scheduler.hpp"
#include "serving/cost_model.hpp"
#include "serving/pipeline.hpp"

namespace tcb {

/// How the simulator builds batches: the scheme decides which Batcher runs;
/// for the slotted scheme the slot length comes from the scheduler's
/// Selection (Slotted-DAS) or falls back to `fixed_slot_len`.
struct SimulatorConfig {
  Scheme scheme = Scheme::kConcatPure;
  Index fixed_slot_len = 0;  ///< used when the scheduler does not choose one

  /// Number of accelerators sharing the pending queue. The paper evaluates a
  /// single V100; >1 models the natural scale-out deployment (each idle
  /// worker pulls the next scheduler selection).
  std::size_t workers = 1;

  /// Safety valve: stop after this many batches (0 = unlimited). A correctly
  /// configured run never hits it.
  std::size_t max_batches = 0;

  /// Continuous (iteration-level) batching: price each decode iteration
  /// separately, retire modeled tracks as they finish, and splice pending
  /// requests into the vacated slots mid-batch (DESIGN.md §15).
  bool continuous = false;

  /// Continuous mode tuning — see the matching PipelineConfig fields.
  double splice_min_fill = 0.6;
  std::size_t splice_horizon_steps = 0;
  double splice_misfit_drain = 0.75;
};

class ServingSimulator {
 public:
  ServingSimulator(const Scheduler& scheduler, const CostModel& cost,
                   SimulatorConfig cfg);

  /// Runs the whole trace to completion (every request served or expired).
  /// `trace` must be sorted by arrival. Throughput is normalized by
  /// max(makespan, trace duration).
  [[nodiscard]] ServingReport run(const std::vector<Request>& trace) const;

 private:
  const Scheduler& scheduler_;
  const CostModel& cost_;
  SimulatorConfig cfg_;
};

}  // namespace tcb
