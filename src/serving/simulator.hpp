// Discrete-event serving simulator (paper §3 / §5.1 system model): a single
// accelerator serves one batch at a time; whenever it goes idle the scheduler
// selects from the pending set, the scheme's batcher lays the selection out,
// the cost model prices the batch, and the clock advances by that inference
// time. Requests whose deadline passes while they wait are failed (utility
// 0); requests scheduled by their deadline contribute v_n = 1/l_n.
#pragma once

#include <memory>

#include "batching/batch_plan.hpp"
#include "sched/scheduler.hpp"
#include "serving/cost_model.hpp"
#include "util/stats.hpp"

namespace tcb {

struct ServingReport {
  std::string scheduler;
  std::string scheme;

  std::size_t arrived = 0;
  std::size_t completed = 0;        ///< scheduled by deadline and served
  std::size_t failed = 0;           ///< expired in queue or oversized
  double total_utility = 0.0;       ///< objective (9) of the paper
  double throughput = 0.0;          ///< completed responses / second
  double makespan = 0.0;            ///< time the last batch finished
  std::size_t batches = 0;
  double busy_seconds = 0.0;        ///< accelerator busy time
  double scheduler_seconds = 0.0;   ///< wall time spent inside select()
  Samples latency;                  ///< completion - arrival per request
  Samples batch_seconds;            ///< per-batch inference time
  Samples batch_occupancy;          ///< used tokens / (rows * L) per batch
  Samples batch_requests;           ///< requests per batch
  Samples queue_depth;              ///< pending count at each decision point

  [[nodiscard]] std::string summary() const;
};

/// How the simulator builds batches: the scheme decides which Batcher runs;
/// for the slotted scheme the slot length comes from the scheduler's
/// Selection (Slotted-DAS) or falls back to `fixed_slot_len`.
struct SimulatorConfig {
  Scheme scheme = Scheme::kConcatPure;
  Index fixed_slot_len = 0;  ///< used when the scheduler does not choose one

  /// Number of accelerators sharing the pending queue. The paper evaluates a
  /// single V100; >1 models the natural scale-out deployment (each idle
  /// worker pulls the next scheduler selection).
  std::size_t workers = 1;

  /// Safety valve: stop after this many batches (0 = unlimited). A correctly
  /// configured run never hits it.
  std::size_t max_batches = 0;
};

class ServingSimulator {
 public:
  ServingSimulator(const Scheduler& scheduler, const CostModel& cost,
                   SimulatorConfig cfg);

  /// Runs the whole trace to completion (every request served or expired).
  /// `trace` must be sorted by arrival. Throughput is normalized by
  /// max(makespan, trace duration).
  [[nodiscard]] ServingReport run(const std::vector<Request>& trace) const;

 private:
  const Scheduler& scheduler_;
  const CostModel& cost_;
  SimulatorConfig cfg_;
};

}  // namespace tcb
