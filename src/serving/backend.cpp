#include "serving/backend.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "batching/packed_batch.hpp"
#include "util/check.hpp"

namespace tcb {
namespace {

/// Attention context width per track, in plan traversal order — the same
/// rule AnalyticalCostModel::decode_track_states applies, kept callable per
/// track so spliced admissions extend it.
double track_context(const BatchPlan& plan, const RowLayout& row,
                     Index max_width) {
  const bool slotted = plan.scheme == Scheme::kConcatSlotted;
  const bool concat = slotted || plan.scheme == Scheme::kConcatPure;
  if (slotted) return static_cast<double>(plan.effective_slot_len(row));
  if (concat) return static_cast<double>(row.width);
  return static_cast<double>(max_width);
}

/// Pure-simulation stepped execution: the analytical twin of the engine's
/// DecodeSession. Tracks advance under the model's translation-style decode
/// lengths; groups mirror the decoder's (row under concat, (row, slot) under
/// slotted), so slot releases fire at the same modeled moments the engine's
/// would.
class AnalyticalSteppedExecution final : public SteppedExecution {
 public:
  AnalyticalSteppedExecution(const AnalyticalCostModel& clock,
                             const BatchWork& work)
      : clock_(clock),
        scheme_(work.plan.scheme),
        max_width_(work.plan.max_width()),
        prologue_(clock.encode_seconds(work.plan) +
                  clock.hardware().batch_overhead) {
    const BatchPlan& plan = work.plan;
    const bool slotted =
        plan.scheme == Scheme::kConcatSlotted && plan.slot_len > 0;
    tracks_ = clock_.decode_track_states(plan);
    std::unordered_map<Index, std::size_t> key_to_group;
    std::size_t track_index = 0;
    for (std::size_t r = 0; r < plan.rows.size(); ++r) {
      const RowLayout& row = plan.rows[r];
      for (const Segment& seg : row.segments) {
        ids_.push_back(seg.request_id);
        const Row track_row{static_cast<Index>(r)};
        const Slot track_slot = slotted ? seg.slot_index() : Slot{0};
        const Index key = track_row.value() * (max_width_ + 1) +
                          (slotted ? track_slot.value() : 0);
        auto [it, inserted] = key_to_group.try_emplace(key, groups_.size());
        if (inserted) {
          Group g;
          g.row = track_row;
          g.slot = track_slot;
          if (slotted) {
            const Index z = plan.slot_len;
            g.begin = Col{track_slot.value() * z};
            g.width = std::min(z, row.width - g.begin.value());
          } else {
            g.begin = Col{0};
            g.width = row.width;
          }
          groups_.push_back(std::move(g));
        }
        groups_[it->second].members.push_back(track_index);
        track_index += 1;
      }
    }
  }

  [[nodiscard]] double prologue_seconds() const override { return prologue_; }

  [[nodiscard]] bool done() const override {
    return std::all_of(tracks_.begin(), tracks_.end(),
                       [](const StepTrackState& t) { return t.finished(); });
  }

  [[nodiscard]] StepResult step() override {
    StepResult res;
    const DecodeStepCost cost = clock_.decode_step_cost(tracks_, staged_);
    staged_ = SplicePrefill{};
    TCB_CHECK(cost.active > 0.0,
              "AnalyticalSteppedExecution::step called when done");
    res.seconds = cost.seconds;
    for (std::size_t i = 0; i < tracks_.size(); ++i) {
      if (tracks_[i].finished()) continue;
      tracks_[i].steps_done += 1;
      if (tracks_[i].finished()) res.finished.push_back(ids_[i]);
    }
    for (auto& group : groups_) {
      if (group.completed) continue;
      const bool group_done =
          std::all_of(group.members.begin(), group.members.end(),
                      [&](std::size_t m) { return tracks_[m].finished(); });
      if (!group_done) continue;
      group.completed = true;
      SlotRelease rel;
      rel.row = group.row;
      rel.slot = group.slot;
      rel.begin = group.begin;
      rel.width = group.width;
      for (const auto m : group.members) rel.finished.push_back(ids_[m]);
      res.released.push_back(std::move(rel));
    }
    return res;
  }

  [[nodiscard]] double splice(Row row, Slot slot, Col begin, Index width,
                              std::vector<Request> reqs) override {
    const bool concat = scheme_ == Scheme::kConcatSlotted ||
                        scheme_ == Scheme::kConcatPure;
    Index total_len = 0;
    Group g;
    g.row = row;
    g.slot = slot;
    g.begin = begin;
    g.width = width;
    for (const auto& req : reqs) {
      total_len += req.length;
      StepTrackState st;
      st.decode_len = concat ? req.length : max_width_;
      st.context = concat ? static_cast<double>(width)
                          : static_cast<double>(max_width_);
      g.members.push_back(tracks_.size());
      tracks_.push_back(st);
      ids_.push_back(req.id);
    }
    TCB_CHECK(total_len <= width, "splice: requests overflow the slot span");
    groups_.push_back(std::move(g));
    // Stage the cohort's prefill bill; the next step() fuses it into the
    // iteration kernel (per-cohort quadratic attention, so accumulate the
    // flops per call rather than merging token counts).
    const SplicePrefill bill = clock_.splice_prefill(total_len);
    staged_.tokens += bill.tokens;
    staged_.linear_flops += bill.linear_flops;
    staged_.attention_flops += bill.attention_flops;
    return 0.0;
  }

  [[nodiscard]] BatchExecution finish() override { return {}; }

 private:
  struct Group {
    std::vector<std::size_t> members;
    Row row{0};
    Slot slot{0};
    Col begin{0};
    Index width = 0;
    bool completed = false;
  };

  const AnalyticalCostModel& clock_;
  Scheme scheme_;
  Index max_width_ = 0;
  double prologue_ = 0;
  std::vector<StepTrackState> tracks_;
  std::vector<RequestId> ids_;
  std::vector<Group> groups_;
  SplicePrefill staged_;  ///< spliced prefill awaiting the next fused step
};

/// Real stepped execution: a DecodeSession driven one iteration at a time,
/// each iteration priced from the session's *actual* active tracks with the
/// analytical clock — the engine and the virtual clock agree on exactly
/// which tracks decoded.
class EngineSteppedExecution final : public SteppedExecution {
 public:
  EngineSteppedExecution(std::shared_ptr<const Seq2SeqModel> model,
                         const AnalyticalCostModel& clock,
                         const InferenceOptions& opts, const BatchWork& work)
      : model_(std::move(model)), clock_(clock), scheme_(work.plan.scheme) {
    const BatchPlan& plan = work.plan;
    max_width_ = plan.max_width();
    prologue_ = clock_.encode_seconds(plan) + clock_.hardware().batch_overhead;
    for (const RowLayout& row : plan.rows)
      for (std::size_t s = 0; s < row.segments.size(); ++s)
        contexts_.push_back(track_context(plan, row, max_width_));

    DecodeOptions dopts;
    dopts.mode = opts.mode;
    dopts.max_steps = opts.max_decode_steps;
    dopts.early_memory_cleaning = opts.early_memory_cleaning;
    dopts.cap_at_source_length = opts.cap_decode_at_source_length;
    dopts.strategy = opts.decode_strategy;
    dopts.top_k = opts.top_k;
    dopts.temperature = opts.temperature;
    dopts.sample_seed = opts.sample_seed;
    dopts.separate_positional_encoding = opts.separate_positional_encoding;
    dopts.mask_policy = opts.mask_policy;
    session_.emplace(*model_,
                     model_->encode(pack_batch(plan, work.requests), opts),
                     dopts);
  }

  [[nodiscard]] double prologue_seconds() const override { return prologue_; }

  [[nodiscard]] bool done() const override { return session_->done(); }

  [[nodiscard]] StepResult step() override {
    // Price from the session's live activity *before* the iteration runs:
    // a track at position p pays self-attention over min(p + 1, context).
    std::vector<StepTrackState> priced;
    const auto& tracks = session_->tracks();
    priced.reserve(tracks.size());
    for (std::size_t i = 0; i < tracks.size(); ++i) {
      StepTrackState st;
      st.steps_done = static_cast<Index>(tracks[i].emitted.size());
      st.decode_len = tracks[i].finished ? st.steps_done : st.steps_done + 1;
      st.context = contexts_[i];
      priced.push_back(st);
    }
    StepResult res;
    res.seconds = clock_.decode_step_cost(priced, staged_).seconds;
    staged_ = SplicePrefill{};
    DecodeStepOutcome outcome = session_->step();
    res.finished = std::move(outcome.finished);
    res.released = std::move(outcome.released);
    return res;
  }

  [[nodiscard]] double splice(Row row, Slot slot, Col begin, Index width,
                              std::vector<Request> reqs) override {
    Index total_len = 0;
    for (const auto& req : reqs) total_len += req.length;
    const bool concat = scheme_ == Scheme::kConcatSlotted ||
                        scheme_ == Scheme::kConcatPure;
    session_->splice(row, slot, begin, width, reqs);
    for (std::size_t i = 0; i < reqs.size(); ++i)
      contexts_.push_back(concat ? static_cast<double>(width)
                                 : static_cast<double>(max_width_));
    // Stage the cohort's prefill bill for the next fused iteration (the
    // engine already ran the real mini-encode above; only pricing is staged).
    const SplicePrefill bill = clock_.splice_prefill(total_len);
    staged_.tokens += bill.tokens;
    staged_.linear_flops += bill.linear_flops;
    staged_.attention_flops += bill.attention_flops;
    return 0.0;
  }

  [[nodiscard]] BatchExecution finish() override {
    DecodeResult dec = session_->take_result();
    BatchExecution out;
    out.peak_kv_bytes = dec.peak_kv_bytes;
    out.early_freed_bytes = dec.early_freed_bytes;
    out.reclaimable_kv_bytes = dec.reclaimable_kv_bytes;
    for (auto& [id, tokens] : dec.outputs) {
      Response resp;
      resp.id = id;
      resp.tokens = std::move(tokens);
      out.responses.push_back(std::move(resp));
    }
    return out;
  }

 private:
  std::shared_ptr<const Seq2SeqModel> model_;
  const AnalyticalCostModel& clock_;
  Scheme scheme_;
  Index max_width_ = 0;
  double prologue_ = 0;
  std::vector<double> contexts_;  ///< per track, extended by splice
  SplicePrefill staged_;  ///< spliced prefill awaiting the next fused step
  std::optional<DecodeSession> session_;
};

}  // namespace

std::unique_ptr<SteppedExecution> AnalyticalBackend::begin_stepped(
    const BatchWork& work) const {
  const auto* analytical = dynamic_cast<const AnalyticalCostModel*>(&cost_);
  if (analytical == nullptr) return nullptr;
  return std::make_unique<AnalyticalSteppedExecution>(*analytical, work);
}

EngineBackend::EngineBackend(std::shared_ptr<const Seq2SeqModel> model,
                             const AnalyticalCostModel& clock,
                             InferenceOptions opts,
                             const ClassificationHead* head)
    : model_(std::move(model)), clock_(clock), opts_(opts), head_(head) {
  TCB_CHECK(model_ != nullptr, "EngineBackend: model must not be null");
}

double EngineBackend::batch_seconds(const BatchPlan& plan) const {
  // Encoder-only serving (classification) skips the auto-regressive decode,
  // so its clock advances by encoder + overhead only (paper §5.2).
  const CostBreakdown cost = clock_.breakdown(plan);
  const double seconds = head_ != nullptr
                             ? cost.encoder_seconds + cost.overhead_seconds
                             : cost.total_seconds();
  TCB_CHECK(seconds > 0.0, "EngineBackend: batch clock must advance");
  return seconds;
}

BatchExecution EngineBackend::execute(const BatchWork& work) const {
  const PackedBatch packed = pack_batch(work.plan, work.requests);
  BatchExecution out;
  if (head_ != nullptr) {
    const EncoderMemory memory = model_->encode(packed, opts_);
    for (const auto& [id, label] : head_->classify(memory)) {
      Response resp;
      resp.id = id;
      resp.label = label;
      out.responses.push_back(std::move(resp));
    }
    return out;
  }
  InferenceResult inf = model_->infer(packed, opts_);
  out.peak_kv_bytes = inf.peak_kv_bytes;
  out.early_freed_bytes = inf.early_freed_bytes;
  out.reclaimable_kv_bytes = inf.reclaimable_kv_bytes;
  for (auto& [id, tokens] : inf.outputs) {
    Response resp;
    resp.id = id;
    resp.tokens = std::move(tokens);
    out.responses.push_back(std::move(resp));
  }
  return out;
}

std::unique_ptr<SteppedExecution> EngineBackend::begin_stepped(
    const BatchWork& work) const {
  if (head_ != nullptr) return nullptr;  // encoder-only: nothing to step
  return std::make_unique<EngineSteppedExecution>(model_, clock_, opts_,
                                                  work);
}

void EngineBackend::validate_trace(const std::vector<Request>& trace) const {
  for (const auto& req : trace)
    if (static_cast<Index>(req.tokens.size()) != req.length)
      throw std::invalid_argument(
          "EngineBackend: request " + std::to_string(req.id) +
          " has no token payload (generate the trace with with_tokens=true)");
}

}  // namespace tcb
