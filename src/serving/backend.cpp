#include "serving/backend.hpp"

#include <stdexcept>
#include <utility>

#include "batching/packed_batch.hpp"
#include "util/check.hpp"

namespace tcb {

EngineBackend::EngineBackend(std::shared_ptr<const Seq2SeqModel> model,
                             const AnalyticalCostModel& clock,
                             InferenceOptions opts,
                             const ClassificationHead* head)
    : model_(std::move(model)), clock_(clock), opts_(opts), head_(head) {
  TCB_CHECK(model_ != nullptr, "EngineBackend: model must not be null");
}

double EngineBackend::batch_seconds(const BatchPlan& plan) const {
  // Encoder-only serving (classification) skips the auto-regressive decode,
  // so its clock advances by encoder + overhead only (paper §5.2).
  const CostBreakdown cost = clock_.breakdown(plan);
  const double seconds = head_ != nullptr
                             ? cost.encoder_seconds + cost.overhead_seconds
                             : cost.total_seconds();
  TCB_CHECK(seconds > 0.0, "EngineBackend: batch clock must advance");
  return seconds;
}

BatchExecution EngineBackend::execute(const BatchWork& work) const {
  const PackedBatch packed = pack_batch(work.plan, work.requests);
  BatchExecution out;
  if (head_ != nullptr) {
    const EncoderMemory memory = model_->encode(packed, opts_);
    for (const auto& [id, label] : head_->classify(memory)) {
      Response resp;
      resp.id = id;
      resp.label = label;
      out.responses.push_back(std::move(resp));
    }
    return out;
  }
  InferenceResult inf = model_->infer(packed, opts_);
  out.peak_kv_bytes = inf.peak_kv_bytes;
  out.early_freed_bytes = inf.early_freed_bytes;
  for (auto& [id, tokens] : inf.outputs) {
    Response resp;
    resp.id = id;
    resp.tokens = std::move(tokens);
    out.responses.push_back(std::move(resp));
  }
  return out;
}

void EngineBackend::validate_trace(const std::vector<Request>& trace) const {
  for (const auto& req : trace)
    if (static_cast<Index>(req.tokens.size()) != req.length)
      throw std::invalid_argument(
          "EngineBackend: request " + std::to_string(req.id) +
          " has no token payload (generate the trace with with_tokens=true)");
}

}  // namespace tcb
