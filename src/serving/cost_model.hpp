// Batch-inference time models.
//
// The paper's serving experiments run 40-1500 req/s against a V100; this
// reproduction replaces the GPU with (a) the real CPU engine for
// kernel-level experiments (Figs. 13/14/16) and (b) an analytical cost model
// for serving-scale simulations (Figs. 9-12, 15). The analytical model
// prices a BatchPlan from first principles:
//
//   * encoder: GEMM flops over every materialized token (padding included —
//     that is NaiveBatching's waste) + attention flops over exactly the
//     score entries the execution mode computes (full rows for pure concat,
//     per-slot blocks for slotted — the paper's Fig. 6 vs Fig. 7);
//   * decoder: auto-regressive, step by step. Per step, the active rows pay
//     projection/FFN flops plus attention over their context width (padded
//     row width for naive/turbo, used row width for pure concat, slot width
//     for slotted). Naive/turbo implementations keep the whole rectangular
//     tensor alive until the longest request finishes; concat tracks retire
//     individually.
//   * hardware: seconds = flops / (peak * util(active tokens)), where
//     util(x) = util_max * x / (x + half_sat) captures the
//     launch-utilization effect that makes small decode steps slow on real
//     accelerators, plus fixed per-batch and per-step overheads.
//
// The MeasuredCostModel wraps the real engine; tests validate that the
// analytical model ranks plans the same way the engine does.
#pragma once

#include <memory>

#include "batching/batch_plan.hpp"
#include "nn/model.hpp"
#include "util/lifetime.hpp"

namespace tcb {

class CostModel {
 public:
  virtual ~CostModel() = default;
  /// Inference seconds for one batch. Empty plans cost 0.
  [[nodiscard]] virtual double batch_seconds(const BatchPlan& plan) const = 0;
};

struct HardwareProfile {
  // Calibrated so the paper-scale serving benches land near the paper's
  // operating points: TNB/TTB saturate around 300-400 req/s, TCB sustains
  // ~450, and the post-saturation throughput gaps are ~2.2x (vs TNB) and
  // ~1.5x (vs TTB). See EXPERIMENTS.md for the calibration runs.
  double peak_flops = 14e12;    ///< fp32 peak of the modeled accelerator
  double util_max = 0.12;       ///< best-case sustained fraction of peak
  double half_sat_tokens = 150; ///< tokens in flight at half utilization
  double batch_overhead = 2e-3; ///< seconds per batch (launch, H2D, ...)
  double step_overhead = 2e-4;  ///< seconds per decode step

  /// V100-like profile used by all paper-reproduction benches.
  [[nodiscard]] static HardwareProfile v100_like() { return {}; }

  [[nodiscard]] double utilization(double active_tokens) const noexcept {
    return util_max * active_tokens / (active_tokens + half_sat_tokens);
  }
};

struct CostBreakdown {
  double encoder_linear_flops = 0;
  double encoder_attention_flops = 0;
  double decoder_linear_flops = 0;
  double decoder_attention_flops = 0;
  double encoder_seconds = 0;
  double decoder_seconds = 0;
  double overhead_seconds = 0;

  [[nodiscard]] double total_flops() const noexcept {
    return encoder_linear_flops + encoder_attention_flops +
           decoder_linear_flops + decoder_attention_flops;
  }
  [[nodiscard]] double total_seconds() const noexcept {
    return encoder_seconds + decoder_seconds + overhead_seconds;
  }
};

/// State of one decode track as the analytical model steps it — the priced
/// mirror of a DecodeSession track. `decode_len` is how many tokens the
/// track will emit (the model's translation-style assumption: as many as its
/// input length; a full rectangular width for naive/turbo, which is exactly
/// their waste), `context` the attention context width its scheme pays for.
struct StepTrackState {
  Index decode_len = 0;
  Index steps_done = 0;
  double context = 0;

  [[nodiscard]] bool finished() const noexcept {
    return steps_done >= decode_len;
  }
};

/// Price of one decoder iteration over a set of (possibly partially
/// finished) tracks — the unit continuous batching schedules around.
struct DecodeStepCost {
  double seconds = 0;          ///< step_overhead + flops at util(active)
  double linear_flops = 0;
  double attention_flops = 0;
  double active = 0;           ///< tracks that decoded this step
};

/// Flop bill of a spliced cohort's prefill (mini-encode + cross-K/V
/// projection), staged by SteppedExecution::splice and fused into the next
/// decode iteration's kernel — the Orca-style piggyback: the prefill pays no
/// launch of its own and *raises* the fused kernel's utilization instead of
/// running as a tiny low-utilization kernel on the side.
struct SplicePrefill {
  double tokens = 0;           ///< source tokens entering the fused kernel
  double linear_flops = 0;
  double attention_flops = 0;

  [[nodiscard]] bool empty() const noexcept { return tokens == 0.0; }
};

class AnalyticalCostModel final : public CostModel {
 public:
  AnalyticalCostModel(ModelConfig model, HardwareProfile hw);

  [[nodiscard]] double batch_seconds(const BatchPlan& plan) const override;
  [[nodiscard]] CostBreakdown breakdown(const BatchPlan& plan) const;

  // Stepped pricing — the decomposition continuous batching drives.
  // breakdown() is implemented on top of these with identical floating-point
  // operation order, so batch_seconds(plan) ==
  //   encode_seconds(plan) + batch_overhead + sum of decode_step_cost(...)
  // exactly (the pipeline equivalence tests compare with EXPECT_DOUBLE_EQ).

  /// Track states for a freshly formed plan, in plan traversal order (rows,
  /// then segments) — index-aligned with DecodeSession::tracks().
  [[nodiscard]] std::vector<StepTrackState> decode_track_states(
      const BatchPlan& plan) const;

  /// Price of running one decoder iteration over `tracks` *now* (does not
  /// advance steps_done; the caller owns track state). active == 0 means
  /// every track finished and the step would be a no-op costing nothing.
  /// `staged` fuses a spliced cohort's prefill into this iteration's kernel:
  /// its flops join the step's flops and its tokens join the in-flight count
  /// the utilization curve sees (with an empty staging the pricing is
  /// bit-identical to the plain decode step).
  [[nodiscard]] DecodeStepCost decode_step_cost(
      const std::vector<StepTrackState>& tracks,
      const SplicePrefill& staged = {}) const;

  /// Encoder price of a plan (GEMM + mode-exact attention entries), without
  /// the per-batch overhead.
  [[nodiscard]] double encode_seconds(const BatchPlan& plan) const;

  /// Flop bill of splicing requests totalling `total_len` source tokens into
  /// a live batch: a single-row mini-encode (full-row attention over the
  /// cohort) plus the spliced span's cross-K/V projection. Not priced in
  /// seconds here — the backend stages it and the next decode_step_cost call
  /// fuses it into the iteration kernel.
  [[nodiscard]] SplicePrefill splice_prefill(Index total_len) const;

  [[nodiscard]] const HardwareProfile& hardware() const noexcept
      TCB_LIFETIME_BOUND {
    return hw_;
  }
  [[nodiscard]] const ModelConfig& model() const noexcept TCB_LIFETIME_BOUND {
    return model_;
  }

 private:
  ModelConfig model_;
  HardwareProfile hw_;
};

/// Times the real CPU engine (encode + greedy decode with decode length
/// capped at `max_decode_steps`). Deterministic inputs are synthesized from
/// the plan's geometry; intended for validation tests and Fig. 16.
class MeasuredCostModel final : public CostModel {
 public:
  MeasuredCostModel(std::shared_ptr<const Seq2SeqModel> model,
                    Index max_decode_steps);

  [[nodiscard]] double batch_seconds(const BatchPlan& plan) const override;

 private:
  std::shared_ptr<const Seq2SeqModel> model_;
  Index max_decode_steps_;
};

}  // namespace tcb
