// ServingPipeline — the one staged serving loop behind every serving path
// (paper Fig. 3; DESIGN.md §10). The stages:
//
//   1. admission  — arrivals enter a bounded RequestQueue (backpressure at
//                   the edge) and are drained into the pending set via
//                   drain_by_deadline;
//   2. selection  — the Scheduler picks the next utility-dominant set
//                   (DAS / Slotted-DAS / baselines);
//   3. formation  — the Scheme's batcher lays the selection out
//                   (batching/factory.hpp);
//   4. pricing    — the ExecutionBackend prices the plan, advancing
//                   simulated time deterministically;
//   5. execution  — the backend produces the outputs: inline for the
//                   analytical backend, concurrently on the thread pool for
//                   the engine backend in multi-worker mode;
//   6. completion — utilities, latencies, per-worker busy time and the
//                   responses are accounted exactly once.
//
// TcbSystem::serve / serve_classify / simulate and ServingSimulator are all
// thin configurations of this class: pick a backend (engine vs analytical),
// a Clock (virtual vs wall, see clock.hpp) and a PipelineConfig. The four
// hand-rolled copies of this loop that used to live in core/tcb.cpp and
// serving/simulator.cpp are gone.
//
// Determinism: simulated time comes only from backend prices, never the
// Clock (which measures overhead). The pending set is kept in canonical
// (arrival, id) order across admission drains, so scheduler decisions are a
// function of the request set alone — the pipeline reproduces the
// pre-refactor loops bit for bit (tests/serving/pipeline_equivalence_test).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "batching/batch_plan.hpp"
#include "sched/scheduler.hpp"
#include "serving/backend.hpp"
#include "serving/clock.hpp"
#include "util/stats.hpp"

namespace tcb {

struct ServingReport {
  std::string scheduler;
  std::string scheme;

  std::size_t arrived = 0;
  std::size_t completed = 0;        ///< scheduled by deadline and served
  std::size_t failed = 0;           ///< expired in queue or oversized
  double total_utility = 0.0;       ///< objective (9) of the paper
  double throughput = 0.0;          ///< completed responses / second
  double makespan = 0.0;            ///< time the last batch finished
  std::size_t batches = 0;
  double busy_seconds = 0.0;        ///< accelerator busy time (all workers)
  double scheduler_seconds = 0.0;   ///< wall time spent inside select()

  // Per-stage pipeline overhead (measured with the configured Clock; all
  // zero under VirtualClock).
  double admission_seconds = 0.0;   ///< queue admit + drain + evict
  double batching_seconds = 0.0;    ///< scheme layout (stage 3)
  double execute_seconds = 0.0;     ///< backend execute(), summed over batches

  /// Simulated busy time per worker slot; size = PipelineConfig::workers.
  std::vector<double> worker_busy_seconds;
  /// Admissions rejected by a full bounded queue (drained then retried).
  std::size_t backpressure_events = 0;

  Samples latency;                  ///< completion - arrival per request
  Samples batch_seconds;            ///< per-batch inference time
  Samples batch_occupancy;          ///< used tokens / (rows * L) per batch
  Samples batch_requests;           ///< requests per batch
  Samples queue_depth;              ///< pending count at each decision point
  Samples admission_queue_depth;    ///< bounded-queue depth before each drain

  [[nodiscard]] std::string summary() const;
};

struct PipelineConfig {
  Scheme scheme = Scheme::kConcatPure;
  /// Slotted scheme: used when the scheduler's Selection does not choose a
  /// slot length (<= 0 falls back to one slot per row).
  Index fixed_slot_len = 0;

  /// Number of accelerators sharing the pending queue; each idle worker
  /// pulls the next scheduler selection. With an offloading backend and
  /// workers > 1, execution runs concurrently on the thread pool.
  std::size_t workers = 1;

  /// Safety valve: stop after this many batches (0 = unlimited).
  std::size_t max_batches = 0;

  /// Bound of the admission queue (backpressure threshold, >= 1).
  std::size_t admission_capacity = 1024;
};

/// Everything one pipeline run produced. Analytical runs leave `responses`
/// empty (the backend executes nothing); engine runs return one Response
/// per completed request, sorted by id.
struct PipelineResult {
  ServingReport report;
  std::vector<Response> responses;
  std::size_t peak_kv_bytes = 0;    ///< max over batches
  std::size_t early_freed_bytes = 0;
};

class ServingPipeline {
 public:
  /// All referenced collaborators must outlive the pipeline.
  ServingPipeline(const Scheduler& scheduler, const ExecutionBackend& backend,
                  const Clock& clock, PipelineConfig cfg);

  /// Runs the whole trace to completion (every request served or expired).
  /// `trace` must be sorted by arrival. Throughput is normalized by
  /// max(makespan, trace duration).
  [[nodiscard]] PipelineResult run(const std::vector<Request>& trace) const;

 private:
  const Scheduler& scheduler_;
  const ExecutionBackend& backend_;
  const Clock& clock_;
  PipelineConfig cfg_;
};

}  // namespace tcb
