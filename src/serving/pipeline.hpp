// ServingPipeline — the one staged serving loop behind every serving path
// (paper Fig. 3; DESIGN.md §10). The stages:
//
//   1. admission  — arrivals enter a bounded RequestQueue (backpressure at
//                   the edge) and are drained into the pending set via
//                   drain_by_deadline;
//   2. selection  — the Scheduler picks the next utility-dominant set
//                   (DAS / Slotted-DAS / baselines);
//   3. formation  — the Scheme's batcher lays the selection out
//                   (batching/factory.hpp);
//   4. pricing    — the ExecutionBackend prices the plan, advancing
//                   simulated time deterministically;
//   5. execution  — the backend produces the outputs: inline for the
//                   analytical backend, concurrently on the thread pool for
//                   the engine backend in multi-worker mode;
//   6. completion — utilities, latencies, per-worker busy time and the
//                   responses are accounted exactly once.
//
// TcbSystem::serve / serve_classify / simulate and ServingSimulator are all
// thin configurations of this class: pick a backend (engine vs analytical),
// a Clock (virtual vs wall, see clock.hpp) and a PipelineConfig. The four
// hand-rolled copies of this loop that used to live in core/tcb.cpp and
// serving/simulator.cpp are gone.
//
// Determinism: simulated time comes only from backend prices, never the
// Clock (which measures overhead). The pending set is kept in canonical
// (arrival, id) order across admission drains, so scheduler decisions are a
// function of the request set alone — the pipeline reproduces the
// pre-refactor loops bit for bit (tests/serving/pipeline_equivalence_test).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "batching/batch_plan.hpp"
#include "sched/scheduler.hpp"
#include "serving/backend.hpp"
#include "serving/clock.hpp"
#include "util/stats.hpp"

namespace tcb {

struct ServingReport {
  std::string scheduler;
  std::string scheme;

  std::size_t arrived = 0;
  std::size_t completed = 0;        ///< scheduled by deadline and served
  std::size_t failed = 0;           ///< expired in queue or oversized
  double total_utility = 0.0;       ///< objective (9) of the paper
  double throughput = 0.0;          ///< completed responses / second
  double makespan = 0.0;            ///< time the last batch finished
  std::size_t batches = 0;
  double busy_seconds = 0.0;        ///< accelerator busy time (all workers)
  double scheduler_seconds = 0.0;   ///< wall time spent inside select()

  // Per-stage pipeline overhead (measured with the configured Clock; all
  // zero under VirtualClock).
  double admission_seconds = 0.0;   ///< queue admit + drain + evict
  double batching_seconds = 0.0;    ///< scheme layout (stage 3)
  double execute_seconds = 0.0;     ///< backend execute(), summed over batches

  /// Simulated busy time per worker slot; size = PipelineConfig::workers.
  std::vector<double> worker_busy_seconds;
  /// Admissions rejected by a full bounded queue (drained then retried).
  std::size_t backpressure_events = 0;

  // Continuous (iteration-level) batching only — zero in run-to-completion
  // mode (DESIGN.md §15).
  std::size_t spliced_requests = 0;  ///< admitted into live batches mid-decode
  std::size_t slot_releases = 0;     ///< slot spans vacated mid-batch

  Samples latency;                  ///< completion - arrival per request
  Samples batch_seconds;            ///< per-batch inference time
  Samples batch_occupancy;          ///< used tokens / (rows * L) per batch
  Samples batch_requests;           ///< requests per batch
  Samples queue_depth;              ///< pending count at each decision point
  Samples admission_queue_depth;    ///< bounded-queue depth before each drain
  /// Occupied-slot fraction across live batches, sampled once per decode
  /// step (continuous mode only).
  Samples slot_occupancy;

  [[nodiscard]] std::string summary() const;
};

struct PipelineConfig {
  Scheme scheme = Scheme::kConcatPure;
  /// Slotted scheme: used when the scheduler's Selection does not choose a
  /// slot length (<= 0 falls back to one slot per row).
  Index fixed_slot_len = 0;

  /// Number of accelerators sharing the pending queue; each idle worker
  /// pulls the next scheduler selection. With an offloading backend and
  /// workers > 1, execution runs concurrently on the thread pool.
  std::size_t workers = 1;

  /// Safety valve: stop after this many batches (0 = unlimited).
  std::size_t max_batches = 0;

  /// Bound of the admission queue (backpressure threshold, >= 1).
  std::size_t admission_capacity = 1024;

  /// Continuous (iteration-level) batching: batches execute one decoder
  /// iteration at a time through SteppedExecution; finished requests free
  /// their slots mid-batch and the scheduler splices waiting requests into
  /// the vacated spans between iterations (DESIGN.md §15). Requires a
  /// backend whose begin_stepped() returns non-null. The coordinator steps
  /// every live batch inline — multi-worker continuous runs are simulated
  /// concurrency, deterministic by construction.
  bool continuous = false;

  /// Continuous mode: a batch accepts mid-decode splices only when its plan
  /// laid out at least this fraction of the grid's token capacity
  /// (rows * row_capacity). Splicing pins the batch's formation-time
  /// geometry; a batch formed from a near-empty pending set would otherwise
  /// stay alive indefinitely, trickling requests through its few slots while
  /// a full-width re-formation waits. Under-filled batches instead drain and
  /// retire so the worker can form a fresh grid. 0.6 won the bench sweep
  /// (bench/continuous_batching.cpp) over 0.25/0.4/0.8 across arrival rates
  /// and length distributions.
  double splice_min_fill = 0.6;

  /// Continuous mode: stop splicing into a live batch after this many decode
  /// iterations (0 = never stop, the default). A time-boxed splice window
  /// forces a drain tail of sparse, expensive iterations before the batch
  /// can retire, which measures strictly worse than indefinite splicing
  /// across the bench sweep — the knob exists for experiments, not as a
  /// recommended setting (prefer splice_misfit_drain, which only drains when
  /// the geometry stopped matching the arrivals).
  std::size_t splice_horizon_steps = 0;

  /// Continuous mode: drain a live batch once this fraction of the pending
  /// set no longer fits its widest slot span (0 disables). A spliced batch
  /// keeps its formation-time geometry forever; when the arrival mix drifts
  /// (e.g. a bimodal workload whose long mode exceeds the frozen slot
  /// length), splicing would serve only the short tail while the misfits
  /// expire — draining lets the worker re-form with geometry matched to what
  /// is actually waiting. Evaluated only against a meaningfully sized
  /// pending set (>= 8) so a lone early misfit cannot kill a healthy batch.
  /// The threshold is deliberately high: splicing drains short requests
  /// first, so the pending set is survivor-biased toward misfits even when
  /// the geometry is healthy; 0.75 kept every catastrophic-mismatch case
  /// (bimodal long mode vs a short frozen slot length) at run-to-completion
  /// parity without sacrificing the saturation wins (bench sweep).
  double splice_misfit_drain = 0.75;
};

/// Everything one pipeline run produced. Analytical runs leave `responses`
/// empty (the backend executes nothing); engine runs return one Response
/// per completed request, sorted by id.
struct PipelineResult {
  ServingReport report;
  std::vector<Response> responses;
  std::size_t peak_kv_bytes = 0;    ///< max over batches
  std::size_t early_freed_bytes = 0;
  /// What an ideal per-request cleaner could have freed (see
  /// DecodeResult::reclaimable_kv_bytes); early_freed_bytes / this ratio
  /// measures how much of the reclaimable memory each scheme actually
  /// returned.
  std::size_t reclaimable_kv_bytes = 0;
};

class ServingPipeline {
 public:
  /// All referenced collaborators must outlive the pipeline.
  ServingPipeline(const Scheduler& scheduler, const ExecutionBackend& backend,
                  const Clock& clock, PipelineConfig cfg);

  /// Runs the whole trace to completion (every request served or expired).
  /// `trace` must be sorted by arrival. Throughput is normalized by
  /// max(makespan, trace duration).
  [[nodiscard]] PipelineResult run(const std::vector<Request>& trace) const;

 private:
  /// The continuous-mode driver (PipelineConfig::continuous); run()
  /// dispatches here. Event-driven over per-worker live batches: the
  /// earliest pending event (a step completing, or an idle worker forming a
  /// new batch) is processed next, with deterministic first-index
  /// tie-breaking.
  [[nodiscard]] PipelineResult run_continuous(
      const std::vector<Request>& trace) const;

  const Scheduler& scheduler_;
  const ExecutionBackend& backend_;
  const Clock& clock_;
  PipelineConfig cfg_;
};

}  // namespace tcb
