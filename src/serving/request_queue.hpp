// Bounded MPMC request-admission queue — stage 1 of the staged serving
// pipeline (serving/pipeline.hpp, DESIGN.md §10.1; TurboTransformers and
// CascadeInfer both put a concurrent admission path in front of the batch
// scheduler).
//
// Roles:
//   * producers — RPC/ingest threads admitting Requests; push() blocks when
//     the queue is full (bounded-capacity backpressure, so a traffic spike
//     queues at the edge instead of ballooning resident memory). The
//     pipeline's trace driver uses try_push and counts rejections as
//     ServingReport::backpressure_events;
//   * consumers — scheduler/worker threads taking requests one at a time
//     (pop / try_pop), or snapshotting the whole admitted set in deadline
//     order (drain_by_deadline — the shape DAS's pending-set scan wants,
//     paper Algorithm 1 sorts N^D_t by earliest deadline). ServingPipeline
//     drains before every scheduling decision.
//
// Shutdown: close() makes further pushes fail, wakes every waiter, and lets
// consumers drain what was already admitted; pop() returns nullopt only when
// the queue is closed *and* empty, so no admitted request is ever dropped.
//
// The whole class is written under Clang Thread Safety Analysis from day
// one: `items_`/`closed_` are TCB_GUARDED_BY(mutex_), every entry point is
// TCB_EXCLUDES(mutex_), and a clang build with TCB_THREAD_SAFETY=ON proves
// the lock discipline at compile time (DESIGN.md §9 has the capability map).
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

#include "batching/request.hpp"
#include "parallel/sync.hpp"

namespace tcb {

class RequestQueue {
 public:
  /// `capacity` >= 1: the backpressure bound on admitted-but-unscheduled
  /// requests (TCB_CHECK'd).
  explicit RequestQueue(std::size_t capacity);

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Blocking admit: waits while the queue is full. Returns false (and
  /// drops `r`) iff the queue was closed before space freed up.
  bool push(Request r) TCB_EXCLUDES(mutex_);

  /// Non-blocking admit: false when full or closed.
  bool try_push(Request r) TCB_EXCLUDES(mutex_);

  /// Blocking take in admission (FIFO) order: waits while the queue is
  /// empty and open; nullopt iff closed and fully drained.
  std::optional<Request> pop() TCB_EXCLUDES(mutex_);

  /// Non-blocking take: nullopt when nothing is admitted right now (says
  /// nothing about closed-ness; poll closed() for shutdown).
  std::optional<Request> try_pop() TCB_EXCLUDES(mutex_);

  /// Scheduler drain: atomically removes *all* admitted requests and
  /// returns them sorted by (deadline, arrival, id) — earliest-deadline
  /// first, the order DAS's deadline-aware set N^D_t consumes. Wakes blocked
  /// producers (their backpressure wait just gained `capacity` slots).
  std::vector<Request> drain_by_deadline() TCB_EXCLUDES(mutex_);

  /// Closes the queue: subsequent pushes fail, blocked producers and
  /// consumers wake. Idempotent.
  void close() TCB_EXCLUDES(mutex_);

  [[nodiscard]] bool closed() const TCB_EXCLUDES(mutex_);
  /// Admitted-but-untaken count; a snapshot, stale by the time you act on it.
  [[nodiscard]] std::size_t size() const TCB_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;  ///< immutable after construction
  mutable Mutex mutex_ TCB_GUARDS(items_, closed_)
      TCB_ACQUIRED_AFTER(lock_order::admission);
  CondVar not_full_;   ///< producers wait here; signalled on take/close
  CondVar not_empty_;  ///< consumers wait here; signalled on admit/close
  std::deque<Request> items_ TCB_GUARDED_BY(mutex_);
  bool closed_ TCB_GUARDED_BY(mutex_) = false;
};

}  // namespace tcb
