#include "serving/request_queue.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace tcb {

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
  TCB_CHECK(capacity_ >= 1, "RequestQueue: capacity must be >= 1");
}

bool RequestQueue::push(Request r) {
  {
    MutexLock lock(mutex_);
    while (!closed_ && items_.size() >= capacity_) not_full_.wait(lock);
    if (closed_) return false;
    TCB_DCHECK(items_.size() < capacity_, "RequestQueue: bound violated");
    items_.push_back(std::move(r));
  }
  not_empty_.notify_one();
  return true;
}

bool RequestQueue::try_push(Request r) {
  {
    const MutexLock lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(r));
  }
  not_empty_.notify_one();
  return true;
}

std::optional<Request> RequestQueue::pop() {
  std::optional<Request> out;
  {
    MutexLock lock(mutex_);
    while (!closed_ && items_.empty()) not_empty_.wait(lock);
    if (items_.empty()) return std::nullopt;  // closed and drained
    out.emplace(std::move(items_.front()));
    items_.pop_front();
  }
  not_full_.notify_one();
  return out;
}

std::optional<Request> RequestQueue::try_pop() {
  std::optional<Request> out;
  {
    const MutexLock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    out.emplace(std::move(items_.front()));
    items_.pop_front();
  }
  not_full_.notify_one();
  return out;
}

std::vector<Request> RequestQueue::drain_by_deadline() {
  std::vector<Request> out;
  {
    const MutexLock lock(mutex_);
    out.assign(std::make_move_iterator(items_.begin()),
               std::make_move_iterator(items_.end()));
    items_.clear();
  }
  // Every producer blocked on backpressure can make progress now.
  not_full_.notify_all();
  std::sort(out.begin(), out.end(), [](const Request& a, const Request& b) {
    if (a.deadline != b.deadline) return a.deadline < b.deadline;
    if (a.arrival != b.arrival) return a.arrival < b.arrival;
    return a.id < b.id;
  });
  return out;
}

void RequestQueue::close() {
  {
    const MutexLock lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool RequestQueue::closed() const {
  const MutexLock lock(mutex_);
  return closed_;
}

std::size_t RequestQueue::size() const {
  const MutexLock lock(mutex_);
  return items_.size();
}

}  // namespace tcb
