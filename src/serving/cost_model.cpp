#include "serving/cost_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "batching/packed_batch.hpp"
#include "nn/attention.hpp"
#include "util/timer.hpp"

namespace tcb {

AnalyticalCostModel::AnalyticalCostModel(ModelConfig model, HardwareProfile hw)
    : model_(model), hw_(hw) {
  model_.validate();
}

std::vector<StepTrackState> AnalyticalCostModel::decode_track_states(
    const BatchPlan& plan) const {
  std::vector<StepTrackState> tracks;
  if (plan.empty()) return tracks;
  const Index width = plan.max_width();
  const bool slotted = plan.scheme == Scheme::kConcatSlotted;
  const bool concat = slotted || plan.scheme == Scheme::kConcatPure;
  // Translation-style assumption: each request decodes as many tokens as its
  // input length. Naive/turbo keep the whole rectangular tensor stepping
  // until the longest row finishes; concat tracks retire individually.
  for (const auto& row : plan.rows) {
    for (const auto& seg : row.segments) {
      StepTrackState st;
      st.decode_len = concat ? seg.length : width;
      if (slotted)
        st.context = static_cast<double>(plan.effective_slot_len(row));
      else if (concat)
        st.context = static_cast<double>(row.width);
      else
        st.context = static_cast<double>(width);  // rectangular padded tensor
      tracks.push_back(st);
    }
  }
  return tracks;
}

DecodeStepCost AnalyticalCostModel::decode_step_cost(
    const std::vector<StepTrackState>& tracks,
    const SplicePrefill& staged) const {
  const double d = static_cast<double>(model_.d_model);
  const double dff = static_cast<double>(model_.d_ff);
  const double dh = static_cast<double>(model_.head_dim());
  const double heads = static_cast<double>(model_.n_heads);
  const double vocab = static_cast<double>(model_.vocab_size);
  const double n_dec = static_cast<double>(model_.n_decoder_layers);
  // Per generated token: self qkv+o (8 d^2) + cross q,o (4 d^2) + FFN, plus
  // the final vocabulary projection.
  const double per_token_lin =
      n_dec * (12.0 * d * d + 4.0 * d * dff) + 2.0 * d * vocab;
  const double attn_entry_flops = heads * (4.0 * dh + 4.0);

  DecodeStepCost cost;
  double attn_flops = 0.0;
  for (const auto& track : tracks) {
    if (track.finished()) continue;
    cost.active += 1.0;
    // Self-attention over the cached group context (grows with the track's
    // position, bounded by the context width) + cross-attention over the
    // source span.
    const double self_ctx =
        std::min(static_cast<double>(track.steps_done + 1), track.context);
    attn_flops += n_dec * attn_entry_flops * (self_ctx + track.context);
  }
  if (cost.active == 0.0) return cost;
  // Fused kernel: the decode tokens plus any staged spliced prefill run as
  // one launch, so the prefill both shares the step's overhead and lifts the
  // utilization every token in the kernel sees. With an empty staging the
  // added zeros leave the plain decode pricing bit-identical.
  const double step_flops = cost.active * per_token_lin + attn_flops +
                            staged.linear_flops + staged.attention_flops;
  cost.linear_flops = cost.active * per_token_lin + staged.linear_flops;
  cost.attention_flops = attn_flops + staged.attention_flops;
  const double in_flight = cost.active + staged.tokens;
  cost.seconds = hw_.step_overhead +
                 step_flops / (hw_.peak_flops * hw_.utilization(in_flight));
  return cost;
}

double AnalyticalCostModel::encode_seconds(const BatchPlan& plan) const {
  if (plan.empty()) return 0.0;
  const double d = static_cast<double>(model_.d_model);
  const double dff = static_cast<double>(model_.d_ff);
  const double dh = static_cast<double>(model_.head_dim());
  const double heads = static_cast<double>(model_.n_heads);
  const double n_enc = static_cast<double>(model_.n_encoder_layers);
  const Index width = plan.max_width();
  const double rows = static_cast<double>(plan.rows.size());
  const double lin_tokens = rows * static_cast<double>(width);
  const bool slotted = plan.scheme == Scheme::kConcatSlotted;
  // Projections (Q,K,V,O = 4 GEMMs) + FFN per materialized token.
  const double lin_flops = lin_tokens * n_enc * (8.0 * d * d + 4.0 * d * dff);
  // Attention over exactly the score entries the mode computes.
  const double entries = static_cast<double>(score_entries(
      plan, Col{width},
      slotted ? AttentionMode::kSlotted : AttentionMode::kPureConcat));
  const double attn_flops = n_enc * entries * heads * (4.0 * dh + 4.0);
  double seconds = lin_flops + attn_flops;
  seconds /= hw_.peak_flops * hw_.utilization(lin_tokens);
  return seconds;
}

SplicePrefill AnalyticalCostModel::splice_prefill(Index total_len) const {
  SplicePrefill out;
  if (total_len <= 0) return out;
  const double d = static_cast<double>(model_.d_model);
  const double dff = static_cast<double>(model_.d_ff);
  const double dh = static_cast<double>(model_.head_dim());
  const double heads = static_cast<double>(model_.n_heads);
  const double n_enc = static_cast<double>(model_.n_encoder_layers);
  const double n_dec = static_cast<double>(model_.n_decoder_layers);
  const double tokens = static_cast<double>(total_len);
  // Single-row mini-encode: full-row attention (the spliced cohort is one
  // pure-concat row) + the spliced span's cross-K/V projection into the live
  // session's layer states. Pricing a dedicated launch at mini-row-alone
  // utilization would make every splice cost more than a full
  // run-to-completion service and defeat continuous batching outright;
  // instead the backend stages this bill and decode_step_cost fuses it into
  // the next iteration's kernel.
  out.tokens = tokens;
  out.linear_flops = tokens * n_enc * (8.0 * d * d + 4.0 * d * dff) +
                     tokens * n_dec * 4.0 * d * d;
  out.attention_flops = n_enc * tokens * tokens * heads * (4.0 * dh + 4.0);
  return out;
}

CostBreakdown AnalyticalCostModel::breakdown(const BatchPlan& plan) const {
  CostBreakdown out;
  if (plan.empty()) return out;

  const double d = static_cast<double>(model_.d_model);
  const double dff = static_cast<double>(model_.d_ff);
  const double dh = static_cast<double>(model_.head_dim());
  const double heads = static_cast<double>(model_.n_heads);
  const double n_enc = static_cast<double>(model_.n_encoder_layers);
  const double n_dec = static_cast<double>(model_.n_decoder_layers);

  const Index width = plan.max_width();
  const double rows = static_cast<double>(plan.rows.size());
  const double lin_tokens = rows * static_cast<double>(width);
  const bool slotted = plan.scheme == Scheme::kConcatSlotted;

  // --- Encoder -------------------------------------------------------------
  // Flops recomputed here (encode_seconds only returns time); same formulas.
  out.encoder_linear_flops = lin_tokens * n_enc * (8.0 * d * d + 4.0 * d * dff);
  const double entries = static_cast<double>(score_entries(
      plan, Col{width}, slotted ? AttentionMode::kSlotted : AttentionMode::kPureConcat));
  out.encoder_attention_flops = n_enc * entries * heads * (4.0 * dh + 4.0);
  out.encoder_seconds = encode_seconds(plan);

  // --- Decoder -------------------------------------------------------------
  // Stepped: price each iteration with decode_step_cost until every track
  // retires — the identical loop continuous batching drives one event at a
  // time, so run-to-completion and stepped pricing agree bit-for-bit.
  out.decoder_linear_flops += lin_tokens * n_dec * 4.0 * d * d;  // cross K/V
  std::vector<StepTrackState> tracks = decode_track_states(plan);
  double dec_seconds = 0.0;
  for (;;) {
    const DecodeStepCost step = decode_step_cost(tracks);
    if (step.active == 0.0) break;
    out.decoder_linear_flops += step.linear_flops;
    out.decoder_attention_flops += step.attention_flops;
    dec_seconds += step.seconds;
    for (auto& track : tracks)
      if (!track.finished()) track.steps_done += 1;
  }
  out.decoder_seconds = dec_seconds;
  out.overhead_seconds = hw_.batch_overhead;
  return out;
}

double AnalyticalCostModel::batch_seconds(const BatchPlan& plan) const {
  return breakdown(plan).total_seconds();
}

MeasuredCostModel::MeasuredCostModel(std::shared_ptr<const Seq2SeqModel> model,
                                     Index max_decode_steps)
    : model_(std::move(model)), max_decode_steps_(max_decode_steps) {
  if (!model_) throw std::invalid_argument("MeasuredCostModel: null model");
}

double MeasuredCostModel::batch_seconds(const BatchPlan& plan) const {
  if (plan.empty()) return 0.0;

  // Synthesize deterministic token payloads matching the plan's lengths.
  std::vector<Request> requests;
  Rng rng(0xC0FFEEULL);
  for (const auto& row : plan.rows) {
    for (const auto& seg : row.segments) {
      Request req;
      req.id = seg.request_id;
      req.length = seg.length;
      req.tokens.reserve(static_cast<std::size_t>(seg.length));
      for (Index i = 0; i < seg.length; ++i)
        req.tokens.push_back(rng.uniform_int(
            kFirstWordToken, model_->config().vocab_size - 1));
      requests.push_back(std::move(req));
    }
  }
  const PackedBatch packed = pack_batch(plan, requests);

  InferenceOptions opts;
  opts.mode = plan.scheme == Scheme::kConcatSlotted ? AttentionMode::kSlotted
                                                    : AttentionMode::kPureConcat;
  opts.max_decode_steps = max_decode_steps_;
  opts.early_memory_cleaning = plan.scheme == Scheme::kConcatSlotted;

  // Wall-clock measurement is this function's purpose (cost-model calibration).
  // tcb-lint: allow(no-wall-clock-in-sched)
  const Timer timer;
  const InferenceResult result = model_->infer(packed, opts);
  (void)result;
  return timer.elapsed_seconds();
}

}  // namespace tcb
