#include "serving/cost_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "batching/packed_batch.hpp"
#include "nn/attention.hpp"
#include "util/timer.hpp"

namespace tcb {

AnalyticalCostModel::AnalyticalCostModel(ModelConfig model, HardwareProfile hw)
    : model_(model), hw_(hw) {
  model_.validate();
}

CostBreakdown AnalyticalCostModel::breakdown(const BatchPlan& plan) const {
  CostBreakdown out;
  if (plan.empty()) return out;

  const double d = static_cast<double>(model_.d_model);
  const double dff = static_cast<double>(model_.d_ff);
  const double dh = static_cast<double>(model_.head_dim());
  const double heads = static_cast<double>(model_.n_heads);
  const double vocab = static_cast<double>(model_.vocab_size);
  const double n_enc = static_cast<double>(model_.n_encoder_layers);
  const double n_dec = static_cast<double>(model_.n_decoder_layers);

  const Index width = plan.max_width();
  const double rows = static_cast<double>(plan.rows.size());
  const double lin_tokens = rows * static_cast<double>(width);
  const bool slotted = plan.scheme == Scheme::kConcatSlotted;
  const bool concat = slotted || plan.scheme == Scheme::kConcatPure;

  // --- Encoder -------------------------------------------------------------
  // Projections (Q,K,V,O = 4 GEMMs) + FFN per materialized token.
  out.encoder_linear_flops = lin_tokens * n_enc * (8.0 * d * d + 4.0 * d * dff);
  // Attention over exactly the score entries the mode computes.
  const double entries = static_cast<double>(score_entries(
      plan, Col{width}, slotted ? AttentionMode::kSlotted : AttentionMode::kPureConcat));
  out.encoder_attention_flops = n_enc * entries * heads * (4.0 * dh + 4.0);
  out.encoder_seconds = out.encoder_linear_flops + out.encoder_attention_flops;
  out.encoder_seconds /= hw_.peak_flops * hw_.utilization(lin_tokens);

  // --- Decoder ---------------------------------------------------------------
  // Translation-style assumption: each request decodes as many tokens as its
  // input length. Naive/turbo keep the whole rectangular tensor stepping
  // until the longest row finishes; concat tracks retire individually.
  // Per generated token: self qkv+o (8 d^2) + cross q,o (4 d^2) + FFN,
  // plus the per-batch cross K/V projection of the encoder memory and the
  // final vocabulary projection.
  const double per_token_lin =
      n_dec * (12.0 * d * d + 4.0 * d * dff) + 2.0 * d * vocab;
  out.decoder_linear_flops += lin_tokens * n_dec * 4.0 * d * d;  // cross K/V

  // Per-track decode length and attention context width.
  std::vector<Index> track_len;
  std::vector<double> track_ctx;
  for (const auto& row : plan.rows) {
    for (const auto& seg : row.segments) {
      track_len.push_back(concat ? seg.length : width);
      double ctx;
      if (slotted)
        ctx = static_cast<double>(plan.effective_slot_len(row));
      else if (concat)
        ctx = static_cast<double>(row.width);
      else
        ctx = static_cast<double>(width);  // rectangular padded tensor
      track_ctx.push_back(ctx);
    }
  }

  const Index max_steps = *std::max_element(track_len.begin(), track_len.end());
  const double attn_entry_flops = heads * (4.0 * dh + 4.0);
  double dec_seconds = 0.0;
  for (Index t = 0; t < max_steps; ++t) {
    double active = 0.0;
    double attn_flops = 0.0;
    for (std::size_t i = 0; i < track_len.size(); ++i) {
      if (track_len[i] <= t) continue;
      active += 1.0;
      // Self-attention over the cached group context (grows with t, bounded
      // by the context width) + cross-attention over the source span.
      const double self_ctx = std::min(static_cast<double>(t + 1), track_ctx[i]);
      attn_flops += n_dec * attn_entry_flops * (self_ctx + track_ctx[i]);
    }
    if (active == 0.0) break;
    const double step_flops = active * per_token_lin + attn_flops;
    out.decoder_linear_flops += active * per_token_lin;
    out.decoder_attention_flops += attn_flops;
    dec_seconds += hw_.step_overhead +
                   step_flops / (hw_.peak_flops * hw_.utilization(active));
  }
  out.decoder_seconds = dec_seconds;
  out.overhead_seconds = hw_.batch_overhead;
  return out;
}

double AnalyticalCostModel::batch_seconds(const BatchPlan& plan) const {
  return breakdown(plan).total_seconds();
}

MeasuredCostModel::MeasuredCostModel(std::shared_ptr<const Seq2SeqModel> model,
                                     Index max_decode_steps)
    : model_(std::move(model)), max_decode_steps_(max_decode_steps) {
  if (!model_) throw std::invalid_argument("MeasuredCostModel: null model");
}

double MeasuredCostModel::batch_seconds(const BatchPlan& plan) const {
  if (plan.empty()) return 0.0;

  // Synthesize deterministic token payloads matching the plan's lengths.
  std::vector<Request> requests;
  Rng rng(0xC0FFEEULL);
  for (const auto& row : plan.rows) {
    for (const auto& seg : row.segments) {
      Request req;
      req.id = seg.request_id;
      req.length = seg.length;
      req.tokens.reserve(static_cast<std::size_t>(seg.length));
      for (Index i = 0; i < seg.length; ++i)
        req.tokens.push_back(rng.uniform_int(
            kFirstWordToken, model_->config().vocab_size - 1));
      requests.push_back(std::move(req));
    }
  }
  const PackedBatch packed = pack_batch(plan, requests);

  InferenceOptions opts;
  opts.mode = plan.scheme == Scheme::kConcatSlotted ? AttentionMode::kSlotted
                                                    : AttentionMode::kPureConcat;
  opts.max_decode_steps = max_decode_steps_;
  opts.early_memory_cleaning = plan.scheme == Scheme::kConcatSlotted;

  // Wall-clock measurement is this function's purpose (cost-model calibration).
  // tcb-lint: allow(no-wall-clock-in-sched)
  const Timer timer;
  const InferenceResult result = model_->infer(packed, opts);
  (void)result;
  return timer.elapsed_seconds();
}

}  // namespace tcb
