#include "serving/pipeline.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "batching/factory.hpp"
#include "batching/slot_allocator.hpp"
#include "parallel/sync.hpp"
#include "parallel/task_group.hpp"
#include "parallel/thread_pool.hpp"
#include "serving/request_queue.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"

namespace tcb {
namespace {

/// Collection point for batch executions finishing on pool workers (stage 5
/// -> stage 6 hand-off). The coordinator takes everything once after the
/// TaskGroup joined, so push() contention is the only synchronized section.
class ExecutionLedger {
 public:
  void push(BatchExecution exec, double exec_seconds) TCB_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    executions_.push_back(std::move(exec));
    execute_seconds_ += exec_seconds;
  }

  /// Coordinator-only, after every in-flight task joined.
  [[nodiscard]] std::vector<BatchExecution> take(double* execute_seconds)
      TCB_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    *execute_seconds += execute_seconds_;
    execute_seconds_ = 0.0;
    return std::exchange(executions_, {});
  }

 private:
  Mutex mutex_ TCB_GUARDS(executions_, execute_seconds_)
      TCB_ACQUIRED_AFTER(lock_order::execution);
  std::vector<BatchExecution> executions_ TCB_GUARDED_BY(mutex_);
  double execute_seconds_ TCB_GUARDED_BY(mutex_) = 0.0;
};

/// Moves everything admitted so far into the working pending set and
/// restores the canonical (arrival, id) order. drain_by_deadline hands the
/// set over earliest-deadline-first (the shape DAS's N^D_t scan wants), but
/// scheduler decisions must be a function of the request *set*, not of the
/// admission interleaving — the re-sort makes the pipeline's pending order
/// identical to the pre-pipeline loops' arrival-order append.
void drain_admission(RequestQueue& queue, std::vector<Request>& pending) {
  std::vector<Request> drained = queue.drain_by_deadline();
  if (drained.empty()) return;
  for (auto& req : drained) pending.push_back(std::move(req));
  std::sort(pending.begin(), pending.end(),
            [](const Request& a, const Request& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              return a.id < b.id;
            });
}

}  // namespace

std::string ServingReport::summary() const {
  std::string out = scheduler + "-" + scheme;
  out += " arrived=" + std::to_string(arrived);
  out += " completed=" + std::to_string(completed);
  out += " failed=" + std::to_string(failed);
  out += " utility=" + format_number(total_utility);
  out += " throughput=" + format_number(throughput) + "/s";
  out += " batches=" + std::to_string(batches);
  out += " stage_seconds[admission=" + format_number(admission_seconds) +
         " scheduler=" + format_number(scheduler_seconds) +
         " batching=" + format_number(batching_seconds) +
         " execute=" + format_number(execute_seconds) + "]";
  if (worker_busy_seconds.size() > 1) {
    out += " worker_busy=[";
    for (std::size_t w = 0; w < worker_busy_seconds.size(); ++w) {
      if (w != 0) out += " ";
      out += format_number(worker_busy_seconds[w]);
    }
    out += "]";
  }
  if (backpressure_events != 0)
    out += " backpressure=" + std::to_string(backpressure_events);
  if (spliced_requests != 0 || slot_releases != 0)
    out += " spliced=" + std::to_string(spliced_requests) +
           " releases=" + std::to_string(slot_releases);
  return out;
}

ServingPipeline::ServingPipeline(const Scheduler& scheduler,
                                 const ExecutionBackend& backend,
                                 const Clock& clock, PipelineConfig cfg)
    : scheduler_(scheduler), backend_(backend), clock_(clock), cfg_(cfg) {
  if (cfg_.scheme == Scheme::kConcatSlotted && cfg_.fixed_slot_len < 0)
    throw std::invalid_argument("ServingPipeline: negative fixed_slot_len");
  if (cfg_.workers == 0)
    throw std::invalid_argument("ServingPipeline: need >= 1 worker");
  if (cfg_.admission_capacity == 0)
    throw std::invalid_argument(
        "ServingPipeline: need admission capacity >= 1");
}

PipelineResult ServingPipeline::run(const std::vector<Request>& trace) const {
  if (cfg_.continuous) return run_continuous(trace);
  backend_.validate_trace(trace);

  const SchedulerConfig& sched_cfg = scheduler_.config();
  PipelineResult result;
  ServingReport& report = result.report;
  report.scheduler = scheduler_.name();
  report.scheme = scheme_name(cfg_.scheme);
  report.arrived = trace.size();
  report.worker_busy_seconds.assign(cfg_.workers, 0.0);

  double trace_end = 0.0;
  for (const auto& req : trace) trace_end = std::max(trace_end, req.arrival);

  // Stage 1 state: the bounded admission queue. The driver below is
  // single-threaded (arrivals come from the trace), so a full queue drains
  // inline; a concurrent ingest frontend would block in push() instead.
  RequestQueue admission(cfg_.admission_capacity);

  // Stage 5/6 state. Order matters: the ledger outlives the TaskGroup, so
  // every in-flight execution joins before the ledger can be destroyed.
  ExecutionLedger ledger;
  TaskGroup inflight;
  const bool offload = backend_.offload() && cfg_.workers > 1 &&
                       ThreadPool::global().worker_count() > 0;

  // Each accelerator is represented by the time it next becomes idle; idle
  // workers pull the scheduler's next selection in turn.
  std::vector<double> worker_free(cfg_.workers, 0.0);
  std::size_t next_arrival = 0;
  std::vector<Request> pending;  ///< drained, unscheduled; (arrival, id) order
  /// id -> (scheduled_at, completed_at): stamps responses exactly once in
  /// stage 6, and double-checks the backend never invents request ids.
  std::unordered_map<RequestId, std::pair<double, double>> service_times;
  std::vector<BatchExecution> inline_executions;
  bool stop = false;

  while (!stop) {
    // The earliest-idle worker makes the next scheduling decision.
    const auto idle_it =
        std::min_element(worker_free.begin(), worker_free.end());
    const std::size_t worker =
        static_cast<std::size_t>(idle_it - worker_free.begin());
    const double now = *idle_it;

    // ---- Stage 1: admission -------------------------------------------
    const double admission_t0 = clock_.now();
    while (next_arrival < trace.size() &&
           trace[next_arrival].arrival <= now) {
      if (!admission.try_push(trace[next_arrival])) {
        // Bounded-queue backpressure: the arrival waits at the edge until a
        // drain frees the queue.
        ++report.backpressure_events;
        drain_admission(admission, pending);
        TCB_CHECK(admission.try_push(trace[next_arrival]),
                  "ServingPipeline: admission queue full after drain");
      }
      ++next_arrival;
    }
    report.admission_queue_depth.add(static_cast<double>(admission.size()));
    drain_admission(admission, pending);

    // Fail requests that expired in the queue or can never fit a row.
    report.failed +=
        evict_unschedulable(now, sched_cfg.row_capacity, pending).size();
    report.admission_seconds += clock_.now() - admission_t0;

    if (pending.empty()) {
      if (next_arrival >= trace.size()) break;  // drained
      *idle_it = trace[next_arrival].arrival;   // idle until the next arrival
      continue;
    }
    report.queue_depth.add(static_cast<double>(pending.size()));

    // ---- Stage 2: scheduler selection ---------------------------------
    // Timed with the pipeline Clock (this is what Fig. 16 reports); the
    // reading never influences a decision.
    const double select_t0 = clock_.now();
    Selection sel = scheduler_.select(now, pending);
    report.scheduler_seconds += clock_.now() - select_t0;

    // ---- Stage 3: batch formation -------------------------------------
    const double batch_t0 = clock_.now();
    const Index slot_len =
        sel.slot_len > 0 ? sel.slot_len : cfg_.fixed_slot_len;
    BatchBuildResult built = build_with_scheme(
        cfg_.scheme, std::move(sel.ordered), Row{sched_cfg.batch_rows},
        Col{sched_cfg.row_capacity}, slot_len);
    report.batching_seconds += clock_.now() - batch_t0;

    if (built.plan.empty()) {
      // The selection could not be placed at all (e.g. every candidate is
      // longer than the slot). Avoid a zero-progress spin: jump to the next
      // arrival if any, otherwise fail what is left.
      if (next_arrival < trace.size()) {
        *idle_it = std::max(now, trace[next_arrival].arrival);
        continue;
      }
      report.failed += pending.size();
      pending.clear();
      break;
    }

    // ---- Stage 4: pricing ---------------------------------------------
    const double batch_time = backend_.batch_seconds(built.plan);
    if (!(batch_time > 0.0))
      throw std::logic_error("ServingPipeline: non-positive batch time");
    const double completion = now + batch_time;

    // Completion accounting happens at dispatch: simulated times are fully
    // determined here, whether or not execution is deferred to a worker.
    std::unordered_set<RequestId> served;
    for (const auto id : built.plan.request_ids()) served.insert(id);
    BatchWork work;
    work.plan = std::move(built.plan);
    work.requests.reserve(served.size());
    double used_tokens = 0.0;
    for (const auto& req : pending) {
      if (!served.contains(req.id)) continue;
      report.total_utility += req.utility();
      report.latency.add(completion - req.arrival);
      used_tokens += static_cast<double>(req.length);
      ++report.completed;
      service_times.emplace(req.id, std::make_pair(now, completion));
      work.requests.push_back(req);
    }
    pending.erase(std::remove_if(pending.begin(), pending.end(),
                                 [&](const Request& r) {
                                   return served.contains(r.id);
                                 }),
                  pending.end());

    ++report.batches;
    report.busy_seconds += batch_time;
    report.worker_busy_seconds[worker] += batch_time;
    report.batch_seconds.add(batch_time);
    report.batch_requests.add(static_cast<double>(served.size()));
    report.batch_occupancy.add(
        used_tokens / static_cast<double>(sched_cfg.batch_rows *
                                          sched_cfg.row_capacity));
    *idle_it = completion;
    report.makespan = std::max(report.makespan, completion);

    // ---- Stage 5: execution -------------------------------------------
    if (offload) {
      // The worker owns its BatchWork; results meet the coordinator in the
      // ledger. shared_ptr because ThreadPool::submit needs a copyable fn.
      // The lambda escapes to a worker thread (submit is TCB_ESCAPES), so
      // the `this`/&ledger captures are only sound because `inflight` joins
      // every task before `ledger` — declared above it — can be destroyed.
      // spawn() spells that structure out; tcb-lint's no-ref-capture-escape
      // rule checks the declaration order and the join on this exact shape.
      auto task = std::make_shared<BatchWork>(std::move(work));
      inflight.spawn(ThreadPool::global(), [this, task, &ledger] {
        const double exec_t0 = clock_.now();
        BatchExecution exec = backend_.execute(*task);
        ledger.push(std::move(exec), clock_.now() - exec_t0);
      });
    } else {
      const double exec_t0 = clock_.now();
      inline_executions.push_back(backend_.execute(work));
      report.execute_seconds += clock_.now() - exec_t0;
    }

    if (cfg_.max_batches != 0 && report.batches >= cfg_.max_batches) {
      report.failed += pending.size() + (trace.size() - next_arrival);
      stop = true;
    }
  }

  // ---- Stage 6: completion / accounting -------------------------------
  inflight.join();  // rethrows the first execution failure
  std::vector<BatchExecution> executions = ledger.take(&report.execute_seconds);
  for (auto& exec : inline_executions) executions.push_back(std::move(exec));
  for (auto& exec : executions) {
    result.peak_kv_bytes = std::max(result.peak_kv_bytes, exec.peak_kv_bytes);
    result.early_freed_bytes += exec.early_freed_bytes;
    result.reclaimable_kv_bytes += exec.reclaimable_kv_bytes;
    for (auto& resp : exec.responses) {
      const auto& times = service_times.at(resp.id);  // throws on unknown id
      resp.scheduled_at = times.first;
      resp.completed_at = times.second;
      result.responses.push_back(std::move(resp));
    }
  }
  std::sort(result.responses.begin(), result.responses.end(),
            [](const Response& a, const Response& b) { return a.id < b.id; });

  const double horizon = std::max(report.makespan, trace_end);
  report.throughput =
      horizon > 0.0 ? static_cast<double>(report.completed) / horizon : 0.0;
  return result;
}

PipelineResult ServingPipeline::run_continuous(
    const std::vector<Request>& trace) const {
  backend_.validate_trace(trace);

  const SchedulerConfig& sched_cfg = scheduler_.config();
  PipelineResult result;
  ServingReport& report = result.report;
  report.scheduler = scheduler_.name();
  report.scheme = scheme_name(cfg_.scheme);
  report.arrived = trace.size();
  report.worker_busy_seconds.assign(cfg_.workers, 0.0);

  double trace_end = 0.0;
  for (const auto& req : trace) trace_end = std::max(trace_end, req.arrival);

  RequestQueue admission(cfg_.admission_capacity);

  /// One batch mid-decode on a worker: its stepped execution, the slot grid
  /// tracking which spans are live, and running per-batch accounting.
  struct LiveBatch {
    std::unique_ptr<SteppedExecution> exec;
    std::unique_ptr<SlotAllocator> slots;
    double seconds = 0.0;       ///< accumulated simulated batch time
    std::size_t requests = 0;   ///< placed at formation + spliced
    std::size_t steps = 0;      ///< decode iterations run so far
    /// Whether the plan filled enough of the grid to be worth keeping alive
    /// via splices (PipelineConfig::splice_min_fill); under-filled batches
    /// drain and retire instead.
    bool splice_eligible = false;
  };
  std::vector<LiveBatch> live(cfg_.workers);

  // A worker's entry is the simulated time of its next event: the end of its
  // current decode iteration when a batch is live, the moment it can form a
  // batch when idle, kIdleForever when it has nothing left to do.
  constexpr double kIdleForever = std::numeric_limits<double>::infinity();
  std::vector<double> worker_free(cfg_.workers, 0.0);
  std::size_t next_arrival = 0;
  std::vector<Request> pending;  ///< drained, unscheduled; (arrival, id) order
  std::unordered_map<RequestId, std::pair<double, double>> service_times;
  std::unordered_map<RequestId, double> arrival_of;  ///< for latency at finish
  std::vector<BatchExecution> executions;
  bool stop = false;

  // Stage 1 (admission), shared by batch formation and splicing: pull every
  // arrival up to `now` through the bounded queue, restore canonical pending
  // order, evict what expired or can never fit.
  const auto admit_until = [&](double now) {
    const double admission_t0 = clock_.now();
    while (next_arrival < trace.size() &&
           trace[next_arrival].arrival <= now) {
      if (!admission.try_push(trace[next_arrival])) {
        ++report.backpressure_events;
        drain_admission(admission, pending);
        TCB_CHECK(admission.try_push(trace[next_arrival]),
                  "ServingPipeline: admission queue full after drain");
      }
      ++next_arrival;
    }
    report.admission_queue_depth.add(static_cast<double>(admission.size()));
    drain_admission(admission, pending);
    report.failed +=
        evict_unschedulable(now, sched_cfg.row_capacity, pending).size();
    report.admission_seconds += clock_.now() - admission_t0;
  };

  // A request is accounted (utility, completed, service start) the moment it
  // enters a batch — at formation or at splice; its completion time is
  // stamped later, at the iteration that emits its final token.
  const auto account_admitted = [&](const Request& req, double at) {
    report.total_utility += req.utility();
    ++report.completed;
    service_times.emplace(req.id, std::make_pair(at, 0.0));
    arrival_of.emplace(req.id, req.arrival);
  };

  while (true) {
    const auto idle_it =
        std::min_element(worker_free.begin(), worker_free.end());
    const std::size_t worker =
        static_cast<std::size_t>(idle_it - worker_free.begin());
    const double now = *idle_it;
    if (now == kIdleForever) break;  // every worker is out of work
    LiveBatch& batch = live[worker];

    if (batch.exec != nullptr) {
      // ---- Step event: the worker's batch finished an iteration ---------
      if (batch.exec->done()) {
        executions.push_back(batch.exec->finish());
        report.batch_seconds.add(batch.seconds);
        report.batch_requests.add(static_cast<double>(batch.requests));
        batch = LiveBatch{};  // idle again at `now`; forms next batch
        continue;
      }
      const double exec_t0 = clock_.now();
      const SteppedExecution::StepResult step = batch.exec->step();
      report.execute_seconds += clock_.now() - exec_t0;
      batch.steps += 1;
      const double step_end = now + step.seconds;
      for (const RequestId id : step.finished) {
        service_times.at(id).second = step_end;
        report.latency.add(step_end - arrival_of.at(id));
      }
      for (const SlotRelease& rel : step.released) {
        batch.slots->release(rel.row, rel.slot);
        ++report.slot_releases;
      }

      // ---- Mid-batch splicing (DESIGN.md §15): re-run DAS over the vacant
      // spans and admit what fits, paying each span's mini-encode.
      double completion = step_end;
      const bool within_horizon = cfg_.splice_horizon_steps == 0 ||
                                  batch.steps < cfg_.splice_horizon_steps;
      const std::vector<SlotSpan> vacant = batch.slots->vacant();
      if (!stop && batch.splice_eligible && within_horizon && !vacant.empty()) {
        admit_until(step_end);
        // Admission post-condition (evict_unschedulable's sanitizer),
        // re-asserted on the continuous path before any batch-geometry
        // arithmetic consumes the surviving requests.
        for (const Request& req : pending)
          TCB_DCHECK(req.length >= 1 &&
                         req.length <= sched_cfg.row_capacity &&
                         req.deadline >= step_end,
                     "run_continuous: unvalidated request after admission");
        // Geometry-mismatch drain: when most of what is waiting cannot fit
        // this batch's widest span, stop splicing and let it retire so the
        // next formation re-adapts the slot geometry to the arrivals.
        if (cfg_.splice_misfit_drain > 0.0 && pending.size() >= 8) {
          const Index widest = batch.slots->max_span_width();
          std::size_t misfits = 0;
          for (const auto& req : pending)
            if (req.length > widest) ++misfits;
          if (static_cast<double>(misfits) >=
              cfg_.splice_misfit_drain * static_cast<double>(pending.size()))
            batch.splice_eligible = false;
        }
        if (batch.splice_eligible && !pending.empty()) {
          std::vector<Index> widths;
          widths.reserve(vacant.size());
          for (const auto& span : vacant) widths.push_back(span.width);
          const double select_t0 = clock_.now();
          std::vector<std::vector<Request>> picks =
              scheduler_.select_for_slots(step_end, widths, pending);
          report.scheduler_seconds += clock_.now() - select_t0;
          // select_for_slots leaves survivor order unspecified; restore the
          // canonical (arrival, id) order the next decision depends on.
          std::sort(pending.begin(), pending.end(),
                    [](const Request& a, const Request& b) {
                      if (a.arrival != b.arrival) return a.arrival < b.arrival;
                      return a.id < b.id;
                    });
          for (std::size_t s = 0; s < picks.size(); ++s) {
            if (picks[s].empty()) continue;
            const SlotSpan& span = vacant[s];
            TCB_CHECK(batch.slots->acquire(span.row, span.slot),
                      "ServingPipeline: spliced into an occupied slot");
            for (const auto& req : picks[s]) {
              account_admitted(req, step_end);
              ++report.spliced_requests;
              ++batch.requests;
            }
            const double splice_t0 = clock_.now();
            completion += batch.exec->splice(span.row, span.slot, span.begin,
                                             span.width, std::move(picks[s]));
            report.execute_seconds += clock_.now() - splice_t0;
          }
        }
      }
      report.slot_occupancy.add(batch.slots->occupied_fraction());

      const double delta = completion - now;
      batch.seconds += delta;
      report.busy_seconds += delta;
      report.worker_busy_seconds[worker] += delta;
      *idle_it = completion;
      report.makespan = std::max(report.makespan, completion);
      continue;
    }

    // ---- Idle worker: form a new batch (stages 1-3, as run-to-completion).
    if (stop) {
      *idle_it = kIdleForever;
      continue;
    }
    admit_until(now);
    if (pending.empty()) {
      *idle_it = next_arrival < trace.size()
                     ? std::max(now, trace[next_arrival].arrival)
                     : kIdleForever;
      continue;
    }
    report.queue_depth.add(static_cast<double>(pending.size()));

    const double select_t0 = clock_.now();
    Selection sel = scheduler_.select(now, pending);
    report.scheduler_seconds += clock_.now() - select_t0;

    const double batch_t0 = clock_.now();
    const Index slot_len =
        sel.slot_len > 0 ? sel.slot_len : cfg_.fixed_slot_len;
    BatchBuildResult built = build_with_scheme(
        cfg_.scheme, std::move(sel.ordered), Row{sched_cfg.batch_rows},
        Col{sched_cfg.row_capacity}, slot_len);
    report.batching_seconds += clock_.now() - batch_t0;

    if (built.plan.empty()) {
      if (next_arrival < trace.size()) {
        *idle_it = std::max(now, trace[next_arrival].arrival);
        continue;
      }
      report.failed += pending.size();
      pending.clear();
      *idle_it = kIdleForever;
      continue;
    }

    std::unordered_set<RequestId> served;
    for (const auto id : built.plan.request_ids()) served.insert(id);
    BatchWork work;
    work.plan = std::move(built.plan);
    work.requests.reserve(served.size());
    double used_tokens = 0.0;
    for (const auto& req : pending) {
      if (!served.contains(req.id)) continue;
      account_admitted(req, now);
      used_tokens += static_cast<double>(req.length);
      work.requests.push_back(req);
    }
    pending.erase(std::remove_if(pending.begin(), pending.end(),
                                 [&](const Request& r) {
                                   return served.contains(r.id);
                                 }),
                  pending.end());

    const double exec_t0 = clock_.now();
    std::unique_ptr<SteppedExecution> exec = backend_.begin_stepped(work);
    if (exec == nullptr)
      throw std::logic_error(
          "ServingPipeline: backend cannot step batches (continuous mode "
          "needs begin_stepped support)");
    report.execute_seconds += clock_.now() - exec_t0;
    const double prologue = exec->prologue_seconds();
    if (!(prologue > 0.0))
      throw std::logic_error("ServingPipeline: non-positive batch prologue");

    double plan_capacity = 0.0;
    for (const auto& row : work.plan.rows)
      plan_capacity += static_cast<double>(row.width);
    const double grid_capacity = static_cast<double>(
        sched_cfg.batch_rows * sched_cfg.row_capacity);
    batch.slots = std::make_unique<SlotAllocator>(work.plan);
    batch.exec = std::move(exec);
    batch.seconds = prologue;
    batch.requests = served.size();
    batch.splice_eligible =
        plan_capacity >= cfg_.splice_min_fill * grid_capacity;
    ++report.batches;
    report.busy_seconds += prologue;
    report.worker_busy_seconds[worker] += prologue;
    report.batch_occupancy.add(
        used_tokens / static_cast<double>(sched_cfg.batch_rows *
                                          sched_cfg.row_capacity));
    *idle_it = now + prologue;
    report.makespan = std::max(report.makespan, now + prologue);

    if (cfg_.max_batches != 0 && report.batches >= cfg_.max_batches) {
      // Safety valve: stop admitting; live batches still drain to done.
      report.failed += pending.size() + (trace.size() - next_arrival);
      pending.clear();
      next_arrival = trace.size();
      stop = true;
    }
  }

  // ---- Completion / accounting ----------------------------------------
  for (auto& exec : executions) {
    result.peak_kv_bytes = std::max(result.peak_kv_bytes, exec.peak_kv_bytes);
    result.early_freed_bytes += exec.early_freed_bytes;
    result.reclaimable_kv_bytes += exec.reclaimable_kv_bytes;
    for (auto& resp : exec.responses) {
      const auto& times = service_times.at(resp.id);  // throws on unknown id
      resp.scheduled_at = times.first;
      resp.completed_at = times.second;
      result.responses.push_back(std::move(resp));
    }
  }
  std::sort(result.responses.begin(), result.responses.end(),
            [](const Response& a, const Response& b) { return a.id < b.id; });

  const double horizon = std::max(report.makespan, trace_end);
  report.throughput =
      horizon > 0.0 ? static_cast<double>(report.completed) / horizon : 0.0;
  return result;
}

}  // namespace tcb
