#include "serving/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "batching/concat_batcher.hpp"
#include "batching/naive_batcher.hpp"
#include "batching/slotted_batcher.hpp"
#include "batching/turbo_batcher.hpp"
#include "util/csv.hpp"
#include "util/timer.hpp"

namespace tcb {

std::string ServingReport::summary() const {
  std::string out = scheduler + "-" + scheme;
  out += " arrived=" + std::to_string(arrived);
  out += " completed=" + std::to_string(completed);
  out += " failed=" + std::to_string(failed);
  out += " utility=" + format_number(total_utility);
  out += " throughput=" + format_number(throughput) + "/s";
  out += " batches=" + std::to_string(batches);
  return out;
}

ServingSimulator::ServingSimulator(const Scheduler& scheduler,
                                   const CostModel& cost, SimulatorConfig cfg)
    : scheduler_(scheduler), cost_(cost), cfg_(cfg) {
  if (cfg_.scheme == Scheme::kConcatSlotted && cfg_.fixed_slot_len < 0)
    throw std::invalid_argument("ServingSimulator: negative fixed_slot_len");
  if (cfg_.workers == 0)
    throw std::invalid_argument("ServingSimulator: need >= 1 worker");
}

ServingReport ServingSimulator::run(const std::vector<Request>& trace) const {
  const SchedulerConfig& sched_cfg = scheduler_.config();
  ServingReport report;
  report.scheduler = scheduler_.name();
  report.scheme = scheme_name(cfg_.scheme);
  report.arrived = trace.size();

  const NaiveBatcher naive;
  const TurboBatcher turbo;
  const ConcatBatcher concat;

  double trace_end = 0.0;
  for (const auto& req : trace) trace_end = std::max(trace_end, req.arrival);

  // Each accelerator is represented by the time it next becomes idle; idle
  // workers pull the scheduler's next selection in turn.
  std::vector<double> worker_free(cfg_.workers, 0.0);
  std::size_t next_arrival = 0;
  std::vector<Request> pending;
  bool stop = false;

  while (!stop) {
    // The earliest-idle worker makes the next scheduling decision.
    const auto idle_it = std::min_element(worker_free.begin(), worker_free.end());
    const double now = *idle_it;

    while (next_arrival < trace.size() &&
           trace[next_arrival].arrival <= now) {
      pending.push_back(trace[next_arrival]);
      ++next_arrival;
    }

    // Fail requests that expired in the queue or can never fit a row.
    report.failed +=
        evict_unschedulable(now, sched_cfg.row_capacity, pending).size();

    if (pending.empty()) {
      if (next_arrival >= trace.size()) break;  // drained
      *idle_it = trace[next_arrival].arrival;   // idle until the next arrival
      continue;
    }
    report.queue_depth.add(static_cast<double>(pending.size()));

    // Scheduler decision (timed: this is what Fig. 16 reports).  The wall
    // clock is read only to *measure* overhead, never to make decisions.
    // tcb-lint: allow(no-wall-clock-in-sched)
    const Timer sched_timer;
    const Selection sel = scheduler_.select(now, pending);
    report.scheduler_seconds += sched_timer.elapsed_seconds();

    // Scheme-specific layout.
    BatchBuildResult built;
    switch (cfg_.scheme) {
      case Scheme::kNaive:
        built = naive.build(sel.ordered, Row{sched_cfg.batch_rows},
                            Col{sched_cfg.row_capacity});
        break;
      case Scheme::kTurbo:
        built = turbo.build(sel.ordered, Row{sched_cfg.batch_rows},
                            Col{sched_cfg.row_capacity});
        break;
      case Scheme::kConcatPure:
        built = concat.build(sel.ordered, Row{sched_cfg.batch_rows},
                             Col{sched_cfg.row_capacity});
        break;
      case Scheme::kConcatSlotted: {
        Index z = sel.slot_len > 0 ? sel.slot_len : cfg_.fixed_slot_len;
        if (z <= 0) z = sched_cfg.row_capacity;  // degenerate: one slot per row
        const SlottedConcatBatcher slotted(z);
        built = slotted.build(sel.ordered, Row{sched_cfg.batch_rows},
                              Col{sched_cfg.row_capacity});
        break;
      }
    }

    if (built.plan.empty()) {
      // The selection could not be placed at all (e.g. every candidate is
      // longer than the slot). Avoid a zero-progress spin: jump to the next
      // arrival if any, otherwise fail what is left.
      if (next_arrival < trace.size()) {
        *idle_it = std::max(now, trace[next_arrival].arrival);
        continue;
      }
      report.failed += pending.size();
      pending.clear();
      break;
    }

    const double batch_time = cost_.batch_seconds(built.plan);
    if (!(batch_time > 0.0))
      throw std::logic_error("ServingSimulator: non-positive batch time");
    const double completion = now + batch_time;

    // Account the served requests.
    std::unordered_set<RequestId> served;
    for (const auto id : built.plan.request_ids()) served.insert(id);
    double used_tokens = 0.0;
    for (const auto& req : pending) {
      if (!served.contains(req.id)) continue;
      report.total_utility += req.utility();
      report.latency.add(completion - req.arrival);
      used_tokens += static_cast<double>(req.length);
      ++report.completed;
    }
    pending.erase(std::remove_if(pending.begin(), pending.end(),
                                 [&](const Request& r) {
                                   return served.contains(r.id);
                                 }),
                  pending.end());

    ++report.batches;
    report.busy_seconds += batch_time;
    report.batch_seconds.add(batch_time);
    report.batch_requests.add(static_cast<double>(served.size()));
    report.batch_occupancy.add(
        used_tokens / static_cast<double>(sched_cfg.batch_rows *
                                          sched_cfg.row_capacity));
    *idle_it = completion;
    report.makespan = std::max(report.makespan, completion);

    if (cfg_.max_batches != 0 && report.batches >= cfg_.max_batches) {
      report.failed += pending.size() + (trace.size() - next_arrival);
      stop = true;
    }
  }

  const double horizon = std::max(report.makespan, trace_end);
  report.throughput =
      horizon > 0.0 ? static_cast<double>(report.completed) / horizon : 0.0;
  return report;
}

}  // namespace tcb
