#include "serving/simulator.hpp"

#include <stdexcept>

namespace tcb {

ServingSimulator::ServingSimulator(const Scheduler& scheduler,
                                   const CostModel& cost, SimulatorConfig cfg)
    : scheduler_(scheduler), cost_(cost), cfg_(cfg) {
  // Validate eagerly (the pipeline would too) so misconfiguration surfaces
  // at construction, not first run.
  if (cfg_.scheme == Scheme::kConcatSlotted && cfg_.fixed_slot_len < 0)
    throw std::invalid_argument("ServingSimulator: negative fixed_slot_len");
  if (cfg_.workers == 0)
    throw std::invalid_argument("ServingSimulator: need >= 1 worker");
}

ServingReport ServingSimulator::run(const std::vector<Request>& trace) const {
  const AnalyticalBackend backend(cost_);
  const WallClock clock;
  PipelineConfig cfg;
  cfg.scheme = cfg_.scheme;
  cfg.fixed_slot_len = cfg_.fixed_slot_len;
  cfg.workers = cfg_.workers;
  cfg.max_batches = cfg_.max_batches;
  cfg.continuous = cfg_.continuous;
  cfg.splice_min_fill = cfg_.splice_min_fill;
  cfg.splice_horizon_steps = cfg_.splice_horizon_steps;
  cfg.splice_misfit_drain = cfg_.splice_misfit_drain;
  const ServingPipeline pipeline(scheduler_, backend, clock, cfg);
  return pipeline.run(trace).report;
}

}  // namespace tcb
