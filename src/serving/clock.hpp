// Pipeline time source (DESIGN.md §10.3).
//
// The serving pipeline advances *simulated* time analytically (batch prices
// from the cost model); the Clock here is only for measuring the pipeline's
// own overhead — how long admission, selection, batching and execution take
// on the host. Two implementations:
//
//   * VirtualClock — returns 0 forever, so every stage-timing diff is 0.
//     This is the default for tests and TcbSystem: results contain no wall
//     time at all and are bit-identical across machines.
//   * WallClock — monotonic wall time since construction. Reserved for the
//     benches (Fig. 16 scheduler overhead, the worker-scaling study) and the
//     default ServingSimulator, whose reports quote real stage overheads.
//
// The contract is deliberately tiny: now() is const, thread-safe, and
// monotone non-decreasing; stage timings are computed as differences, so the
// epoch is irrelevant.
#pragma once

#include "util/timer.hpp"

namespace tcb {

class Clock {
 public:
  virtual ~Clock() = default;
  /// Seconds since an arbitrary epoch; monotone, thread-safe.
  [[nodiscard]] virtual double now() const = 0;
};

/// Time stands still: all stage timings come out exactly 0.
class VirtualClock final : public Clock {
 public:
  [[nodiscard]] double now() const override { return 0.0; }
};

/// Monotonic wall clock for overhead measurement. This is the single
/// sanctioned wall-time read in the serving layer: decisions never depend on
/// it, only the overhead numbers in ServingReport do.
class WallClock final : public Clock {
 public:
  [[nodiscard]] double now() const override {
    return timer_.elapsed_seconds();
  }

 private:
  // tcb-lint: allow(no-wall-clock-in-sched)
  Timer timer_;
};

}  // namespace tcb
