// ExecutionBackend — stage 4/5 of the staged serving pipeline (DESIGN.md
// §10.2): everything the pipeline needs to know about *what executes a
// batch*, behind one interface.
//
// The pipeline itself is engine-agnostic. It prices every batch through
// batch_seconds() to advance simulated time (so queueing, deadline expiry
// and utility stay deterministic and machine-independent), and hands the
// formed batch to execute() for the actual outputs. Two implementations:
//
//   * AnalyticalBackend — pure simulation: prices the plan with a CostModel
//     and produces no responses. This is the paper-scale serving mode
//     (Figs. 9-12, 15; 40-1500 req/s).
//   * EngineBackend — runs the real CPU transformer for the outputs
//     (seq2seq decode, or encoder-only classification when a
//     ClassificationHead is attached) while *still* pricing the virtual
//     clock analytically. offload() is true: execute() is safe to run on a
//     pool worker concurrently with other batches, which is what the
//     pipeline's multi-worker mode does.
//
// This file and cost_model.hpp are the only serving files allowed to
// include the engine headers (nn/model.hpp, nn/classifier.hpp) — enforced
// by tcb-lint's engine-behind-backend rule.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "batching/batch_plan.hpp"
#include "nn/classifier.hpp"
#include "nn/model.hpp"
#include "serving/cost_model.hpp"

namespace tcb {

/// One served request.
struct Response {
  RequestId id = -1;
  double scheduled_at = 0.0;
  double completed_at = 0.0;
  std::vector<Index> tokens;  ///< generated output tokens (seq2seq serving)
  Index label = -1;           ///< predicted class (classification serving)
};

/// A formed batch crossing the formation -> execution stage boundary. Owns
/// its plan and a copy of the placed requests so execution can run on a
/// worker thread after the coordinator has already mutated its pending set.
struct BatchWork {
  BatchPlan plan;
  std::vector<Request> requests;  ///< exactly the requests the plan placed
};

/// What executing one batch produced. scheduled_at/completed_at on the
/// responses are left 0 — the pipeline owns simulated time and stamps them.
struct BatchExecution {
  std::vector<Response> responses;
  std::size_t peak_kv_bytes = 0;
  std::size_t early_freed_bytes = 0;
  /// See DecodeResult::reclaimable_kv_bytes.
  std::size_t reclaimable_kv_bytes = 0;
};

/// One batch being executed one decoder iteration at a time — the execution
/// half of continuous batching (DESIGN.md §15). Obtained from
/// ExecutionBackend::begin_stepped(); the pipeline's coordinator alternates
/// step() with slot releases and splice() admissions, then collects the
/// batch's outputs with finish().
///
/// Not thread-safe: one coordinator drives a given execution; concurrency
/// comes from the engine's own intra-step parallelism (and, in simulation,
/// from interleaving many executions on one coordinator).
class SteppedExecution {
 public:
  virtual ~SteppedExecution() = default;

  struct StepResult {
    /// Simulated-time price of this iteration (step overhead + active-track
    /// flops at the hardware's utilization for that activity).
    double seconds = 0;
    /// Requests that emitted their final token during this iteration.
    std::vector<RequestId> finished;
    /// Slots whose last track finished during this iteration.
    std::vector<SlotRelease> released;
  };

  /// Simulated-time price paid before the first step (encoder + batch
  /// launch overhead).
  [[nodiscard]] virtual double prologue_seconds() const = 0;

  /// True when every track (original and spliced) has finished.
  [[nodiscard]] virtual bool done() const = 0;

  /// Runs one decoder iteration. Must not be called when done().
  [[nodiscard]] virtual StepResult step() = 0;

  /// Splices `reqs` into the vacated span [begin, begin + width) of `row`
  /// (previously surfaced by a StepResult::released entry, or vacant from
  /// formation). Returns any immediate simulated-time price; the built-in
  /// backends return 0 and instead stage the cohort's prefill flops into the
  /// next step()'s fused iteration kernel (SplicePrefill). The requests'
  /// total length must fit `width`.
  [[nodiscard]] virtual double splice(Row row, Slot slot, Col begin,
                                      Index width,
                                      std::vector<Request> reqs) = 0;

  /// Final outputs + accounting; call once, when done().
  [[nodiscard]] virtual BatchExecution finish() = 0;
};

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Simulated-time price of one formed batch; must be > 0 for non-empty
  /// plans (the pipeline's clock must advance).
  [[nodiscard]] virtual double batch_seconds(const BatchPlan& plan) const = 0;

  /// Executes one batch. When offload() is true this must be safe to call
  /// concurrently from multiple threads.
  [[nodiscard]] virtual BatchExecution execute(const BatchWork& work) const = 0;

  /// True when execute() does real work worth running concurrently; the
  /// pipeline then dispatches it to the thread pool in multi-worker mode.
  [[nodiscard]] virtual bool offload() const noexcept { return false; }

  /// Starts iteration-level execution of one batch, or returns nullptr when
  /// this backend cannot step it (the pipeline's continuous mode requires
  /// non-null). Default: unsupported.
  [[nodiscard]] virtual std::unique_ptr<SteppedExecution> begin_stepped(
      const BatchWork& work) const {
    (void)work;
    return nullptr;
  }

  /// Rejects traces this backend cannot execute. Called once per run,
  /// before any request is admitted.
  virtual void validate_trace(const std::vector<Request>& trace) const {
    (void)trace;
  }
};

/// Prices batches with a cost model and executes nothing — the pipeline's
/// accounting (completed/failed/utility/latency) is the entire output.
class AnalyticalBackend final : public ExecutionBackend {
 public:
  explicit AnalyticalBackend(const CostModel& cost) : cost_(cost) {}

  [[nodiscard]] std::string name() const override { return "analytical"; }
  [[nodiscard]] double batch_seconds(const BatchPlan& plan) const override {
    return cost_.batch_seconds(plan);
  }
  [[nodiscard]] BatchExecution execute(const BatchWork& work) const override {
    (void)work;
    return {};
  }
  /// Stepped simulation: prices each iteration with the analytical model's
  /// decode_step_cost over simulated track states (translation-style decode
  /// lengths), emitting slot releases as modeled tracks retire. Requires the
  /// wrapped CostModel to be the AnalyticalCostModel; returns nullptr for
  /// other cost models.
  [[nodiscard]] std::unique_ptr<SteppedExecution> begin_stepped(
      const BatchWork& work) const override;

 private:
  const CostModel& cost_;
};

/// Runs the real CPU engine for outputs while pricing simulated time with
/// the analytical model of the *configured* model on the configured hardware
/// (not host wall time — dynamics stay machine-independent). With a
/// ClassificationHead attached the backend encodes once and classifies
/// (encoder-only pricing); otherwise it decodes auto-regressively.
class EngineBackend final : public ExecutionBackend {
 public:
  /// `head`, when non-null, must outlive the backend and match the model's
  /// d_model.
  EngineBackend(std::shared_ptr<const Seq2SeqModel> model,
                const AnalyticalCostModel& clock, InferenceOptions opts,
                const ClassificationHead* head = nullptr);

  [[nodiscard]] std::string name() const override { return "engine"; }
  [[nodiscard]] double batch_seconds(const BatchPlan& plan) const override;
  [[nodiscard]] BatchExecution execute(const BatchWork& work) const override;
  [[nodiscard]] bool offload() const noexcept override { return true; }
  void validate_trace(const std::vector<Request>& trace) const override;
  /// Real stepped execution over a DecodeSession, priced per iteration with
  /// the analytical clock's decode_step_cost over the session's *actual*
  /// track activity — so the virtual clock sees exactly the work the engine
  /// did, partial batches included. Returns nullptr in classification mode
  /// (encoder-only serving has no decode loop to step).
  [[nodiscard]] std::unique_ptr<SteppedExecution> begin_stepped(
      const BatchWork& work) const override;

 private:
  std::shared_ptr<const Seq2SeqModel> model_;
  const AnalyticalCostModel& clock_;  ///< virtual-clock pricing, not wall time
  InferenceOptions opts_;
  const ClassificationHead* head_;  ///< non-owning; encoder-only when set
};

}  // namespace tcb
