#include "batching/concat_batcher.hpp"

#include <stdexcept>

namespace tcb {

BatchBuildResult ConcatBatcher::build(std::vector<Request> selected,
                                      Index batch_rows,
                                      Index row_capacity) const {
  if (batch_rows <= 0 || row_capacity <= 0)
    throw std::invalid_argument("ConcatBatcher: non-positive batch geometry");

  BatchBuildResult result;
  result.plan.scheme = Scheme::kConcatPure;
  result.plan.row_capacity = row_capacity;
  result.plan.rows.resize(static_cast<std::size_t>(batch_rows));
  std::vector<Index> used(static_cast<std::size_t>(batch_rows), 0);

  for (auto& req : selected) {
    bool placed = false;
    if (req.length <= row_capacity) {
      for (std::size_t r = 0; r < result.plan.rows.size(); ++r) {
        if (used[r] + req.length <= row_capacity) {
          result.plan.rows[r].segments.push_back(
              Segment{req.id, used[r], req.length, 0});
          used[r] += req.length;
          placed = true;
          break;
        }
      }
    }
    if (!placed) result.leftover.push_back(std::move(req));
  }

  // Concat rows materialize at full capacity only up to their used extent;
  // the engine pads every row of the batch to the widest, so we record the
  // used width per row. Empty rows are dropped.
  std::vector<RowLayout> compact;
  for (std::size_t r = 0; r < result.plan.rows.size(); ++r) {
    if (result.plan.rows[r].segments.empty()) continue;
    result.plan.rows[r].width = used[r];
    compact.push_back(std::move(result.plan.rows[r]));
  }
  result.plan.rows = std::move(compact);
  return result;
}

}  // namespace tcb
