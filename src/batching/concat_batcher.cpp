#include "batching/concat_batcher.hpp"

#include <stdexcept>

namespace tcb {

BatchBuildResult ConcatBatcher::build(std::vector<Request> selected,
                                      Row batch_rows,
                                      Col row_capacity) const {
  const Index capacity = row_capacity.value();
  if (batch_rows.value() <= 0 || capacity <= 0)
    throw std::invalid_argument("ConcatBatcher: non-positive batch geometry");

  BatchBuildResult result;
  result.plan.scheme = Scheme::kConcatPure;
  result.plan.row_capacity = capacity;
  result.plan.rows.resize(batch_rows.usize());
  std::vector<Index> used(batch_rows.usize(), 0);

  for (auto& req : selected) {
    bool placed = false;
    if (req.length <= capacity) {
      for (std::size_t r = 0; r < result.plan.rows.size(); ++r) {
        if (used[r] + req.length <= capacity) {
          result.plan.rows[r].segments.push_back(
              Segment{req.id, used[r], req.length, 0});
          used[r] += req.length;
          placed = true;
          break;
        }
      }
    }
    if (!placed) result.leftover.push_back(std::move(req));
  }

  // Concat rows materialize at full capacity only up to their used extent;
  // the engine pads every row of the batch to the widest, so we record the
  // used width per row. Empty rows are dropped.
  std::vector<RowLayout> compact;
  for (std::size_t r = 0; r < result.plan.rows.size(); ++r) {
    if (result.plan.rows[r].segments.empty()) continue;
    result.plan.rows[r].width = used[r];
    compact.push_back(std::move(result.plan.rows[r]));
  }
  result.plan.rows = std::move(compact);
  return result;
}

}  // namespace tcb
