// Geometry of one inference batch: which request occupies which span of which
// row. This is the common currency between the scheduler, the batchers, the
// cost model and the inference engine.
//
//   * NaiveBatching (paper Fig. 1a): one request per row, rows padded to the
//     longest request in the batch.
//   * TurboBatching (paper Fig. 1b): one request per row, but the batch holds
//     only requests of similar length (chosen by DP), so padding is small.
//   * Pure ConcatBatching (paper Fig. 1c): several requests concatenated per
//     row; a row is one "slot" spanning the whole row.
//   * Slotted ConcatBatching (paper Fig. 4): rows are divided into fixed-size
//     slots; requests are concatenated within slots and attention runs
//     per slot.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "batching/request.hpp"
#include "parallel/sync.hpp"
#include "tensor/strong_index.hpp"
#include "util/lifetime.hpp"
#include "util/numeric.hpp"

namespace tcb {

enum class Scheme : std::uint8_t {
  kNaive,
  kTurbo,
  kConcatPure,
  kConcatSlotted,
};

[[nodiscard]] const char* scheme_name(Scheme scheme) noexcept;

/// One request's placement inside a batch row.
struct Segment {
  RequestId request_id = -1;
  Index offset = 0;  ///< first token column in the row
  Index length = 0;  ///< token count (== request length)
  Index slot = 0;    ///< slot index within the row (0 for unslotted schemes)

  /// Typed geometry accessors — the sanctioned way to turn a segment into
  /// column/slot coordinates (raw `offset`/`length` arithmetic at call sites
  /// is what tcb-lint's checked-engine-boundary rule polices).
  /// TCB_BATCH_GEOMETRY: a segment's placement depends on what else got
  /// co-batched, so these values may steer *where* a kernel reads/writes but
  /// must never become FP loop extents inside TCB_BITWISE code.
  [[nodiscard]] Col begin_col() const noexcept TCB_BATCH_GEOMETRY {
    return Col{offset};
  }
  [[nodiscard]] Col end_col() const noexcept TCB_BATCH_GEOMETRY {
    return Col{offset + length};
  }
  [[nodiscard]] Slot slot_index() const noexcept TCB_BATCH_GEOMETRY {
    return Slot{slot};
  }
};

struct RowLayout {
  std::vector<Segment> segments;
  /// Materialized width of this row (>= sum of segment lengths). For naive /
  /// turbo batching this is the padded width; for concat schemes it equals
  /// the row capacity L.
  Index width = 0;

  [[nodiscard]] Index used_tokens() const noexcept TCB_BATCH_GEOMETRY;
  [[nodiscard]] Index padded_tokens() const noexcept TCB_BATCH_GEOMETRY {
    return width - used_tokens();
  }
};

class SegmentCache;
struct BatchPlan;

/// Thread-safe lazy holder for a plan's SegmentCache. First touch used to be
/// a naked `mutable std::shared_ptr` assignment — concurrent first calls to
/// BatchPlan::segment_cache() on a shared plan raced (two builds, one
/// leaked into a reader mid-reset). Now first touch is serialized by an
/// annotated mutex and the built cache is *published* through an
/// acquire/release atomic, so the steady-state fast path is one atomic load —
/// no lock, no slower than the unsynchronized original.
///
/// Copies share the built cache (shared_ptr), like the plain member did.
/// Width changes remain single-threaded by contract: concurrent callers must
/// agree on the width (they do — width is derived from the materialized
/// batch), and rebuilding at a new width while old references are live is
/// still a caller bug, exactly as before.
class SegmentCacheSlot {
 public:
  SegmentCacheSlot() = default;
  SegmentCacheSlot(const SegmentCacheSlot& other) TCB_EXCLUDES(mutex_);
  SegmentCacheSlot& operator=(const SegmentCacheSlot& other)
      TCB_EXCLUDES(mutex_);

  /// Returns the cache for `width`, building it under the lock on first
  /// touch (or when the width changed, which must be single-threaded).
  /// The reference borrows from this slot (and stays valid while any copy
  /// of it shares the built cache), not from `plan`.
  const SegmentCache& get_or_build(const BatchPlan& plan, Col width) const
      TCB_LIFETIME_BOUND TCB_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_ TCB_GUARDS(cache_)
      TCB_ACQUIRED_AFTER(lock_order::formation);
  mutable std::shared_ptr<const SegmentCache> cache_ TCB_GUARDED_BY(mutex_);
  /// Fast-path view of cache_.get(): written release under mutex_, read
  /// acquire lock-free. Never dangles while cache_ owns the pointee.
  mutable std::atomic<const SegmentCache*> published_ TCB_LOCK_FREE{nullptr};
};

struct BatchPlan {
  Scheme scheme = Scheme::kConcatPure;
  /// Row capacity L in tokens (paper §5.1). Rows may materialize narrower
  /// (naive/turbo) but never wider.
  Index row_capacity = 0;
  /// Slot length z; 0 for unslotted schemes (the row is a single slot).
  Index slot_len = 0;
  std::vector<RowLayout> rows;

  [[nodiscard]] bool empty() const noexcept;
  [[nodiscard]] Index request_count() const noexcept TCB_BATCH_GEOMETRY;
  [[nodiscard]] Index used_tokens() const noexcept TCB_BATCH_GEOMETRY;
  [[nodiscard]] Index padded_tokens() const noexcept TCB_BATCH_GEOMETRY;
  /// Widest materialized row; the engine's tensor width. This is *the*
  /// batch-global quantity of the TCB invariant: any arithmetic keyed on it
  /// inside a TCB_BITWISE kernel would make a request's numerics depend on
  /// its co-batched neighbors (batch-geometry-taint's canonical violation).
  [[nodiscard]] Index max_width() const noexcept TCB_BATCH_GEOMETRY;
  [[nodiscard]] std::vector<RequestId> request_ids() const;
  [[nodiscard]] std::string summary() const;

  /// Structural invariants: segments sorted by offset, non-overlapping,
  /// within width, within slot boundaries, width <= capacity. Throws
  /// std::logic_error with a description on violation. Called by tests and
  /// (cheaply) by the engine in debug builds.
  void validate() const;

  /// Effective slot length of a row: slot_len when slotted, row width
  /// otherwise.
  [[nodiscard]] Index effective_slot_len(const RowLayout& row) const noexcept
      TCB_BATCH_GEOMETRY {
    return slot_len > 0 ? slot_len : row.width;
  }

  /// Mask geometry at `width`, built on first use and cached on the plan so
  /// every encoder layer, attention head, and decode step reuses one copy.
  ///
  /// Threading contract: concurrent calls at the same width are safe,
  /// including the very first touch (SegmentCacheSlot serializes the build
  /// and publishes the result; the built-cache fast path is one lock-free
  /// atomic load). Callers at a *different* width — which implies the plan
  /// was re-materialized — must still be single-threaded, and mutating
  /// `rows` after a cache was built leaves the cache stale; plans are
  /// immutable once handed to the engine.
  [[nodiscard]] const SegmentCache& segment_cache(Col width) const
      TCB_LIFETIME_BOUND;

 private:
  /// Lazily built by segment_cache(); shared so copied plans share the work.
  SegmentCacheSlot seg_cache_;
};

/// Per-position segment index of a row: map[pos] = index into row.segments,
/// or -1 for padding. The attention mask (paper Eq. 6) is derived from this.
[[nodiscard]] std::vector<std::int32_t> segment_map(const RowLayout& row);

/// Mask geometry of a whole plan at one materialized width, precomputed so
/// the attention kernel never rebuilds per-row segment maps inside the
/// layer/head loops (it used to, once per layer of every forward). Built
/// lazily by BatchPlan::segment_cache() and shared by reference from then
/// on; all arrays are flattened rows x width.
class SegmentCache {
 public:
  SegmentCache(const BatchPlan& plan, Col width);

  [[nodiscard]] Index width() const noexcept TCB_BATCH_GEOMETRY {
    return width_;
  }
  [[nodiscard]] Index row_count() const noexcept TCB_BATCH_GEOMETRY {
    return rows_;
  }

  /// Per-position segment index of row r (-1 = padding), `width()` entries.
  /// The row accessors below also carry TCB_BATCH_GEOMETRY for documentation,
  /// but as pointer/reference returns they are not taint seeds: their
  /// *contents* are per-position span tables that kernels consume
  /// span-relatively (lo anchors the tile walk, hi - lo is request-local).
  [[nodiscard]] const std::int32_t* seg_row(Index r) const noexcept
      TCB_LIFETIME_BOUND TCB_BATCH_GEOMETRY {
    return seg_.data() + static_cast<std::size_t>(r) *
                             static_cast<std::size_t>(width_);
  }
  /// Per-position span of the owning segment: position p of row r may attend
  /// (under MaskPolicy::kSegment) exactly to columns [lo, hi). Both are 0
  /// for padding positions.
  [[nodiscard]] const Index* span_lo_row(Index r) const noexcept
      TCB_LIFETIME_BOUND TCB_BATCH_GEOMETRY {
    return span_lo_.data() + static_cast<std::size_t>(r) *
                                 static_cast<std::size_t>(width_);
  }
  [[nodiscard]] const Index* span_hi_row(Index r) const noexcept
      TCB_LIFETIME_BOUND TCB_BATCH_GEOMETRY {
    return span_hi_.data() + static_cast<std::size_t>(r) *
                                 static_cast<std::size_t>(width_);
  }
  /// Maximal contiguous non-padding column ranges of row r (adjacent
  /// segments merged) — the attendable set under MaskPolicy::kRowShared.
  [[nodiscard]] const std::vector<std::pair<Index, Index>>& used_spans(
      Index r) const noexcept TCB_LIFETIME_BOUND TCB_BATCH_GEOMETRY {
    return used_spans_[static_cast<std::size_t>(r)];
  }

 private:
  Index width_ = 0;
  Index rows_ = 0;
  std::vector<std::int32_t> seg_;
  std::vector<Index> span_lo_;
  std::vector<Index> span_hi_;
  std::vector<std::vector<std::pair<Index, Index>>> used_spans_;
};

/// Result of laying out a selection of requests into one batch.
struct BatchBuildResult {
  BatchPlan plan;
  /// Requests that did not fit and must stay in the pending queue.
  std::vector<Request> leftover;
};

/// Interface implemented by the four batching schemes. `selected` is the
/// scheduler's choice, already ordered by scheduling priority; a batcher
/// must preserve that precedence when space runs out (drop from the tail).
///
/// `batch_rows` (the vertical extent B) and `row_capacity` (the horizontal
/// extent L) are strong-typed: both used to be plain Index, and swapping
/// them built a plausible-looking but transposed batch. Now it won't compile.
class Batcher {
 public:
  virtual ~Batcher() = default;
  [[nodiscard]] virtual Scheme scheme() const noexcept = 0;
  [[nodiscard]] virtual BatchBuildResult build(std::vector<Request> selected,
                                               Row batch_rows,
                                               Col row_capacity) const = 0;
};

}  // namespace tcb
