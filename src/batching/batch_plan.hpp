// Geometry of one inference batch: which request occupies which span of which
// row. This is the common currency between the scheduler, the batchers, the
// cost model and the inference engine.
//
//   * NaiveBatching (paper Fig. 1a): one request per row, rows padded to the
//     longest request in the batch.
//   * TurboBatching (paper Fig. 1b): one request per row, but the batch holds
//     only requests of similar length (chosen by DP), so padding is small.
//   * Pure ConcatBatching (paper Fig. 1c): several requests concatenated per
//     row; a row is one "slot" spanning the whole row.
//   * Slotted ConcatBatching (paper Fig. 4): rows are divided into fixed-size
//     slots; requests are concatenated within slots and attention runs
//     per slot.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "batching/request.hpp"
#include "tensor/strong_index.hpp"

namespace tcb {

enum class Scheme : std::uint8_t {
  kNaive,
  kTurbo,
  kConcatPure,
  kConcatSlotted,
};

[[nodiscard]] const char* scheme_name(Scheme scheme) noexcept;

/// One request's placement inside a batch row.
struct Segment {
  RequestId request_id = -1;
  Index offset = 0;  ///< first token column in the row
  Index length = 0;  ///< token count (== request length)
  Index slot = 0;    ///< slot index within the row (0 for unslotted schemes)

  /// Typed geometry accessors — the sanctioned way to turn a segment into
  /// column/slot coordinates (raw `offset`/`length` arithmetic at call sites
  /// is what tcb-lint's checked-engine-boundary rule polices).
  [[nodiscard]] Col begin_col() const noexcept { return Col{offset}; }
  [[nodiscard]] Col end_col() const noexcept { return Col{offset + length}; }
  [[nodiscard]] Slot slot_index() const noexcept { return Slot{slot}; }
};

struct RowLayout {
  std::vector<Segment> segments;
  /// Materialized width of this row (>= sum of segment lengths). For naive /
  /// turbo batching this is the padded width; for concat schemes it equals
  /// the row capacity L.
  Index width = 0;

  [[nodiscard]] Index used_tokens() const noexcept;
  [[nodiscard]] Index padded_tokens() const noexcept {
    return width - used_tokens();
  }
};

struct BatchPlan {
  Scheme scheme = Scheme::kConcatPure;
  /// Row capacity L in tokens (paper §5.1). Rows may materialize narrower
  /// (naive/turbo) but never wider.
  Index row_capacity = 0;
  /// Slot length z; 0 for unslotted schemes (the row is a single slot).
  Index slot_len = 0;
  std::vector<RowLayout> rows;

  [[nodiscard]] bool empty() const noexcept;
  [[nodiscard]] Index request_count() const noexcept;
  [[nodiscard]] Index used_tokens() const noexcept;
  [[nodiscard]] Index padded_tokens() const noexcept;
  /// Widest materialized row; the engine's tensor width.
  [[nodiscard]] Index max_width() const noexcept;
  [[nodiscard]] std::vector<RequestId> request_ids() const;
  [[nodiscard]] std::string summary() const;

  /// Structural invariants: segments sorted by offset, non-overlapping,
  /// within width, within slot boundaries, width <= capacity. Throws
  /// std::logic_error with a description on violation. Called by tests and
  /// (cheaply) by the engine in debug builds.
  void validate() const;

  /// Effective slot length of a row: slot_len when slotted, row width
  /// otherwise.
  [[nodiscard]] Index effective_slot_len(const RowLayout& row) const noexcept {
    return slot_len > 0 ? slot_len : row.width;
  }
};

/// Per-position segment index of a row: map[pos] = index into row.segments,
/// or -1 for padding. The attention mask (paper Eq. 6) is derived from this.
[[nodiscard]] std::vector<std::int32_t> segment_map(const RowLayout& row);

/// Result of laying out a selection of requests into one batch.
struct BatchBuildResult {
  BatchPlan plan;
  /// Requests that did not fit and must stay in the pending queue.
  std::vector<Request> leftover;
};

/// Interface implemented by the four batching schemes. `selected` is the
/// scheduler's choice, already ordered by scheduling priority; a batcher
/// must preserve that precedence when space runs out (drop from the tail).
///
/// `batch_rows` (the vertical extent B) and `row_capacity` (the horizontal
/// extent L) are strong-typed: both used to be plain Index, and swapping
/// them built a plausible-looking but transposed batch. Now it won't compile.
class Batcher {
 public:
  virtual ~Batcher() = default;
  [[nodiscard]] virtual Scheme scheme() const noexcept = 0;
  [[nodiscard]] virtual BatchBuildResult build(std::vector<Request> selected,
                                               Row batch_rows,
                                               Col row_capacity) const = 0;
};

}  // namespace tcb
