#include "batching/slot_allocator.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace tcb {

SlotAllocator::SlotAllocator(const BatchPlan& plan) {
  MutexLock lock(mutex_);
  const bool slotted =
      plan.scheme == Scheme::kConcatSlotted && plan.slot_len > 0;
  for (std::size_t r = 0; r < plan.rows.size(); ++r) {
    const RowLayout& row = plan.rows[r];
    if (row.width <= 0) continue;
    const Index slot_count =
        slotted ? (row.width + plan.slot_len - 1) / plan.slot_len : 1;
    for (Index s = 0; s < slot_count; ++s) {
      Entry e;
      e.span.row = Row{static_cast<Index>(r)};
      e.span.slot = Slot{s};
      if (slotted) {
        e.span.begin = Col{s * plan.slot_len};
        e.span.width = std::min(plan.slot_len, row.width - s * plan.slot_len);
      } else {
        e.span.begin = Col{0};
        e.span.width = row.width;
      }
      e.occupied = std::any_of(
          row.segments.begin(), row.segments.end(), [&](const Segment& seg) {
            return !slotted || seg.slot_index() == e.span.slot;
          });
      if (!e.occupied) free_list_.push_back(entries_.size());
      entries_.push_back(e);
    }
  }
  total_slots_ = static_cast<Index>(entries_.size());
  stats_.total_slots = total_slots_;
  stats_.occupied_slots = static_cast<Index>(
      std::count_if(entries_.begin(), entries_.end(),
                    [](const Entry& e) { return e.occupied; }));
}

std::size_t SlotAllocator::find(Row row, Slot slot) const {
  for (std::size_t i = 0; i < entries_.size(); ++i)
    if (entries_[i].span.row == row && entries_[i].span.slot == slot) return i;
  return entries_.size();
}

bool SlotAllocator::release(Row row, Slot slot) {
  MutexLock lock(mutex_);
  const std::size_t i = find(row, slot);
  TCB_CHECK(i < entries_.size(), "SlotAllocator::release: unknown slot");
  if (!entries_[i].occupied) return false;
  entries_[i].occupied = false;
  free_list_.push_back(i);
  stats_.occupied_slots -= 1;
  stats_.releases += 1;
  return true;
}

bool SlotAllocator::acquire(Row row, Slot slot) {
  MutexLock lock(mutex_);
  const std::size_t i = find(row, slot);
  TCB_CHECK(i < entries_.size(), "SlotAllocator::acquire: unknown slot");
  if (entries_[i].occupied) return false;
  entries_[i].occupied = true;
  free_list_.erase(std::remove(free_list_.begin(), free_list_.end(), i),
                   free_list_.end());
  stats_.occupied_slots += 1;
  stats_.acquires += 1;
  return true;
}

std::vector<SlotSpan> SlotAllocator::vacant() const {
  MutexLock lock(mutex_);
  std::vector<SlotSpan> out;
  out.reserve(free_list_.size());
  for (const auto i : free_list_) out.push_back(entries_[i].span);
  return out;
}

Index SlotAllocator::max_span_width() const {
  MutexLock lock(mutex_);
  Index widest = 0;
  for (const auto& e : entries_) widest = std::max(widest, e.span.width);
  return widest;
}

SlotAllocatorStats SlotAllocator::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

double SlotAllocator::occupied_fraction() const {
  MutexLock lock(mutex_);
  if (entries_.empty()) return 1.0;
  return static_cast<double>(stats_.occupied_slots) /
         static_cast<double>(entries_.size());
}

}  // namespace tcb
