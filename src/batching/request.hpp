// The unit of work of the serving system (paper §5.1): a sentence with an
// arrival time, a deadline and a length. The utility of serving request n is
// v_n = 1 / l_n; a request that is not scheduled before its deadline yields 0.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace tcb {

using RequestId = std::int64_t;

struct Request {
  RequestId id = -1;
  double arrival = 0.0;   ///< seconds since trace start
  double deadline = 0.0;  ///< absolute; must be scheduled at t <= deadline
  Index length = 0;       ///< number of tokens, 1 <= length <= L_max

  /// Token ids; empty in simulation-only runs where only `length` matters.
  std::vector<Index> tokens;

  /// Client-assigned importance (extension; the paper's requests are
  /// uniform). Scales the utility, so a premium tier can outrank equal
  /// lengths in DAS's utility-dominant set.
  double weight = 1.0;

  /// Paper §5.1: v_n = 1 / l_n, generalized to w_n / l_n.
  [[nodiscard]] double utility() const noexcept {
    return length > 0 ? weight / static_cast<double>(length) : 0.0;
  }
};

}  // namespace tcb
