// NaiveBatching (paper Fig. 1a): the PyTorch-default scheme. Up to B requests
// are batched in selection order, one per row, and every row is padded to the
// longest request in the batch.
#pragma once

#include "batching/batch_plan.hpp"

namespace tcb {

class NaiveBatcher final : public Batcher {
 public:
  [[nodiscard]] Scheme scheme() const noexcept override { return Scheme::kNaive; }
  [[nodiscard]] BatchBuildResult build(std::vector<Request> selected,
                                       Row batch_rows,
                                       Col row_capacity) const override;
};

}  // namespace tcb
