#include "batching/packed_batch.hpp"

#include <stdexcept>

#include "util/check.hpp"

namespace tcb {

PackedBatch pack_batch(
    const BatchPlan& plan,
    const std::unordered_map<RequestId, const Request*>& by_id) {
  PackedBatch packed;
  packed.plan = plan;
  packed.width_ = Col{plan.max_width()};
  packed.tokens.assign(packed.rows().usize() * packed.width_.usize(),
                       kPadToken);

  const Index width = packed.width_.value();
  for (Row r{0}; r < packed.rows(); ++r) {
    for (const auto& seg : plan.rows[r.usize()].segments) {
      const auto it = by_id.find(seg.request_id);
      if (it == by_id.end())
        throw std::invalid_argument("pack_batch: request " +
                                    std::to_string(seg.request_id) +
                                    " missing from token map");
      const Request& req = *it->second;
      if (static_cast<Index>(req.tokens.size()) != seg.length)
        throw std::invalid_argument(
            "pack_batch: token count mismatch for request " +
            std::to_string(seg.request_id));
      // The segment span must sit inside the materialized row; a violation
      // here means the batcher produced an inconsistent plan.
      TCB_CHECK(seg.offset >= 0 && seg.length > 0 &&
                    seg.offset + seg.length <= width,
                "pack_batch: segment [" + std::to_string(seg.offset) + ", " +
                    std::to_string(seg.offset + seg.length) +
                    ") outside row width " + std::to_string(width));
      for (Index i = 0; i < seg.length; ++i)
        packed.tokens[flat_offset(r, seg.begin_col() + i, packed.width_)] =
            req.tokens[static_cast<std::size_t>(i)];
    }
  }
  return packed;
}

PackedBatch pack_batch(const BatchPlan& plan,
                       const std::vector<Request>& requests) {
  std::unordered_map<RequestId, const Request*> by_id;
  by_id.reserve(requests.size());
  for (const auto& req : requests) by_id.emplace(req.id, &req);
  return pack_batch(plan, by_id);
}

}  // namespace tcb
