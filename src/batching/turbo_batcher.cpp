#include "batching/turbo_batcher.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace tcb {

std::vector<std::size_t> TurboBatcher::dp_partition(
    const std::vector<Index>& sorted_lengths, std::size_t max_group) {
  const std::size_t n = sorted_lengths.size();
  if (n == 0) return {};
  if (max_group == 0) throw std::invalid_argument("dp_partition: max_group=0");

  // cost[i] = minimal padded area of the first i requests; parent[i] = start
  // of the last group in the optimal split of the first i.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> cost(n + 1, kInf);
  std::vector<std::size_t> parent(n + 1, 0);
  cost[0] = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    const std::size_t j_min = i > max_group ? i - max_group : 0;
    for (std::size_t j = j_min; j < i; ++j) {
      // Group covers [j, i); lengths are sorted ascending so the group max is
      // the last element.
      const double area = static_cast<double>(i - j) *
                              static_cast<double>(sorted_lengths[i - 1]) +
                          kGroupOverheadTokens;
      if (cost[j] + area < cost[i]) {
        cost[i] = cost[j] + area;
        parent[i] = j;
      }
    }
  }

  std::vector<std::size_t> ends;
  for (std::size_t i = n; i > 0; i = parent[i]) ends.push_back(i);
  std::reverse(ends.begin(), ends.end());
  return ends;
}

BatchBuildResult TurboBatcher::build(std::vector<Request> selected,
                                     Row batch_rows,
                                     Col row_capacity) const {
  const Index capacity = row_capacity.value();
  if (batch_rows.value() <= 0 || capacity <= 0)
    throw std::invalid_argument("TurboBatcher: non-positive batch geometry");

  BatchBuildResult result;
  result.plan.scheme = Scheme::kTurbo;
  result.plan.row_capacity = capacity;

  // Requests too long for any row can never be served.
  std::vector<Request> eligible;
  for (auto& req : selected) {
    if (req.length <= capacity)
      eligible.push_back(std::move(req));
    else
      result.leftover.push_back(std::move(req));
  }
  if (eligible.empty()) return result;

  std::vector<std::size_t> order(eligible.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return eligible[a].length < eligible[b].length;
  });
  std::vector<Index> lengths;
  lengths.reserve(order.size());
  for (const auto idx : order) lengths.push_back(eligible[idx].length);

  const auto ends = dp_partition(lengths, batch_rows.usize());

  // Execute the largest group (the throughput-efficient choice a
  // length-aware batcher makes); break ties toward the group holding the
  // most urgent request so urgency is not ignored entirely.
  std::size_t chosen = 0;
  std::size_t best_size = 0;
  double best_deadline = std::numeric_limits<double>::infinity();
  std::size_t begin = 0;
  for (std::size_t g = 0; g < ends.size(); ++g) {
    const std::size_t size = ends[g] - begin;
    double urgent = std::numeric_limits<double>::infinity();
    for (std::size_t i = begin; i < ends[g]; ++i)
      urgent = std::min(urgent, eligible[order[i]].deadline);
    if (size > best_size || (size == best_size && urgent < best_deadline)) {
      best_size = size;
      best_deadline = urgent;
      chosen = g;
    }
    begin = ends[g];
  }

  const std::size_t group_begin = chosen == 0 ? 0 : ends[chosen - 1];
  const std::size_t group_end = ends[chosen];
  const Index group_width = lengths[group_end - 1];  // sorted: last = max

  std::vector<bool> taken(eligible.size(), false);
  for (std::size_t i = group_begin; i < group_end; ++i) {
    const auto& req = eligible[order[i]];
    RowLayout row;
    row.width = group_width;
    row.segments.push_back(Segment{req.id, 0, req.length, 0});
    result.plan.rows.push_back(std::move(row));
    taken[order[i]] = true;
  }
  for (std::size_t i = 0; i < eligible.size(); ++i)
    if (!taken[i]) result.leftover.push_back(std::move(eligible[i]));
  return result;
}

}  // namespace tcb
