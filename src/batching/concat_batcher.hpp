// Pure ConcatBatching (paper Fig. 1c / §4.1): requests are concatenated into
// batch rows in selection order, first-fit, so each row carries up to L
// tokens of real work. This reproduces the row-by-row filling of the DAS
// scheduler (Algorithm 1) when fed its selection order.
#pragma once

#include "batching/batch_plan.hpp"

namespace tcb {

class ConcatBatcher final : public Batcher {
 public:
  [[nodiscard]] Scheme scheme() const noexcept override {
    return Scheme::kConcatPure;
  }
  [[nodiscard]] BatchBuildResult build(std::vector<Request> selected,
                                       Row batch_rows,
                                       Col row_capacity) const override;
};

}  // namespace tcb
