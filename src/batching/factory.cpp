#include "batching/factory.hpp"

#include <stdexcept>
#include <utility>

#include "batching/concat_batcher.hpp"
#include "batching/naive_batcher.hpp"
#include "batching/slotted_batcher.hpp"
#include "batching/turbo_batcher.hpp"

namespace tcb {

BatchBuildResult build_with_scheme(Scheme scheme, std::vector<Request> ordered,
                                   Row batch_rows, Col row_capacity,
                                   Index slot_len) {
  switch (scheme) {
    case Scheme::kNaive:
      return NaiveBatcher{}.build(std::move(ordered), batch_rows, row_capacity);
    case Scheme::kTurbo:
      return TurboBatcher{}.build(std::move(ordered), batch_rows, row_capacity);
    case Scheme::kConcatPure:
      return ConcatBatcher{}.build(std::move(ordered), batch_rows,
                                   row_capacity);
    case Scheme::kConcatSlotted: {
      // z <= 0: one slot spanning the whole row (degenerate but well-formed).
      const Index z = slot_len > 0 ? slot_len : row_capacity.value();
      return SlottedConcatBatcher{z}.build(std::move(ordered), batch_rows,
                                           row_capacity);
    }
  }
  throw std::invalid_argument("build_with_scheme: unknown scheme");
}

}  // namespace tcb
