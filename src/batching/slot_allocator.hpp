// First-class slot allocator for continuous iteration-level batching
// (DESIGN.md §15).
//
// A formed BatchPlan fixes a grid of slots: under Slotted ConcatBatching
// every row divides into fixed-size slots of length z; under the other
// schemes each row is one slot spanning its full width. The paper's early
// memory cleaning (§4.2.2) frees a slot's K/V caches the moment its last
// decode track finishes — this allocator is what turns that *memory* event
// into a *scheduling* event: the serving coordinator releases the vacated
// slot here, asks for the vacant spans, and splices newly-admitted requests
// into them between decoder iterations.
//
// Thread-safety: the multi-worker pipeline has one coordinator but release
// events can surface from worker completions; every transition goes through
// one annotated mutex, with a free list so release/allocate stay O(1)/O(k).
// Vacancy order is the release order (FIFO), which keeps continuous-mode
// runs deterministic: the coordinator processes step events in a canonical
// order, so the free list's history is a pure function of the trace.
#pragma once

#include <cstddef>
#include <vector>

#include "batching/batch_plan.hpp"
#include "parallel/sync.hpp"
#include "util/lifetime.hpp"

namespace tcb {

/// Identity + geometry of one allocatable slot: the reusable column span
/// [begin, begin + width) of `row`.
struct SlotSpan {
  Row row{0};
  Slot slot{0};
  Col begin{0};
  Index width = 0;
};

/// Aggregate occupancy/lifetime counters (a point-in-time snapshot).
struct SlotAllocatorStats {
  Index total_slots = 0;
  Index occupied_slots = 0;
  /// Lifetime occupied -> vacant transitions (slot releases).
  std::size_t releases = 0;
  /// Lifetime vacant -> occupied transitions (splice admissions).
  std::size_t acquires = 0;
};

/// Free-list allocator over the fixed slot grid of one formed batch.
///
/// Slots holding at least one segment start occupied; slots the batcher left
/// empty (a slotted row with unfilled slots) start vacant and are available
/// for splicing from the first iteration.
class SlotAllocator {
 public:
  explicit SlotAllocator(const BatchPlan& plan);

  /// Slot-grid size; fixed at construction.
  [[nodiscard]] Index total_slots() const noexcept { return total_slots_; }

  /// Marks (row, slot) vacant and appends it to the free list. Returns false
  /// (and changes nothing) if the slot was already vacant — release events
  /// are idempotent per occupancy period.
  bool release(Row row, Slot slot) TCB_EXCLUDES(mutex_);

  /// Marks (row, slot) occupied and removes it from the free list, returning
  /// its span. Returns false if the slot is not currently vacant.
  bool acquire(Row row, Slot slot) TCB_EXCLUDES(mutex_);

  /// Snapshot of the vacant spans in free-list (release) order — the order
  /// the coordinator offers slots to the scheduler.
  [[nodiscard]] std::vector<SlotSpan> vacant() const TCB_EXCLUDES(mutex_);

  /// Widest span in the grid (occupied or not) — the largest request this
  /// batch's frozen geometry could ever admit. The coordinator compares it
  /// against the pending mix to decide when a live batch's geometry has
  /// drifted too far from the arrivals to keep splicing (0 for an empty
  /// grid).
  [[nodiscard]] Index max_span_width() const TCB_EXCLUDES(mutex_);

  [[nodiscard]] SlotAllocatorStats stats() const TCB_EXCLUDES(mutex_);

  /// occupied / total, in [0, 1]; 1.0 for an empty grid (nothing to fill).
  [[nodiscard]] double occupied_fraction() const TCB_EXCLUDES(mutex_);

 private:
  struct Entry {
    SlotSpan span;
    bool occupied = false;
  };

  /// Index into entries_ for (row, slot), or entries_.size() if unknown.
  [[nodiscard]] std::size_t find(Row row, Slot slot) const
      TCB_REQUIRES(mutex_);

  Index total_slots_ = 0;  ///< immutable after construction

  /// Guards the occupancy grid and free list. Leaf lock of the execution
  /// stage: taken by the serving coordinator around release/splice events,
  /// never while acquiring any other lock.
  mutable Mutex mutex_ TCB_GUARDS(entries_, free_list_, stats_)
      TCB_ACQUIRED_AFTER(lock_order::execution);
  std::vector<Entry> entries_ TCB_GUARDED_BY(mutex_);
  /// Vacant entries, oldest release first.
  std::vector<std::size_t> free_list_ TCB_GUARDED_BY(mutex_);
  SlotAllocatorStats stats_ TCB_GUARDED_BY(mutex_);
};

}  // namespace tcb
