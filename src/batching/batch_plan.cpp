#include "batching/batch_plan.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/check.hpp"

namespace tcb {

const char* scheme_name(Scheme scheme) noexcept {
  switch (scheme) {
    case Scheme::kNaive:
      return "naive";
    case Scheme::kTurbo:
      return "turbo";
    case Scheme::kConcatPure:
      return "concat-pure";
    case Scheme::kConcatSlotted:
      return "concat-slotted";
  }
  return "unknown";
}

Index RowLayout::used_tokens() const noexcept {
  Index total = 0;
  for (const auto& seg : segments) total += seg.length;
  return total;
}

bool BatchPlan::empty() const noexcept {
  for (const auto& row : rows)
    if (!row.segments.empty()) return false;
  return true;
}

Index BatchPlan::request_count() const noexcept {
  Index n = 0;
  for (const auto& row : rows) n += static_cast<Index>(row.segments.size());
  return n;
}

Index BatchPlan::used_tokens() const noexcept {
  Index total = 0;
  for (const auto& row : rows) total += row.used_tokens();
  return total;
}

Index BatchPlan::padded_tokens() const noexcept {
  Index total = 0;
  for (const auto& row : rows) total += row.padded_tokens();
  return total;
}

Index BatchPlan::max_width() const noexcept {
  Index w = 0;
  for (const auto& row : rows) w = std::max(w, row.width);
  return w;
}

std::vector<RequestId> BatchPlan::request_ids() const {
  std::vector<RequestId> ids;
  ids.reserve(static_cast<std::size_t>(request_count()));
  for (const auto& row : rows)
    for (const auto& seg : row.segments) ids.push_back(seg.request_id);
  return ids;
}

std::string BatchPlan::summary() const {
  std::string out = scheme_name(scheme);
  out += " rows=" + std::to_string(rows.size());
  out += " L=" + std::to_string(row_capacity);
  if (slot_len > 0) out += " z=" + std::to_string(slot_len);
  out += " requests=" + std::to_string(request_count());
  out += " used=" + std::to_string(used_tokens());
  out += " padded=" + std::to_string(padded_tokens());
  return out;
}

void BatchPlan::validate() const {
  auto fail = [](const std::string& what) { throw std::logic_error("BatchPlan: " + what); };
  if (row_capacity <= 0) fail("row_capacity must be positive");
  if (slot_len < 0) fail("negative slot_len");
  if (slot_len > row_capacity) fail("slot_len exceeds row_capacity");
  if ((scheme == Scheme::kConcatSlotted) != (slot_len > 0))
    fail("slot_len must be set exactly for the slotted scheme");
  for (const auto& row : rows) {
    if (row.width < 0 || row.width > row_capacity)
      fail("row width out of [0, L]");
    Index cursor = 0;
    for (const auto& seg : row.segments) {
      if (seg.length <= 0) fail("empty segment");
      if (seg.offset < cursor) fail("segments overlap or are unsorted");
      if (seg.offset + seg.length > row.width) fail("segment exceeds row width");
      if (slot_len > 0) {
        if (seg.slot != seg.offset / slot_len) fail("segment slot index wrong");
        const Index slot_begin = seg.slot * slot_len;
        const Index slot_end = std::min(slot_begin + slot_len, row.width);
        if (seg.offset < slot_begin || seg.offset + seg.length > slot_end)
          fail("segment straddles a slot boundary");
      } else if (seg.slot != 0) {
        fail("non-zero slot index in unslotted plan");
      }
      cursor = seg.offset + seg.length;
    }
    if ((scheme == Scheme::kNaive || scheme == Scheme::kTurbo) &&
        row.segments.size() > 1)
      fail("naive/turbo rows hold at most one request");
  }
}

SegmentCache::SegmentCache(const BatchPlan& plan, Col width)
    : width_(width.value()), rows_(static_cast<Index>(plan.rows.size())) {
  const std::size_t total =
      static_cast<std::size_t>(rows_) * static_cast<std::size_t>(width_);
  seg_.assign(total, -1);
  span_lo_.assign(total, 0);
  span_hi_.assign(total, 0);
  used_spans_.resize(static_cast<std::size_t>(rows_));
  for (Index r = 0; r < rows_; ++r) {
    const RowLayout& row = plan.rows[static_cast<std::size_t>(r)];
    TCB_CHECK(row.width <= width_,
              "SegmentCache: row wider than the materialized width");
    const std::size_t base =
        static_cast<std::size_t>(r) * static_cast<std::size_t>(width_);
    auto& spans = used_spans_[static_cast<std::size_t>(r)];
    for (std::size_t s = 0; s < row.segments.size(); ++s) {
      const Segment& seg = row.segments[s];
      TCB_DCHECK(seg.offset >= 0 && seg.length > 0 &&
                     seg.offset + seg.length <= row.width,
                 "SegmentCache: segment outside its row");
      const Index lo = seg.begin_col().value();
      const Index hi = seg.end_col().value();
      for (Index p = lo; p < hi; ++p) {
        const std::size_t at = base + static_cast<std::size_t>(p);
        TCB_DCHECK(seg_[at] == -1, "SegmentCache: overlapping segments");
        seg_[at] = static_cast<std::int32_t>(s);
        span_lo_[at] = lo;
        span_hi_[at] = hi;
      }
      // Merge with the previous span when the segments touch: under the
      // row-shared mask the attendable set is "any non-padding column", so
      // adjacency, not segment identity, defines the span.
      if (!spans.empty() && spans.back().second == lo)
        spans.back().second = hi;
      else
        spans.emplace_back(lo, hi);
    }
  }
}

SegmentCacheSlot::SegmentCacheSlot(const SegmentCacheSlot& other) {
  const MutexLock lock(other.mutex_);
  cache_ = other.cache_;
  published_.store(cache_.get(), std::memory_order_release);
}

SegmentCacheSlot& SegmentCacheSlot::operator=(const SegmentCacheSlot& other) {
  if (this == &other) return *this;
  std::shared_ptr<const SegmentCache> snapshot;
  {
    const MutexLock lock(other.mutex_);
    snapshot = other.cache_;
  }
  const MutexLock lock(mutex_);
  cache_ = std::move(snapshot);
  published_.store(cache_.get(), std::memory_order_release);
  return *this;
}

const SegmentCache& SegmentCacheSlot::get_or_build(const BatchPlan& plan,
                                                   Col width) const {
  // Steady state: one acquire load, no lock — as cheap as the old
  // unsynchronized read, but actually safe against a concurrent first touch.
  if (const SegmentCache* fast = published_.load(std::memory_order_acquire);
      fast != nullptr && fast->width() == width.value())
    return *fast;
  const MutexLock lock(mutex_);
  if (!cache_ || cache_->width() != width.value()) {
    cache_ = std::make_shared<const SegmentCache>(plan, width);
    published_.store(cache_.get(), std::memory_order_release);
  }
  return *cache_;
}

const SegmentCache& BatchPlan::segment_cache(Col width) const {
  return seg_cache_.get_or_build(*this, width);
}

std::vector<std::int32_t> segment_map(const RowLayout& row) {
  std::vector<std::int32_t> map(static_cast<std::size_t>(row.width), -1);
  for (std::size_t s = 0; s < row.segments.size(); ++s) {
    const auto& seg = row.segments[s];
    TCB_DCHECK(seg.offset >= 0 && seg.length > 0 &&
                   seg.offset + seg.length <= row.width,
               "segment_map: segment outside its row");
    for (Index p = seg.offset; p < seg.offset + seg.length; ++p) {
      TCB_DCHECK(map[static_cast<std::size_t>(p)] == -1,
                 "segment_map: overlapping segments at position " +
                     std::to_string(p));
      map[static_cast<std::size_t>(p)] = static_cast<std::int32_t>(s);
    }
  }
  return map;
}

}  // namespace tcb
