// Analysis of a batch plan's efficiency: the quantities the paper's
// batching-scheme comparison turns on, computed for any plan.
//
//   * padding ratio      — padded tokens / materialized tokens (Fig. 1's
//                          motivation: NaiveBatching wastes GPU work on
//                          zeros).
//   * attention redundancy — score entries the execution mode computes that
//                          the mask then discards, as a fraction of all
//                          computed entries (Fig. 6 vs Fig. 7: the work
//                          slotting removes).
//   * occupancy          — used tokens / (rows * L).
#pragma once

#include "batching/batch_plan.hpp"

namespace tcb {

struct BatchStats {
  Index rows = 0;
  Index materialized_tokens = 0;  ///< rows * max_width (the engine's tensor)
  Index used_tokens = 0;
  Index padded_tokens = 0;        ///< materialized - used
  Index score_entries_computed = 0;  ///< per head per layer
  Index score_entries_useful = 0;    ///< sum of per-request len^2
  double padding_ratio = 0.0;
  double attention_redundancy = 0.0;  ///< 1 - useful/computed
  double occupancy = 0.0;             ///< used / (rows * row_capacity)
};

/// Computes the statistics for a plan under its own scheme's execution mode
/// (slotted plans compute per-slot blocks; all others the full row width).
[[nodiscard]] BatchStats analyze(const BatchPlan& plan);

}  // namespace tcb
