#include "batching/naive_batcher.hpp"

#include <algorithm>
#include <stdexcept>

namespace tcb {

BatchBuildResult NaiveBatcher::build(std::vector<Request> selected,
                                     Row batch_rows,
                                     Col row_capacity) const {
  // Single unwrap of the typed geometry into the local index math.
  const Index rows_max = batch_rows.value();
  const Index capacity = row_capacity.value();
  if (rows_max <= 0 || capacity <= 0)
    throw std::invalid_argument("NaiveBatcher: non-positive batch geometry");

  BatchBuildResult result;
  result.plan.scheme = Scheme::kNaive;
  result.plan.row_capacity = capacity;

  // Take the first B requests that fit a row at all; oversized requests are
  // returned as leftovers (they can never be served with this L).
  Index max_len = 0;
  std::vector<Request> taken;
  for (auto& req : selected) {
    if (static_cast<Index>(taken.size()) < rows_max &&
        req.length <= capacity) {
      max_len = std::max(max_len, req.length);
      taken.push_back(std::move(req));
    } else {
      result.leftover.push_back(std::move(req));
    }
  }

  for (const auto& req : taken) {
    RowLayout row;
    row.width = max_len;  // padded to the longest request in the batch
    row.segments.push_back(Segment{req.id, 0, req.length, 0});
    result.plan.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace tcb
