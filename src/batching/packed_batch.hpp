// Token payload of a batch: the rectangular id matrix the engine consumes,
// built from a BatchPlan plus the requests' token vectors.
#pragma once

#include <unordered_map>

#include "batching/batch_plan.hpp"
#include "util/check.hpp"
#include "util/numeric.hpp"

namespace tcb {

/// Reserved vocabulary ids shared by the whole engine.
inline constexpr Index kPadToken = 0;
inline constexpr Index kBosToken = 1;
inline constexpr Index kEosToken = 2;
inline constexpr Index kFirstWordToken = 3;

struct PackedBatch {
  BatchPlan plan;
  std::vector<Index> tokens;      ///< rows() * width() ids, kPadToken padding

  [[nodiscard]] Row rows() const noexcept TCB_BATCH_GEOMETRY {
    return Row{static_cast<Index>(plan.rows.size())};
  }
  /// Materialized tensor width (max row width). Batch-global shape: it grows
  /// with whatever else got co-batched, which is why the field moved behind
  /// a TCB_BATCH_GEOMETRY accessor — tcb-lint's batch-geometry-taint rule
  /// keeps values derived from it out of TCB_BITWISE kernels.
  [[nodiscard]] Col width() const noexcept TCB_BATCH_GEOMETRY {
    return width_;
  }
  /// The owning accessor for the packed id matrix: every read outside this
  /// struct and pack_batch() must go through it (tcb-lint's
  /// no-raw-token-indexing rule enforces that), and the Row/Col axes make a
  /// transposed access a compile error rather than a silently wrong token.
  [[nodiscard]] Index token_at(Row row, Col col) const {
    TCB_DCHECK(row >= Row{0} && row < rows() && col >= Col{0} && col < width_,
               "PackedBatch::token_at out of bounds");
    return tokens[flat_offset(row, col, width_)];
  }

 private:
  friend PackedBatch pack_batch(
      const BatchPlan& plan,
      const std::unordered_map<RequestId, const Request*>& by_id);
  Col width_{0};
};

/// Copies each placed request's tokens into its segment span. Throws if a
/// request referenced by the plan is missing from `by_id` or its token count
/// disagrees with the segment length.
[[nodiscard]] PackedBatch pack_batch(
    const BatchPlan& plan,
    const std::unordered_map<RequestId, const Request*>& by_id);

/// Convenience overload building the id map from a vector.
[[nodiscard]] PackedBatch pack_batch(const BatchPlan& plan,
                                     const std::vector<Request>& requests);

}  // namespace tcb
