// Token payload of a batch: the rectangular id matrix the engine consumes,
// built from a BatchPlan plus the requests' token vectors.
#pragma once

#include <unordered_map>

#include "batching/batch_plan.hpp"
#include "util/check.hpp"

namespace tcb {

/// Reserved vocabulary ids shared by the whole engine.
inline constexpr Index kPadToken = 0;
inline constexpr Index kBosToken = 1;
inline constexpr Index kEosToken = 2;
inline constexpr Index kFirstWordToken = 3;

struct PackedBatch {
  BatchPlan plan;
  Col width{0};                   ///< materialized tensor width (max row width)
  std::vector<Index> tokens;      ///< rows() * width ids, kPadToken in padding

  [[nodiscard]] Row rows() const noexcept {
    return Row{static_cast<Index>(plan.rows.size())};
  }
  /// The owning accessor for the packed id matrix: every read outside this
  /// struct and pack_batch() must go through it (tcb-lint's
  /// no-raw-token-indexing rule enforces that), and the Row/Col axes make a
  /// transposed access a compile error rather than a silently wrong token.
  [[nodiscard]] Index token_at(Row row, Col col) const {
    TCB_DCHECK(row >= Row{0} && row < rows() && col >= Col{0} && col < width,
               "PackedBatch::token_at out of bounds");
    return tokens[flat_offset(row, col, width)];
  }
};

/// Copies each placed request's tokens into its segment span. Throws if a
/// request referenced by the plan is missing from `by_id` or its token count
/// disagrees with the segment length.
[[nodiscard]] PackedBatch pack_batch(
    const BatchPlan& plan,
    const std::unordered_map<RequestId, const Request*>& by_id);

/// Convenience overload building the id map from a vector.
[[nodiscard]] PackedBatch pack_batch(const BatchPlan& plan,
                                     const std::vector<Request>& requests);

}  // namespace tcb
