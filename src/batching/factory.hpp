// Scheme-dispatched batch formation — the single place that maps a Scheme
// to its Batcher. Every serving path used to carry its own copy of this
// switch; the staged pipeline (serving/pipeline.cpp) now owns batch
// formation and calls this one helper instead (DESIGN.md §10.2).
#pragma once

#include "batching/batch_plan.hpp"

namespace tcb {

/// Lays `ordered` (the scheduler's selection, in selection order) out under
/// `scheme`. `slot_len` is the slotted scheme's z; a value <= 0 falls back
/// to one slot spanning the whole row (z = row_capacity), matching the
/// degenerate-slot convention of the pre-pipeline serving loops. The other
/// schemes ignore it.
[[nodiscard]] BatchBuildResult build_with_scheme(Scheme scheme,
                                                 std::vector<Request> ordered,
                                                 Row batch_rows,
                                                 Col row_capacity,
                                                 Index slot_len = 0);

}  // namespace tcb
