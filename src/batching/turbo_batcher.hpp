// TurboBatching (paper Fig. 1b, after TurboTransformers [Fang et al.,
// PPoPP'21]): a length-aware scheme. The candidate requests are sorted by
// length and split into consecutive groups by dynamic programming so that the
// total padded area  sum_g |g| * max_len(g)  is minimized, with at most B
// requests per group. One group is executed per GPU slot; the rest of the
// selection is handed back to the pending queue.
//
// Group choice: among the DP-optimal groups we execute the one containing the
// earliest deadline, so urgent work selected by the scheduler is not starved
// by the batcher.
#pragma once

#include "batching/batch_plan.hpp"

namespace tcb {

class TurboBatcher final : public Batcher {
 public:
  [[nodiscard]] Scheme scheme() const noexcept override { return Scheme::kTurbo; }
  [[nodiscard]] BatchBuildResult build(std::vector<Request> selected,
                                       Row batch_rows,
                                       Col row_capacity) const override;

  /// Exposed for tests: DP partition of lengths (sorted ascending) into
  /// consecutive groups of size <= max_group, minimizing
  ///   sum_g ( |g| * max_len(g) + kGroupOverheadTokens ).
  /// The per-group constant models the kernel-launch / dispatch cost of an
  /// extra batch; without it the padded-area objective is degenerate
  /// (splitting is never worse). Returns the exclusive end index of each
  /// group.
  [[nodiscard]] static std::vector<std::size_t> dp_partition(
      const std::vector<Index>& sorted_lengths, std::size_t max_group);

  /// Token-equivalent cost of launching one more batch.
  static constexpr double kGroupOverheadTokens = 32.0;
};

}  // namespace tcb
