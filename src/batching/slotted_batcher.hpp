// Slotted ConcatBatching (paper §4.2, Fig. 4): every batch row is divided
// into slots of a fixed length z. Requests are concatenated within slots
// (never across a slot boundary), so self-attention can run per slot and the
// off-slot-diagonal score blocks are never computed. Requests longer than z
// cannot be placed and are returned to the pending queue (paper §5.3: "the
// ones larger than the slot would be discarded").
#pragma once

#include "batching/batch_plan.hpp"

namespace tcb {

class SlottedConcatBatcher final : public Batcher {
 public:
  /// `slot_len` = z; must be in [1, row_capacity]. The Slotted-DAS scheduler
  /// (Algorithm 2) picks z per batch as the longest request in the
  /// utility-dominant set; a fixed z can also be injected (used by the
  /// slot-policy ablation bench).
  explicit SlottedConcatBatcher(Index slot_len);

  [[nodiscard]] Scheme scheme() const noexcept override {
    return Scheme::kConcatSlotted;
  }
  [[nodiscard]] Index slot_len() const noexcept { return slot_len_; }

  [[nodiscard]] BatchBuildResult build(std::vector<Request> selected,
                                       Row batch_rows,
                                       Col row_capacity) const override;

 private:
  Index slot_len_;
};

}  // namespace tcb
