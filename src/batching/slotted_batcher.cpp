#include "batching/slotted_batcher.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/check.hpp"

namespace tcb {

SlottedConcatBatcher::SlottedConcatBatcher(Index slot_len)
    : slot_len_(slot_len) {
  if (slot_len <= 0)
    throw std::invalid_argument("SlottedConcatBatcher: slot_len must be >= 1");
}

BatchBuildResult SlottedConcatBatcher::build(std::vector<Request> selected,
                                             Row batch_rows,
                                             Col row_capacity) const {
  const Index capacity = row_capacity.value();
  if (batch_rows.value() <= 0 || capacity <= 0)
    throw std::invalid_argument("SlottedConcatBatcher: non-positive geometry");
  if (slot_len_ > capacity)
    throw std::invalid_argument("SlottedConcatBatcher: slot_len > row_capacity");

  const Index slots_per_row = capacity / slot_len_;

  BatchBuildResult result;
  result.plan.scheme = Scheme::kConcatSlotted;
  result.plan.row_capacity = capacity;
  result.plan.slot_len = slot_len_;
  result.plan.rows.resize(batch_rows.usize());

  // used[r][s] = tokens already placed in slot s of row r.
  std::vector<std::vector<Index>> used(
      batch_rows.usize(),
      std::vector<Index>(static_cast<std::size_t>(slots_per_row), 0));

  for (auto& req : selected) {
    bool placed = false;
    if (req.length <= slot_len_) {
      for (std::size_t r = 0; r < used.size() && !placed; ++r) {
        for (std::size_t s = 0; s < used[r].size(); ++s) {
          if (used[r][s] + req.length <= slot_len_) {
            const Index offset =
                static_cast<Index>(s) * slot_len_ + used[r][s];
            // Slot-offset math (paper Fig. 4): the segment must end inside
            // its slot and inside the row capacity.
            TCB_DCHECK(offset + req.length <=
                           (static_cast<Index>(s) + 1) * slot_len_,
                       "slotted placement straddles a slot boundary");
            TCB_DCHECK(offset + req.length <= capacity,
                       "slotted placement exceeds row capacity");
            result.plan.rows[r].segments.push_back(
                Segment{req.id, offset, req.length, static_cast<Index>(s)});
            used[r][s] += req.length;
            placed = true;
            break;
          }
        }
      }
    }
    if (!placed) result.leftover.push_back(std::move(req));
  }

  // Materialize each row up to the end of its last used slot so slot
  // boundaries stay aligned across the whole batch. Segments are sorted by
  // offset (first-fit can place a later request into an earlier slot).
  std::vector<RowLayout> compact;
  for (std::size_t r = 0; r < result.plan.rows.size(); ++r) {
    auto& row = result.plan.rows[r];
    if (row.segments.empty()) continue;
    std::sort(row.segments.begin(), row.segments.end(),
              [](const Segment& a, const Segment& b) {
                return a.offset < b.offset;
              });
    Index last_slot = 0;
    for (const auto& seg : row.segments) last_slot = std::max(last_slot, seg.slot);
    row.width = std::min((last_slot + 1) * slot_len_, capacity);
    TCB_DCHECK(row.used_tokens() <= row.width,
               "slotted row materialized narrower than its segments");
    compact.push_back(std::move(row));
  }
  result.plan.rows = std::move(compact);
  return result;
}

}  // namespace tcb
