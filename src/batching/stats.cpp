#include "batching/stats.hpp"

#include <algorithm>

namespace tcb {

BatchStats analyze(const BatchPlan& plan) {
  BatchStats stats;
  stats.rows = static_cast<Index>(plan.rows.size());
  if (stats.rows == 0) return stats;

  const Index width = plan.max_width();
  stats.materialized_tokens = stats.rows * width;
  stats.used_tokens = plan.used_tokens();
  stats.padded_tokens = stats.materialized_tokens - stats.used_tokens;

  const bool slotted = plan.scheme == Scheme::kConcatSlotted;
  for (const auto& row : plan.rows) {
    if (slotted && plan.slot_len > 0) {
      for (Index begin = 0; begin < row.width; begin += plan.slot_len) {
        const Index w = std::min(plan.slot_len, row.width - begin);
        stats.score_entries_computed += w * w;
      }
    } else {
      stats.score_entries_computed += width * width;
    }
    for (const auto& seg : row.segments)
      stats.score_entries_useful += seg.length * seg.length;
  }

  stats.padding_ratio =
      static_cast<double>(stats.padded_tokens) /
      static_cast<double>(stats.materialized_tokens);
  stats.attention_redundancy =
      1.0 - static_cast<double>(stats.score_entries_useful) /
                static_cast<double>(stats.score_entries_computed);
  stats.occupancy =
      static_cast<double>(stats.used_tokens) /
      static_cast<double>(stats.rows * plan.row_capacity);
  return stats;
}

}  // namespace tcb
