#include "core/tcb.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <unordered_map>

#include "batching/concat_batcher.hpp"
#include "batching/naive_batcher.hpp"
#include "batching/packed_batch.hpp"
#include "batching/slotted_batcher.hpp"
#include "batching/turbo_batcher.hpp"
#include "util/check.hpp"

namespace tcb {
namespace {

/// Processes one packed batch on the engine; fills the responses (without
/// scheduled/completed times, which the loop owns) and returns memory stats.
struct BatchOutcome {
  std::vector<Response> responses;
  std::size_t peak_kv_bytes = 0;
  std::size_t early_freed_bytes = 0;
};

using BatchFn = std::function<BatchOutcome(const PackedBatch&)>;

/// How the virtual clock prices a batch: full seq2seq inference (encode +
/// auto-regressive decode) or encoder-only classification.
enum class ClockMode : std::uint8_t { kSeq2Seq, kEncoderOnly };

/// Virtual-clock advance for one batch. The engine-backed loop runs the real
/// CPU engine for *outputs*, but advances serving time with the analytical
/// cost model of the configured model on the configured hardware profile.
/// Pricing from the plan geometry keeps the serving dynamics — queueing,
/// deadline expiry, utility — deterministic and independent of how fast the
/// host machine happens to execute the engine.
double batch_clock_seconds(const AnalyticalCostModel& clock,
                           const BatchPlan& plan, ClockMode mode) {
  const CostBreakdown cost = clock.breakdown(plan);
  const double seconds = mode == ClockMode::kEncoderOnly
                             ? cost.encoder_seconds + cost.overhead_seconds
                             : cost.total_seconds();
  TCB_CHECK(seconds > 0.0, "batch clock must advance");
  return seconds;
}

/// The engine-backed serving loop shared by seq2seq and classification
/// serving: deliver arrivals, evict unschedulable requests, schedule, lay
/// out, run the engine (advancing the virtual clock with `clock`), account.
ServeResult run_engine_loop(const TcbConfig& cfg, const Scheduler& scheduler,
                            const AnalyticalCostModel& clock, ClockMode mode,
                            const std::vector<Request>& trace,
                            const BatchFn& run_batch) {
  for (const auto& req : trace)
    if (static_cast<Index>(req.tokens.size()) != req.length)
      throw std::invalid_argument(
          "TcbSystem: request " + std::to_string(req.id) +
          " has no token payload (generate the trace with with_tokens=true)");

  const NaiveBatcher naive;
  const TurboBatcher turbo;
  const ConcatBatcher concat;

  ServeResult result;
  double now = 0.0;
  std::size_t next_arrival = 0;
  std::vector<Request> pending;

  while (true) {
    while (next_arrival < trace.size() && trace[next_arrival].arrival <= now) {
      pending.push_back(trace[next_arrival]);
      ++next_arrival;
    }
    result.failed +=
        evict_unschedulable(now, cfg.sched.row_capacity, pending).size();

    if (pending.empty()) {
      if (next_arrival >= trace.size()) break;
      now = trace[next_arrival].arrival;
      continue;
    }

    const Selection sel = scheduler.select(now, pending);

    BatchBuildResult built;
    switch (cfg.scheme) {
      case Scheme::kNaive:
        built = naive.build(sel.ordered, Row{cfg.sched.batch_rows},
                            Col{cfg.sched.row_capacity});
        break;
      case Scheme::kTurbo:
        built = turbo.build(sel.ordered, Row{cfg.sched.batch_rows},
                            Col{cfg.sched.row_capacity});
        break;
      case Scheme::kConcatPure:
        built = concat.build(sel.ordered, Row{cfg.sched.batch_rows},
                             Col{cfg.sched.row_capacity});
        break;
      case Scheme::kConcatSlotted: {
        const Index z = sel.slot_len > 0 ? sel.slot_len : cfg.sched.row_capacity;
        const SlottedConcatBatcher slotted(z);
        built = slotted.build(sel.ordered, Row{cfg.sched.batch_rows},
                              Col{cfg.sched.row_capacity});
        break;
      }
    }

    if (built.plan.empty()) {
      if (next_arrival < trace.size()) {
        now = std::max(now, trace[next_arrival].arrival);
        continue;
      }
      result.failed += pending.size();
      break;
    }

    std::unordered_map<RequestId, const Request*> by_id;
    for (const auto& req : pending) by_id.emplace(req.id, &req);
    const PackedBatch packed = pack_batch(built.plan, by_id);

    BatchOutcome outcome = run_batch(packed);
    const double batch_time = batch_clock_seconds(clock, built.plan, mode);
    const double completion = now + batch_time;

    result.peak_kv_bytes = std::max(result.peak_kv_bytes, outcome.peak_kv_bytes);
    result.early_freed_bytes += outcome.early_freed_bytes;

    std::unordered_map<RequestId, double> scheduled;
    for (const auto id : built.plan.request_ids()) scheduled.emplace(id, now);
    for (auto& resp : outcome.responses) {
      resp.scheduled_at = scheduled.at(resp.id);
      resp.completed_at = completion;
      result.responses.push_back(std::move(resp));
    }
    for (const auto& req : pending)
      if (scheduled.contains(req.id)) result.total_utility += req.utility();
    pending.erase(std::remove_if(pending.begin(), pending.end(),
                                 [&](const Request& r) {
                                   return scheduled.contains(r.id);
                                 }),
                  pending.end());

    ++result.batches;
    now = completion;
    result.makespan = now;
  }

  std::sort(result.responses.begin(), result.responses.end(),
            [](const Response& a, const Response& b) { return a.id < b.id; });
  return result;
}

}  // namespace

void TcbConfig::validate() const {
  model.validate();
  sched.validate();
  if (sched.row_capacity > model.max_len)
    throw std::invalid_argument(
        "TcbConfig: row_capacity exceeds the model's max_len");
  if (max_decode_steps <= 0)
    throw std::invalid_argument("TcbConfig: max_decode_steps must be >= 1");
  // Constructs and discards to surface bad scheduler names early.
  (void)make_scheduler(scheduler, sched);
}

TcbSystem::TcbSystem(TcbConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.validate();
  model_ = std::make_shared<const Seq2SeqModel>(cfg_.model);
  scheduler_ = make_scheduler(cfg_.scheduler, cfg_.sched);
  analytical_ = std::make_unique<AnalyticalCostModel>(
      ModelConfig::paper_scale(), cfg_.hardware);
  engine_clock_ =
      std::make_unique<AnalyticalCostModel>(cfg_.model, cfg_.hardware);
}

ServingReport TcbSystem::simulate(const std::vector<Request>& trace) const {
  SimulatorConfig sim;
  sim.scheme = cfg_.scheme;
  sim.fixed_slot_len = 0;
  const ServingSimulator simulator(*scheduler_, *analytical_, sim);
  return simulator.run(trace);
}

ServeResult TcbSystem::serve(const std::vector<Request>& trace) const {
  InferenceOptions opts;
  opts.mode = cfg_.scheme == Scheme::kConcatSlotted ? AttentionMode::kSlotted
                                                    : AttentionMode::kPureConcat;
  opts.max_decode_steps = cfg_.max_decode_steps;
  opts.early_memory_cleaning = cfg_.early_memory_cleaning;

  return run_engine_loop(
      cfg_, *scheduler_, *engine_clock_, ClockMode::kSeq2Seq, trace,
      [&](const PackedBatch& packed) {
        InferenceResult inf = model_->infer(packed, opts);
        BatchOutcome outcome;
        outcome.peak_kv_bytes = inf.peak_kv_bytes;
        outcome.early_freed_bytes = inf.early_freed_bytes;
        for (auto& [id, tokens] : inf.outputs) {
          Response resp;
          resp.id = id;
          resp.tokens = std::move(tokens);
          outcome.responses.push_back(std::move(resp));
        }
        return outcome;
      });
}

ServeResult TcbSystem::serve_classify(const std::vector<Request>& trace,
                                      const ClassificationHead& head) const {
  InferenceOptions opts;
  opts.mode = cfg_.scheme == Scheme::kConcatSlotted ? AttentionMode::kSlotted
                                                    : AttentionMode::kPureConcat;

  return run_engine_loop(
      cfg_, *scheduler_, *engine_clock_, ClockMode::kEncoderOnly, trace,
      [&](const PackedBatch& packed) {
        const EncoderMemory memory = model_->encode(packed, opts);
        BatchOutcome outcome;
        for (const auto& [id, label] : head.classify(memory)) {
          Response resp;
          resp.id = id;
          resp.label = label;
          outcome.responses.push_back(std::move(resp));
        }
        return outcome;
      });
}

}  // namespace tcb
