#include "core/tcb.hpp"

#include <stdexcept>
#include <utility>

namespace tcb {
namespace {

InferenceOptions engine_options(const TcbConfig& cfg) {
  InferenceOptions opts;
  opts.mode = cfg.scheme == Scheme::kConcatSlotted ? AttentionMode::kSlotted
                                                   : AttentionMode::kPureConcat;
  opts.max_decode_steps = cfg.max_decode_steps;
  opts.early_memory_cleaning = cfg.early_memory_cleaning;
  return opts;
}

PipelineConfig pipeline_config(const TcbConfig& cfg) {
  PipelineConfig pipe;
  pipe.scheme = cfg.scheme;
  pipe.fixed_slot_len = 0;  // Slotted-DAS picks z per batch
  pipe.workers = cfg.workers;
  pipe.continuous = cfg.continuous;
  return pipe;
}

}  // namespace

void TcbConfig::validate() const {
  model.validate();
  sched.validate();
  if (sched.row_capacity > model.max_len)
    throw std::invalid_argument(
        "TcbConfig: row_capacity exceeds the model's max_len");
  if (max_decode_steps <= 0)
    throw std::invalid_argument("TcbConfig: max_decode_steps must be >= 1");
  if (workers == 0)
    throw std::invalid_argument("TcbConfig: workers must be >= 1");
  // Constructs and discards to surface bad scheduler names early.
  (void)make_scheduler(scheduler, sched);
}

TcbSystem::TcbSystem(TcbConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.validate();
  model_ = std::make_shared<const Seq2SeqModel>(cfg_.model);
  scheduler_ = make_scheduler(cfg_.scheduler, cfg_.sched);
  analytical_ = std::make_unique<AnalyticalCostModel>(
      ModelConfig::paper_scale(), cfg_.hardware);
  engine_clock_ =
      std::make_unique<AnalyticalCostModel>(cfg_.model, cfg_.hardware);
}

ServeResult TcbSystem::run_pipeline(const ExecutionBackend& backend,
                                    const std::vector<Request>& trace) const {
  const VirtualClock clock;
  const ServingPipeline pipeline(*scheduler_, backend, clock,
                                 pipeline_config(cfg_));
  PipelineResult run = pipeline.run(trace);
  ServeResult result;
  result.responses = std::move(run.responses);
  result.failed = run.report.failed;
  result.total_utility = run.report.total_utility;
  result.makespan = run.report.makespan;
  result.batches = run.report.batches;
  result.peak_kv_bytes = run.peak_kv_bytes;
  result.early_freed_bytes = run.early_freed_bytes;
  result.reclaimable_kv_bytes = run.reclaimable_kv_bytes;
  result.report = std::move(run.report);
  return result;
}

ServingReport TcbSystem::simulate(const std::vector<Request>& trace) const {
  const AnalyticalBackend backend(*analytical_);
  const VirtualClock clock;
  const ServingPipeline pipeline(*scheduler_, backend, clock,
                                 pipeline_config(cfg_));
  return pipeline.run(trace).report;
}

ServeResult TcbSystem::serve(const std::vector<Request>& trace) const {
  const EngineBackend backend(model_, *engine_clock_, engine_options(cfg_));
  return run_pipeline(backend, trace);
}

ServeResult TcbSystem::serve_classify(const std::vector<Request>& trace,
                                      const ClassificationHead& head) const {
  InferenceOptions opts;
  opts.mode = cfg_.scheme == Scheme::kConcatSlotted
                  ? AttentionMode::kSlotted
                  : AttentionMode::kPureConcat;
  const EngineBackend backend(model_, *engine_clock_, opts, &head);
  return run_pipeline(backend, trace);
}

}  // namespace tcb
