// TcbSystem — the public facade of the TCB inference service (paper Fig. 3).
//
// It wires the pluggable scheduler (DAS / Slotted-DAS / baselines), the
// batching scheme (naive / turbo / pure concat / slotted concat) and the
// ConcatBatching-aware inference engine together. Every mode is a thin
// configuration of the staged ServingPipeline (serving/pipeline.hpp,
// DESIGN.md §10) on a VirtualClock — results are bit-identical across
// machines:
//
//   * serve()    — EngineBackend: runs the real CPU transformer batch by
//                  batch for the outputs, while advancing simulated time
//                  with the analytical cost model of the configured model on
//                  the configured hardware profile. Pricing batches from
//                  plan geometry (not host wall time) makes the serving
//                  dynamics — queueing, deadline expiry, utility —
//                  deterministic. With cfg.workers > 1, batches execute
//                  concurrently on the thread pool.
//   * simulate() — AnalyticalBackend: prices batches with the V100-like
//                  cost model instead of executing them; this is what the
//                  paper-scale serving benches use (40-1500 req/s).
//   * serve_classify() — encoder-only (BERT/GLUE-style) serving with a
//                  ClassificationHead; no auto-regressive decoding.
//
// Typical use (see examples/quickstart.cpp):
//
//   TcbConfig cfg;                         // slotted ConcatBatching + DAS
//   TcbSystem tcb{cfg};
//   auto trace = generate_trace(workload); // or your own Requests
//   auto result = tcb.serve(trace);
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/classifier.hpp"
#include "nn/model.hpp"
#include "sched/factory.hpp"
#include "serving/pipeline.hpp"
#include "util/lifetime.hpp"
#include "workload/trace.hpp"

namespace tcb {

struct TcbConfig {
  ModelConfig model;                 ///< engine architecture
  SchedulerConfig sched;             ///< B, L, eta, q
  Scheme scheme = Scheme::kConcatSlotted;
  /// One of make_scheduler()'s names; defaults to the paper's full system.
  std::string scheduler = "slotted-das";
  HardwareProfile hardware = HardwareProfile::v100_like();
  Index max_decode_steps = 32;
  bool early_memory_cleaning = true;
  /// Accelerator slots sharing the pending queue; >1 runs real engine
  /// batches concurrently on the thread pool (serving dynamics stay
  /// deterministic — simulated time is analytical either way).
  std::size_t workers = 1;
  /// Continuous (iteration-level) batching: decode one iteration at a time,
  /// free slots as requests finish, and splice waiting requests into the
  /// vacated spans mid-batch (DESIGN.md §15). Applies to serve() and
  /// simulate(); serve_classify() has no decode loop and ignores it.
  bool continuous = false;

  void validate() const;
};

/// Outcome of TcbSystem::serve().
struct ServeResult {
  std::vector<Response> responses;
  std::size_t failed = 0;          ///< expired or unservable requests
  double total_utility = 0.0;
  double makespan = 0.0;           ///< virtual time when the last batch ended
  std::size_t batches = 0;
  std::size_t peak_kv_bytes = 0;   ///< max over batches
  std::size_t early_freed_bytes = 0;
  /// What an ideal per-request cleaner could have freed; compare against
  /// early_freed_bytes to see how much of it the scheme reclaimed.
  std::size_t reclaimable_kv_bytes = 0;
  ServingReport report;            ///< full pipeline report (stage timings,
                                   ///< per-worker busy time, queue stats)
};

class TcbSystem {
 public:
  explicit TcbSystem(TcbConfig cfg);

  [[nodiscard]] const TcbConfig& config() const noexcept TCB_LIFETIME_BOUND {
    return cfg_;
  }
  [[nodiscard]] const Seq2SeqModel& model() const noexcept TCB_LIFETIME_BOUND {
    return *model_;
  }
  [[nodiscard]] const Scheduler& scheduler() const noexcept TCB_LIFETIME_BOUND {
    return *scheduler_;
  }

  /// Real-engine serving. Every request must carry tokens
  /// (WorkloadConfig::with_tokens or user-provided). `trace` sorted by
  /// arrival.
  [[nodiscard]] ServeResult serve(const std::vector<Request>& trace) const;

  /// Cost-model serving simulation (no tokens needed).
  [[nodiscard]] ServingReport simulate(const std::vector<Request>& trace) const;

  /// Encoder-only classification serving (BERT/GLUE-style): like serve(),
  /// but each batch is encoded once and classified with `head` — no
  /// auto-regressive decoding. `head` must match the model's d_model.
  [[nodiscard]] ServeResult serve_classify(const std::vector<Request>& trace,
                                           const ClassificationHead& head) const;

 private:
  /// Runs `backend` through the pipeline on a VirtualClock and repackages
  /// the PipelineResult as a ServeResult.
  [[nodiscard]] ServeResult run_pipeline(const ExecutionBackend& backend,
                                         const std::vector<Request>& trace) const;

  TcbConfig cfg_;
  std::shared_ptr<const Seq2SeqModel> model_;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<AnalyticalCostModel> analytical_;
  /// Prices the engine backend's virtual clock: cfg_.model on cfg_.hardware
  /// (unlike analytical_, which prices paper-scale simulation batches).
  std::unique_ptr<AnalyticalCostModel> engine_clock_;
};

}  // namespace tcb
