#include "workload/trace.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "batching/packed_batch.hpp"

namespace tcb {

void WorkloadConfig::validate() const {
  auto fail = [](const char* what) { throw std::invalid_argument(what); };
  if (rate <= 0.0) fail("WorkloadConfig: rate must be positive");
  if (duration <= 0.0) fail("WorkloadConfig: duration must be positive");
  if (min_len < 1 || max_len < min_len) fail("WorkloadConfig: bad length range");
  if (len_variance < 0.0) fail("WorkloadConfig: negative variance");
  if (deadline_slack_min < 0.0 || deadline_slack_max < deadline_slack_min)
    fail("WorkloadConfig: bad deadline slack range");
  if (with_tokens && vocab_size <= kFirstWordToken)
    fail("WorkloadConfig: vocab too small for word tokens");
  if (bimodal_long_fraction < 0.0 || bimodal_long_fraction > 1.0)
    fail("WorkloadConfig: bimodal_long_fraction outside [0, 1]");
  // The calm-state rate must stay non-negative given 25% burst time.
  if (burst_rate_factor < 1.0 || burst_rate_factor > 4.0)
    fail("WorkloadConfig: burst_rate_factor must be in [1, 4]");
  if (burst_mean_duration <= 0.0)
    fail("WorkloadConfig: burst_mean_duration must be positive");
}

namespace {

Index truncated_normal(double mean, double stddev, Index lo, Index hi,
                       Rng& rng) {
  if (stddev == 0.0)
    return std::clamp<Index>(static_cast<Index>(std::lround(mean)), lo, hi);
  for (int attempt = 0; attempt < 64; ++attempt) {
    const Index len = static_cast<Index>(std::lround(rng.gaussian(mean, stddev)));
    if (len >= lo && len <= hi) return len;
  }
  // Extremely skewed configurations: fall back to clamping.
  return std::clamp<Index>(static_cast<Index>(std::lround(mean)), lo, hi);
}

}  // namespace

Index sample_length(const WorkloadConfig& cfg, Rng& rng) {
  const double stddev = std::sqrt(cfg.len_variance);
  switch (cfg.length_distribution) {
    case LengthDistribution::kNormal:
      return truncated_normal(cfg.mean_len, stddev, cfg.min_len, cfg.max_len,
                              rng);
    case LengthDistribution::kBimodal: {
      const double mean = rng.next_double() < cfg.bimodal_long_fraction
                              ? cfg.bimodal_long_mean
                              : cfg.mean_len;
      return truncated_normal(mean, stddev, cfg.min_len, cfg.max_len, rng);
    }
    case LengthDistribution::kUniform:
      return rng.uniform_int(cfg.min_len, cfg.max_len);
  }
  return cfg.min_len;
}

std::vector<Request> generate_trace(const WorkloadConfig& cfg) {
  cfg.validate();
  Rng rng(cfg.seed);
  std::vector<Request> trace;
  trace.reserve(static_cast<std::size_t>(cfg.rate * cfg.duration * 1.2) + 16);

  // Two-state Markov-modulated Poisson process. Bursts occupy 25% of the
  // time; the calm rate is chosen so the long-run mean stays cfg.rate.
  // burst_rate_factor == 1 degenerates to a plain Poisson process.
  constexpr double kBurstTimeFraction = 0.25;
  const double burst_rate = cfg.rate * cfg.burst_rate_factor;
  const double calm_rate =
      cfg.rate * (1.0 - kBurstTimeFraction * cfg.burst_rate_factor) /
      (1.0 - kBurstTimeFraction);
  const double calm_mean_duration =
      cfg.burst_mean_duration * (1.0 - kBurstTimeFraction) /
      kBurstTimeFraction;

  bool in_burst = false;
  double state_end = cfg.burst_rate_factor > 1.0
                         ? rng.exponential(1.0 / calm_mean_duration)
                         : cfg.duration;

  double t = 0.0;
  RequestId next_id = 0;
  for (;;) {
    double state_rate = in_burst ? burst_rate : calm_rate;
    if (cfg.burst_rate_factor == 1.0) state_rate = cfg.rate;
    double gap = state_rate > 0.0 ? rng.exponential(state_rate)
                                  : cfg.duration;  // calm state silent
    // Cross state boundaries without emitting (thinning by episode).
    while (cfg.burst_rate_factor > 1.0 && t + gap >= state_end &&
           state_end < cfg.duration) {
      gap -= std::max(0.0, state_end - t);
      t = state_end;
      in_burst = !in_burst;
      const double mean_dur =
          in_burst ? cfg.burst_mean_duration : calm_mean_duration;
      state_end = t + rng.exponential(1.0 / mean_dur);
      const double new_rate = in_burst ? burst_rate : calm_rate;
      // Rescale the residual gap to the new state's rate.
      gap = new_rate > 0.0 ? gap * state_rate / new_rate : cfg.duration;
      state_rate = new_rate;
    }
    t += gap;
    if (t >= cfg.duration) break;
    Request req;
    req.id = next_id++;
    req.arrival = t;
    req.deadline =
        t + rng.uniform(cfg.deadline_slack_min, cfg.deadline_slack_max);
    req.length = sample_length(cfg, rng);
    if (cfg.with_tokens) {
      req.tokens.reserve(static_cast<std::size_t>(req.length));
      for (Index i = 0; i < req.length; ++i)
        req.tokens.push_back(
            rng.uniform_int(kFirstWordToken, cfg.vocab_size - 1));
    }
    trace.push_back(std::move(req));
  }
  return trace;
}

void save_trace(const std::string& path, const std::vector<Request>& trace) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_trace: cannot open " + path);
  out << "id,arrival,deadline,length\n";
  for (const auto& req : trace)
    out << req.id << ',' << req.arrival << ',' << req.deadline << ','
        << req.length << '\n';
}

std::vector<Request> load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_trace: cannot open " + path);
  std::string line;
  if (!std::getline(in, line))
    throw std::runtime_error("load_trace: empty file " + path);
  std::vector<Request> trace;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ss(line);
    Request req;
    char comma;
    if (!(ss >> req.id >> comma >> req.arrival >> comma >> req.deadline >>
          comma >> req.length))
      throw std::runtime_error("load_trace: malformed line: " + line);
    trace.push_back(std::move(req));
  }
  std::sort(trace.begin(), trace.end(),
            [](const Request& a, const Request& b) { return a.arrival < b.arrival; });
  return trace;
}

}  // namespace tcb
