// Synthetic request traces matching the paper's workload (§6.2.1): request
// lengths are drawn from a truncated normal distribution (3-100 tokens,
// configurable mean and *variance* — the paper reports variance, not
// stddev), arrivals follow a Poisson process, and each request carries a
// deadline = arrival + uniform slack.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "batching/request.hpp"

namespace tcb {

/// Request-length distribution families. kNormal is the paper's workload;
/// kBimodal emulates the highly length-variable datasets the paper's intro
/// points at (ParaCrawl, GLUE/DIA) where length-aware batching struggles;
/// kUniform is a stress shape for property tests.
enum class LengthDistribution : std::uint8_t {
  kNormal,
  kBimodal,
  kUniform,
};

struct WorkloadConfig {
  double rate = 100.0;      ///< mean arrival rate, requests/second
  double duration = 10.0;   ///< trace length in seconds
  Index min_len = 3;        ///< paper: 3
  Index max_len = 100;      ///< paper: 100
  double mean_len = 20.0;   ///< paper: average 20
  double len_variance = 20; ///< paper: variance 20 (Fig. 12/15b vary this)
  LengthDistribution length_distribution = LengthDistribution::kNormal;
  /// kBimodal: the two modes sit at mean_len and bimodal_long_mean, with the
  /// long mode drawn with probability bimodal_long_fraction.
  double bimodal_long_mean = 80.0;
  double bimodal_long_fraction = 0.3;
  double deadline_slack_min = 0.5;  ///< seconds added to arrival
  double deadline_slack_max = 2.0;
  /// Burstiness (extension): a two-state Markov-modulated Poisson process.
  /// burst_rate_factor == 1 is the paper's plain Poisson process; > 1
  /// alternates between a calm state (rate scaled down to keep the mean) and
  /// bursts at rate * burst_rate_factor.
  double burst_rate_factor = 1.0;
  double burst_mean_duration = 0.25;  ///< seconds per burst episode
  std::uint64_t seed = 1;
  /// When true, each request gets random word tokens (needed for the real
  /// engine; the cost-model simulator only needs lengths).
  bool with_tokens = false;
  Index vocab_size = 1024;

  void validate() const;
};

/// Generates a trace sorted by arrival time, ids 0..n-1.
[[nodiscard]] std::vector<Request> generate_trace(const WorkloadConfig& cfg);

/// Draws one truncated-normal length (resample until inside [min, max]).
[[nodiscard]] Index sample_length(const WorkloadConfig& cfg, Rng& rng);

/// Persists a trace (CSV: id,arrival,deadline,length) / loads it back.
/// Token payloads are not persisted; regenerate with `with_tokens`.
void save_trace(const std::string& path, const std::vector<Request>& trace);
[[nodiscard]] std::vector<Request> load_trace(const std::string& path);

}  // namespace tcb
