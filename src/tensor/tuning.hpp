// Cache-geometry detection and the GEMM blocking autotuner.
//
// The blocked GEMM (gemm.cpp) used to hard-code kc = 256 and one MR x NR
// register tile per ISA. Those numbers were chosen for one machine; on a
// part with a bigger L2 a deeper kc amortizes packing better, and tall/wide
// output shapes favor different register tiles. This header exposes:
//
//   * cache_geometry()   — L1d/L2 sizes read from sysfs (with conservative
//                          fallbacks), the same numbers BENCH_kernels.json
//                          records in the google-benchmark context.
//   * select_blocking()  — per-shape-class blocking choice. Candidates are
//                          derived from the cache sizes (kc such that the
//                          active panels stay resident) crossed with the
//                          ISA's microkernel variants, trial-timed once per
//                          process, and published through an atomic so the
//                          steady state is one relaxed load.
//   * gemm_autotune_all()— eager tuning for benches (so the cost never lands
//                          in a measured region) plus optional persistence
//                          via TCB_TUNE_CACHE=<file>.
//
// Determinism: every candidate keeps kc >= 256, which preserves gemm.cpp's
// bitwise concat-equivalence contract for k <= 256 (one FMA chain per
// element regardless of the tile), and a process uses one published choice
// for all GEMMs of a class, so intra-process differential tests are
// unaffected. Tuning defaults ON in optimized builds (NDEBUG) and OFF in
// debug/sanitizer builds; TCB_GEMM_AUTOTUNE=1/0 overrides either way.
#pragma once

#include <cstddef>
#include <string>

#include "tensor/tensor.hpp"
#include "util/numeric.hpp"

namespace tcb {

struct CacheGeometry {
  std::size_t l1d_bytes = 32 * 1024;
  std::size_t l2_bytes = 1024 * 1024;
  bool detected = false;  ///< false = the conservative fallback above
  [[nodiscard]] std::string to_string() const;
};

/// The host's cache geometry, detected once per process.
[[nodiscard]] const CacheGeometry& cache_geometry();

/// One GEMM blocking configuration: packed depth kc plus the register
/// microkernel (an MR x NR tile) that consumes the packed panels.
struct GemmBlocking {
  Index kc = 256;
  Index mr = 0;
  Index nr = 0;
  int kernel = 0;   ///< index into gemm.cpp's microkernel table
  std::string tag;  ///< e.g. "avx512_8x32/kc256"
};

/// Output-aspect classes tuned separately: the register tile that wins on a
/// square product is usually not the one that wins when m >> n (activation
/// GEMMs: many token rows into a narrow head) or m << n (d_ff expansions of
/// short batches).
enum class GemmShapeClass : int { kSquare = 0, kTall = 1, kWide = 2 };
inline constexpr int kGemmShapeClassCount = 3;
[[nodiscard]] const char* gemm_shape_class_name(GemmShapeClass cls) noexcept;

/// Shape class of an (m,k)x(k,n) product by output aspect ratio m:n.
[[nodiscard]] GemmShapeClass classify_gemm(Index m, Index n) noexcept;

/// The blocking for `cls`. The first call per class may tune (or read the
/// TCB_TUNE_CACHE file); afterwards the published choice is constant for
/// the life of the process. The reference points into a process-lifetime
/// candidate table (static storage).
[[nodiscard]] const GemmBlocking& select_blocking(GemmShapeClass cls);

/// Tunes every shape class now and, if TCB_TUNE_CACHE names a file, writes
/// the selections there for future processes on the same machine.
void gemm_autotune_all();

/// One-line summary of geometry + per-class selections for bench metadata,
/// e.g. "l1d=48KiB l2=2MiB square=avx512_8x32/kc256 ... (autotuned)".
/// Forces selection of every class (tuning if enabled and not yet done).
[[nodiscard]] std::string gemm_tuning_summary();

// --- gemm.cpp internals used by the tuner ---------------------------------

/// Microkernel variants compiled for the active ISA (table in gemm.cpp).
struct GemmKernelInfo {
  Index mr = 0;
  Index nr = 0;
  const char* tag = "";
};
[[nodiscard]] std::size_t gemm_kernel_count() noexcept;
[[nodiscard]] GemmKernelInfo gemm_kernel_info(std::size_t i) noexcept;

/// The pre-autotuner blocking: the ISA-default microkernel at kc = 256.
[[nodiscard]] GemmBlocking gemm_default_blocking();

/// Runs C(m,n) = A(m,k) * B once through the blocked path with an explicit
/// blocking — the tuner's trial entry point. B is (k,n) row-major, or (n,k)
/// when `transposed_b`.
/// TCB_BITWISE: every candidate blocking keeps the per-element ascending-k
/// FMA chain (kc >= 256 floor), so the result is tile-independent.
void gemm_blocked_with(const float* a, const float* b, float* c, Index m,
                       Index k, Index n, bool transposed_b,
                       const GemmBlocking& blk) TCB_BITWISE;

/// Test-only: forgets the published per-class selections so the next
/// select_blocking() re-resolves from scratch (TCB_TUNE_CACHE file, tuning,
/// or the default). Not for production use — a concurrent GEMM would race
/// the republish. Lets the TCB_TUNE_CACHE round-trip test exercise
/// write -> reload in one process.
void gemm_tuning_reset_for_test();

}  // namespace tcb
