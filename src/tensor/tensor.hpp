// Dense row-major fp32 tensor — the storage substrate under the transformer
// engine. Deliberately minimal: contiguous owned storage, value semantics
// (moves are cheap, copies are explicit and real), shapes up to rank 4, and
// span-based access so kernels never touch raw new/delete.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/lifetime.hpp"
#include "util/rng.hpp"

namespace tcb {

using Index = std::int64_t;

/// Shape of a tensor; rank <= 4 covers everything the engine needs
/// ([batch, heads, rows, cols] at most).
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<Index> dims);
  explicit Shape(std::vector<Index> dims);

  [[nodiscard]] std::size_t rank() const noexcept { return dims_.size(); }
  [[nodiscard]] Index dim(std::size_t i) const;
  [[nodiscard]] Index operator[](std::size_t i) const { return dim(i); }
  [[nodiscard]] Index numel() const noexcept;
  [[nodiscard]] bool operator==(const Shape& other) const noexcept {
    return dims_ == other.dims_;
  }
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] const std::vector<Index>& dims() const noexcept
      TCB_LIFETIME_BOUND {
    return dims_;
  }

 private:
  std::vector<Index> dims_;
};

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);
  Tensor(Shape shape, float fill);

  /// Factory helpers -------------------------------------------------------
  static Tensor zeros(Shape shape) { return Tensor(std::move(shape), 0.0f); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }
  /// Uniform in [-scale, scale]; deterministic given `rng`.
  static Tensor random_uniform(Shape shape, Rng& rng, float scale);

  [[nodiscard]] const Shape& shape() const noexcept TCB_LIFETIME_BOUND {
    return shape_;
  }
  [[nodiscard]] Index numel() const noexcept {
    return static_cast<Index>(data_.size());
  }
  [[nodiscard]] std::size_t rank() const noexcept { return shape_.rank(); }
  [[nodiscard]] Index dim(std::size_t i) const { return shape_.dim(i); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] std::span<float> data() noexcept TCB_LIFETIME_BOUND {
    return data_;
  }
  [[nodiscard]] std::span<const float> data() const noexcept
      TCB_LIFETIME_BOUND {
    return data_;
  }
  [[nodiscard]] float* raw() noexcept TCB_LIFETIME_BOUND {
    return data_.data();
  }
  [[nodiscard]] const float* raw() const noexcept TCB_LIFETIME_BOUND {
    return data_.data();
  }

  /// Element access for rank-2 / rank-3 tensors. Bounds are checked via
  /// TCB_DCHECK (Debug and sanitizer presets); kernels index raw spans
  /// directly.
  [[nodiscard]] float& at(Index i, Index j) TCB_LIFETIME_BOUND;
  [[nodiscard]] float at(Index i, Index j) const;
  [[nodiscard]] float& at(Index i, Index j, Index k) TCB_LIFETIME_BOUND;
  [[nodiscard]] float at(Index i, Index j, Index k) const;

  /// Pointer to row `i` of a rank-2 tensor (or plane of rank-3).
  [[nodiscard]] float* row(Index i) TCB_LIFETIME_BOUND;
  [[nodiscard]] const float* row(Index i) const TCB_LIFETIME_BOUND;

  void fill(float v) noexcept;

  /// Reinterprets the buffer with a new shape of identical numel.
  void reshape(Shape shape);

  /// Deep copy (copies are otherwise implicit via copy ctor; this spelling is
  /// used where the copy is intentional and should be visible).
  [[nodiscard]] Tensor clone() const { return *this; }

 private:
  Shape shape_;
  std::vector<float> data_;
};

/// Max-abs difference between same-shaped tensors; the equivalence tests
/// (single-request vs concat-batched inference) are built on this.
[[nodiscard]] float max_abs_diff(const Tensor& a, const Tensor& b);

/// Max pairwise distance in float units-in-the-last-place between
/// same-shaped tensors. Scale-free, so one bound covers elements of any
/// magnitude — the tolerance currency of the flash-vs-reference attention
/// sweep. NaN anywhere (or an inf/finite mismatch) returns INT64_MAX; a
/// +0/-0 pair counts as 0.
[[nodiscard]] std::int64_t max_ulp_diff(const Tensor& a, const Tensor& b);

}  // namespace tcb
