// Per-thread bump-allocator arena for kernel scratch memory.
//
// The hot forward path (GEMM packing panels, attention K/V tile buffers)
// used to allocate per-call std::vectors; under serving load that is one
// heap round-trip per layer per request batch. A Workspace is a per-thread
// arena: allocation is a pointer bump, deallocation is a scope rewind, and
// the backing chunks are kept across calls — after the first (warm-up)
// forward pass the steady state performs zero heap allocations for kernel
// scratch. `workspace_test.cpp` pins that property via the global
// chunk-allocation counter.
//
// Usage contract:
//
//   WorkspaceScope scope;                 // marks the current thread's arena
//   float* buf = scope.alloc(n);          // valid until `scope` dies
//   ...                                   // nested scopes rewind LIFO
//
// Threading: `Workspace::this_thread()` returns a thread_local instance, so
// scratch never crosses threads and no locking exists on the alloc path. The
// only shared state is a pair of process-wide TCB_LOCK_FREE counters
// (monotonic statistics, read by tests and benches).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/lifetime.hpp"

namespace tcb {

class WorkspaceScope;

class Workspace {
 public:
  struct Stats {
    std::size_t reserved_bytes = 0;    ///< sum of this thread's chunk sizes
    std::size_t high_water_bytes = 0;  ///< peak simultaneous bytes in use
  };

  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// The calling thread's arena (created on first use, lives for the
  /// thread's lifetime — stable storage).
  [[nodiscard]] static Workspace& this_thread();

  [[nodiscard]] Stats stats() const noexcept;

  /// Process-wide count of backing-chunk heap allocations across every
  /// thread's workspace. Flat between two identical forward passes once the
  /// arenas are warm — the steady-state zero-allocation property.
  [[nodiscard]] static std::uint64_t total_chunk_allocs() noexcept;

  /// Process-wide sum of reserved backing bytes across all thread arenas.
  [[nodiscard]] static std::size_t total_reserved_bytes() noexcept;

 private:
  friend class WorkspaceScope;

  struct Mark {
    std::size_t chunk = 0;
    std::size_t offset = 0;  ///< floats used in that chunk
  };

  struct Chunk {
    std::vector<float> storage;
    std::size_t capacity = 0;  ///< usable floats after alignment
  };

  [[nodiscard]] float* alloc(std::size_t n_floats);
  [[nodiscard]] Mark mark() const noexcept { return Mark{active_, offset_}; }
  void rewind(Mark m) noexcept;

  /// Aligned base of a chunk's storage.
  [[nodiscard]] static float* base(Chunk& c) noexcept;

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  ///< chunk currently bumped into
  std::size_t offset_ = 0;  ///< floats used in the active chunk
  std::size_t used_before_active_ = 0;  ///< floats parked in chunks < active_
  std::size_t high_water_floats_ = 0;
  std::uint32_t live_scopes_ = 0;  ///< for the LIFO discipline check
};

/// RAII mark/rewind over a Workspace. Allocations made through a scope are
/// valid until the scope is destroyed; scopes on one thread must nest LIFO
/// (enforced by TCB_DCHECK). The returned buffers are 64-byte aligned.
class WorkspaceScope {
 public:
  explicit WorkspaceScope(Workspace& ws = Workspace::this_thread())
      : ws_(ws), mark_(ws.mark()), depth_(++ws.live_scopes_) {}
  WorkspaceScope(const WorkspaceScope&) = delete;
  WorkspaceScope& operator=(const WorkspaceScope&) = delete;
  ~WorkspaceScope();

  /// n floats of 64-byte-aligned scratch, zero-initialization NOT implied.
  // Provenance (span-source-stability): the buffer lives in the thread's
  // arena and is stable until this scope is destroyed.
  [[nodiscard]] float* alloc(std::size_t n_floats) TCB_LIFETIME_BOUND {
    return ws_.alloc(n_floats);
  }

 private:
  Workspace& ws_;
  Workspace::Mark mark_;
  std::uint32_t depth_;
};

}  // namespace tcb
