#include "tensor/ops.hpp"

#include <cmath>
#include <stdexcept>

#include "parallel/thread_pool.hpp"
#include "tensor/simd.hpp"

namespace tcb {
namespace {

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}

/// Elementwise kernels go parallel only past this many floats; below it the
/// pool handoff costs more than the loop (a single decode row is ~1k).
constexpr std::size_t kElementwiseGrain = 1 << 15;

/// Row-count grain for row-wise kernels of width n.
std::size_t row_grain(Index n) {
  return static_cast<std::size_t>(4096 / (n + 1) + 1);
}

}  // namespace

void add_inplace(Tensor& y, const Tensor& x) {
  require(y.shape() == x.shape(), "add_inplace: shape mismatch");
  float* py = y.raw();
  const float* px = x.raw();
  const std::size_t n = y.data().size();
  parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        simd::add(py + begin, px + begin, static_cast<Index>(end - begin));
      },
      kElementwiseGrain);
}

void add_bias_inplace(Tensor& y, const Tensor& bias) {
  require(y.rank() == 2 && bias.rank() == 1, "add_bias: (m,n) + (n) required");
  const Index m = y.dim(0), n = y.dim(1);
  require(bias.dim(0) == n, "add_bias: width mismatch");
  const float* pb = bias.raw();
  float* py = y.raw();
  parallel_for(
      static_cast<std::size_t>(m),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i)
          simd::add(py + i * static_cast<std::size_t>(n), pb, n);
      },
      row_grain(n));
}

void scale_inplace(Tensor& y, float s) {
  simd::scale(y.raw(), s, y.numel());
}

void softmax_rows_inplace(Tensor& t) {
  require(t.rank() == 2, "softmax_rows: rank-2 required");
  const Index m = t.dim(0), n = t.dim(1);
  if (m == 0 || n == 0) return;
  float* pt = t.raw();
  parallel_for(
      static_cast<std::size_t>(m),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          float* row = pt + i * static_cast<std::size_t>(n);
          const float mx = simd::reduce_max(row, n);
          if (mx <= kMaskedOut / 2) {
            // Fully masked row (can only happen for padding rows): define the
            // result as zeros rather than NaN.
            for (Index j = 0; j < n; ++j) row[j] = 0.0f;
            continue;
          }
          float sum = 0.0f;
          for (Index j = 0; j < n; ++j) {
            row[j] = std::exp(row[j] - mx);
            sum += row[j];
          }
          simd::scale(row, 1.0f / sum, n);
        }
      },
      row_grain(n));
}

void layer_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                float eps, Tensor& y) {
  require(x.rank() == 2, "layer_norm: rank-2 input required");
  const Index m = x.dim(0), d = x.dim(1);
  require(gamma.rank() == 1 && gamma.dim(0) == d, "layer_norm: gamma shape");
  require(beta.rank() == 1 && beta.dim(0) == d, "layer_norm: beta shape");
  if (!(y.shape() == x.shape())) y = Tensor(x.shape());

  const float* px = x.raw();
  const float* pg = gamma.raw();
  const float* pb = beta.raw();
  float* py = y.raw();
  parallel_for(
      static_cast<std::size_t>(m),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const float* row = px + i * static_cast<std::size_t>(d);
          float* out = py + i * static_cast<std::size_t>(d);
          const float mean = simd::reduce_add(row, d) / static_cast<float>(d);
          const float var =
              simd::reduce_sq_dev(row, mean, d) / static_cast<float>(d);
          const float inv = 1.0f / std::sqrt(var + eps);
          simd::normalize(row, pg, pb, mean, inv, out, d);
        }
      },
      row_grain(d));
}

void relu_inplace(Tensor& t) {
  float* pt = t.raw();
  parallel_for(
      t.data().size(),
      [&](std::size_t begin, std::size_t end) {
        simd::relu(pt + begin, static_cast<Index>(end - begin));
      },
      kElementwiseGrain);
}

void gelu_inplace(Tensor& t) {
  // tanhf stays scalar (a vector tanh approximation would drift from the
  // reference); the win here is the parallel split over the d_ff-wide
  // activations, the largest elementwise tensor in the model.
  constexpr float kSqrt2OverPi = 0.7978845608028654f;
  float* pt = t.raw();
  parallel_for(
      t.data().size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const float v = pt[i];
          const float inner = kSqrt2OverPi * (v + 0.044715f * v * v * v);
          pt[i] = 0.5f * v * (1.0f + std::tanh(inner));
        }
      },
      kElementwiseGrain);
}

std::vector<Index> argmax_rows(const Tensor& t) {
  require(t.rank() == 2, "argmax_rows: rank-2 required");
  const Index m = t.dim(0), n = t.dim(1);
  require(n > 0, "argmax_rows: empty rows");
  std::vector<Index> out(static_cast<std::size_t>(m));
  for (Index i = 0; i < m; ++i) {
    const float* row = t.row(i);
    Index best = 0;
    for (Index j = 1; j < n; ++j)
      if (row[j] > row[best]) best = j;
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

}  // namespace tcb
