#include "tensor/ops.hpp"

#include <cmath>
#include <stdexcept>

#include "parallel/thread_pool.hpp"

namespace tcb {
namespace {

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}

/// Rows per parallel chunk so each chunk is ~64k multiply-adds.
std::size_t gemm_grain(Index cols, Index inner) {
  const Index work = cols * inner;
  if (work <= 0) return 1;
  const Index rows = 65536 / work + 1;
  return static_cast<std::size_t>(rows);
}

}  // namespace

void matmul(const Tensor& a, const Tensor& b, Tensor& c) {
  require(a.rank() == 2 && b.rank() == 2, "matmul: rank-2 operands required");
  const Index m = a.dim(0), k = a.dim(1), n = b.dim(1);
  require(b.dim(0) == k, "matmul: inner dimension mismatch");
  if (!(c.shape() == Shape{m, n})) c = Tensor(Shape{m, n});

  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  parallel_for(
      static_cast<std::size_t>(m),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          float* crow = pc + i * static_cast<std::size_t>(n);
          for (Index j = 0; j < n; ++j) crow[j] = 0.0f;
          const float* arow = pa + i * static_cast<std::size_t>(k);
          for (Index p = 0; p < k; ++p) {
            const float av = arow[p];
            const float* brow = pb + static_cast<std::size_t>(p) * n;
            for (Index j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      },
      gemm_grain(n, k));
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor c;
  matmul(a, b, c);
  return c;
}

void matmul_nt(const Tensor& a, const Tensor& b, Tensor& c) {
  require(a.rank() == 2 && b.rank() == 2, "matmul_nt: rank-2 operands required");
  const Index m = a.dim(0), k = a.dim(1), n = b.dim(0);
  require(b.dim(1) == k, "matmul_nt: inner dimension mismatch");
  if (!(c.shape() == Shape{m, n})) c = Tensor(Shape{m, n});

  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  parallel_for(
      static_cast<std::size_t>(m),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const float* arow = pa + i * static_cast<std::size_t>(k);
          float* crow = pc + i * static_cast<std::size_t>(n);
          for (Index j = 0; j < n; ++j) {
            const float* brow = pb + static_cast<std::size_t>(j) * k;
            float acc = 0.0f;
            for (Index p = 0; p < k; ++p) acc += arow[p] * brow[p];
            crow[j] = acc;
          }
        }
      },
      gemm_grain(n, k));
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  Tensor c;
  matmul_nt(a, b, c);
  return c;
}

void add_inplace(Tensor& y, const Tensor& x) {
  require(y.shape() == x.shape(), "add_inplace: shape mismatch");
  float* py = y.raw();
  const float* px = x.raw();
  const std::size_t n = y.data().size();
  for (std::size_t i = 0; i < n; ++i) py[i] += px[i];
}

void add_bias_inplace(Tensor& y, const Tensor& bias) {
  require(y.rank() == 2 && bias.rank() == 1, "add_bias: (m,n) + (n) required");
  const Index m = y.dim(0), n = y.dim(1);
  require(bias.dim(0) == n, "add_bias: width mismatch");
  const float* pb = bias.raw();
  for (Index i = 0; i < m; ++i) {
    float* row = y.row(i);
    for (Index j = 0; j < n; ++j) row[j] += pb[j];
  }
}

void scale_inplace(Tensor& y, float s) {
  for (float& v : y.data()) v *= s;
}

void softmax_rows_inplace(Tensor& t) {
  require(t.rank() == 2, "softmax_rows: rank-2 required");
  const Index m = t.dim(0), n = t.dim(1);
  float* pt = t.raw();
  parallel_for(
      static_cast<std::size_t>(m),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          float* row = pt + i * static_cast<std::size_t>(n);
          float mx = row[0];
          for (Index j = 1; j < n; ++j) mx = std::max(mx, row[j]);
          if (mx <= kMaskedOut / 2) {
            // Fully masked row (can only happen for padding rows): define the
            // result as zeros rather than NaN.
            for (Index j = 0; j < n; ++j) row[j] = 0.0f;
            continue;
          }
          float sum = 0.0f;
          for (Index j = 0; j < n; ++j) {
            row[j] = std::exp(row[j] - mx);
            sum += row[j];
          }
          const float inv = 1.0f / sum;
          for (Index j = 0; j < n; ++j) row[j] *= inv;
        }
      },
      static_cast<std::size_t>(4096 / (n + 1) + 1));
}

void layer_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                float eps, Tensor& y) {
  require(x.rank() == 2, "layer_norm: rank-2 input required");
  const Index m = x.dim(0), d = x.dim(1);
  require(gamma.rank() == 1 && gamma.dim(0) == d, "layer_norm: gamma shape");
  require(beta.rank() == 1 && beta.dim(0) == d, "layer_norm: beta shape");
  if (!(y.shape() == x.shape())) y = Tensor(x.shape());

  const float* px = x.raw();
  const float* pg = gamma.raw();
  const float* pb = beta.raw();
  float* py = y.raw();
  parallel_for(
      static_cast<std::size_t>(m),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const float* row = px + i * static_cast<std::size_t>(d);
          float* out = py + i * static_cast<std::size_t>(d);
          float mean = 0.0f;
          for (Index j = 0; j < d; ++j) mean += row[j];
          mean /= static_cast<float>(d);
          float var = 0.0f;
          for (Index j = 0; j < d; ++j) {
            const float delta = row[j] - mean;
            var += delta * delta;
          }
          var /= static_cast<float>(d);
          const float inv = 1.0f / std::sqrt(var + eps);
          for (Index j = 0; j < d; ++j)
            out[j] = (row[j] - mean) * inv * pg[j] + pb[j];
        }
      },
      static_cast<std::size_t>(4096 / (d + 1) + 1));
}

void relu_inplace(Tensor& t) {
  for (float& v : t.data())
    if (v < 0.0f) v = 0.0f;
}

void gelu_inplace(Tensor& t) {
  constexpr float kSqrt2OverPi = 0.7978845608028654f;
  for (float& v : t.data()) {
    const float inner = kSqrt2OverPi * (v + 0.044715f * v * v * v);
    v = 0.5f * v * (1.0f + std::tanh(inner));
  }
}

std::vector<Index> argmax_rows(const Tensor& t) {
  require(t.rank() == 2, "argmax_rows: rank-2 required");
  const Index m = t.dim(0), n = t.dim(1);
  require(n > 0, "argmax_rows: empty rows");
  std::vector<Index> out(static_cast<std::size_t>(m));
  for (Index i = 0; i < m; ++i) {
    const float* row = t.row(i);
    Index best = 0;
    for (Index j = 1; j < n; ++j)
      if (row[j] > row[best]) best = j;
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

}  // namespace tcb
