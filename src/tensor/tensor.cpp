#include "tensor/tensor.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "util/check.hpp"

namespace tcb {

Shape::Shape(std::initializer_list<Index> dims) : dims_(dims) {
  for (const Index d : dims_)
    if (d < 0) throw std::invalid_argument("Shape: negative dimension");
}

Shape::Shape(std::vector<Index> dims) : dims_(std::move(dims)) {
  for (const Index d : dims_)
    if (d < 0) throw std::invalid_argument("Shape: negative dimension");
}

Index Shape::dim(std::size_t i) const {
  if (i >= dims_.size()) throw std::out_of_range("Shape::dim");
  return dims_[i];
}

Index Shape::numel() const noexcept {
  Index n = 1;
  for (const Index d : dims_) n *= d;
  return dims_.empty() ? 0 : n;
}

std::string Shape::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(dims_[i]);
  }
  out += "]";
  return out;
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_.numel()), 0.0f) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_.numel()), fill) {}

Tensor Tensor::random_uniform(Shape shape, Rng& rng, float scale) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = rng.weight(scale);
  return t;
}

float& Tensor::at(Index i, Index j) {
  TCB_DCHECK(rank() == 2, "Tensor::at(i, j) on non-rank-2 tensor");
  TCB_DCHECK(i >= 0 && i < dim(0) && j >= 0 && j < dim(1),
             "Tensor::at(i, j) out of bounds for " + shape_.to_string());
  return data_[static_cast<std::size_t>(i * dim(1) + j)];
}

float Tensor::at(Index i, Index j) const {
  TCB_DCHECK(rank() == 2, "Tensor::at(i, j) on non-rank-2 tensor");
  TCB_DCHECK(i >= 0 && i < dim(0) && j >= 0 && j < dim(1),
             "Tensor::at(i, j) out of bounds for " + shape_.to_string());
  return data_[static_cast<std::size_t>(i * dim(1) + j)];
}

float& Tensor::at(Index i, Index j, Index k) {
  TCB_DCHECK(rank() == 3, "Tensor::at(i, j, k) on non-rank-3 tensor");
  TCB_DCHECK(i >= 0 && i < dim(0) && j >= 0 && j < dim(1) && k >= 0 &&
                 k < dim(2),
             "Tensor::at(i, j, k) out of bounds for " + shape_.to_string());
  return data_[static_cast<std::size_t>((i * dim(1) + j) * dim(2) + k)];
}

float Tensor::at(Index i, Index j, Index k) const {
  TCB_DCHECK(rank() == 3, "Tensor::at(i, j, k) on non-rank-3 tensor");
  TCB_DCHECK(i >= 0 && i < dim(0) && j >= 0 && j < dim(1) && k >= 0 &&
                 k < dim(2),
             "Tensor::at(i, j, k) out of bounds for " + shape_.to_string());
  return data_[static_cast<std::size_t>((i * dim(1) + j) * dim(2) + k)];
}

float* Tensor::row(Index i) {
  TCB_DCHECK(rank() >= 2 && i >= 0 && i < dim(0),
             "Tensor::row out of bounds for " + shape_.to_string());
  const Index stride = numel() / dim(0);
  return data_.data() + i * stride;
}

const float* Tensor::row(Index i) const {
  TCB_DCHECK(rank() >= 2 && i >= 0 && i < dim(0),
             "Tensor::row out of bounds for " + shape_.to_string());
  const Index stride = numel() / dim(0);
  return data_.data() + i * stride;
}

void Tensor::fill(float v) noexcept {
  for (float& x : data_) x = v;
}

void Tensor::reshape(Shape shape) {
  if (shape.numel() != numel())
    throw std::invalid_argument("Tensor::reshape: numel mismatch " +
                                shape_.to_string() + " -> " + shape.to_string());
  shape_ = std::move(shape);
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  if (!(a.shape() == b.shape()))
    throw std::invalid_argument("max_abs_diff: shape mismatch " +
                                a.shape().to_string() + " vs " +
                                b.shape().to_string());
  float worst = 0.0f;
  const auto da = a.data();
  const auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i)
    worst = std::max(worst, std::fabs(da[i] - db[i]));
  return worst;
}

namespace {

/// Maps the float's bit pattern to a monotonically ordered integer line
/// (negative floats mirrored below zero), so ULP distance is plain integer
/// subtraction.
std::int64_t float_order(float x) {
  std::int32_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  const std::int64_t b = bits;
  return b >= 0 ? b : std::int64_t{std::numeric_limits<std::int32_t>::min()} - b;
}

}  // namespace

std::int64_t max_ulp_diff(const Tensor& a, const Tensor& b) {
  if (!(a.shape() == b.shape()))
    throw std::invalid_argument("max_ulp_diff: shape mismatch " +
                                a.shape().to_string() + " vs " +
                                b.shape().to_string());
  std::int64_t worst = 0;
  const auto da = a.data();
  const auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    const float x = da[i];
    const float y = db[i];
    if (std::isnan(x) || std::isnan(y) || std::isinf(x) != std::isinf(y))
      return std::numeric_limits<std::int64_t>::max();
    const std::int64_t dist = std::abs(float_order(x) - float_order(y));
    worst = std::max(worst, dist);
  }
  return worst;
}

}  // namespace tcb
