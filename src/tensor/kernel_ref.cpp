#include "tensor/kernel_ref.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace tcb::ref {
namespace {

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}

}  // namespace

void matmul(const Tensor& a, const Tensor& b, Tensor& c) {
  require(a.rank() == 2 && b.rank() == 2, "ref::matmul: rank-2 operands required");
  const Index m = a.dim(0), k = a.dim(1), n = b.dim(1);
  require(b.dim(0) == k, "ref::matmul: inner dimension mismatch");
  if (!(c.shape() == Shape{m, n})) c = Tensor(Shape{m, n});

  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  for (Index i = 0; i < m; ++i) {
    float* crow = pc + static_cast<std::size_t>(i) * static_cast<std::size_t>(n);
    for (Index j = 0; j < n; ++j) crow[j] = 0.0f;
    const float* arow = pa + static_cast<std::size_t>(i) * static_cast<std::size_t>(k);
    for (Index p = 0; p < k; ++p) {
      const float av = arow[p];
      const float* brow = pb + static_cast<std::size_t>(p) * static_cast<std::size_t>(n);
      for (Index j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void matmul_nt(const Tensor& a, const Tensor& b, Tensor& c) {
  require(a.rank() == 2 && b.rank() == 2,
          "ref::matmul_nt: rank-2 operands required");
  const Index m = a.dim(0), k = a.dim(1), n = b.dim(0);
  require(b.dim(1) == k, "ref::matmul_nt: inner dimension mismatch");
  if (!(c.shape() == Shape{m, n})) c = Tensor(Shape{m, n});

  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  for (Index i = 0; i < m; ++i) {
    const float* arow = pa + static_cast<std::size_t>(i) * static_cast<std::size_t>(k);
    float* crow = pc + static_cast<std::size_t>(i) * static_cast<std::size_t>(n);
    for (Index j = 0; j < n; ++j) {
      const float* brow = pb + static_cast<std::size_t>(j) * static_cast<std::size_t>(k);
      float acc = 0.0f;
      for (Index p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  }
}

void softmax_rows_inplace(Tensor& t) {
  require(t.rank() == 2, "ref::softmax_rows: rank-2 required");
  const Index m = t.dim(0), n = t.dim(1);
  float* pt = t.raw();
  for (Index i = 0; i < m; ++i) {
    float* row = pt + static_cast<std::size_t>(i) * static_cast<std::size_t>(n);
    float mx = row[0];
    for (Index j = 1; j < n; ++j) mx = std::max(mx, row[j]);
    if (mx <= kMaskedOut / 2) {
      for (Index j = 0; j < n; ++j) row[j] = 0.0f;
      continue;
    }
    float sum = 0.0f;
    for (Index j = 0; j < n; ++j) {
      row[j] = std::exp(row[j] - mx);
      sum += row[j];
    }
    const float inv = 1.0f / sum;
    for (Index j = 0; j < n; ++j) row[j] *= inv;
  }
}

void layer_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                float eps, Tensor& y) {
  require(x.rank() == 2, "ref::layer_norm: rank-2 input required");
  const Index m = x.dim(0), d = x.dim(1);
  require(gamma.rank() == 1 && gamma.dim(0) == d, "ref::layer_norm: gamma shape");
  require(beta.rank() == 1 && beta.dim(0) == d, "ref::layer_norm: beta shape");
  if (!(y.shape() == x.shape())) y = Tensor(x.shape());

  const float* px = x.raw();
  const float* pg = gamma.raw();
  const float* pb = beta.raw();
  float* py = y.raw();
  for (Index i = 0; i < m; ++i) {
    const float* row = px + static_cast<std::size_t>(i) * static_cast<std::size_t>(d);
    float* out = py + static_cast<std::size_t>(i) * static_cast<std::size_t>(d);
    float mean = 0.0f;
    for (Index j = 0; j < d; ++j) mean += row[j];
    mean /= static_cast<float>(d);
    float var = 0.0f;
    for (Index j = 0; j < d; ++j) {
      const float delta = row[j] - mean;
      var += delta * delta;
    }
    var /= static_cast<float>(d);
    const float inv = 1.0f / std::sqrt(var + eps);
    for (Index j = 0; j < d; ++j) out[j] = (row[j] - mean) * inv * pg[j] + pb[j];
  }
}

void gelu_inplace(Tensor& t) {
  constexpr float kSqrt2OverPi = 0.7978845608028654f;
  for (float& v : t.data()) {
    const float inner = kSqrt2OverPi * (v + 0.044715f * v * v * v);
    v = 0.5f * v * (1.0f + std::tanh(inner));
  }
}

void relu_inplace(Tensor& t) {
  for (float& v : t.data())
    if (v < 0.0f) v = 0.0f;
}

}  // namespace tcb::ref
