// SIMD primitives shared by the tensor kernels (GEMM microkernel, attention
// spans, elementwise ops).
//
// Dispatch is compile-time, widest ISA first:
//
//   TCB_SIMD_AVX512  __AVX512F__ builds (release preset with native arch on
//                    an AVX-512 host) — 16-lane fp32.
//   TCB_SIMD_AVX2    __AVX2__ + __FMA__ builds (the TCB_SIMD CMake option
//                    adds -mavx2 -mfma on x86-64, so even portable CI builds
//                    take this path) — 8-lane fp32.
//   TCB_SIMD_NEON    aarch64 builds — 4-lane fp32.
//   (none)           portable scalar fallback; also what TCB_SIMD=OFF forces,
//                    keeping a pure-standard-C++ build one cmake flag away.
//
// Numerical contract: every helper accumulates in the same element order as
// the scalar reference within a lane, and lanes are independent output
// elements wherever the caller needs run-to-run bitwise stability (see
// gemm.cpp). Helpers that reduce across lanes (dot, sum, max) reassociate
// relative to the scalar reference, but in a *fixed* order keyed only on the
// element count — never on batch shape — so every primitive carries
// TCB_BITWISE: for a given input extent the result is deterministic and
// concat-invariant, which is what makes these the blessed reduction set for
// tcb-lint's bitwise-closure and raw-fp-accumulation rules (DESIGN.md §14).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "tensor/tensor.hpp"
#include "util/numeric.hpp"

#ifndef TCB_SIMD
#define TCB_SIMD 1
#endif

#if TCB_SIMD && defined(__AVX512F__)
#define TCB_SIMD_AVX512 1
#define TCB_SIMD_AVX2 1
#include <immintrin.h>
#elif TCB_SIMD && defined(__AVX2__) && defined(__FMA__)
#define TCB_SIMD_AVX2 1
#include <immintrin.h>
#elif TCB_SIMD && (defined(__ARM_NEON) || defined(__ARM_NEON__))
#define TCB_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace tcb::simd {

/// Widest fp32 vector length of the active ISA (1 for the scalar build).
#if defined(TCB_SIMD_AVX512)
inline constexpr Index kLanes = 16;
#elif defined(TCB_SIMD_AVX2)
inline constexpr Index kLanes = 8;
#elif defined(TCB_SIMD_NEON)
inline constexpr Index kLanes = 4;
#else
inline constexpr Index kLanes = 1;
#endif

#if defined(TCB_SIMD_AVX512)
/// Horizontal add/max of a 512-bit vector. Deliberately NOT
/// _mm512_reduce_{add,max}_ps: GCC lowers those (and every unmasked lane
/// extraction like _mm512_extractf64x4_pd / _mm512_shuffle_f32x4) through
/// masked builtins whose merge operand is _mm512_undefined_ps(), which leaks
/// spurious -Wmaybe-uninitialized reports into every caller these inline
/// into. Spilling to the stack keeps all operands initialized; the halves
/// reduce with plain AVX from there. Reductions run once per kernel call, so
/// the spill is off the critical path.
inline float hadd512(__m512 v) {
  alignas(64) float lanes[16];
  _mm512_store_ps(lanes, v);
  __m128 s = _mm_add_ps(_mm_add_ps(_mm_load_ps(lanes), _mm_load_ps(lanes + 4)),
                        _mm_add_ps(_mm_load_ps(lanes + 8), _mm_load_ps(lanes + 12)));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

inline float hmax512(__m512 v) {
  alignas(64) float lanes[16];
  _mm512_store_ps(lanes, v);
  __m128 s = _mm_max_ps(_mm_max_ps(_mm_load_ps(lanes), _mm_load_ps(lanes + 4)),
                        _mm_max_ps(_mm_load_ps(lanes + 8), _mm_load_ps(lanes + 12)));
  s = _mm_max_ps(s, _mm_movehl_ps(s, s));
  s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}
#endif

/// Dot product a·b over n elements. Reduces across lanes (reassociates).
inline float dot(const float* a, const float* b, Index n) TCB_BITWISE {
  Index i = 0;
  float head = 0.0f;
#if defined(TCB_SIMD_AVX512)
  if (n >= 16) {
    __m512 acc = _mm512_setzero_ps();
    for (; i + 16 <= n; i += 16)
      acc = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i), acc);
    head = hadd512(acc);
  }
#elif defined(TCB_SIMD_AVX2)
  if (n >= 8) {
    __m256 acc = _mm256_setzero_ps();
    for (; i + 8 <= n; i += 8)
      acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc);
    const __m128 lo = _mm256_castps256_ps128(acc);
    const __m128 hi = _mm256_extractf128_ps(acc, 1);
    __m128 s = _mm_add_ps(lo, hi);
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
    head = _mm_cvtss_f32(s);
  }
#elif defined(TCB_SIMD_NEON)
  if (n >= 4) {
    float32x4_t acc = vdupq_n_f32(0.0f);
    for (; i + 4 <= n; i += 4)
      acc = vfmaq_f32(acc, vld1q_f32(a + i), vld1q_f32(b + i));
    head = vaddvq_f32(acc);
  }
#endif
  float tail = 0.0f;
  for (; i < n; ++i) tail += a[i] * b[i];
  return head + tail;
}

/// y[j] += a * x[j] for j in [0, n). Lane-independent: each y[j] sees the
/// same fused multiply-add chain regardless of n's alignment, which keeps
/// batched and single-request runs bitwise identical (see gemm.cpp).
inline void axpy(float a, const float* x, float* y, Index n) TCB_BITWISE {
  Index i = 0;
#if defined(TCB_SIMD_AVX512)
  const __m512 va16 = _mm512_set1_ps(a);
  for (; i + 16 <= n; i += 16)
    _mm512_storeu_ps(y + i, _mm512_fmadd_ps(va16, _mm512_loadu_ps(x + i),
                                            _mm512_loadu_ps(y + i)));
#endif
#if defined(TCB_SIMD_AVX2)
  const __m256 va8 = _mm256_set1_ps(a);
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(y + i, _mm256_fmadd_ps(va8, _mm256_loadu_ps(x + i),
                                            _mm256_loadu_ps(y + i)));
  for (; i < n; ++i) y[i] = std::fma(a, x[i], y[i]);
  return;
#elif defined(TCB_SIMD_NEON)
  const float32x4_t va4 = vdupq_n_f32(a);
  for (; i + 4 <= n; i += 4)
    vst1q_f32(y + i, vfmaq_f32(vld1q_f32(y + i), va4, vld1q_f32(x + i)));
  for (; i < n; ++i) y[i] = std::fma(a, x[i], y[i]);
  return;
#else
  for (; i < n; ++i) y[i] += a * x[i];
#endif
}

/// y[j] += x[j].
inline void add(float* y, const float* x, Index n) TCB_BITWISE {
  Index i = 0;
#if defined(TCB_SIMD_AVX512)
  for (; i + 16 <= n; i += 16)
    _mm512_storeu_ps(y + i,
                     _mm512_add_ps(_mm512_loadu_ps(y + i), _mm512_loadu_ps(x + i)));
#elif defined(TCB_SIMD_AVX2)
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(y + i,
                     _mm256_add_ps(_mm256_loadu_ps(y + i), _mm256_loadu_ps(x + i)));
#elif defined(TCB_SIMD_NEON)
  for (; i + 4 <= n; i += 4)
    vst1q_f32(y + i, vaddq_f32(vld1q_f32(y + i), vld1q_f32(x + i)));
#endif
  for (; i < n; ++i) y[i] += x[i];
}

/// y[j] *= s.
inline void scale(float* y, float s, Index n) TCB_BITWISE {
  Index i = 0;
#if defined(TCB_SIMD_AVX512)
  const __m512 vs16 = _mm512_set1_ps(s);
  for (; i + 16 <= n; i += 16)
    _mm512_storeu_ps(y + i, _mm512_mul_ps(_mm512_loadu_ps(y + i), vs16));
#elif defined(TCB_SIMD_AVX2)
  const __m256 vs8 = _mm256_set1_ps(s);
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(y + i, _mm256_mul_ps(_mm256_loadu_ps(y + i), vs8));
#elif defined(TCB_SIMD_NEON)
  const float32x4_t vs4 = vdupq_n_f32(s);
  for (; i + 4 <= n; i += 4)
    vst1q_f32(y + i, vmulq_f32(vld1q_f32(y + i), vs4));
#endif
  for (; i < n; ++i) y[i] *= s;
}

/// y[j] = max(y[j], 0).
inline void relu(float* y, Index n) TCB_BITWISE {
  Index i = 0;
#if defined(TCB_SIMD_AVX512)
  // _mm512_mask_max_ps with a full mask, not _mm512_max_ps: GCC lowers the
  // unmasked form through an _mm512_undefined_ps() merge operand, which
  // leaks spurious -Wmaybe-uninitialized reports into callers (see
  // hadd512). The masked form's merge is z16, fully initialized; same
  // instruction either way.
  const __m512 z16 = _mm512_setzero_ps();
  for (; i + 16 <= n; i += 16)
    _mm512_storeu_ps(
        y + i, _mm512_mask_max_ps(z16, 0xFFFF, _mm512_loadu_ps(y + i), z16));
#elif defined(TCB_SIMD_AVX2)
  const __m256 z8 = _mm256_setzero_ps();
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(y + i, _mm256_max_ps(_mm256_loadu_ps(y + i), z8));
#elif defined(TCB_SIMD_NEON)
  const float32x4_t z4 = vdupq_n_f32(0.0f);
  for (; i + 4 <= n; i += 4)
    vst1q_f32(y + i, vmaxq_f32(vld1q_f32(y + i), z4));
#endif
  for (; i < n; ++i) y[i] = std::max(y[i], 0.0f);
}

/// max over x[0..n); n must be >= 1. Reduces across lanes.
inline float reduce_max(const float* x, Index n) TCB_BITWISE {
  Index i = 0;
  float m = x[0];
#if defined(TCB_SIMD_AVX512)
  if (n >= 16) {
    __m512 acc = _mm512_loadu_ps(x);
    for (i = 16; i + 16 <= n; i += 16)
      // Masked form for the same -Wmaybe-uninitialized reason as in relu().
      acc = _mm512_mask_max_ps(acc, 0xFFFF, acc, _mm512_loadu_ps(x + i));
    m = hmax512(acc);
  }
#elif defined(TCB_SIMD_AVX2)
  if (n >= 8) {
    __m256 acc = _mm256_loadu_ps(x);
    for (i = 8; i + 8 <= n; i += 8) acc = _mm256_max_ps(acc, _mm256_loadu_ps(x + i));
    const __m128 lo = _mm256_castps256_ps128(acc);
    const __m128 hi = _mm256_extractf128_ps(acc, 1);
    __m128 s = _mm_max_ps(lo, hi);
    s = _mm_max_ps(s, _mm_movehl_ps(s, s));
    s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 0x55));
    m = _mm_cvtss_f32(s);
  }
#elif defined(TCB_SIMD_NEON)
  if (n >= 4) {
    float32x4_t acc = vld1q_f32(x);
    for (i = 4; i + 4 <= n; i += 4) acc = vmaxq_f32(acc, vld1q_f32(x + i));
    m = vmaxvq_f32(acc);
  }
#endif
  for (; i < n; ++i) m = std::max(m, x[i]);
  return m;
}

/// sum over x[0..n). Reduces across lanes.
inline float reduce_add(const float* x, Index n) TCB_BITWISE {
  Index i = 0;
  float head = 0.0f;
#if defined(TCB_SIMD_AVX512)
  if (n >= 16) {
    __m512 acc = _mm512_setzero_ps();
    for (; i + 16 <= n; i += 16) acc = _mm512_add_ps(acc, _mm512_loadu_ps(x + i));
    head = hadd512(acc);
  }
#elif defined(TCB_SIMD_AVX2)
  if (n >= 8) {
    __m256 acc = _mm256_setzero_ps();
    for (; i + 8 <= n; i += 8) acc = _mm256_add_ps(acc, _mm256_loadu_ps(x + i));
    const __m128 lo = _mm256_castps256_ps128(acc);
    const __m128 hi = _mm256_extractf128_ps(acc, 1);
    __m128 s = _mm_add_ps(lo, hi);
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
    head = _mm_cvtss_f32(s);
  }
#elif defined(TCB_SIMD_NEON)
  if (n >= 4) {
    float32x4_t acc = vdupq_n_f32(0.0f);
    for (; i + 4 <= n; i += 4) acc = vaddq_f32(acc, vld1q_f32(x + i));
    head = vaddvq_f32(acc);
  }
#endif
  float tail = 0.0f;
  for (; i < n; ++i) tail += x[i];
  return head + tail;
}

/// out[j] = (x[j] - mean) * inv_std * gamma[j] + beta[j] — the LayerNorm
/// normalize step. Lane-independent per output element.
inline void normalize(const float* x, const float* gamma, const float* beta,
                      float mean, float inv_std, float* out, Index n) TCB_BITWISE {
  Index i = 0;
#if defined(TCB_SIMD_AVX512)
  const __m512 vm16 = _mm512_set1_ps(mean);
  const __m512 vi16 = _mm512_set1_ps(inv_std);
  for (; i + 16 <= n; i += 16) {
    const __m512 centered =
        _mm512_mul_ps(_mm512_sub_ps(_mm512_loadu_ps(x + i), vm16), vi16);
    _mm512_storeu_ps(out + i, _mm512_fmadd_ps(centered, _mm512_loadu_ps(gamma + i),
                                              _mm512_loadu_ps(beta + i)));
  }
#elif defined(TCB_SIMD_AVX2)
  const __m256 vm8 = _mm256_set1_ps(mean);
  const __m256 vi8 = _mm256_set1_ps(inv_std);
  for (; i + 8 <= n; i += 8) {
    const __m256 centered =
        _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(x + i), vm8), vi8);
    _mm256_storeu_ps(out + i, _mm256_fmadd_ps(centered, _mm256_loadu_ps(gamma + i),
                                              _mm256_loadu_ps(beta + i)));
  }
#elif defined(TCB_SIMD_NEON)
  const float32x4_t vm4 = vdupq_n_f32(mean);
  const float32x4_t vi4 = vdupq_n_f32(inv_std);
  for (; i + 4 <= n; i += 4) {
    const float32x4_t centered =
        vmulq_f32(vsubq_f32(vld1q_f32(x + i), vm4), vi4);
    vst1q_f32(out + i,
              vfmaq_f32(vld1q_f32(beta + i), centered, vld1q_f32(gamma + i)));
  }
#endif
  for (; i < n; ++i) out[i] = (x[i] - mean) * inv_std * gamma[i] + beta[i];
}

// Cephes-style exp polynomial constants, shared by the vector paths below.
// exp(x) = 2^n * exp(r) with n = round(x * log2(e)) and r = x - n*ln2 (split
// into a high/low pair so the reduction is exact in fp32); exp(r) is a
// degree-5 polynomial over |r| <= ln2/2. Relative error vs std::exp is
// ~2e-7 across the clamped domain [-87.34, 88.38].
inline constexpr float kExpHi = 88.3762626647950f;
inline constexpr float kExpLo = -87.3365478515625f;
inline constexpr float kExpLog2e = 1.44269504088896341f;
inline constexpr float kExpC1 = 0.693359375f;
inline constexpr float kExpC2 = -2.12194440e-4f;
inline constexpr float kExpP0 = 1.9875691500e-4f;
inline constexpr float kExpP1 = 1.3981999507e-3f;
inline constexpr float kExpP2 = 8.3334519073e-3f;
inline constexpr float kExpP3 = 4.1665795894e-2f;
inline constexpr float kExpP4 = 1.6666665459e-1f;
inline constexpr float kExpP5 = 5.0000001201e-1f;

/// s[i] = exp(s[i] - shift) for i in [0, n) — the softmax exponentiation
/// step of the streaming (flash) attention kernel, where scalar std::exp
/// used to dominate the per-key cost. Vector lanes use the Cephes
/// polynomial; the sub-vector tail falls back to std::exp (both are
/// deterministic elementwise functions, so batching invariance is
/// unaffected; the tolerance suite treats the ~2e-7 disagreement as noise).
/// Inputs below the low clamp come out as exp(-87.34) ~= 1.2e-38 instead of
/// a subnormal/zero — indistinguishable after softmax normalization because
/// the running max guarantees one term is exp(0) = 1.
inline void exp_shift_inplace(float* s, float shift, Index n) TCB_BITWISE {
  Index i = 0;
#if defined(TCB_SIMD_AVX512)
  // Masked/maskz forms throughout for the same -Wmaybe-uninitialized reason
  // as relu(): the unmasked 512-bit min/max/cvt/shift intrinsics lower
  // through builtins whose merge operand is undefined.
  const __m512 vshift = _mm512_set1_ps(shift);
  const __m512 vhi = _mm512_set1_ps(kExpHi);
  const __m512 vlo = _mm512_set1_ps(kExpLo);
  const __m512 vlog2e = _mm512_set1_ps(kExpLog2e);
  const __m512 vc1 = _mm512_set1_ps(kExpC1);
  const __m512 vc2 = _mm512_set1_ps(kExpC2);
  const __m512 vone = _mm512_set1_ps(1.0f);
  for (; i + 16 <= n; i += 16) {
    __m512 x = _mm512_sub_ps(_mm512_loadu_ps(s + i), vshift);
    x = _mm512_mask_max_ps(vlo, 0xFFFF, _mm512_mask_min_ps(vhi, 0xFFFF, x, vhi),
                           vlo);
    // n = round-to-nearest(x * log2e): cvtps uses the default rounding mode.
    const __m512i ni =
        _mm512_maskz_cvtps_epi32(0xFFFF, _mm512_mul_ps(x, vlog2e));
    const __m512 nf = _mm512_maskz_cvtepi32_ps(0xFFFF, ni);
    x = _mm512_fnmadd_ps(nf, vc1, x);
    x = _mm512_fnmadd_ps(nf, vc2, x);
    __m512 y = _mm512_set1_ps(kExpP0);
    y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(kExpP1));
    y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(kExpP2));
    y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(kExpP3));
    y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(kExpP4));
    y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(kExpP5));
    y = _mm512_add_ps(_mm512_fmadd_ps(y, _mm512_mul_ps(x, x), x), vone);
    // 2^n via the exponent field.
    const __m512i pow2n = _mm512_maskz_slli_epi32(
        0xFFFF, _mm512_add_epi32(ni, _mm512_set1_epi32(127)), 23);
    _mm512_storeu_ps(s + i, _mm512_mul_ps(y, _mm512_castsi512_ps(pow2n)));
  }
#elif defined(TCB_SIMD_AVX2)
  const __m256 vshift = _mm256_set1_ps(shift);
  const __m256 vhi = _mm256_set1_ps(kExpHi);
  const __m256 vlo = _mm256_set1_ps(kExpLo);
  const __m256 vlog2e = _mm256_set1_ps(kExpLog2e);
  const __m256 vc1 = _mm256_set1_ps(kExpC1);
  const __m256 vc2 = _mm256_set1_ps(kExpC2);
  const __m256 vone = _mm256_set1_ps(1.0f);
  for (; i + 8 <= n; i += 8) {
    __m256 x = _mm256_sub_ps(_mm256_loadu_ps(s + i), vshift);
    x = _mm256_max_ps(_mm256_min_ps(x, vhi), vlo);
    const __m256i ni = _mm256_cvtps_epi32(_mm256_mul_ps(x, vlog2e));
    const __m256 nf = _mm256_cvtepi32_ps(ni);
    x = _mm256_fnmadd_ps(nf, vc1, x);
    x = _mm256_fnmadd_ps(nf, vc2, x);
    __m256 y = _mm256_set1_ps(kExpP0);
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(kExpP1));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(kExpP2));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(kExpP3));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(kExpP4));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(kExpP5));
    y = _mm256_add_ps(_mm256_fmadd_ps(y, _mm256_mul_ps(x, x), x), vone);
    const __m256i pow2n = _mm256_slli_epi32(
        _mm256_add_epi32(ni, _mm256_set1_epi32(127)), 23);
    _mm256_storeu_ps(s + i, _mm256_mul_ps(y, _mm256_castsi256_ps(pow2n)));
  }
#elif defined(TCB_SIMD_NEON)
  const float32x4_t vshift = vdupq_n_f32(shift);
  const float32x4_t vhi = vdupq_n_f32(kExpHi);
  const float32x4_t vlo = vdupq_n_f32(kExpLo);
  const float32x4_t vlog2e = vdupq_n_f32(kExpLog2e);
  const float32x4_t vc1 = vdupq_n_f32(kExpC1);
  const float32x4_t vc2 = vdupq_n_f32(kExpC2);
  const float32x4_t vone = vdupq_n_f32(1.0f);
  for (; i + 4 <= n; i += 4) {
    float32x4_t x = vsubq_f32(vld1q_f32(s + i), vshift);
    x = vmaxq_f32(vminq_f32(x, vhi), vlo);
    const int32x4_t ni = vcvtnq_s32_f32(vmulq_f32(x, vlog2e));
    const float32x4_t nf = vcvtq_f32_s32(ni);
    x = vmlsq_f32(x, nf, vc1);
    x = vmlsq_f32(x, nf, vc2);
    float32x4_t y = vdupq_n_f32(kExpP0);
    y = vfmaq_f32(vdupq_n_f32(kExpP1), y, x);
    y = vfmaq_f32(vdupq_n_f32(kExpP2), y, x);
    y = vfmaq_f32(vdupq_n_f32(kExpP3), y, x);
    y = vfmaq_f32(vdupq_n_f32(kExpP4), y, x);
    y = vfmaq_f32(vdupq_n_f32(kExpP5), y, x);
    y = vaddq_f32(vfmaq_f32(x, y, vmulq_f32(x, x)), vone);
    const int32x4_t pow2n =
        vshlq_n_s32(vaddq_s32(ni, vdupq_n_s32(127)), 23);
    vst1q_f32(s + i, vmulq_f32(y, vreinterpretq_f32_s32(pow2n)));
  }
#endif
  for (; i < n; ++i) s[i] = std::exp(s[i] - shift);
}

/// Sum of squared deviations from `mean` over x[0..n). Reduces across lanes.
inline float reduce_sq_dev(const float* x, float mean, Index n) TCB_BITWISE {
  Index i = 0;
  float head = 0.0f;
#if defined(TCB_SIMD_AVX512)
  if (n >= 16) {
    const __m512 vm16 = _mm512_set1_ps(mean);
    __m512 acc = _mm512_setzero_ps();
    for (; i + 16 <= n; i += 16) {
      const __m512 d16 = _mm512_sub_ps(_mm512_loadu_ps(x + i), vm16);
      acc = _mm512_fmadd_ps(d16, d16, acc);
    }
    head = hadd512(acc);
  }
#elif defined(TCB_SIMD_AVX2)
  if (n >= 8) {
    const __m256 vm8 = _mm256_set1_ps(mean);
    __m256 acc = _mm256_setzero_ps();
    for (; i + 8 <= n; i += 8) {
      const __m256 d8 = _mm256_sub_ps(_mm256_loadu_ps(x + i), vm8);
      acc = _mm256_fmadd_ps(d8, d8, acc);
    }
    const __m128 lo = _mm256_castps256_ps128(acc);
    const __m128 hi = _mm256_extractf128_ps(acc, 1);
    __m128 s = _mm_add_ps(lo, hi);
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
    head = _mm_cvtss_f32(s);
  }
#elif defined(TCB_SIMD_NEON)
  if (n >= 4) {
    const float32x4_t vm4 = vdupq_n_f32(mean);
    float32x4_t acc = vdupq_n_f32(0.0f);
    for (; i + 4 <= n; i += 4) {
      const float32x4_t d4 = vsubq_f32(vld1q_f32(x + i), vm4);
      acc = vfmaq_f32(acc, d4, d4);
    }
    head = vaddvq_f32(acc);
  }
#endif
  float tail = 0.0f;
  for (; i < n; ++i) {
    const float delta = x[i] - mean;
    tail += delta * delta;
  }
  return head + tail;
}

}  // namespace tcb::simd
