#include "tensor/io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace tcb {
namespace {

constexpr char kMagic[4] = {'T', 'C', 'B', 'T'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in, const char* what) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error(std::string("tensor io: truncated ") + what);
  return value;
}

void write_entry(std::ofstream& out, const std::string& name,
                 const Tensor& tensor) {
  write_pod(out, static_cast<std::uint32_t>(name.size()));
  out.write(name.data(), static_cast<std::streamsize>(name.size()));
  write_pod(out, static_cast<std::uint32_t>(tensor.rank()));
  for (std::size_t i = 0; i < tensor.rank(); ++i)
    write_pod(out, tensor.dim(i));
  const auto data = tensor.data();
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
  write_pod(out, fnv1a(data.data(), data.size() * sizeof(float)));
}

std::pair<std::string, Tensor> read_entry(std::ifstream& in) {
  const auto name_len = read_pod<std::uint32_t>(in, "entry name length");
  std::string name(name_len, '\0');
  in.read(name.data(), name_len);
  if (!in) throw std::runtime_error("tensor io: truncated entry name");
  const auto rank = read_pod<std::uint32_t>(in, "rank");
  if (rank > 4) throw std::runtime_error("tensor io: rank > 4");
  std::vector<Index> dims;
  for (std::uint32_t i = 0; i < rank; ++i) {
    dims.push_back(read_pod<Index>(in, "dimension"));
    if (dims.back() < 0) throw std::runtime_error("tensor io: negative dim");
  }
  Tensor tensor(Shape{std::move(dims)});
  auto data = tensor.data();
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size() * sizeof(float)));
  if (!in) throw std::runtime_error("tensor io: truncated payload");
  const auto checksum = read_pod<std::uint64_t>(in, "checksum");
  if (checksum != fnv1a(data.data(), data.size() * sizeof(float)))
    throw std::runtime_error("tensor io: checksum mismatch for '" + name + "'");
  return {std::move(name), std::move(tensor)};
}

}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t bytes) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void save_tensor_bundle(const std::string& path,
                        const std::map<std::string, Tensor>& tensors) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("tensor io: cannot open " + path);
  out.write(kMagic, sizeof kMagic);
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint32_t>(tensors.size()));
  for (const auto& [name, tensor] : tensors) write_entry(out, name, tensor);
  if (!out) throw std::runtime_error("tensor io: write failed for " + path);
}

std::map<std::string, Tensor> load_tensor_bundle(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("tensor io: cannot open " + path);
  char magic[4];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0)
    throw std::runtime_error("tensor io: bad magic in " + path);
  const auto version = read_pod<std::uint32_t>(in, "version");
  if (version != kVersion)
    throw std::runtime_error("tensor io: unsupported version " +
                             std::to_string(version));
  const auto count = read_pod<std::uint32_t>(in, "entry count");
  std::map<std::string, Tensor> tensors;
  for (std::uint32_t i = 0; i < count; ++i) {
    auto [name, tensor] = read_entry(in);
    tensors.emplace(std::move(name), std::move(tensor));
  }
  return tensors;
}

void save_tensor(const std::string& path, const Tensor& tensor) {
  save_tensor_bundle(path, {{"", tensor}});
}

Tensor load_tensor(const std::string& path) {
  auto bundle = load_tensor_bundle(path);
  if (bundle.size() != 1)
    throw std::runtime_error("tensor io: expected a single-entry bundle");
  return std::move(bundle.begin()->second);
}

}  // namespace tcb
