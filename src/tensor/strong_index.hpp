// Strong index types for the batching/kernel geometry.
//
// Every correctness bug class the TCB paper worries about — packed-row
// offsets (§4.1), slot boundaries (§4.2), per-request position restarts
// (Eq. 5–6) — is `(rows, cols, begin, end)`-shaped integer math where the
// compiler happily accepts swapped arguments. These wrappers make the axis
// part of the type, so `token_at(col, row)` or `build(selected, capacity,
// rows)` is a compile error instead of a silently corrupted attention mask.
//
// Policy (see DESIGN.md §7):
//   * Strong types live at the *geometry boundary*: batcher/engine
//     signatures, packed-offset accessors, mask and positional-encoding
//     entry points. They are constructed where the semantic axis is known
//     and unwrapped exactly once (`value()`) when entering a raw kernel
//     loop, which keeps the hot loops on plain `Index` arithmetic.
//   * A value doubles as index and extent (like `std::size_t`): `Row{4}` is
//     both "row #4" and "4 rows". What matters is the axis, not the role.
//   * Zero overhead: same size/layout as `Index`, trivially copyable,
//     passed in registers. Verified by the static_asserts below.
#pragma once

#include <cstddef>
#include <string>
#include <type_traits>

#include "tensor/tensor.hpp"

namespace tcb {

template <class Tag>
class StrongIndex {
 public:
  using value_type = Index;

  constexpr StrongIndex() noexcept = default;
  constexpr explicit StrongIndex(Index v) noexcept : v_(v) {}

  /// The single sanctioned unwrap point back into raw index math.
  [[nodiscard]] constexpr Index value() const noexcept { return v_; }
  /// Unwrap as an unsigned container subscript (caller guarantees v >= 0,
  /// typically via TCB_CHECK/TCB_DCHECK at the enclosing boundary).
  [[nodiscard]] constexpr std::size_t usize() const noexcept {
    return static_cast<std::size_t>(v_);
  }

  /// Same-axis comparisons only; comparing Row to Col does not compile.
  [[nodiscard]] friend constexpr auto operator<=>(StrongIndex,
                                                  StrongIndex) noexcept = default;

  /// Shifting along the axis keeps the axis.
  constexpr StrongIndex& operator+=(Index d) noexcept { v_ += d; return *this; }
  constexpr StrongIndex& operator-=(Index d) noexcept { v_ -= d; return *this; }
  constexpr StrongIndex& operator++() noexcept { ++v_; return *this; }
  constexpr StrongIndex& operator--() noexcept { --v_; return *this; }
  constexpr StrongIndex operator++(int) noexcept { return StrongIndex{v_++}; }
  constexpr StrongIndex operator--(int) noexcept { return StrongIndex{v_--}; }
  [[nodiscard]] friend constexpr StrongIndex operator+(StrongIndex a,
                                                       Index d) noexcept {
    return StrongIndex{a.v_ + d};
  }
  [[nodiscard]] friend constexpr StrongIndex operator-(StrongIndex a,
                                                       Index d) noexcept {
    return StrongIndex{a.v_ - d};
  }
  /// Distance between two positions on the same axis is a plain count.
  [[nodiscard]] friend constexpr Index operator-(StrongIndex a,
                                                 StrongIndex b) noexcept {
    return a.v_ - b.v_;
  }

 private:
  Index v_ = 0;
};

/// Batch row (vertical axis of the packed id matrix).
using Row = StrongIndex<struct RowTag>;
/// Token column within a materialized row (horizontal axis).
using Col = StrongIndex<struct ColTag>;
/// Slot index within a row (paper §4.2, Fig. 4).
using Slot = StrongIndex<struct SlotTag>;
/// Position within one request's segment (restarts at 0 per request, §4.1).
using Pos = StrongIndex<struct PosTag>;

// Zero-overhead claims, enforced: a StrongIndex is bit-identical to Index.
static_assert(sizeof(Row) == sizeof(Index));
static_assert(alignof(Row) == alignof(Index));
static_assert(std::is_trivially_copyable_v<Row>);
static_assert(std::is_standard_layout_v<Row>);
// The whole point: no implicit traffic between axes or with raw Index.
static_assert(!std::is_convertible_v<Index, Row>);
static_assert(!std::is_convertible_v<Row, Index>);
static_assert(!std::is_convertible_v<Row, Col>);
static_assert(!std::is_convertible_v<Col, Row>);
static_assert(!std::is_convertible_v<Slot, Pos>);
// But explicit construction from Index works and is constexpr.
static_assert(Row{3}.value() == 3);
static_assert(Col{2} + 5 == Col{7});
static_assert(Col{7} - Col{2} == 5);

/// Flattened element offset of (row, col) in a rows x width buffer — the
/// `r * width + c` idiom that anchors every packed-batch access. Taking the
/// axes as types means the arguments cannot be transposed.
[[nodiscard]] constexpr std::size_t flat_offset(Row row, Col col,
                                                Col width) noexcept {
  return row.usize() * width.usize() + col.usize();
}

/// First column of a slot of length `slot_len` (paper Fig. 4 geometry).
[[nodiscard]] constexpr Col slot_begin(Slot slot, Index slot_len) noexcept {
  return Col{slot.value() * slot_len};
}

/// Slot that contains column `col` for slot length `slot_len`.
[[nodiscard]] constexpr Slot slot_of(Col col, Index slot_len) noexcept {
  return Slot{col.value() / slot_len};
}

static_assert(flat_offset(Row{2}, Col{3}, Col{10}) == 23);
static_assert(slot_begin(Slot{2}, 8) == Col{16});
static_assert(slot_of(Col{17}, 8) == Slot{2});

template <class Tag>
[[nodiscard]] inline std::string to_string(StrongIndex<Tag> v) {
  return std::to_string(v.value());
}

}  // namespace tcb
