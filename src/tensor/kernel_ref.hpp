// Scalar reference kernels: the original straight-line, single-threaded
// implementations that the blocked/SIMD layer in gemm.cpp and ops.cpp
// replaced. They are kept (a) as the ground truth for the kernel-equivalence
// suite (tests/tensor/kernel_equivalence_test.cpp), (b) as the portable
// fallback semantics a TCB_SIMD=OFF build must reproduce, and (c) as the
// pre-optimization baseline the micro benchmarks report next to the fast
// kernels (BM_*Ref in bench/micro_kernels.cpp).
//
// Nothing in the engine's hot path calls these; their loop order is the
// specification, not an implementation detail.
#pragma once

#include "tensor/tensor.hpp"
#include "util/numeric.hpp"

// TCB_REASSOC on every reference kernel: these are the tolerance-governed
// side of the equivalence suite (compared under max_ulp_diff, not bitwise),
// so TCB_BITWISE production code may never call into them — tcb-lint's
// bitwise-closure rule enforces that.
namespace tcb::ref {

/// C = A(m,k) * B(k,n), naive i-k-j accumulate-into-C-row loop.
void matmul(const Tensor& a, const Tensor& b, Tensor& c) TCB_REASSOC;

/// C = A(m,k) * B(n,k)^T, per-element scalar dot products.
void matmul_nt(const Tensor& a, const Tensor& b, Tensor& c) TCB_REASSOC;

/// Row-wise softmax with the kMaskedOut fully-masked-row convention.
void softmax_rows_inplace(Tensor& t) TCB_REASSOC;

/// LayerNorm over the last dimension, two-pass mean/variance.
void layer_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                float eps, Tensor& y) TCB_REASSOC;

/// Elementwise tanh-approximation GELU.
void gelu_inplace(Tensor& t) TCB_REASSOC;

/// Elementwise ReLU.
void relu_inplace(Tensor& t) TCB_REASSOC;

}  // namespace tcb::ref
