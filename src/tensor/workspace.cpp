#include "tensor/workspace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "parallel/sync.hpp"
#include "util/check.hpp"

namespace tcb {
namespace {

/// Floats of the first chunk a thread allocates (256 KiB). Later chunks grow
/// geometrically, so a thread reaches any steady-state footprint in O(log)
/// heap allocations.
constexpr std::size_t kMinChunkFloats = std::size_t{1} << 16;

constexpr std::size_t kAlignBytes = 64;
constexpr std::size_t kAlignFloats = kAlignBytes / sizeof(float);

/// Monotonic process-wide statistics; every thread's arena bumps them.
std::atomic<std::uint64_t> g_chunk_allocs TCB_LOCK_FREE{0};
std::atomic<std::uint64_t> g_reserved_bytes TCB_LOCK_FREE{0};

}  // namespace

Workspace& Workspace::this_thread() {
  static thread_local Workspace ws;
  return ws;
}

float* Workspace::base(Chunk& c) noexcept {
  auto addr = reinterpret_cast<std::uintptr_t>(c.storage.data());
  const std::uintptr_t aligned = (addr + kAlignBytes - 1) & ~(kAlignBytes - 1);
  return c.storage.data() + (aligned - addr) / sizeof(float);
}

float* Workspace::alloc(std::size_t n_floats) {
  TCB_DCHECK(live_scopes_ > 0, "Workspace::alloc outside a WorkspaceScope");
  // Keep every allocation aligned by rounding sizes to the alignment grain.
  const std::size_t n = std::max<std::size_t>(
      kAlignFloats, (n_floats + kAlignFloats - 1) & ~(kAlignFloats - 1));
  if (active_ >= chunks_.size() || chunks_[active_].capacity - offset_ < n) {
    if (active_ < chunks_.size()) used_before_active_ += offset_;
    // Overflow: open a new chunk directly after the active one. Chunks that
    // were already behind that position are pushed back, never reused on
    // this pass — but on the next identical pass the same walk finds the
    // bigger chunk in place, so a warmed arena never allocates again.
    const std::size_t grown =
        chunks_.empty() ? kMinChunkFloats : 2 * chunks_.back().capacity;
    const std::size_t cap = std::max({n, kMinChunkFloats, grown});
    Chunk c;
    c.storage.resize(cap + kAlignFloats);
    c.capacity = cap;
    const std::size_t at = chunks_.empty() ? 0 : active_ + 1;
    chunks_.insert(chunks_.begin() + static_cast<std::ptrdiff_t>(at),
                   std::move(c));
    active_ = at;
    offset_ = 0;
    g_chunk_allocs.fetch_add(1, std::memory_order_relaxed);
    g_reserved_bytes.fetch_add((cap + kAlignFloats) * sizeof(float),
                               std::memory_order_relaxed);
  }
  float* p = base(chunks_[active_]) + offset_;
  offset_ += n;
  high_water_floats_ =
      std::max(high_water_floats_, used_before_active_ + offset_);
  return p;
}

void Workspace::rewind(Mark m) noexcept {
  active_ = m.chunk;
  offset_ = m.offset;
  // Recompute the parked-floats tally for the high-water stat. Chunks below
  // the mark are full up to their capacity only conceptually; what matters
  // is monotonicity, so an upper bound of their capacities is fine.
  used_before_active_ = 0;
  for (std::size_t i = 0; i < active_ && i < chunks_.size(); ++i)
    used_before_active_ += chunks_[i].capacity;
}

Workspace::Stats Workspace::stats() const noexcept {
  Stats s;
  for (const Chunk& c : chunks_)
    s.reserved_bytes += (c.capacity + kAlignFloats) * sizeof(float);
  s.high_water_bytes = high_water_floats_ * sizeof(float);
  return s;
}

std::uint64_t Workspace::total_chunk_allocs() noexcept {
  return g_chunk_allocs.load(std::memory_order_relaxed);
}

std::size_t Workspace::total_reserved_bytes() noexcept {
  return static_cast<std::size_t>(
      g_reserved_bytes.load(std::memory_order_relaxed));
}

WorkspaceScope::~WorkspaceScope() {
  TCB_DCHECK(ws_.live_scopes_ == depth_,
             "WorkspaceScope destroyed out of LIFO order");
  --ws_.live_scopes_;
  ws_.rewind(mark_);
}

}  // namespace tcb
