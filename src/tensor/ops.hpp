// Tensor kernels for the transformer engine.
//
// All kernels are multithreaded via the global ThreadPool with grain sizes
// chosen so small problems (single decode step) stay single-threaded, and
// vectorized through src/tensor/simd.hpp (AVX-512 / AVX2 / NEON, scalar when
// TCB_SIMD=OFF). The GEMM (src/tensor/gemm.cpp) is cache-blocked with packed
// operand panels and a register-tiled microkernel; short matrices take an
// unpacked row-streaming path instead. The original naive loops survive as
// tcb::ref::* (tensor/kernel_ref.hpp) and the equivalence suite pins the
// fast kernels to them.
#pragma once

#include <cstddef>

#include "tensor/tensor.hpp"
#include "util/numeric.hpp"

namespace tcb {

/// Additive mask value for "attention forbidden". Chosen so exp(x - max)
/// underflows to exactly 0.0f, making masked positions contribute nothing —
/// this is what makes concat-batched inference bitwise-comparable with
/// per-request inference.
inline constexpr float kMaskedOut = -1e30f;

/// C = A(m,k) * B(k,n). Shapes are validated; C is resized.
/// TCB_BITWISE: output row i is a fixed ascending-k chain over row i of A —
/// identical whatever other rows ride in the same call.
void matmul(const Tensor& a, const Tensor& b, Tensor& c) TCB_BITWISE;
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b) TCB_BITWISE;

/// C = A(m,k) * B(n,k)^T, i.e. pairwise dot products. Used for Q·K^T where K
/// is stored row-major per position.
void matmul_nt(const Tensor& a, const Tensor& b, Tensor& c) TCB_BITWISE;
[[nodiscard]] Tensor matmul_nt(const Tensor& a, const Tensor& b) TCB_BITWISE;

/// Rows per parallel chunk for an (m,k)x(k,n) GEMM. Balances a work floor
/// (enough multiply-adds per chunk to pay for the pool handoff) against a
/// fan-out ceiling derived from the global pool's parallelism (at most a few
/// chunks per worker). Exposed for the kernel tests.
[[nodiscard]] std::size_t gemm_grain(Index m, Index n, Index k);

/// y += x (same shape).
void add_inplace(Tensor& y, const Tensor& x) TCB_BITWISE;

/// Adds a length-n bias vector to every row of a (m,n) tensor.
void add_bias_inplace(Tensor& y, const Tensor& bias) TCB_BITWISE;

/// y *= s.
void scale_inplace(Tensor& y, float s) TCB_BITWISE;

/// Row-wise softmax over the last dimension of a rank-2 tensor, in place.
/// A row whose maximum is <= kMaskedOut / 2 (i.e. fully masked) becomes all
/// zeros instead of NaN.
void softmax_rows_inplace(Tensor& t) TCB_BITWISE;

/// LayerNorm over the last dimension: y = (x - mu) / sqrt(var + eps) * gamma
/// + beta, for each row of a (m,d) tensor.
void layer_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                float eps, Tensor& y) TCB_BITWISE;

/// Elementwise ReLU in place.
void relu_inplace(Tensor& t) TCB_BITWISE;

/// Elementwise tanh-approximation GELU in place (the variant used by BERT).
void gelu_inplace(Tensor& t) TCB_BITWISE;

/// argmax over the last dimension of a (m,n) tensor; returns m indices.
[[nodiscard]] std::vector<Index> argmax_rows(const Tensor& t);

}  // namespace tcb
