// Cache-blocked, register-tiled GEMM (matmul / matmul_nt).
//
// Layout follows the classic GotoBLAS/BLIS decomposition, sized for the
// shapes this engine actually runs (m up to a few thousand, k/n up to a few
// thousand):
//
//   for each kc-block of K (blk.kc depths):           L2-resident B slab
//     pack B[kc, n] into NR-column panels (Bp)
//     parallel over MR-row panels of A:               one chunk per worker(s)
//       pack A[mr, kc] into a k-major panel (Ap)
//       for each NR-column panel: microkernel         registers only
//
// The microkernel computes an MR x NR tile held entirely in vector
// registers. Each ISA compiles a small table of template-instantiated
// variants (e.g. AVX-512: 8x32 / 12x32 / 8x16 / 4x64); which variant runs —
// and how deep kc is — comes from tensor/tuning.hpp, which derives the
// candidates from the detected L1/L2 geometry and trial-times them once per
// process. Panels are zero-padded to full MR/NR so the microkernel has no
// edge branches; the write-back clips to the valid region.
//
// Scratch (the packed Ap/Bp panels and the C tile) lives in the per-thread
// Workspace arena (tensor/workspace.hpp) instead of per-call std::vectors:
// after the first call warms the arenas, repeated GEMMs perform zero heap
// allocations.
//
// Numerical contract: every C element is one fused-multiply-add chain in
// ascending k order per kc-block (lanes are distinct output columns, rows
// are distinct accumulators), and the zero padding contributes exact 0.0f.
// This holds for EVERY microkernel variant — changing MR/NR only moves an
// element between registers, never reorders its chain — and the autotuner
// keeps kc >= 256, so batched and single-request runs of the same layer
// agree bitwise for k <= 256 exactly as before — the property the
// concat-vs-single equivalence suite relies on. The small-m fast path below
// produces the identical chain. The scalar reference (tcb::ref::matmul)
// reassociates differently and is compared under tolerance instead.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>

#include "parallel/thread_pool.hpp"
#include "tensor/ops.hpp"
#include "tensor/simd.hpp"
#include "tensor/tuning.hpp"
#include "tensor/workspace.hpp"

namespace tcb {
namespace {

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}

/// Baseline packed-block depth (the autotuner's floor; see tuning.hpp).
constexpr Index kKc = 256;

// --- microkernel variants --------------------------------------------------
//
// ukernel<MR, NV> computes an MR x (NV * lane-width) tile:
// ctile[r * NR + j] = sum_p ap[p * MR + r] * bp[p * NR + j]. `ap` is k-major
// (MR values per depth), `bp` likewise with NR values per depth; both are
// zero-padded by the packers. Variants must keep MR * NV accumulators plus
// NV B vectors plus one A broadcast inside the register file.

#if defined(TCB_SIMD_AVX512)

template <int MR, int NV>
void ukernel(Index kc, const float* ap, const float* bp, float* ctile) {
  constexpr Index kNR = NV * 16;
  __m512 acc[MR][NV];
  for (int r = 0; r < MR; ++r)
    for (int v = 0; v < NV; ++v) acc[r][v] = _mm512_setzero_ps();
  for (Index p = 0; p < kc; ++p) {
    __m512 b[NV];
    for (int v = 0; v < NV; ++v) b[v] = _mm512_loadu_ps(bp + p * kNR + 16 * v);
    const float* arow = ap + p * MR;
    for (int r = 0; r < MR; ++r) {
      const __m512 av = _mm512_set1_ps(arow[r]);
      for (int v = 0; v < NV; ++v) acc[r][v] = _mm512_fmadd_ps(av, b[v], acc[r][v]);
    }
  }
  for (int r = 0; r < MR; ++r)
    for (int v = 0; v < NV; ++v)
      _mm512_storeu_ps(ctile + r * kNR + 16 * v, acc[r][v]);
}

#elif defined(TCB_SIMD_AVX2)

template <int MR, int NV>
void ukernel(Index kc, const float* ap, const float* bp, float* ctile) {
  constexpr Index kNR = NV * 8;
  __m256 acc[MR][NV];
  for (int r = 0; r < MR; ++r)
    for (int v = 0; v < NV; ++v) acc[r][v] = _mm256_setzero_ps();
  for (Index p = 0; p < kc; ++p) {
    __m256 b[NV];
    for (int v = 0; v < NV; ++v) b[v] = _mm256_loadu_ps(bp + p * kNR + 8 * v);
    const float* arow = ap + p * MR;
    for (int r = 0; r < MR; ++r) {
      const __m256 av = _mm256_set1_ps(arow[r]);
      for (int v = 0; v < NV; ++v) acc[r][v] = _mm256_fmadd_ps(av, b[v], acc[r][v]);
    }
  }
  for (int r = 0; r < MR; ++r)
    for (int v = 0; v < NV; ++v)
      _mm256_storeu_ps(ctile + r * kNR + 8 * v, acc[r][v]);
}

#elif defined(TCB_SIMD_NEON)

template <int MR, int NV>
void ukernel(Index kc, const float* ap, const float* bp, float* ctile) {
  constexpr Index kNR = NV * 4;
  float32x4_t acc[MR][NV];
  for (int r = 0; r < MR; ++r)
    for (int v = 0; v < NV; ++v) acc[r][v] = vdupq_n_f32(0.0f);
  for (Index p = 0; p < kc; ++p) {
    float32x4_t b[NV];
    for (int v = 0; v < NV; ++v) b[v] = vld1q_f32(bp + p * kNR + 4 * v);
    const float* arow = ap + p * MR;
    for (int r = 0; r < MR; ++r)
      for (int v = 0; v < NV; ++v)
        acc[r][v] = vfmaq_n_f32(acc[r][v], b[v], arow[r]);
  }
  for (int r = 0; r < MR; ++r)
    for (int v = 0; v < NV; ++v) vst1q_f32(ctile + r * kNR + 4 * v, acc[r][v]);
}

#else

/// Scalar fallback: NV counts 8-wide column groups for the autovectorizer.
template <int MR, int NV>
void ukernel(Index kc, const float* ap, const float* bp, float* ctile) {
  constexpr Index kNR = NV * 8;
  float acc[MR * kNR] = {};
  for (Index p = 0; p < kc; ++p) {
    const float* arow = ap + p * MR;
    const float* brow = bp + p * kNR;
    for (int r = 0; r < MR; ++r) {
      const float av = arow[r];
      for (Index j = 0; j < kNR; ++j) acc[r * kNR + j] += av * brow[j];
    }
  }
  for (Index i = 0; i < MR * kNR; ++i) ctile[i] = acc[i];
}

#endif

struct MicroKernel {
  void (*fn)(Index kc, const float* ap, const float* bp, float* ctile);
  Index mr;
  Index nr;
  const char* tag;
};

#if defined(TCB_SIMD_AVX512)
// 8x32: 16 acc + 2 B + 1 bcast = 19 of 32 zmm. 12x32: 27. 8x16: 10 (less
// L1 pressure per panel). 4x64: 21 (wide outputs).
constexpr MicroKernel kMicroKernels[] = {
    {&ukernel<8, 2>, 8, 32, "avx512_8x32"},
    {&ukernel<12, 2>, 12, 32, "avx512_12x32"},
    {&ukernel<8, 1>, 8, 16, "avx512_8x16"},
    {&ukernel<4, 4>, 4, 64, "avx512_4x64"},
};
#elif defined(TCB_SIMD_AVX2)
// 6x16: 12 acc + 2 B + 1 bcast = 15 of 16 ymm (full tilt). 4x16: 11.
// 8x8: 10.
constexpr MicroKernel kMicroKernels[] = {
    {&ukernel<6, 2>, 6, 16, "avx2_6x16"},
    {&ukernel<4, 2>, 4, 16, "avx2_4x16"},
    {&ukernel<8, 1>, 8, 8, "avx2_8x8"},
};
#elif defined(TCB_SIMD_NEON)
constexpr MicroKernel kMicroKernels[] = {
    {&ukernel<8, 2>, 8, 8, "neon_8x8"},
    {&ukernel<4, 4>, 4, 16, "neon_4x16"},
    {&ukernel<8, 1>, 8, 4, "neon_8x4"},
};
#else
constexpr MicroKernel kMicroKernels[] = {
    {&ukernel<4, 1>, 4, 8, "scalar_4x8"},
};
#endif

constexpr int kDefaultKernel = 0;
constexpr Index kMr = kMicroKernels[kDefaultKernel].mr;
constexpr Index kNr = kMicroKernels[kDefaultKernel].nr;

/// Packs B[k0:k0+kc, 0:n] (row-major, leading dim n) into nr-column panels:
/// panel jp holds kc rows of nr floats, zero-padded past column n. `bp` is
/// raw workspace memory, so padding is written explicitly.
void pack_b(const float* b, Index n, Index k0, Index kc, Index nr,
            float* bp) TCB_BITWISE {
  const Index panels = (n + nr - 1) / nr;
  for (Index jp = 0; jp < panels; ++jp) {
    const Index j0 = jp * nr;
    const Index jn = std::min<Index>(nr, n - j0);
    float* dst = bp + static_cast<std::size_t>(jp) *
                          static_cast<std::size_t>(kc) * nr;
    for (Index p = 0; p < kc; ++p) {
      const float* src =
          b + static_cast<std::size_t>(k0 + p) * static_cast<std::size_t>(n) + j0;
      for (Index j = 0; j < jn; ++j) dst[p * nr + j] = src[j];
      for (Index j = jn; j < nr; ++j) dst[p * nr + j] = 0.0f;
    }
  }
}

/// Same panel layout, but the source is B(n,k) row-major and we need its
/// transpose: Bp[p][j] = B[j0+j, k0+p]. Used by matmul_nt.
void pack_b_transposed(const float* b, Index n, Index k, Index k0, Index kc,
                       Index nr, float* bp) TCB_BITWISE {
  const Index panels = (n + nr - 1) / nr;
  for (Index jp = 0; jp < panels; ++jp) {
    const Index j0 = jp * nr;
    const Index jn = std::min<Index>(nr, n - j0);
    float* dst = bp + static_cast<std::size_t>(jp) *
                          static_cast<std::size_t>(kc) * nr;
    for (Index j = 0; j < jn; ++j) {
      const float* src =
          b + static_cast<std::size_t>(j0 + j) * static_cast<std::size_t>(k) + k0;
      for (Index p = 0; p < kc; ++p) dst[p * nr + j] = src[p];
    }
    for (Index j = jn; j < nr; ++j)
      for (Index p = 0; p < kc; ++p) dst[p * nr + j] = 0.0f;
  }
}

/// Packs A[i0:i0+mr, k0:k0+kc] (row-major, leading dim k) k-major into `ap`,
/// zero-padding rows past mr up to mr_max.
void pack_a(const float* a, Index k, Index i0, Index mr, Index k0, Index kc,
            Index mr_max, float* ap) TCB_BITWISE {
  for (Index p = 0; p < kc; ++p) {
    float* dst = ap + p * mr_max;
    for (Index r = 0; r < mr; ++r)
      dst[r] = a[static_cast<std::size_t>(i0 + r) * static_cast<std::size_t>(k) +
                 static_cast<std::size_t>(k0 + p)];
    for (Index r = mr; r < mr_max; ++r) dst[r] = 0.0f;
  }
}

/// Blocked driver shared by matmul and matmul_nt; `transposed_b` selects the
/// B packing. C must already have shape (m, n).
void gemm_blocked(const float* pa, const float* pb, float* pc, Index m,
                  Index k, Index n, bool transposed_b,
                  const GemmBlocking& blk) TCB_BITWISE {
  const MicroKernel& uk = kMicroKernels[blk.kernel];
  const Index mr_max = uk.mr;
  const Index nr = uk.nr;
  const Index row_panels = (m + mr_max - 1) / mr_max;
  const Index col_panels = (n + nr - 1) / nr;
  const std::size_t grain_rows = gemm_grain(m, n, k);
  const std::size_t grain_panels =
      std::max<std::size_t>(1, grain_rows / static_cast<std::size_t>(mr_max));

  // One packed B slab per kc-block, packed on the calling thread and shared
  // read-only by all workers. The slab is workspace scratch sized for the
  // deepest block and reused across blocks; the scope spans the blocking
  // parallel_for calls, so worker reads always see live storage.
  WorkspaceScope bscope;
  const Index kc_max = std::min<Index>(blk.kc, k);
  float* bp = bscope.alloc(static_cast<std::size_t>(col_panels) *
                           static_cast<std::size_t>(kc_max) *
                           static_cast<std::size_t>(nr));
  for (Index k0 = 0; k0 < k; k0 += blk.kc) {
    const Index kc = std::min<Index>(blk.kc, k - k0);
    if (transposed_b)
      pack_b_transposed(pb, n, k, k0, kc, nr, bp);
    else
      pack_b(pb, n, k0, kc, nr, bp);
    const bool first_block = k0 == 0;

    parallel_for(
        static_cast<std::size_t>(row_panels),
        [&, bp](std::size_t begin, std::size_t end) {
          // Per-worker scratch from the executing thread's arena. On the
          // calling thread this nests LIFO inside bscope; pool workers use
          // their own arenas.
          WorkspaceScope wscope;
          float* ap = wscope.alloc(static_cast<std::size_t>(mr_max) *
                                   static_cast<std::size_t>(kc));
          float* ctile = wscope.alloc(static_cast<std::size_t>(mr_max) *
                                      static_cast<std::size_t>(nr));
          for (std::size_t rp = begin; rp < end; ++rp) {
            const Index i0 = static_cast<Index>(rp) * mr_max;
            const Index mr = std::min<Index>(mr_max, m - i0);
            pack_a(pa, k, i0, mr, k0, kc, mr_max, ap);
            for (Index jp = 0; jp < col_panels; ++jp) {
              const Index j0 = jp * nr;
              const Index jn = std::min<Index>(nr, n - j0);
              const float* bpanel = bp + static_cast<std::size_t>(jp) *
                                            static_cast<std::size_t>(kc) * nr;
              uk.fn(kc, ap, bpanel, ctile);
              for (Index r = 0; r < mr; ++r) {
                float* crow = pc + static_cast<std::size_t>(i0 + r) *
                                       static_cast<std::size_t>(n) +
                              j0;
                const float* trow = ctile + r * nr;
                if (first_block)
                  for (Index j = 0; j < jn; ++j) crow[j] = trow[j];
                else
                  for (Index j = 0; j < jn; ++j) crow[j] += trow[j];
              }
            }
          }
        },
        grain_panels);
  }
}

/// Row-streaming path for short matrices (decode steps, tiny test shapes):
/// per row, C_row = sum_p a[p] * B_row(p) via SIMD axpy (matmul) or per
/// element dots (matmul_nt). No packing, so nothing to amortize.
void gemm_small_nn(const float* pa, const float* pb, float* pc, Index m,
                   Index k, Index n) TCB_BITWISE {
  parallel_for(
      static_cast<std::size_t>(m),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          float* crow = pc + i * static_cast<std::size_t>(n);
          for (Index j = 0; j < n; ++j) crow[j] = 0.0f;
          const float* arow = pa + i * static_cast<std::size_t>(k);
          for (Index p = 0; p < k; ++p)
            simd::axpy(arow[p], pb + static_cast<std::size_t>(p) * n, crow, n);
        }
      },
      gemm_grain(m, n, k));
}

void gemm_small_nt(const float* pa, const float* pb, float* pc, Index m,
                   Index k, Index n) TCB_BITWISE {
  parallel_for(
      static_cast<std::size_t>(m),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const float* arow = pa + i * static_cast<std::size_t>(k);
          float* crow = pc + i * static_cast<std::size_t>(n);
          for (Index j = 0; j < n; ++j)
            crow[j] = simd::dot(arow, pb + static_cast<std::size_t>(j) * k, k);
        }
      },
      gemm_grain(m, n, k));
}

/// The blocked path needs enough rows to amortize packing B (one sweep over
/// k*n) and enough columns for full vector panels. Thresholds use the
/// ISA-default tile so the routing decision is independent of tuning.
bool use_blocked(Index m, Index n, Index k) {
  return m >= 2 * kMr && n >= kNr && k >= 8;
}

}  // namespace

std::size_t gemm_kernel_count() noexcept {
  return sizeof(kMicroKernels) / sizeof(kMicroKernels[0]);
}

GemmKernelInfo gemm_kernel_info(std::size_t i) noexcept {
  GemmKernelInfo info;
  if (i < gemm_kernel_count()) {
    info.mr = kMicroKernels[i].mr;
    info.nr = kMicroKernels[i].nr;
    info.tag = kMicroKernels[i].tag;
  }
  return info;
}

GemmBlocking gemm_default_blocking() {
  GemmBlocking b;
  b.kc = kKc;
  b.mr = kMr;
  b.nr = kNr;
  b.kernel = kDefaultKernel;
  b.tag = std::string(kMicroKernels[kDefaultKernel].tag) + "/kc" +
          std::to_string(kKc);
  return b;
}

void gemm_blocked_with(const float* a, const float* b, float* c, Index m,
                       Index k, Index n, bool transposed_b,
                       const GemmBlocking& blk) {
  require(m > 0 && n > 0 && k > 0, "gemm_blocked_with: empty operand");
  require(blk.kernel >= 0 &&
              static_cast<std::size_t>(blk.kernel) < gemm_kernel_count() &&
              blk.kc > 0,
          "gemm_blocked_with: invalid blocking");
  gemm_blocked(a, b, c, m, k, n, transposed_b, blk);
}

std::size_t gemm_grain(Index m, Index n, Index k) {
  // Rows per parallel chunk. Two pressures: a chunk must carry enough
  // multiply-adds to pay for the pool handoff (floor), and the row range
  // should split into only a few chunks per worker so a 4096-row GEMM does
  // not fan out into hundreds of tiny tasks (ceiling). The old heuristic
  // (65536 / (n*k) + 1 rows) ignored the pool size entirely.
  constexpr double kMinMaddsPerChunk = 32768.0;
  const double per_row = static_cast<double>(n) * static_cast<double>(k);
  if (m <= 0 || per_row <= 0.0) return 1;
  const auto rows_for_floor = static_cast<std::size_t>(
      std::ceil(kMinMaddsPerChunk / per_row));
  const double workers =
      static_cast<double>(ThreadPool::global().parallelism());
  const auto rows_for_fanout = static_cast<std::size_t>(
      std::ceil(static_cast<double>(m) / (3.0 * workers)));
  return std::max<std::size_t>(1, std::max(rows_for_floor, rows_for_fanout));
}

void matmul(const Tensor& a, const Tensor& b, Tensor& c) {
  require(a.rank() == 2 && b.rank() == 2, "matmul: rank-2 operands required");
  const Index m = a.dim(0), k = a.dim(1), n = b.dim(1);
  require(b.dim(0) == k, "matmul: inner dimension mismatch");
  if (!(c.shape() == Shape{m, n})) c = Tensor(Shape{m, n});
  if (m == 0 || n == 0) return;
  if (k == 0) {
    c.fill(0.0f);
    return;
  }
  if (use_blocked(m, n, k))
    gemm_blocked(a.raw(), b.raw(), c.raw(), m, k, n, /*transposed_b=*/false,
                 select_blocking(classify_gemm(m, n)));
  else
    gemm_small_nn(a.raw(), b.raw(), c.raw(), m, k, n);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor c;
  matmul(a, b, c);
  return c;
}

void matmul_nt(const Tensor& a, const Tensor& b, Tensor& c) {
  require(a.rank() == 2 && b.rank() == 2, "matmul_nt: rank-2 operands required");
  const Index m = a.dim(0), k = a.dim(1), n = b.dim(0);
  require(b.dim(1) == k, "matmul_nt: inner dimension mismatch");
  if (!(c.shape() == Shape{m, n})) c = Tensor(Shape{m, n});
  if (m == 0 || n == 0) return;
  if (k == 0) {
    c.fill(0.0f);
    return;
  }
  if (use_blocked(m, n, k))
    gemm_blocked(a.raw(), b.raw(), c.raw(), m, k, n, /*transposed_b=*/true,
                 select_blocking(classify_gemm(m, n)));
  else
    gemm_small_nt(a.raw(), b.raw(), c.raw(), m, k, n);
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  Tensor c;
  matmul_nt(a, b, c);
  return c;
}

}  // namespace tcb
