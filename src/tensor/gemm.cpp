// Cache-blocked, register-tiled GEMM (matmul / matmul_nt).
//
// Layout follows the classic GotoBLAS/BLIS decomposition, sized for the
// shapes this engine actually runs (m up to a few thousand, k/n up to a few
// thousand):
//
//   for each kc-block of K (kKc depths):              L2-resident B slab
//     pack B[kc, n] into NR-column panels (Bp)
//     parallel over MR-row panels of A:               one chunk per worker(s)
//       pack A[mr, kc] into a k-major panel (Ap)
//       for each NR-column panel: microkernel         registers only
//
// The microkernel computes an MR x NR tile held entirely in vector
// registers; per-ISA tile sizes are chosen so the accumulators plus two B
// vectors and an A broadcast fit the register file (AVX-512: 8x32 in 16 of
// 32 zmm; AVX2: 6x16 in 12 of 16 ymm; NEON: 8x8; scalar: 4x8 for the
// autovectorizer). Panels are zero-padded to full MR/NR so the microkernel
// has no edge branches; the write-back clips to the valid region.
//
// Numerical contract: every C element is one fused-multiply-add chain in
// ascending k order per kc-block (lanes are distinct output columns, rows
// are distinct accumulators), and the zero padding contributes exact 0.0f.
// The small-m fast path below produces the identical chain, so batched and
// single-request runs of the same layer agree bitwise for k <= kKc — the
// property the concat-vs-single equivalence suite relies on. The scalar
// reference (tcb::ref::matmul) reassociates differently and is compared
// under tolerance instead.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "tensor/ops.hpp"
#include "tensor/simd.hpp"

namespace tcb {
namespace {

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}

/// Depth of one packed K block: kKc * kNr floats of B must stay L1/L2-hot
/// while a row panel streams through.
constexpr Index kKc = 256;

#if defined(TCB_SIMD_AVX512)
constexpr Index kMr = 8;
constexpr Index kNr = 32;
#elif defined(TCB_SIMD_AVX2)
constexpr Index kMr = 6;
constexpr Index kNr = 16;
#elif defined(TCB_SIMD_NEON)
constexpr Index kMr = 8;
constexpr Index kNr = 8;
#else
constexpr Index kMr = 4;
constexpr Index kNr = 8;
#endif

/// MR x NR tile in registers: ctile[r * kNr + j] = sum_p ap[p*kMr+r] *
/// bp[p*kNr+j]. `ap` is k-major (kMr values per depth), `bp` likewise with
/// kNr values per depth; both are zero-padded by the packers.
void microkernel(Index kc, const float* ap, const float* bp, float* ctile) {
#if defined(TCB_SIMD_AVX512)
  __m512 acc[kMr][2];
  for (Index r = 0; r < kMr; ++r) {
    acc[r][0] = _mm512_setzero_ps();
    acc[r][1] = _mm512_setzero_ps();
  }
  for (Index p = 0; p < kc; ++p) {
    const __m512 b0 = _mm512_loadu_ps(bp + p * kNr);
    const __m512 b1 = _mm512_loadu_ps(bp + p * kNr + 16);
    const float* arow = ap + p * kMr;
    for (Index r = 0; r < kMr; ++r) {
      const __m512 av = _mm512_set1_ps(arow[r]);
      acc[r][0] = _mm512_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm512_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  for (Index r = 0; r < kMr; ++r) {
    _mm512_storeu_ps(ctile + r * kNr, acc[r][0]);
    _mm512_storeu_ps(ctile + r * kNr + 16, acc[r][1]);
  }
#elif defined(TCB_SIMD_AVX2)
  __m256 acc[kMr][2];
  for (Index r = 0; r < kMr; ++r) {
    acc[r][0] = _mm256_setzero_ps();
    acc[r][1] = _mm256_setzero_ps();
  }
  for (Index p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(bp + p * kNr);
    const __m256 b1 = _mm256_loadu_ps(bp + p * kNr + 8);
    const float* arow = ap + p * kMr;
    for (Index r = 0; r < kMr; ++r) {
      const __m256 av = _mm256_set1_ps(arow[r]);
      acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  for (Index r = 0; r < kMr; ++r) {
    _mm256_storeu_ps(ctile + r * kNr, acc[r][0]);
    _mm256_storeu_ps(ctile + r * kNr + 8, acc[r][1]);
  }
#elif defined(TCB_SIMD_NEON)
  float32x4_t acc[kMr][2];
  for (Index r = 0; r < kMr; ++r) {
    acc[r][0] = vdupq_n_f32(0.0f);
    acc[r][1] = vdupq_n_f32(0.0f);
  }
  for (Index p = 0; p < kc; ++p) {
    const float32x4_t b0 = vld1q_f32(bp + p * kNr);
    const float32x4_t b1 = vld1q_f32(bp + p * kNr + 4);
    const float* arow = ap + p * kMr;
    for (Index r = 0; r < kMr; ++r) {
      acc[r][0] = vfmaq_n_f32(acc[r][0], b0, arow[r]);
      acc[r][1] = vfmaq_n_f32(acc[r][1], b1, arow[r]);
    }
  }
  for (Index r = 0; r < kMr; ++r) {
    vst1q_f32(ctile + r * kNr, acc[r][0]);
    vst1q_f32(ctile + r * kNr + 4, acc[r][1]);
  }
#else
  float acc[kMr * kNr] = {};
  for (Index p = 0; p < kc; ++p) {
    const float* arow = ap + p * kMr;
    const float* brow = bp + p * kNr;
    for (Index r = 0; r < kMr; ++r) {
      const float av = arow[r];
      for (Index j = 0; j < kNr; ++j) acc[r * kNr + j] += av * brow[j];
    }
  }
  for (Index i = 0; i < kMr * kNr; ++i) ctile[i] = acc[i];
#endif
}

/// Packs B[k0:k0+kc, 0:n] (row-major, leading dim n) into NR-column panels:
/// panel jp holds kc rows of kNr floats, zero-padded past column n.
void pack_b(const float* b, Index n, Index k0, Index kc,
            std::vector<float>& bp) {
  const Index panels = (n + kNr - 1) / kNr;
  bp.assign(static_cast<std::size_t>(panels) * static_cast<std::size_t>(kc) *
                static_cast<std::size_t>(kNr),
            0.0f);
  for (Index jp = 0; jp < panels; ++jp) {
    const Index j0 = jp * kNr;
    const Index jn = std::min<Index>(kNr, n - j0);
    float* dst = bp.data() + static_cast<std::size_t>(jp) *
                                 static_cast<std::size_t>(kc) * kNr;
    for (Index p = 0; p < kc; ++p) {
      const float* src =
          b + static_cast<std::size_t>(k0 + p) * static_cast<std::size_t>(n) + j0;
      for (Index j = 0; j < jn; ++j) dst[p * kNr + j] = src[j];
    }
  }
}

/// Same panel layout, but the source is B(n,k) row-major and we need its
/// transpose: Bp[p][j] = B[j0+j, k0+p]. Used by matmul_nt.
void pack_b_transposed(const float* b, Index n, Index k, Index k0, Index kc,
                       std::vector<float>& bp) {
  const Index panels = (n + kNr - 1) / kNr;
  bp.assign(static_cast<std::size_t>(panels) * static_cast<std::size_t>(kc) *
                static_cast<std::size_t>(kNr),
            0.0f);
  for (Index jp = 0; jp < panels; ++jp) {
    const Index j0 = jp * kNr;
    const Index jn = std::min<Index>(kNr, n - j0);
    float* dst = bp.data() + static_cast<std::size_t>(jp) *
                                 static_cast<std::size_t>(kc) * kNr;
    for (Index j = 0; j < jn; ++j) {
      const float* src =
          b + static_cast<std::size_t>(j0 + j) * static_cast<std::size_t>(k) + k0;
      for (Index p = 0; p < kc; ++p) dst[p * kNr + j] = src[p];
    }
  }
}

/// Packs A[i0:i0+mr, k0:k0+kc] (row-major, leading dim k) k-major into `ap`,
/// zero-padding rows past mr up to kMr.
void pack_a(const float* a, Index k, Index i0, Index mr, Index k0, Index kc,
            float* ap) {
  for (Index p = 0; p < kc; ++p) {
    float* dst = ap + p * kMr;
    for (Index r = 0; r < mr; ++r)
      dst[r] = a[static_cast<std::size_t>(i0 + r) * static_cast<std::size_t>(k) +
                 static_cast<std::size_t>(k0 + p)];
    for (Index r = mr; r < kMr; ++r) dst[r] = 0.0f;
  }
}

/// Blocked driver shared by matmul and matmul_nt; `transposed_b` selects the
/// B packing. C must already have shape (m, n).
void gemm_blocked(const float* pa, const float* pb, float* pc, Index m,
                  Index k, Index n, bool transposed_b) {
  const Index row_panels = (m + kMr - 1) / kMr;
  const Index col_panels = (n + kNr - 1) / kNr;
  const std::size_t grain_rows = gemm_grain(m, n, k);
  const std::size_t grain_panels =
      std::max<std::size_t>(1, grain_rows / static_cast<std::size_t>(kMr));

  // One packed B slab per kc-block, shared read-only by all workers. The
  // slab itself is thread_local so repeated calls stay allocation-free, but
  // the lambda must go through `bp` — a real local bound on the calling
  // thread — because thread_local names inside a lambda body resolve against
  // the *executing* thread, and the workers' own slabs are empty.
  thread_local std::vector<float> bp_slab;
  std::vector<float>& bp = bp_slab;
  for (Index k0 = 0; k0 < k; k0 += kKc) {
    const Index kc = std::min<Index>(kKc, k - k0);
    if (transposed_b)
      pack_b_transposed(pb, n, k, k0, kc, bp);
    else
      pack_b(pb, n, k0, kc, bp);
    const bool first_block = k0 == 0;

    parallel_for(
        static_cast<std::size_t>(row_panels),
        [&](std::size_t begin, std::size_t end) {
          thread_local std::vector<float> ap;
          thread_local std::vector<float> ctile;
          ap.resize(static_cast<std::size_t>(kMr) * static_cast<std::size_t>(kKc));
          ctile.resize(static_cast<std::size_t>(kMr) *
                       static_cast<std::size_t>(kNr));
          for (std::size_t rp = begin; rp < end; ++rp) {
            const Index i0 = static_cast<Index>(rp) * kMr;
            const Index mr = std::min<Index>(kMr, m - i0);
            pack_a(pa, k, i0, mr, k0, kc, ap.data());
            for (Index jp = 0; jp < col_panels; ++jp) {
              const Index j0 = jp * kNr;
              const Index jn = std::min<Index>(kNr, n - j0);
              const float* bpanel =
                  bp.data() + static_cast<std::size_t>(jp) *
                                  static_cast<std::size_t>(kc) * kNr;
              microkernel(kc, ap.data(), bpanel, ctile.data());
              for (Index r = 0; r < mr; ++r) {
                float* crow = pc + static_cast<std::size_t>(i0 + r) *
                                       static_cast<std::size_t>(n) +
                              j0;
                const float* trow = ctile.data() + r * kNr;
                if (first_block)
                  for (Index j = 0; j < jn; ++j) crow[j] = trow[j];
                else
                  for (Index j = 0; j < jn; ++j) crow[j] += trow[j];
              }
            }
          }
        },
        grain_panels);
  }
}

/// Row-streaming path for short matrices (decode steps, tiny test shapes):
/// per row, C_row = sum_p a[p] * B_row(p) via SIMD axpy (matmul) or per
/// element dots (matmul_nt). No packing, so nothing to amortize.
void gemm_small_nn(const float* pa, const float* pb, float* pc, Index m,
                   Index k, Index n) {
  parallel_for(
      static_cast<std::size_t>(m),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          float* crow = pc + i * static_cast<std::size_t>(n);
          for (Index j = 0; j < n; ++j) crow[j] = 0.0f;
          const float* arow = pa + i * static_cast<std::size_t>(k);
          for (Index p = 0; p < k; ++p)
            simd::axpy(arow[p], pb + static_cast<std::size_t>(p) * n, crow, n);
        }
      },
      gemm_grain(m, n, k));
}

void gemm_small_nt(const float* pa, const float* pb, float* pc, Index m,
                   Index k, Index n) {
  parallel_for(
      static_cast<std::size_t>(m),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const float* arow = pa + i * static_cast<std::size_t>(k);
          float* crow = pc + i * static_cast<std::size_t>(n);
          for (Index j = 0; j < n; ++j)
            crow[j] = simd::dot(arow, pb + static_cast<std::size_t>(j) * k, k);
        }
      },
      gemm_grain(m, n, k));
}

/// The blocked path needs enough rows to amortize packing B (one sweep over
/// k*n) and enough columns for full vector panels.
bool use_blocked(Index m, Index n, Index k) {
  return m >= 2 * kMr && n >= kNr && k >= 8;
}

}  // namespace

std::size_t gemm_grain(Index m, Index n, Index k) {
  // Rows per parallel chunk. Two pressures: a chunk must carry enough
  // multiply-adds to pay for the pool handoff (floor), and the row range
  // should split into only a few chunks per worker so a 4096-row GEMM does
  // not fan out into hundreds of tiny tasks (ceiling). The old heuristic
  // (65536 / (n*k) + 1 rows) ignored the pool size entirely.
  constexpr double kMinMaddsPerChunk = 32768.0;
  const double per_row = static_cast<double>(n) * static_cast<double>(k);
  if (m <= 0 || per_row <= 0.0) return 1;
  const auto rows_for_floor = static_cast<std::size_t>(
      std::ceil(kMinMaddsPerChunk / per_row));
  const double workers =
      static_cast<double>(ThreadPool::global().parallelism());
  const auto rows_for_fanout = static_cast<std::size_t>(
      std::ceil(static_cast<double>(m) / (3.0 * workers)));
  return std::max<std::size_t>(1, std::max(rows_for_floor, rows_for_fanout));
}

void matmul(const Tensor& a, const Tensor& b, Tensor& c) {
  require(a.rank() == 2 && b.rank() == 2, "matmul: rank-2 operands required");
  const Index m = a.dim(0), k = a.dim(1), n = b.dim(1);
  require(b.dim(0) == k, "matmul: inner dimension mismatch");
  if (!(c.shape() == Shape{m, n})) c = Tensor(Shape{m, n});
  if (m == 0 || n == 0) return;
  if (k == 0) {
    c.fill(0.0f);
    return;
  }
  if (use_blocked(m, n, k))
    gemm_blocked(a.raw(), b.raw(), c.raw(), m, k, n, /*transposed_b=*/false);
  else
    gemm_small_nn(a.raw(), b.raw(), c.raw(), m, k, n);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor c;
  matmul(a, b, c);
  return c;
}

void matmul_nt(const Tensor& a, const Tensor& b, Tensor& c) {
  require(a.rank() == 2 && b.rank() == 2, "matmul_nt: rank-2 operands required");
  const Index m = a.dim(0), k = a.dim(1), n = b.dim(0);
  require(b.dim(1) == k, "matmul_nt: inner dimension mismatch");
  if (!(c.shape() == Shape{m, n})) c = Tensor(Shape{m, n});
  if (m == 0 || n == 0) return;
  if (k == 0) {
    c.fill(0.0f);
    return;
  }
  if (use_blocked(m, n, k))
    gemm_blocked(a.raw(), b.raw(), c.raw(), m, k, n, /*transposed_b=*/true);
  else
    gemm_small_nt(a.raw(), b.raw(), c.raw(), m, k, n);
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  Tensor c;
  matmul_nt(a, b, c);
  return c;
}

}  // namespace tcb
