// Binary tensor persistence: a checksummed little-endian container for one
// tensor or a named bundle. Used to export engine weights/activations for
// offline inspection and to round-trip test data.
//
// Bundle layout:
//   magic "TCBT" | u32 version | u32 entry count |
//   per entry: u32 name length | name bytes | u32 rank | i64 dims... |
//              f32 payload... | u64 FNV-1a checksum of the payload bytes
#pragma once

#include <map>
#include <string>

#include "tensor/tensor.hpp"

namespace tcb {

/// FNV-1a over arbitrary bytes; exposed for tests.
[[nodiscard]] std::uint64_t fnv1a(const void* data, std::size_t bytes) noexcept;

/// Saves one tensor (a bundle with a single unnamed entry).
void save_tensor(const std::string& path, const Tensor& tensor);

/// Loads a single-entry bundle. Throws std::runtime_error on malformed
/// files, version mismatch, or checksum failure.
[[nodiscard]] Tensor load_tensor(const std::string& path);

/// Saves a named bundle (entries in map order, so files are deterministic).
void save_tensor_bundle(const std::string& path,
                        const std::map<std::string, Tensor>& tensors);

[[nodiscard]] std::map<std::string, Tensor> load_tensor_bundle(
    const std::string& path);

}  // namespace tcb
