#include "tensor/tuning.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <vector>

#include "parallel/sync.hpp"
#include "util/check.hpp"

namespace tcb {
namespace {

// --- cache geometry --------------------------------------------------------

/// Parses a sysfs cache size string ("48K", "2048K", "1M", "36608K").
std::size_t parse_cache_size(const std::string& text) {
  if (text.empty()) return 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str()) return 0;
  std::size_t mult = 1;
  if (end && (*end == 'K' || *end == 'k')) mult = 1024;
  if (end && (*end == 'M' || *end == 'm')) mult = 1024 * 1024;
  return static_cast<std::size_t>(v) * mult;
}

std::string read_line(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (in) std::getline(in, line);
  return line;
}

CacheGeometry detect_geometry() {
  CacheGeometry g;
  // /sys/devices/system/cpu/cpu0/cache/indexN/{level,type,size}; index order
  // is not guaranteed to match level order, so scan and match.
  for (int idx = 0; idx < 8; ++idx) {
    const std::string base =
        "/sys/devices/system/cpu/cpu0/cache/index" + std::to_string(idx) + "/";
    const std::string level = read_line(base + "level");
    if (level.empty()) continue;
    const std::string type = read_line(base + "type");
    const std::size_t size = parse_cache_size(read_line(base + "size"));
    if (size == 0) continue;
    if (level == "1" && type == "Data") {
      g.l1d_bytes = size;
      g.detected = true;
    } else if (level == "2" && (type == "Unified" || type == "Data")) {
      g.l2_bytes = size;
      g.detected = true;
    }
  }
  return g;
}

// --- candidate generation --------------------------------------------------

/// kc floor preserving gemm.cpp's bitwise batching-invariance contract for
/// k <= 256 (see the numerical-contract comment there); candidates never go
/// below it.
constexpr Index kKcFloor = 256;
constexpr Index kKcCeil = 1024;

std::vector<Index> kc_candidates(const CacheGeometry& g, Index mr, Index nr) {
  std::set<Index> out = {kKcFloor, 512};
  // Depth at which the streaming A panel (mr rows) plus one B panel (nr
  // columns) still fit L1d — past that the microkernel's inner loop starts
  // missing on every B reload.
  const auto per_depth =
      static_cast<std::size_t>(mr + nr) * sizeof(float);
  Index kc_l1 = static_cast<Index>(g.l1d_bytes / per_depth);
  kc_l1 = std::clamp((kc_l1 / 64) * 64, kKcFloor, kKcCeil);
  out.insert(kc_l1);
  // Depth at which a quarter of L2 holds the whole packed B slab of a
  // 512-column product — deeper blocks evict the panels they just packed.
  const auto slab_cols = static_cast<std::size_t>(512) * sizeof(float);
  Index kc_l2 = static_cast<Index>((g.l2_bytes / 4) / slab_cols);
  kc_l2 = std::clamp((kc_l2 / 64) * 64, kKcFloor, kKcCeil);
  out.insert(kc_l2);
  return {out.begin(), out.end()};
}

std::vector<GemmBlocking> build_candidates() {
  const CacheGeometry& g = cache_geometry();
  std::vector<GemmBlocking> cands;
  for (std::size_t ki = 0; ki < gemm_kernel_count(); ++ki) {
    const GemmKernelInfo info = gemm_kernel_info(ki);
    for (const Index kc : kc_candidates(g, info.mr, info.nr)) {
      GemmBlocking b;
      b.kc = kc;
      b.mr = info.mr;
      b.nr = info.nr;
      b.kernel = static_cast<int>(ki);
      b.tag = std::string(info.tag) + "/kc" + std::to_string(kc);
      cands.push_back(std::move(b));
    }
  }
  return cands;
}

const std::vector<GemmBlocking>& candidates() {
  static const std::vector<GemmBlocking> table = build_candidates();
  return table;
}

int default_candidate_index() {
  const GemmBlocking def = gemm_default_blocking();
  const auto& cands = candidates();
  for (std::size_t i = 0; i < cands.size(); ++i)
    if (cands[i].kernel == def.kernel && cands[i].kc == def.kc)
      return static_cast<int>(i);
  return 0;
}

// --- selection state -------------------------------------------------------

/// Published per-class choice: index into candidates(), -1 = not selected
/// yet. Lock-free publish (first CAS wins) instead of a mutex so a slow
/// trial run never blocks a concurrent GEMM — it just tunes redundantly and
/// loses the race.
std::atomic<int> g_choice[kGemmShapeClassCount] TCB_LOCK_FREE = {
    std::atomic<int>(-1), std::atomic<int>(-1), std::atomic<int>(-1)};

bool autotune_enabled() {
  if (const char* e = std::getenv("TCB_GEMM_AUTOTUNE"))
    return e[0] != '0';
#ifdef NDEBUG
  return true;
#else
  // Debug/sanitizer builds: trial timings are meaningless and the extra
  // startup cost lands on every test binary — keep the deterministic
  // ISA-default blocking.
  return false;
#endif
}

// --- trial timing ----------------------------------------------------------

struct TrialShape {
  Index m, n, k;
};

TrialShape trial_shape(GemmShapeClass cls) {
  switch (cls) {
    case GemmShapeClass::kTall:
      return {1024, 128, 384};  // activations into a head-sized projection
    case GemmShapeClass::kWide:
      return {128, 1024, 384};  // short batch into a d_ff expansion
    case GemmShapeClass::kSquare:
    default:
      return {320, 320, 768};
  }
}

double time_candidate(const GemmBlocking& blk, const TrialShape& sh,
                      const std::vector<float>& a, const std::vector<float>& b,
                      std::vector<float>& c) {
  using clock = std::chrono::steady_clock;
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 2; ++rep) {
    const auto t0 = clock::now();
    gemm_blocked_with(a.data(), b.data(), c.data(), sh.m, sh.k, sh.n,
                      /*transposed_b=*/false, blk);
    const auto t1 = clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

int tune_class(GemmShapeClass cls) {
  const TrialShape sh = trial_shape(cls);
  const auto an = static_cast<std::size_t>(sh.m * sh.k);
  const auto bn = static_cast<std::size_t>(sh.k * sh.n);
  std::vector<float> a(an), b(bn);
  std::vector<float> c(static_cast<std::size_t>(sh.m * sh.n));
  // Deterministic non-trivial fill; values only need to keep the FPU out of
  // subnormal stalls.
  for (std::size_t i = 0; i < an; ++i)
    a[i] = 0.25f + 0.001f * static_cast<float>(i % 97);
  for (std::size_t i = 0; i < bn; ++i)
    b[i] = -0.5f + 0.002f * static_cast<float>(i % 89);

  const auto& cands = candidates();
  int best_idx = default_candidate_index();
  double best_time = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < cands.size(); ++i) {
    const double t = time_candidate(cands[i], sh, a, b, c);
    if (t < best_time) {
      best_time = t;
      best_idx = static_cast<int>(i);
    }
  }
  return best_idx;
}

// --- TCB_TUNE_CACHE persistence -------------------------------------------

/// Minimal key extraction from the flat JSON the cache file holds; returns
/// "" when the key is missing. Good enough for a file we also write.
std::string json_value(const std::string& doc, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  auto pos = doc.find(needle);
  if (pos == std::string::npos) return "";
  pos = doc.find(':', pos + needle.size());
  if (pos == std::string::npos) return "";
  ++pos;
  while (pos < doc.size() && (doc[pos] == ' ' || doc[pos] == '"')) ++pos;
  auto end = pos;
  while (end < doc.size() && doc[end] != ',' && doc[end] != '"' &&
         doc[end] != '}' && doc[end] != '\n')
    ++end;
  return doc.substr(pos, end - pos);
}

int candidate_index_by_tag(const std::string& tag) {
  const auto& cands = candidates();
  for (std::size_t i = 0; i < cands.size(); ++i)
    if (cands[i].tag == tag) return static_cast<int>(i);
  return -1;
}

/// Loads the per-class selection from TCB_TUNE_CACHE if the file exists and
/// was recorded on matching geometry/ISA. Returns -1 for classes it cannot
/// resolve.
int cached_choice(GemmShapeClass cls) {
  const char* path = std::getenv("TCB_TUNE_CACHE");
  if (!path || !*path) return -1;
  std::ifstream in(path);
  if (!in) return -1;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  const CacheGeometry& g = cache_geometry();
  if (json_value(doc, "l1d_bytes") != std::to_string(g.l1d_bytes) ||
      json_value(doc, "l2_bytes") != std::to_string(g.l2_bytes))
    return -1;
  return candidate_index_by_tag(
      json_value(doc, gemm_shape_class_name(cls)));
}

void write_cache_file() {
  const char* path = std::getenv("TCB_TUNE_CACHE");
  if (!path || !*path) return;
  const CacheGeometry& g = cache_geometry();
  std::ofstream out(path);
  if (!out) return;
  out << "{\n"
      << "  \"l1d_bytes\": " << g.l1d_bytes << ",\n"
      << "  \"l2_bytes\": " << g.l2_bytes << ",\n";
  for (int c = 0; c < kGemmShapeClassCount; ++c) {
    const auto cls = static_cast<GemmShapeClass>(c);
    out << "  \"" << gemm_shape_class_name(cls) << "\": \""
        << select_blocking(cls).tag << "\""
        << (c + 1 < kGemmShapeClassCount ? "," : "") << "\n";
  }
  out << "}\n";
}

}  // namespace

std::string CacheGeometry::to_string() const {
  std::ostringstream os;
  os << "l1d=" << l1d_bytes / 1024 << "KiB l2=" << l2_bytes / 1024 << "KiB"
     << (detected ? "" : " (fallback)");
  return os.str();
}

const CacheGeometry& cache_geometry() {
  static const CacheGeometry g = detect_geometry();
  return g;
}

const char* gemm_shape_class_name(GemmShapeClass cls) noexcept {
  switch (cls) {
    case GemmShapeClass::kTall:
      return "tall";
    case GemmShapeClass::kWide:
      return "wide";
    case GemmShapeClass::kSquare:
    default:
      return "square";
  }
}

GemmShapeClass classify_gemm(Index m, Index n) noexcept {
  if (m >= 4 * n) return GemmShapeClass::kTall;
  if (n >= 4 * m) return GemmShapeClass::kWide;
  return GemmShapeClass::kSquare;
}

const GemmBlocking& select_blocking(GemmShapeClass cls) {
  std::atomic<int>& slot = g_choice[static_cast<int>(cls)];
  // The returned reference borrows from this process-lifetime table, never
  // from a temporary — callers may hold it indefinitely.
  static const std::vector<GemmBlocking>& cands = candidates();
  int idx = slot.load(std::memory_order_acquire);
  if (idx < 0) {
    idx = cached_choice(cls);
    if (idx < 0)
      idx = autotune_enabled() ? tune_class(cls) : default_candidate_index();
    int expected = -1;
    slot.compare_exchange_strong(expected, idx, std::memory_order_acq_rel);
    // Racing tuners publish once; everyone proceeds with the winner so the
    // whole process agrees on one blocking per class.
    idx = slot.load(std::memory_order_acquire);
  }
  TCB_DCHECK(idx >= 0 && static_cast<std::size_t>(idx) < cands.size(),
             "gemm blocking selection out of range");
  return cands[static_cast<std::size_t>(idx)];
}

void gemm_autotune_all() {
  for (int c = 0; c < kGemmShapeClassCount; ++c)
    (void)select_blocking(static_cast<GemmShapeClass>(c));
  write_cache_file();
}

void gemm_tuning_reset_for_test() {
  for (auto& slot : g_choice) slot.store(-1, std::memory_order_release);
}

std::string gemm_tuning_summary() {
  std::ostringstream os;
  os << cache_geometry().to_string();
  for (int c = 0; c < kGemmShapeClassCount; ++c) {
    const auto cls = static_cast<GemmShapeClass>(c);
    os << " " << gemm_shape_class_name(cls) << "="
       << select_blocking(cls).tag;
  }
  os << (autotune_enabled() ? " (autotuned)" : " (default)");
  return os.str();
}

}  // namespace tcb
