"""Checked-in findings baseline (the ratchet).

The baseline file records known findings so a new rule can land with the
tree's existing debt suppressed while any *new* finding still fails CI.
The contract:

  - a finding whose (rule, path, message) key appears in the baseline is
    suppressed (line numbers deliberately excluded: code above a legacy
    finding moving it down must not un-suppress it);
  - findings not in the baseline fail as usual;
  - `--update-baseline` regenerates the file deterministically: stable
    sort, repo-relative paths, trailing newline — so regeneration is
    byte-identical for identical findings and diffs stay reviewable.

Shrinking the baseline is always allowed (stale entries are reported so
they can be pruned); growing it is a reviewed decision, not an automatic
escape hatch.
"""

from __future__ import annotations

import json
import os

from tcb_lint.source import Finding

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "baseline.json")

_VERSION = 1


def load(path: str) -> set[tuple[str, str, str]]:
    """Keys of baselined findings; empty set when the file is absent."""
    if not os.path.isfile(path):
        return set()
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    if data.get("version") != _VERSION:
        raise ValueError(f"unsupported baseline version in {path}: "
                         f"{data.get('version')!r}")
    return {(e["rule"], e["path"], e["message"])
            for e in data.get("findings", [])}


def apply(findings: list[Finding], baseline: set[tuple[str, str, str]]
          ) -> tuple[list[Finding], list[Finding], list[tuple[str, str, str]]]:
    """(new findings, suppressed findings, stale baseline entries).

    Suppressed findings are returned whole, not counted: SARIF output keeps
    them as results carrying a `suppressions` entry so code-scanning UIs
    show the ratcheted debt instead of silently dropping it.
    """
    new = [f for f in findings if f.key() not in baseline]
    suppressed = [f for f in findings if f.key() in baseline]
    present = {f.key() for f in findings}
    stale = sorted(k for k in baseline if k not in present)
    return new, suppressed, stale


def update(findings: list[Finding], path: str) -> None:
    """Write the baseline for the current findings, deterministically."""
    entries = sorted(
        {(f.rule, f.path, f.line, f.message) for f in findings})
    data = {
        "version": _VERSION,
        "comment": "tcb-lint findings baseline: entries here are legacy "
                   "findings ratcheted out of CI failure. Regenerate with "
                   "--update-baseline; shrink freely, grow only with review.",
        "findings": [
            {"rule": r, "path": p, "line": ln, "message": m}
            for r, p, ln, m in entries
        ],
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(data, f, indent=2, sort_keys=True)
        f.write("\n")
