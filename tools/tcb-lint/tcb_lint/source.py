"""Lexed source model shared by every backend and rule.

`SourceFile.lines` hold the code with comments and string/char literals
blanked (newlines preserved, so indices stay 1:1 with the file on disk);
`raw_lines` keep the original text for suppression and include-path reads.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))))
FIXTURE_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "fixtures")

SUPPRESS_RE = re.compile(r"//\s*tcb-lint:\s*allow\(([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\)")
FIXTURE_PATH_RE = re.compile(r"//\s*tcb-lint-fixture-path:\s*(\S+)")
EXPECT_RE = re.compile(r"//\s*expect:\s*([a-z0-9-]+)")


@dataclass
class SourceFile:
    """A lexed view of one translation unit member.

    `lines` hold the code with comments and string/char literals blanked
    (newlines preserved, so indices are 1:1 with the original file).
    `suppressions` maps line number -> set of rule names allowed there.
    """

    path: str                 # repo-relative path of the real file on disk
    effective_path: str       # path the rules see (fixtures override this)
    raw_lines: list[str] = field(default_factory=list)
    lines: list[str] = field(default_factory=list)
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    def code(self) -> str:
        return "\n".join(self.lines)

    def suppressed(self, rule: str, line_no: int) -> bool:
        return rule in self.suppressions.get(line_no, set())


@dataclass(frozen=True)
class Finding:
    rule: str
    path: str
    line: int
    message: str
    severity: str = "error"   # "error" | "warning" (see cli --fail-on)

    def render(self) -> str:
        tag = "" if self.severity == "error" else f" {self.severity}:"
        return f"{self.path}:{self.line}:{tag} [{self.rule}] {self.message}"

    def key(self) -> tuple[str, str, str]:
        """Baseline identity: stable across line-number drift."""
        return (self.rule, self.path, self.message)


def _collect_suppressions(raw_lines: list[str]) -> dict[int, set[str]]:
    """Map line numbers to the rules allowed on them.

    `// tcb-lint: allow(rule)` covers its own line; when the comment is the
    whole line it also covers the next line (the NOLINTNEXTLINE idiom).
    """
    out: dict[int, set[str]] = {}
    for idx, line in enumerate(raw_lines, start=1):
        m = SUPPRESS_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",")}
        out.setdefault(idx, set()).update(rules)
        if line.strip().startswith("//"):
            out.setdefault(idx + 1, set()).update(rules)
    return out


def _strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving newlines.

    A hand-rolled scanner rather than regex so `//` inside strings and `*/`
    inside line comments behave correctly.  Raw strings are handled enough
    for this codebase (which does not use them).
    """
    out: list[str] = []
    i, n = 0, len(text)
    NORMAL, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR = range(5)
    state = NORMAL
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = STRING
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = CHAR
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == LINE_COMMENT:
            if c == "\n":
                state = NORMAL
                out.append(c)
            else:
                out.append(" ")
        elif state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                state = NORMAL
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state == STRING:
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = NORMAL
                out.append('"')
            elif c == "\n":  # unterminated; recover
                state = NORMAL
                out.append(c)
            else:
                out.append(" ")
        elif state == CHAR:
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = NORMAL
                out.append("'")
            elif c == "\n":
                state = NORMAL
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def rel(path: str) -> str:
    return os.path.relpath(os.path.abspath(path), REPO_ROOT).replace(os.sep, "/")


def apply_fixture_path(sf: SourceFile) -> None:
    for line in sf.raw_lines[:10]:
        m = FIXTURE_PATH_RE.search(line)
        if m:
            sf.effective_path = m.group(1)
            return
