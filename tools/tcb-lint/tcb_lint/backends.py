"""Lexing backends.

Two backends produce the comment/string-blanked view the rules run on:

  libclang  accurate lexing through clang.cindex when the Python bindings
            and a loadable libclang are present.
  text      a dependency-free fallback that strips comments and string
            literals itself.  Always available; this is what minimal
            containers and the repo's own ctest entries use.

`--backend auto` picks libclang when importable and falls back to text with
a single notice.  The availability probe is cached process-wide: the old
script re-raised (and re-printed the fallback warning) every time a backend
was constructed, which flooded CI logs on machines without libclang.
"""

from __future__ import annotations

import os
import sys

from tcb_lint.source import (REPO_ROOT, SourceFile, _collect_suppressions,
                             _strip_comments_and_strings, apply_fixture_path,
                             rel)


class TextBackend:
    """Dependency-free lexer: strips comments/strings itself."""

    name = "text"

    def lex(self, path: str) -> SourceFile:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        raw_lines = text.splitlines()
        stripped = _strip_comments_and_strings(text).splitlines()
        # splitlines() drops a trailing empty segment symmetrically for both.
        sf = SourceFile(path=rel(path), effective_path=rel(path),
                        raw_lines=raw_lines, lines=stripped,
                        suppressions=_collect_suppressions(raw_lines))
        apply_fixture_path(sf)
        return sf


class LibclangBackend:
    """Lexes through clang.cindex for exact tokenization.

    Only the token stream is used (the rules are lexical and
    path-structural), so a TU that fails to fully parse still lints.
    """

    name = "libclang"

    def __init__(self, compile_db_dir: str | None):
        import clang.cindex as cindex  # noqa: F401  (import errors gate the backend)

        self._cindex = cindex
        self._index = cindex.Index.create()  # raises if libclang cannot load
        self._db = None
        if compile_db_dir:
            try:
                self._db = cindex.CompilationDatabase.fromDirectory(compile_db_dir)
            except cindex.CompilationDatabaseError:
                self._db = None

    def _args_for(self, path: str) -> list[str]:
        if self._db is None:
            return ["-std=c++20", f"-I{os.path.join(REPO_ROOT, 'src')}"]
        cmds = self._db.getCompileCommands(path)
        if not cmds:
            return ["-std=c++20", f"-I{os.path.join(REPO_ROOT, 'src')}"]
        args = list(cmds[0].arguments)[1:]  # drop the compiler itself
        # Drop the output/input file arguments; keep -I/-D/-std et al.
        cleaned, skip = [], False
        for a in args:
            if skip:
                skip = False
                continue
            if a in ("-o", "-c"):
                skip = a == "-o"
                continue
            if a == path or a.endswith(os.path.basename(path)):
                continue
            cleaned.append(a)
        return cleaned

    def lex(self, path: str) -> SourceFile:
        cindex = self._cindex
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        raw_lines = text.splitlines()
        tu = self._index.parse(
            path, args=self._args_for(path),
            options=cindex.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
        # Rebuild a comment/string-blanked view from the token stream so the
        # shared rule logic sees identical structure from both backends.
        blank = [" " * len(l) for l in raw_lines]
        for tok in tu.get_tokens(extent=tu.cursor.extent):
            if tok.kind in (cindex.TokenKind.COMMENT,):
                continue
            spelled = tok.spelling
            if tok.kind == cindex.TokenKind.LITERAL and spelled.startswith(('"', "'")):
                spelled = spelled[0] + " " * max(0, len(spelled) - 2) + spelled[0]
            loc = tok.location
            ln, col = loc.line - 1, loc.column - 1
            for part_no, part in enumerate(spelled.splitlines() or [""]):
                row = ln + part_no
                if row >= len(blank):
                    break
                start = col if part_no == 0 else 0
                line = blank[row]
                blank[row] = line[:start] + part + line[start + len(part):]
        sf = SourceFile(path=rel(path), effective_path=rel(path),
                        raw_lines=raw_lines, lines=blank,
                        suppressions=_collect_suppressions(raw_lines))
        apply_fixture_path(sf)
        return sf


# Result of the one-time libclang availability probe: None = not yet probed,
# (True, None) = usable, (False, "<reason>") = unavailable.  Keeping the
# verdict (not a backend instance) cached means different compile-db
# directories still get their own CompilationDatabase.
_LIBCLANG_PROBE: tuple[bool, str | None] | None = None


def _probe_libclang() -> tuple[bool, str | None]:
    global _LIBCLANG_PROBE
    if _LIBCLANG_PROBE is None:
        try:
            import clang.cindex as cindex

            cindex.Index.create()
            _LIBCLANG_PROBE = (True, None)
        except Exception as e:  # ImportError or libclang load failure
            _LIBCLANG_PROBE = (False, e.__class__.__name__)
    return _LIBCLANG_PROBE


def reset_probe_cache() -> None:
    """Test hook: forget the cached libclang verdict."""
    global _LIBCLANG_PROBE
    _LIBCLANG_PROBE = None


def make_backend(kind: str, compile_db_dir: str | None, *, quiet: bool = False):
    if kind == "text":
        return TextBackend()
    if kind == "libclang":
        return LibclangBackend(compile_db_dir)
    # auto: probe once per process, warn once per process.
    ok, reason = _probe_libclang()
    if ok:
        try:
            return LibclangBackend(compile_db_dir)
        except Exception as e:  # pragma: no cover - probe said yes, ctor said no
            reason = e.__class__.__name__
    if not quiet and not getattr(make_backend, "_warned", False):
        make_backend._warned = True
        print(f"tcb-lint: libclang backend unavailable ({reason}); "
              "using the textual backend.", file=sys.stderr)
    return TextBackend()
