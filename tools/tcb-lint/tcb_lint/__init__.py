"""tcb_lint — the TCB project's static-analysis framework.

What started as one script of per-file syntactic rules is now a small
analysis framework (DESIGN.md §11):

  source.py     lexed source model (comment/string-blanked view, findings,
                suppressions) shared by every backend and rule
  backends.py   the two lexing backends (libclang when importable, a
                dependency-free textual fallback) behind one cached probe
  program.py    the whole-program index: classes, mutex members, function
                definitions, lock-scope tracking, a name-resolved call
                graph — the substrate the cross-TU rules run on
  rules/        the rule registry; style.py holds the per-file rules,
                concurrency.py the cross-TU lock-order and
                blocking-under-lock analyses, taint.py the admission
                taint pass
  baseline.py   the checked-in findings baseline (ratchet: legacy findings
                are suppressed, new ones fail, --update-baseline
                regenerates deterministically)
  sarif.py      SARIF 2.1.0 output for CI artifact upload
  cli.py        the driver: file discovery via compile_commands.json,
                self-test over fixtures/, flag handling

The public entry point is tools/tcb-lint/tcb_lint.py, kept as a thin shim
so ctest entries and CI invocations predating the package keep working.
"""

from tcb_lint.source import Finding, SourceFile  # noqa: F401

__version__ = "2.0"
