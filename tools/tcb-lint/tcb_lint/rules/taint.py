"""tainted-admission: field-level taint tracking for Request geometry.

Externally-sourced `Request` fields (length, deadline, arrival) enter the
system through the serving/core admission surface.  Batch-geometry
arithmetic in src/batching/ and slot math in src/sched/ trusts those fields
(`used[r] += req.length` indexes token storage), so every admission path
must route them through a TCB_CHECK/TCB_DCHECK validation — in this tree,
`evict_unschedulable`'s post-conditions — before they reach a sink.

The walk is a line-ordered DFS from every entry (serving/core function
with a Request-typed parameter) through the resolved call graph, carrying
the set of already-validated fields:

  source     entry parameters taint {length, deadline, arrival}
  sanitizer  a TCB_CHECK/TCB_DCHECK whose arguments mention a
             Request-resolved field validates that field from there on;
             a call's validations (transitive) persist in the caller
  sink       a Request-resolved field used in arithmetic (+ - * / % and
             compound assignments, or as an index) inside src/batching/
             or src/sched/

Precision policy as everywhere in the program rules: a field access only
counts (as sanitizer or sink) when its receiver resolves to Request —
`seg.length` on a Segment is not admission data.  Comparisons and
assignments *into* a field are not sinks: the eviction filter itself
compares `deadline < now` before validating, and must stay clean.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from tcb_lint.program import FunctionInfo, ProgramIndex, _match_brace
from tcb_lint.rules import ProgramRule, register
from tcb_lint.source import Finding

TAINTED_FIELDS = ("length", "deadline", "arrival")
ENTRY_DIRS = ("src/serving/", "src/core/")
SINK_DIRS = ("src/batching/", "src/sched/")

FIELD_RE = re.compile(
    r"\b([A-Za-z_]\w*)(\s*\[[^\[\]]*\])?\s*(?:\.|->)\s*"
    r"(length|deadline|arrival)\b")
CHECK_RE = re.compile(r"\bTCB_D?CHECK\s*\(")

ARITH_BEFORE = ("+", "-", "*", "/", "%", "+=", "-=", "*=", "/=", "%=", "[")
ARITH_AFTER = ("+", "*", "/", "%")  # bare '-' after would also match '->'

MAX_DEPTH = 12


@dataclass(frozen=True)
class _Event:
    pos: int
    kind: str          # "check" | "sink" | "call"
    payload: object


def _check_extents(body: str) -> list[tuple[int, int]]:
    return [(m.start(), _match_brace_paren(body, m.end() - 1))
            for m in CHECK_RE.finditer(body)]


def _match_brace_paren(code: str, open_paren: int) -> int:
    depth = 0
    for i in range(open_paren, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


def _resolves_to_request(index: ProgramIndex, fn: FunctionInfo,
                         var: str, indexed: bool) -> bool:
    t = index._expr_type(var, fn)
    if t is None:
        return False
    if indexed or t.startswith("std::"):
        from tcb_lint.program import element_type
        return element_type(t) == "Request"
    return t == "Request"


class _FileEvents:
    """Per-function taint events, in body position order."""

    def __init__(self, index: ProgramIndex, fn: FunctionInfo):
        self.events: list[_Event] = []
        self.direct_validates: frozenset[str] = frozenset()
        body = fn.body
        checks = _check_extents(body)

        def in_check(pos: int) -> tuple[int, int] | None:
            for s, e in checks:
                if s <= pos < e:
                    return (s, e)
            return None

        validated_here: set[str] = set()
        for s, e in checks:
            fields = set()
            for m in FIELD_RE.finditer(body, s, e):
                if _resolves_to_request(index, fn, m.group(1),
                                        m.group(2) is not None):
                    fields.add(m.group(3))
            if fields:
                self.events.append(_Event(s, "check", frozenset(fields)))
                validated_here |= fields
        self.direct_validates = frozenset(validated_here)

        in_sink_file = index.effective_path(fn.path).startswith(SINK_DIRS)
        if in_sink_file:
            for m in FIELD_RE.finditer(body):
                if in_check(m.start()):
                    continue
                if not _resolves_to_request(index, fn, m.group(1),
                                            m.group(2) is not None):
                    continue
                before = body[:m.start()].rstrip()
                after = body[m.end():].lstrip()
                arith = (before.endswith(ARITH_BEFORE)
                         and not before.endswith(("->", "<", ">", "<=", ">=",
                                                  "==", "!=", "&&", "||"))) \
                    or after.startswith(ARITH_AFTER)
                # `x = req.length` copies rather than computes; `req.length =`
                # writes into the field. Neither is a geometry sink.
                if not arith:
                    continue
                self.events.append(_Event(
                    m.start(), "sink",
                    (m.group(3), index.line_of(fn, m.start()))))

        for call in fn.calls:
            callees = index.resolve_call(fn, call)
            if callees:
                self.events.append(_Event(call.pos, "call",
                                          (call, tuple(callees))))
        self.events.sort(key=lambda ev: ev.pos)


@register
class TaintedAdmission(ProgramRule):
    """External request fields must be validated before geometry math.

    Request length/deadline/arrival come from clients; using them in
    batch-geometry arithmetic (row sizing, slot fitting) before a
    TCB_CHECK admission gate lets one malformed request corrupt a whole
    batch's layout. Validation clears the taint; so does an admission
    helper that provably checks (the sink fixpoint follows calls).

    Violation:
        rows_needed += req.length;             // unvalidated
    Clean:
        TCB_CHECK(req.length > 0 && req.length <= cap, "bad request");
        rows_needed += req.length;
    """

    name = "tainted-admission"
    description = ("externally-sourced Request fields (length, deadline, "
                   "arrival) must flow through a TCB_CHECK/TCB_DCHECK "
                   "validation (e.g. evict_unschedulable's post-conditions) "
                   "before reaching batch-geometry arithmetic in "
                   "src/batching/ or slot math in src/sched/")

    def check_program(self, index: ProgramIndex) -> list[Finding]:
        events_cache: dict[int, _FileEvents] = {}
        validates_cache: dict[int, frozenset[str]] = {}
        findings: dict[tuple[str, int, str], Finding] = {}
        visited: set[tuple[int, frozenset[str]]] = set()

        def events_of(fn: FunctionInfo) -> _FileEvents:
            key = id(fn)
            if key not in events_cache:
                events_cache[key] = _FileEvents(index, fn)
            return events_cache[key]

        def validates_closure(fn: FunctionInfo,
                              stack: frozenset = frozenset()) -> frozenset[str]:
            key = id(fn)
            if key in validates_cache:
                return validates_cache[key]
            if key in stack:
                return frozenset()
            out = set(events_of(fn).direct_validates)
            sub_stack = stack | {key}
            for ev in events_of(fn).events:
                if ev.kind == "call":
                    _call, callees = ev.payload
                    for callee in callees:
                        out |= validates_closure(callee, sub_stack)
            result = frozenset(out)
            if not stack:
                validates_cache[key] = result
            return result

        def walk(fn: FunctionInfo, validated: frozenset[str],
                 chain: tuple[str, ...], depth: int) -> None:
            key = (id(fn), validated)
            if key in visited or depth > MAX_DEPTH:
                return
            visited.add(key)
            cur = set(validated)
            for ev in events_of(fn).events:
                if ev.kind == "check":
                    cur |= ev.payload
                elif ev.kind == "sink":
                    field, line = ev.payload
                    if field in cur:
                        continue
                    fkey = (fn.path, line, field)
                    if fkey in findings \
                            or index.suppressed(self.name, fn.path, line):
                        continue
                    findings[fkey] = Finding(
                        self.name, fn.path, line,
                        f"Request.{field} reaches batch-geometry arithmetic "
                        f"without TCB_CHECK validation (flow: "
                        f"{' -> '.join(chain + (fn.qualname,))}); validate "
                        f"the field on the admission path first")
                else:
                    _call, callees = ev.payload
                    for callee in callees:
                        walk(callee, frozenset(cur),
                             chain + (fn.qualname,), depth + 1)
                        cur |= validates_closure(callee)

        for fn in index.functions:
            eff = index.effective_path(fn.path)
            if not eff.startswith(ENTRY_DIRS):
                continue
            if not re.search(r"\bRequest\b", fn.params):
                continue
            walk(fn, frozenset(), (), 0)

        out = sorted(findings.values(),
                     key=lambda f: (f.path, f.line, f.message))
        return out
