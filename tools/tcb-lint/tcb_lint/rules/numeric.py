"""Numeric-contract rules: statically enforce bitwise concat-equivalence.

TCB's value proposition rests on one invariant (PAPER.md §3): a request
executed inside a concatenated row produces *bitwise-identical* output to
the same request executed alone.  `kernel_equivalence_test` pins that at
runtime; these three whole-program rules pin it at lint time, keyed on the
annotations in src/util/numeric.hpp:

  batch-geometry-taint   values derived from TCB_BATCH_GEOMETRY accessors
                         (materialized widths, row counts, padded totals)
                         must not become loop bounds or float-cast operands
                         inside TCB_BITWISE functions.  Sources propagate
                         cross-TU: a helper that returns a value derived
                         from a source is itself a source, fixpoint-style
                         like lifetime.py's escape analysis.
  bitwise-closure        a TCB_BITWISE function may only call other
                         TCB_BITWISE code (which includes the blessed
                         simd:: primitives) — never, directly or through
                         any chain of unannotated helpers, a TCB_REASSOC
                         function.  Cross-TU call-graph DFS with annotated
                         callees as trusted boundaries.
  raw-fp-accumulation    hand-rolled scalar float reductions in src/nn
                         (`float s = 0; for (...) s += ...`) must go
                         through simd::/tcb::ref primitives so the
                         ascending-k FMA chain order stays centralized.

Precision policy, as everywhere in the program rules: unresolved calls are
never flagged; TCB_CHECK/TCB_DCHECK argument text is exempt (asserting
`sc.width() == x.rows()` is how kernels *validate* geometry); geometry
accessors returning pointers/references (the per-position span tables) do
not seed taint — their content is consumed span-relatively and judging
that needs value-level analysis, not lexical flow.  Unlike the concurrency
rules these scan the *raw* (lambda-unblanked) bodies: work dispatched via
parallel_for still computes the annotated function's output, so its loops
and calls are part of the contract.
"""

from __future__ import annotations

import re

from tcb_lint.program import (CALL_RE, KEYWORDS, CallSite, FunctionInfo,
                              ProgramIndex, _match_brace, _match_paren)
from tcb_lint.rules import ProgramRule, register
from tcb_lint.source import Finding

MAX_DEPTH = 12

CHECK_RE = re.compile(r"\bTCB_D?CHECK\s*\(")
LOOP_RE = re.compile(r"\b(?:for|while)\s*\(")
ASSIGN_RE = re.compile(r"\b([A-Za-z_]\w*)\s*=(?![=>])\s*([^;]*);")
FLOAT_DECL_RE = re.compile(r"\bfloat\s+([A-Za-z_]\w*)\s*[=;{]")
FLOAT_CAST_RE = re.compile(r"static_cast\s*<\s*(?:float|double)\s*>\s*\(")
# A loop body doing FP work: a compound accumulation or a SIMD reduction.
FP_BODY_RE = re.compile(r"\+=|-=|\*=|/=|\bsimd\s*::")

ACCUM_SINK = "loop bound"
CAST_SINK = "float conversion"


def _annots(fn: FunctionInfo) -> str:
    return fn.annots or ""


def _raw_calls(index: ProgramIndex, fn: FunctionInfo) -> list[CallSite]:
    """Call sites over the *raw* body (lambda interiors included).

    fn.calls comes from the lambda-blanked body because deferred work does
    not run under the caller's locks; numeric contracts have no such
    exemption — a parallel_for chunk body still computes the annotated
    function's output.  Blanking is length-preserving, so positions and
    line numbers stay valid.
    """
    out: list[CallSite] = []
    for m in CALL_RE.finditer(fn.raw_body):
        name = m.group("name")
        if name in KEYWORDS or name == "MutexLock":
            continue
        out.append(CallSite(
            name=name, recv=m.group("recv"),
            recv_class=index._resolve_receiver(m.group("recv"), fn),
            quals=re.sub(r"\s+", "", m.group("quals") or ""),
            line=index.line_of(fn, m.start()), pos=m.start(),
            open_paren=m.end() - 1))
    return out


def _resolve(index: ProgramIndex, fn: FunctionInfo,
             call: CallSite) -> list[FunctionInfo]:
    """resolve_call plus namespace-aware free-function resolution.

    The core resolver treats a qualified prefix as a class name, so
    `ref::matmul(...)` and `simd::dot(...)` come back unresolved; resolve
    them here against functions indexed under that innermost namespace.
    Unqualified free calls are narrowed to the caller's own namespace when
    candidates exist there (C++ lookup finds tcb::matmul from inside tcb,
    not tcb::ref::matmul).
    """
    hits = index.resolve_call(fn, call)
    if hits:
        if call.recv is None and not call.quals:
            same_ns = [c for c in hits if c.ns == fn.ns]
            return same_ns or hits
        return hits
    if call.recv is None and call.quals:
        parts = [q for q in call.quals.split("::") if q]
        ns = parts[-1]
        if ns == "std":
            return []
        return [c for c in index.by_name.get(call.name, [])
                if c.cls is None and c.ns == ns]
    return []


def _check_extents(body: str) -> list[tuple[int, int]]:
    return [(m.start(), _match_paren(body, m.end() - 1))
            for m in CHECK_RE.finditer(body)]


def _in_extents(extents: list[tuple[int, int]], pos: int) -> bool:
    return any(s <= pos < e for s, e in extents)


def _loop_extents(body: str) -> list[tuple[int, int, int, int]]:
    """(header_start, header_end, body_start, body_end) per for/while."""
    out = []
    for m in LOOP_RE.finditer(body):
        open_paren = body.find("(", m.start())
        hdr_end = _match_paren(body, open_paren)
        i = hdr_end
        while i < len(body) and body[i] in " \t\n":
            i += 1
        if i < len(body) and body[i] == "{":
            out.append((open_paren + 1, hdr_end - 1, i + 1,
                        _match_brace(body, i) - 1))
        else:
            semi = body.find(";", i)
            out.append((open_paren + 1, hdr_end - 1, i,
                        semi if semi >= 0 else len(body)))
    return out


def _scalar_geometry_sources(index: ProgramIndex) -> dict[int, str]:
    """id(fn) -> originating accessor, for every function whose return
    value carries batch-global shape.

    Seeded by scalar-returning TCB_BATCH_GEOMETRY annotations, then closed
    over the call graph: a function that returns a source call's value
    (directly, or via a local assigned from one) is itself a source.
    Pointer/reference-returning accessors (the span tables) are excluded —
    see the module docstring.
    """
    sources: dict[int, str] = {}
    for fn in index.functions:
        if "TCB_BATCH_GEOMETRY" in _annots(fn) \
                and not fn.ret_type.rstrip().endswith(("*", "&")):
            sources[id(fn)] = fn.qualname
    changed = True
    while changed:
        changed = False
        for fn in index.functions:
            if id(fn) in sources:
                continue
            checks = _check_extents(fn.raw_body)
            src_pos = _source_positions(index, fn, sources, checks)
            if not src_pos:
                continue
            origin = _derives_return(fn, src_pos, _tainted_locals(fn, src_pos))
            if origin:
                sources[id(fn)] = origin
                changed = True
    return sources


def _source_positions(index: ProgramIndex, fn: FunctionInfo,
                      sources: dict[int, str],
                      checks: list[tuple[int, int]]) -> list[tuple[int, str]]:
    """(position, originating accessor) of every geometry-source call in
    fn's raw body, excluding TCB_CHECK argument text."""
    out = []
    for call in _raw_calls(index, fn):
        if _in_extents(checks, call.pos):
            continue
        for callee in _resolve(index, fn, call):
            if id(callee) in sources:
                out.append((call.pos, sources[id(callee)]))
                break
    return out


def _tainted_locals(fn: FunctionInfo,
                    src_pos: list[tuple[int, str]]) -> dict[str, str]:
    """var name -> originating accessor, closed over local assignments."""
    taint: dict[str, str] = {}
    changed = True
    while changed:
        changed = False
        for m in ASSIGN_RE.finditer(fn.raw_body):
            var = m.group(1)
            if var in taint or var in KEYWORDS:
                continue
            lo, hi = m.start(2), m.end(2)
            origin = next((o for p, o in src_pos if lo <= p < hi), None)
            if origin is None:
                rhs = m.group(2)
                origin = next(
                    (o for tv, o in taint.items()
                     if re.search(rf"\b{re.escape(tv)}\b", rhs)), None)
            if origin:
                taint[var] = origin
                changed = True
    return taint


def _derives_return(fn: FunctionInfo, src_pos: list[tuple[int, str]],
                    taint: dict[str, str]) -> str | None:
    body = fn.raw_body
    for m in re.finditer(r"\breturn\b", body):
        semi = body.find(";", m.end())
        if semi < 0:
            semi = len(body)
        origin = next((o for p, o in src_pos if m.end() <= p < semi), None)
        if origin:
            return origin
        expr = body[m.end():semi]
        origin = next((o for tv, o in taint.items()
                       if re.search(rf"\b{re.escape(tv)}\b", expr)), None)
        if origin:
            return origin
    return None


@register
class BatchGeometryTaint(ProgramRule):
    """Batch-global shape must not steer per-request arithmetic.

    A TCB_BITWISE kernel whose loop bound or float operand derives from a
    TCB_BATCH_GEOMETRY accessor produces output that varies with whatever
    else happens to be co-batched — exactly the bug class that forced
    span-relative kTile tiling in the flash attention kernel.  A reduction
    over [0, width) re-associates differently at width 192 than at
    width 128 even though the extra columns are masked to zero.

    Violation:
        float row_sum(const BatchPlan& plan, const float* x) TCB_BITWISE {
          const Index w = plan.max_width();     // batch-global
          float acc = 0.0f;
          for (Index j = 0; j < w; ++j) acc += x[j];   // bound = batch shape
          return acc;
        }
    Clean:
        float seg_sum(const Segment& seg, const float* x) TCB_BITWISE {
          float acc = 0.0f;
          for (Col c = seg.begin_col(); c < seg.end_col(); ++c)
            acc += x[c.value()];                // bound = own segment span
          return acc;
        }
        // Validating geometry is fine: TCB_CHECK(sc.width() == x.cols());
    """

    name = "batch-geometry-taint"
    description = ("values derived from TCB_BATCH_GEOMETRY accessors must "
                   "not flow into loop bounds or float conversions inside "
                   "TCB_BITWISE functions; per-request output must not "
                   "depend on batch-global shape (DESIGN.md §14)")

    def check_program(self, index: ProgramIndex) -> list[Finding]:
        sources = _scalar_geometry_sources(index)
        findings: dict[tuple[str, int, str], Finding] = {}
        for fn in index.functions:
            if "TCB_BITWISE" not in _annots(fn):
                continue
            body = fn.raw_body
            checks = _check_extents(body)
            src_pos = _source_positions(index, fn, sources, checks)
            taint = _tainted_locals(fn, src_pos)
            if not src_pos and not taint:
                continue

            def tainted_in(lo: int, hi: int) -> str | None:
                origin = next((o for p, o in src_pos if lo <= p < hi), None)
                if origin:
                    return origin
                seg = body[lo:hi]
                return next((o for tv, o in taint.items()
                             if re.search(rf"\b{re.escape(tv)}\b", seg)),
                            None)

            for hdr_lo, hdr_hi, body_lo, body_hi in _loop_extents(body):
                # Judge the condition/increment region: the bound, not the
                # induction variable's init.
                semi = body.find(";", hdr_lo, hdr_hi)
                region_lo = semi + 1 if semi >= 0 else hdr_lo
                origin = tainted_in(region_lo, hdr_hi)
                if origin is None or _in_extents(checks, hdr_lo):
                    continue
                if not FP_BODY_RE.search(body[body_lo:body_hi]):
                    continue
                self._report(findings, index, fn, hdr_lo, origin, ACCUM_SINK)
            for m in FLOAT_CAST_RE.finditer(body):
                if _in_extents(checks, m.start()):
                    continue
                cast_end = _match_paren(body, m.end() - 1)
                origin = tainted_in(m.end(), cast_end)
                if origin is None:
                    continue
                self._report(findings, index, fn, m.start(), origin,
                             CAST_SINK)
        return sorted(findings.values(),
                      key=lambda f: (f.path, f.line, f.message))

    def _report(self, findings, index: ProgramIndex, fn: FunctionInfo,
                pos: int, origin: str, sink: str) -> None:
        line = index.line_of(fn, pos)
        key = (fn.path, line, origin)
        if key in findings or index.suppressed(self.name, fn.path, line):
            return
        findings[key] = Finding(
            self.name, fn.path, line,
            f"batch-global geometry from {origin}() reaches a {sink} in "
            f"TCB_BITWISE {fn.qualname}; concat-equivalence requires "
            f"per-request arithmetic to depend only on the request's own "
            f"segment span, never on materialized batch shape")


@register
class BitwiseClosure(ProgramRule):
    """TCB_BITWISE code must stay inside the bitwise call closure.

    A concat-invariant kernel that calls tolerance-governed code — even
    through a chain of unannotated helpers in other TUs — inherits its
    reassociation freedom and silently loses bitwise reproducibility.
    Annotated callees are trusted boundaries (they are checked at their own
    definition); everything unannotated is traversed, so extracting a
    helper cannot launder a forbidden call.

    Violation:
        float fast_norm(const float* x, Index n) TCB_REASSOC;
        float kernel(const float* x, Index n) TCB_BITWISE {
          return fast_norm(x, n);   // reassociating callee
        }
    Clean:
        float kernel(const float* x, Index n) TCB_BITWISE {
          return simd::reduce_add(x, n);   // simd primitives are TCB_BITWISE
        }
    """

    name = "bitwise-closure"
    description = ("a TCB_BITWISE function may only call TCB_BITWISE code "
                   "(including the simd:: primitives); reaching a "
                   "TCB_REASSOC function, directly or through unannotated "
                   "helpers, forfeits bitwise concat-equivalence")

    def check_program(self, index: ProgramIndex) -> list[Finding]:
        findings: dict[tuple[str, int, str], Finding] = {}
        memo: dict[int, tuple[str, tuple[str, ...]] | None] = {}

        def reaches_reassoc(fn: FunctionInfo, stack: frozenset,
                            depth: int) -> tuple[str, tuple[str, ...]] | None:
            key = id(fn)
            if key in memo:
                return memo[key]
            if key in stack or depth > MAX_DEPTH:
                return None
            result = None
            for call in _raw_calls(index, fn):
                for callee in _resolve(index, fn, call):
                    a = _annots(callee)
                    if "TCB_REASSOC" in a:
                        result = (callee.qualname,
                                  (fn.qualname, callee.qualname))
                        break
                    if "TCB_BITWISE" in a or "TCB_BATCH_GEOMETRY" in a:
                        continue
                    sub = reaches_reassoc(callee, stack | {key}, depth + 1)
                    if sub is not None:
                        result = (sub[0], (fn.qualname,) + sub[1])
                        break
                if result is not None:
                    break
            if not stack:
                memo[key] = result
            return result

        for fn in index.functions:
            if "TCB_BITWISE" not in _annots(fn):
                continue
            for call in _raw_calls(index, fn):
                for callee in _resolve(index, fn, call):
                    a = _annots(callee)
                    if "TCB_REASSOC" in a:
                        self._report(findings, index, fn, call,
                                     callee.qualname,
                                     (fn.qualname, callee.qualname))
                    elif "TCB_BITWISE" not in a \
                            and "TCB_BATCH_GEOMETRY" not in a:
                        sub = reaches_reassoc(callee, frozenset({id(fn)}), 1)
                        if sub is not None:
                            self._report(findings, index, fn, call, sub[0],
                                         (fn.qualname,) + sub[1])
        return sorted(findings.values(),
                      key=lambda f: (f.path, f.line, f.message))

    def _report(self, findings, index: ProgramIndex, fn: FunctionInfo,
                call, reassoc: str, chain: tuple[str, ...]) -> None:
        key = (fn.path, call.line, reassoc)
        if key in findings \
                or index.suppressed(self.name, fn.path, call.line):
            return
        findings[key] = Finding(
            self.name, fn.path, call.line,
            f"TCB_BITWISE {fn.qualname} reaches TCB_REASSOC {reassoc} "
            f"(call chain: {' -> '.join(chain)}); tolerance-governed code "
            f"must stay out of the bitwise closure — use a simd:: primitive "
            f"or annotate the caller TCB_REASSOC if drift is acceptable")


@register
class RawFpAccumulation(ProgramRule):
    """Scalar float reductions in src/nn must use the shared primitives.

    The concat invariant fixes not just *what* a kernel computes but the
    *order* it accumulates in: simd.hpp's primitives define one ascending-k
    lane layout, and kernel_equivalence_test pins every fast kernel to it.
    A hand-rolled `float s = 0; for (...) s += ...` in model code creates a
    second, uncoordinated accumulation order that drifts the moment anyone
    retunes the primitives.  Reference kernels keep their scalar loops by
    design — they are the tolerance-governed oracle — and carry TCB_REASSOC,
    which exempts them here.

    Violation:
        float dot(const float* a, const float* b, Index n) {
          float acc = 0.0f;
          for (Index i = 0; i < n; ++i) acc += a[i] * b[i];
          return acc;
        }
    Clean:
        float dot(const float* a, const float* b, Index n) {
          return simd::dot(a, b, n);
        }
    """

    name = "raw-fp-accumulation"
    description = ("hand-rolled scalar float accumulation loops in src/nn "
                   "must go through simd::/tcb::ref primitives so the "
                   "per-element FMA chain order stays centralized; "
                   "TCB_REASSOC marks the sanctioned scalar copies")

    def check_program(self, index: ProgramIndex) -> list[Finding]:
        out: list[Finding] = []
        seen: set[tuple[str, int]] = set()
        for fn in index.functions:
            if not index.effective_path(fn.path).startswith("src/nn/"):
                continue
            if "TCB_REASSOC" in _annots(fn):
                continue
            body = fn.raw_body
            floats = set(FLOAT_DECL_RE.findall(body))
            if not floats:
                continue
            loops = _loop_extents(body)
            for m in re.finditer(r"\b([A-Za-z_]\w*)\s*\+=", body):
                var = m.group(1)
                if var not in floats:
                    continue
                if not any(lo <= m.start() < hi
                           for _h, _e, lo, hi in loops):
                    continue
                line = index.line_of(fn, m.start())
                if (fn.path, line) in seen \
                        or index.suppressed(self.name, fn.path, line):
                    continue
                seen.add((fn.path, line))
                out.append(Finding(
                    self.name, fn.path, line,
                    f"loop-carried scalar float accumulator `{var}` in "
                    f"{fn.qualname}; route the reduction through a simd:: "
                    f"primitive (or mark the function TCB_REASSOC if it is "
                    f"deliberately tolerance-governed)"))
        out.sort(key=lambda f: (f.path, f.line, f.message))
        return out
