"""Per-file syntactic rules (the original tcb-lint rule pack).

These enforce invariants that generic clang-tidy checks cannot express
because they are about *this* project's architecture (DESIGN.md §7):
token-accessor ownership, concurrency confinement, virtual-clock purity,
checked span boundaries, memory ownership, the sync-wrapper monopoly,
annotated shared state, and the include-layering DAG.
"""

from __future__ import annotations

import os
import re

from tcb_lint.rules import Rule, register, scan_lines
from tcb_lint.source import Finding, SourceFile


@register
class NoRawTokenIndexing(Rule):
    """Token storage has one owning accessor; raw indexing re-opens a bug.

    The packed id matrix is rows x width flattened; indexing it by hand is
    how the transposed-batch bug happened (row/column swapped, plausible
    tokens, wrong requests). PackedBatch::token_at carries the strong Row/
    Col axes and the bounds check.

    Violation:
        Index id = batch.tokens[r * width + c];
    Clean:
        Index id = batch.token_at(Row{r}, Col{c});
    """

    name = "no-raw-token-indexing"
    description = ("token storage is indexed only through its owning accessor "
                   "(PackedBatch::token_at / flat_offset); raw tokens[...] or "
                   "tokens.data() arithmetic elsewhere reintroduces the "
                   "swapped-row/column bug class")
    OWNERS = ("src/batching/packed_batch.hpp", "src/batching/packed_batch.cpp")
    PATTERN = re.compile(r"\btokens\s*(\[|\.\s*data\s*\()")

    def applies_to(self, path: str) -> bool:
        return path not in self.OWNERS

    def check(self, sf: SourceFile) -> list[Finding]:
        return scan_lines(
            sf, self.PATTERN, self.name,
            "raw token-buffer indexing outside the owning accessor; go through "
            "PackedBatch::token_at(Row, Col) or Request token helpers")


@register
class ThreadsOnlyInParallel(Rule):
    """Raw threads live in src/parallel/ only.

    One pool owns all worker threads (sized once, instrumented once);
    ad-hoc std::thread/std::async elsewhere escapes its sizing, shutdown
    and the lint rules that reason about the pool's lock discipline.

    Violation (outside src/parallel/):
        std::thread t([&] { work(); }); t.join();
    Clean:
        parallel_for(n, [&](std::size_t b, std::size_t e) { work(b, e); });
    """

    name = "threads-only-in-parallel"
    description = ("concurrency primitives (std::thread/async/mutex/"
                   "condition_variable...) are confined to src/parallel/; "
                   "everything else uses the ThreadPool API")
    PATTERN = re.compile(
        r"\bstd\s*::\s*(thread|jthread|async|mutex|timed_mutex|recursive_mutex|"
        r"recursive_timed_mutex|shared_mutex|shared_timed_mutex|"
        r"condition_variable(_any)?)\b")

    def applies_to(self, path: str) -> bool:
        in_scope = path.startswith(("src/", "tests/", "bench/", "examples/"))
        return in_scope and not path.startswith(("src/parallel/", "tests/parallel/"))

    def check(self, sf: SourceFile) -> list[Finding]:
        return scan_lines(
            sf, self.PATTERN, self.name,
            "raw concurrency primitive outside src/parallel/; submit work "
            "through tcb::ThreadPool instead")


@register
class NoWallClockInSched(Rule):
    """Scheduling code runs on the virtual clock.

    src/sched/ and src/serving/ are replayed deterministically in tests
    and simulations; a steady_clock::now() hiding in a policy makes the
    replay diverge from production in ways no test can pin.

    Violation (in src/sched/):
        auto now = std::chrono::steady_clock::now();
    Clean:
        TimePoint now = clock.now();   // injected virtual clock
    """

    name = "no-wall-clock-in-sched"
    description = ("src/sched/ and src/serving/ run on the deterministic "
                   "virtual clock; wall-clock reads (steady_clock::now, "
                   "Timer) break replayability unless explicitly allowed")
    PATTERN = re.compile(
        r"\b(system_clock|steady_clock|high_resolution_clock)\s*::\s*now\s*\(|"
        r"\bTimer\b")

    def applies_to(self, path: str) -> bool:
        return path.startswith(("src/sched/", "src/serving/"))

    def check(self, sf: SourceFile) -> list[Finding]:
        return scan_lines(
            sf, self.PATTERN, self.name,
            "wall-clock read in virtual-clock code; use the simulation clock, "
            "or annotate a deliberate overhead measurement with "
            "// tcb-lint: allow(no-wall-clock-in-sched)")


@register
class CheckedEngineBoundary(Rule):
    """(offset, length) pairs must be validated before use.

    A span crossing the engine boundary unchecked reads another request's
    rows on a malformed plan — plausible output, no crash. The check is
    the contract that makes downstream raw index math auditable.

    Violation:
        void copy_span(const float* src, Index offset, Index length) {
          consume(src + offset, length);
        }
    Clean:
        void copy_span(const float* src, Index offset, Index length) {
          TCB_CHECK(offset >= 0 && length > 0, "bad span");
          consume(src + offset, length);
        }
    """

    name = "checked-engine-boundary"
    description = ("function definitions taking an (offset, length)-style "
                   "parameter pair must validate the span with "
                   "TCB_CHECK/TCB_DCHECK before indexing with it")
    # A function header: name(params) [qualifiers] {   -- captured lazily and
    # verified by counting braces from the opening one.
    HEADER_RE = re.compile(
        r"\b([A-Za-z_]\w*)\s*\(([^()]*)\)\s*"
        r"(?:const\s*)?(?:noexcept\s*)?(?:->\s*[\w:<>]+\s*)?\{", re.S)
    OFFSET_RE = re.compile(r"\b\w*(offset|begin|start)\w*\b", re.I)
    LENGTH_RE = re.compile(r"\b\w*(length|len|count)\w*\b", re.I)
    CHECK_RE = re.compile(r"\bTCB_D?CHECK\b")
    KEYWORDS = {"if", "for", "while", "switch", "return", "catch", "sizeof",
                "static_assert", "decltype", "alignof", "new", "delete"}

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/")

    def check(self, sf: SourceFile) -> list[Finding]:
        code = sf.code()
        out = []
        for m in self.HEADER_RE.finditer(code):
            fn_name, params = m.group(1), m.group(2)
            if fn_name in self.KEYWORDS:
                continue
            if not (self.OFFSET_RE.search(params) and self.LENGTH_RE.search(params)):
                continue
            body = self._body(code, m.end() - 1)
            if body is None or self.CHECK_RE.search(body):
                continue
            line_no = code.count("\n", 0, m.start()) + 1
            if sf.suppressed(self.name, line_no):
                continue
            out.append(Finding(
                self.name, sf.path, line_no,
                f"'{fn_name}' takes an offset/length pair but its body has no "
                "TCB_CHECK/TCB_DCHECK guarding the span"))
        return out

    @staticmethod
    def _body(code: str, open_brace: int) -> str | None:
        depth = 0
        for i in range(open_brace, len(code)):
            if code[i] == "{":
                depth += 1
            elif code[i] == "}":
                depth -= 1
                if depth == 0:
                    return code[open_brace + 1:i]
        return None


@register
class NoRawNewDelete(Rule):
    """Ownership goes through containers and smart pointers.

    A raw new/delete pair is an exception-safety hole and an ownership
    question every reader must re-answer; the engine has no allocation
    pattern vectors/unique_ptr cannot express.

    Violation:
        float* buf = new float[n]; ... delete[] buf;
    Clean:
        std::vector<float> buf(n);
    """

    name = "no-raw-new-delete"
    description = ("first-party engine code owns memory through containers "
                   "and smart pointers; raw new/delete expressions are "
                   "forbidden in src/")
    PATTERN = re.compile(r"(?<!_)\b(new|delete)\b(?!_)(?!\s*\()")
    DELETED_FN_RE = re.compile(r"=\s*delete\b")

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/")

    def check(self, sf: SourceFile) -> list[Finding]:
        out = []
        for idx, line in enumerate(sf.lines, start=1):
            # `= delete` declarations are the C++ idiom, not a deallocation.
            scrubbed = self.DELETED_FN_RE.sub("", line)
            if self.PATTERN.search(scrubbed) and not sf.suppressed(self.name, idx):
                out.append(Finding(
                    self.name, sf.path, idx,
                    "raw new/delete expression; use std::vector, "
                    "std::unique_ptr, or std::make_unique"))
        return out


@register
class UseTcbSync(Rule):
    """Synchronization goes through the annotated tcb:: wrappers.

    tcb::Mutex/CondVar/MutexLock carry the capability annotations that
    clang's thread-safety analysis and tcb-lint's whole-program rules
    (lock-order-graph, no-blocking-under-lock) key on; a raw std::mutex
    is invisible to all of them.

    Violation (outside src/parallel/sync.hpp):
        std::mutex m; std::lock_guard<std::mutex> g(m);
    Clean:
        Mutex m TCB_GUARDS(state_); MutexLock lock(m);
    """

    name = "use-tcb-sync"
    description = ("raw std synchronization primitives (mutex, "
                   "condition_variable, lock_guard, unique_lock, ...) are "
                   "confined to src/parallel/sync.hpp; everything else uses "
                   "the annotated tcb::Mutex/CondVar/MutexLock wrappers so "
                   "Clang Thread Safety Analysis can check the lock "
                   "discipline")
    OWNER = "src/parallel/sync.hpp"
    PATTERN = re.compile(
        r"\bstd\s*::\s*(mutex|timed_mutex|recursive_mutex|"
        r"recursive_timed_mutex|shared_mutex|shared_timed_mutex|"
        r"condition_variable(_any)?|lock_guard|unique_lock|scoped_lock|"
        r"shared_lock)\b")

    def applies_to(self, path: str) -> bool:
        in_scope = path.startswith(("src/", "tests/", "bench/", "examples/"))
        return in_scope and path != self.OWNER

    def check(self, sf: SourceFile) -> list[Finding]:
        return scan_lines(
            sf, self.PATTERN, self.name,
            "raw synchronization primitive outside parallel/sync.hpp; use "
            "tcb::Mutex / tcb::CondVar / tcb::MutexLock so the thread "
            "safety analysis sees the lock")


@register
class AnnotatedSharedState(Rule):
    """Every mutex and atomic must declare its role.

    An unannotated mutex protects "something"; an unannotated atomic is
    either lock-free by design or a data-race patch. The annotation makes
    the intent checkable: TCB_GUARDS names the protected state, and the
    whole-program rules verify the discipline.

    Violation:
        Mutex mu_; std::atomic<int> hits_;
    Clean:
        Mutex mu_ TCB_GUARDS(queue_); std::atomic<int> hits_ TCB_LOCK_FREE;
    """

    name = "annotated-shared-state"
    description = ("every tcb::Mutex or std::atomic declaration in src/ "
                   "must declare its role in the lock discipline: "
                   "TCB_GUARDS(...) on a mutex (what it protects), "
                   "TCB_GUARDED_BY(...) or TCB_LOCK_FREE on an atomic, or "
                   "an explicit // tcb-lint: allow(annotated-shared-state)")
    # A mutex- or atomic-typed declaration starting a line. MutexLock (the
    # scope) is excluded by the lookahead; raw std mutexes are use-tcb-sync's
    # business, so only the sanctioned tcb::Mutex and std::atomic are here.
    DECL_RE = re.compile(
        r"^\s*(?:mutable\s+)?(?:static\s+)?(?:inline\s+)?"
        r"(?:(?:tcb\s*::\s*)?Mutex(?!Lock)\b"
        r"|std\s*::\s*atomic(?:_flag\b|\w*\b)?(?:\s*<[^;{}()]*>)?)"
        r"\s+\w+")
    ANNOT_RE = re.compile(
        r"\bTCB_(GUARDS|GUARDED_BY|PT_GUARDED_BY|LOCK_FREE|"
        r"ACQUIRED_BEFORE|ACQUIRED_AFTER|LOCK_ORDER_ANCHOR)\b")

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/")

    def check(self, sf: SourceFile) -> list[Finding]:
        out = []
        for idx, line in enumerate(sf.lines, start=1):
            if not self.DECL_RE.match(line):
                continue
            # The annotation may sit on the declaration's continuation line
            # when the declarator wraps; join until the terminating ';'.
            stmt = line
            if ";" not in line and idx < len(sf.lines):
                stmt += " " + sf.lines[idx]
            if self.ANNOT_RE.search(stmt) or sf.suppressed(self.name, idx):
                continue
            out.append(Finding(
                self.name, sf.path, idx,
                "mutex/atomic declaration without a lock-discipline "
                "annotation; add TCB_GUARDS(...) / TCB_GUARDED_BY(...) / "
                "TCB_LOCK_FREE (see src/parallel/sync.hpp and DESIGN.md §9)"))
        return out


@register
class IncludeLayering(Rule):
    """src/ modules form a DAG; includes may only point down it.

    util < tensor < {parallel, batching} < nn < sched < serving (see
    DESIGN.md). An upward include (tensor -> nn) couples a kernel to model
    policy and eventually cycles. Sub-DAGs inside util/ and serving/ keep
    the bottom layer and the pipeline honest too.

    Violation (in src/tensor/):
        #include "nn/attention.hpp"
    Clean:
        #include "util/check.hpp"
    """

    name = "include-layering"
    description = ("#include edges between src/ modules must follow the "
                   "layering DAG (DESIGN.md): util at the bottom, core at "
                   "the top; e.g. sched may not include nn")
    # module -> modules it may include (its own module is always allowed).
    DAG = {
        "util": set(),
        "parallel": {"util"},
        "tensor": {"parallel", "util"},
        "batching": {"parallel", "tensor", "util"},
        "text": {"batching", "tensor", "util"},
        "workload": {"batching", "tensor", "util"},
        "sched": {"batching", "tensor", "util"},
        "nn": {"batching", "parallel", "tensor", "util"},
        "serving": {"batching", "nn", "parallel", "sched", "tensor", "util"},
        "core": {"batching", "nn", "parallel", "sched", "serving", "tensor",
                 "text", "util", "workload"},
    }
    INCLUDE_RE = re.compile(r'#\s*include\s*"([a-z]+)/[^"]+"')

    # Serving-internal refinement for the staged pipeline: file stem ->
    # serving stems it may include (its own stem is always allowed). Clock
    # and the queue sit at the bottom, the backend above the cost model, the
    # pipeline above both, and the thin simulator wrapper on top. Stems not
    # listed here (future serving files) are only module-checked.
    SERVING_DAG = {
        "clock": set(),
        "cost_model": set(),
        "request_queue": set(),
        "backend": {"cost_model"},
        "pipeline": {"backend", "clock", "request_queue"},
        "simulator": {"cost_model", "pipeline"},
    }

    # Tensor-internal refinement for the kernel stack: the Tensor type at the
    # bottom; simd / strong_index / io / tuning directly above it; ops over
    # simd; kernel_ref (the scalar oracles) over ops; workspace (the
    # per-thread scratch arena) standalone over util/parallel only; gemm on
    # top, consuming ops, simd, the tuner and the workspace. Stems not listed
    # (future tensor files) are only module-checked.
    TENSOR_DAG = {
        "tensor": set(),
        "strong_index": {"tensor"},
        "simd": {"tensor"},
        "io": {"tensor"},
        "workspace": set(),
        "tuning": {"tensor"},
        "ops": {"simd", "tensor"},
        "kernel_ref": {"ops", "tensor"},
        "gemm": {"ops", "simd", "tensor", "tuning", "workspace"},
    }

    # Util-internal refinement: the contract headers (check's assertions,
    # lifetime's borrow annotations, numeric's bitwise/geometry/reassoc
    # annotations) are leaves every other util header may sit on, and they
    # include nothing themselves — an annotation header that pulls in I/O
    # would tax every TU in the tree. csv/stats ride on lifetime's
    # TCB_LIFETIME_BOUND; table renders csv. Stems not listed (future util
    # files) are only module-checked.
    UTIL_DAG = {
        "check": set(),
        "env": set(),
        "lifetime": set(),
        "numeric": set(),
        "rng": set(),
        "timer": set(),
        "histogram": set(),
        "csv": {"lifetime"},
        "stats": {"lifetime"},
        "table": {"csv", "lifetime"},
    }

    # Batching-internal refinement: Request is the leaf datum; batch_plan
    # (the Batcher interface and plan geometry) sits on it; packed_batch,
    # the SlotAllocator and the stats layer consume plans; the concrete
    # batchers see only the interface (a batcher that peeks at another
    # batcher's internals cannot be swapped by the factory), and the factory
    # alone sees them all. Stems not listed (future batching files) are only
    # module-checked.
    BATCHING_DAG = {
        "request": set(),
        "batch_plan": {"request"},
        "packed_batch": {"batch_plan"},
        "slot_allocator": {"batch_plan"},
        "stats": {"batch_plan"},
        "concat_batcher": {"batch_plan"},
        "naive_batcher": {"batch_plan"},
        "slotted_batcher": {"batch_plan"},
        "turbo_batcher": {"batch_plan"},
        "factory": {"batch_plan", "concat_batcher", "naive_batcher",
                    "slotted_batcher", "turbo_batcher"},
    }

    # Sched-internal refinement: the Scheduler interface (and the shared
    # admission sanitizer evict_unschedulable) at the bottom; the policies —
    # baselines, DAS, the offline bound — side by side above it, blind to
    # each other so a policy comparison never measures a hidden dependency;
    # slotted DAS extends DAS; the factory on top. Stems not listed (future
    # sched files) are only module-checked.
    SCHED_DAG = {
        "scheduler": set(),
        "baselines": {"scheduler"},
        "das": {"scheduler"},
        "slotted_das": {"das", "scheduler"},
        "offline_bound": {"scheduler"},
        "factory": {"baselines", "das", "scheduler", "slotted_das"},
    }

    # module -> its internal stem-level DAG (same shape as DAG, keyed by file
    # stem). The include pattern is derived from the module name.
    SUBMODULE_DAGS = {"serving": SERVING_DAG, "tensor": TENSOR_DAG,
                      "util": UTIL_DAG, "batching": BATCHING_DAG,
                      "sched": SCHED_DAG}

    def applies_to(self, path: str) -> bool:
        parts = path.split("/")
        return len(parts) >= 3 and parts[0] == "src" and parts[1] in self.DAG

    def check(self, sf: SourceFile) -> list[Finding]:
        module = sf.effective_path.split("/")[1]
        allowed = self.DAG[module] | {module}
        stem = os.path.splitext(os.path.basename(sf.effective_path))[0]
        sub_dag = self.SUBMODULE_DAGS.get(module)
        sub_allowed = None
        sub_include_re = None
        if sub_dag is not None and stem in sub_dag:
            sub_allowed = sub_dag[stem] | {stem}
            sub_include_re = re.compile(
                r'#\s*include\s*"' + module + r'/(\w+)\.hpp"')
        out = []
        # Includes survive stripping, but the quoted path does not -- read the
        # raw lines and skip ones that are commented out via the stripped view.
        for idx, (raw, stripped) in enumerate(
                zip(sf.raw_lines, sf.lines), start=1):
            if "#" not in stripped:
                continue
            m = self.INCLUDE_RE.search(raw)
            if not m:
                continue
            target = m.group(1)
            if (target in self.DAG and target not in allowed
                    and not sf.suppressed(self.name, idx)):
                out.append(Finding(
                    self.name, sf.path, idx,
                    f"module '{module}' may not include '{target}' "
                    f"(allowed: {', '.join(sorted(allowed))})"))
                continue
            if sub_allowed is None:
                continue
            sm = sub_include_re.search(raw)
            if not sm:
                continue
            starget = sm.group(1)
            if (starget in sub_dag and starget not in sub_allowed
                    and not sf.suppressed(self.name, idx)):
                out.append(Finding(
                    self.name, sf.path, idx,
                    f"{module}-internal layering: '{stem}' may not include "
                    f"'{module}/{starget}.hpp' (allowed: "
                    f"{', '.join(sorted(sub_allowed))})"))
        return out


@register
class EngineBehindBackend(Rule):
    """The serving pipeline sees the engine only through ExecutionBackend.

    Stages that include nn/model.hpp directly re-couple scheduling policy
    to one concrete engine; the backend interface is what lets tests swap
    in the recording/null engines.

    Violation (in src/serving/pipeline.cpp):
        #include "nn/model.hpp"
    Clean:
        #include "serving/backend.hpp"   // talk to ExecutionBackend
    """

    name = "engine-behind-backend"
    description = ("within src/serving/ only the execution-backend layer "
                   "(backend.*, cost_model.*) may include the engine headers "
                   "nn/model.hpp / nn/classifier.hpp; the pipeline's stages "
                   "stay engine-agnostic behind ExecutionBackend "
                   "(DESIGN.md §10)")
    ALLOWED = ("src/serving/backend.hpp", "src/serving/backend.cpp",
               "src/serving/cost_model.hpp", "src/serving/cost_model.cpp")
    PATTERN = re.compile(r'#\s*include\s*"nn/(model|classifier)\.hpp"')

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/serving/") and path not in self.ALLOWED

    def check(self, sf: SourceFile) -> list[Finding]:
        out = []
        # Same raw/stripped split as include-layering: the include path is
        # blanked in the stripped view, comments are blanked in the raw one.
        for idx, (raw, stripped) in enumerate(
                zip(sf.raw_lines, sf.lines), start=1):
            if "#" not in stripped:
                continue
            if self.PATTERN.search(raw) and not sf.suppressed(self.name, idx):
                out.append(Finding(
                    self.name, sf.path, idx,
                    "serving code outside the backend layer includes an "
                    "engine header; route execution through ExecutionBackend "
                    "(serving/backend.hpp)"))
        return out
