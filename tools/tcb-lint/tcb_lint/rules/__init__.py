"""Rule registry.

Two kinds of rule live here:

  Rule         per-file: sees one lexed SourceFile at a time (style.py).
  ProgramRule  whole-program: sees the cross-TU ProgramIndex built from
               every file in the lint set (concurrency.py, taint.py).

Importing this package pulls in every rule module so `RULES` is complete
after `import tcb_lint.rules`.
"""

from __future__ import annotations

import re

from tcb_lint.source import Finding, SourceFile

RULES: dict[str, "Rule"] = {}


class Rule:
    name = ""
    description = ""

    def applies_to(self, effective_path: str) -> bool:
        raise NotImplementedError

    def check(self, sf: SourceFile) -> list[Finding]:
        raise NotImplementedError


class ProgramRule(Rule):
    """A rule that needs the whole-program index, not a single file.

    The driver lexes every file once, builds one ProgramIndex, and calls
    `check_program` on each registered ProgramRule.  `applies_to`/`check`
    exist so the per-file loop skips these cleanly.
    """

    def applies_to(self, effective_path: str) -> bool:
        return False

    def check(self, sf: SourceFile) -> list[Finding]:
        return []

    def check_program(self, index) -> list[Finding]:
        raise NotImplementedError


def register(cls):
    RULES[cls.name] = cls()
    return cls


def program_rules(rules: list[Rule]) -> list[ProgramRule]:
    return [r for r in rules if isinstance(r, ProgramRule)]


def scan_lines(sf: SourceFile, pattern: re.Pattern, rule: str,
               message: str) -> list[Finding]:
    out = []
    for idx, line in enumerate(sf.lines, start=1):
        if pattern.search(line) and not sf.suppressed(rule, idx):
            out.append(Finding(rule, sf.path, idx, message))
    return out


from tcb_lint.rules import style        # noqa: E402,F401
from tcb_lint.rules import concurrency  # noqa: E402,F401
from tcb_lint.rules import taint        # noqa: E402,F401
from tcb_lint.rules import lifetime     # noqa: E402,F401
from tcb_lint.rules import numeric      # noqa: E402,F401
