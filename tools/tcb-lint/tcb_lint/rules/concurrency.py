"""Whole-program concurrency rules: the cross-TU checks TSA cannot do.

lock-order-graph       builds the global acquired-before graph from every
                       MutexLock scope and TCB_REQUIRES precondition across
                       all TUs, reports cycles as potential deadlocks (with
                       a witness path per edge), checks observed edges
                       against the canonical order declared through the
                       `lock_order` anchor chain in parallel/sync.hpp, and
                       suggests TCB_ACQUIRED_AFTER annotations for edges the
                       declared order does not cover.

no-blocking-under-lock flags calls that may block — RequestQueue::push/pop,
                       TaskGroup::join, ThreadPool::submit/parallel_for,
                       anything that transitively waits on a CondVar or
                       sleeps — made while a tcb::Mutex is held.  A direct
                       `cv.wait(lock)` is the sanctioned pattern and is
                       never flagged at its own site; it only marks the
                       containing function as blocking for its callers.
"""

from __future__ import annotations

from dataclasses import dataclass

from tcb_lint.program import FunctionInfo, ProgramIndex
from tcb_lint.rules import ProgramRule, register
from tcb_lint.source import Finding


@dataclass(frozen=True)
class Edge:
    src: str          # lock acquired first (held)
    dst: str          # lock acquired while src is held
    path: str
    line: int
    witness: str      # human-readable acquisition chain


def _collect_edges(index: ProgramIndex) -> list[Edge]:
    edges: dict[tuple[str, str], Edge] = {}

    def add(src: str, dst: str, path: str, line: int, witness: str) -> None:
        edges.setdefault((src, dst), Edge(src, dst, path, line, witness))

    for fn in index.functions:
        for scope in fn.scopes:
            if scope.lock_id is None:
                continue
            for held_id, held_expr, _held_line in index.held_locks(fn, scope.start):
                if held_id is None or (held_id == scope.lock_id
                                       and held_expr == scope.expr):
                    continue
                add(held_id, scope.lock_id, fn.path, scope.line,
                    f"{fn.qualname} acquires {scope.lock_id} while holding "
                    f"{held_id}")
        for call in fn.calls:
            held = [(h, e, l) for h, e, l in index.held_locks(fn, call.pos)
                    if h is not None]
            if not held:
                continue
            for callee in index.resolve_call(fn, call):
                for lock_id, (p, ln, chain) in \
                        index.acquires_closure(callee).items():
                    for held_id, _e, _l in held:
                        if held_id == lock_id:
                            continue
                        add(held_id, lock_id, fn.path, call.line,
                            f"{fn.qualname} holds {held_id} and calls "
                            f"{' -> '.join(chain)}, which acquires {lock_id} "
                            f"({p}:{ln})")
    # Self-acquisition: the same lock class taken while an instance of it is
    # already held.  Either a self-deadlock (same instance) or a two-instance
    # ordering hazard (no instance-level order exists) — reported directly.
    for fn in index.functions:
        for scope in fn.scopes:
            if scope.lock_id is None:
                continue
            for other in fn.scopes:
                if other is scope:
                    continue
                if other.start < scope.start < other.end \
                        and other.lock_id == scope.lock_id:
                    add(scope.lock_id, scope.lock_id, fn.path, scope.line,
                        f"{fn.qualname} re-acquires {scope.lock_id} while an "
                        f"instance of it is already held (line {other.line})")
    return list(edges.values())


def _anchor_ranks(index: ProgramIndex) -> dict[str, int]:
    """Rank every lock that is tied into the lock_order anchor chain.

    Anchors (never-locked `lock_order::` mutexes) declare the canonical
    order by chaining TCB_ACQUIRED_AFTER to each other; a real mutex joins
    the order by declaring TCB_ACQUIRED_AFTER(lock_order::<stage>).
    """
    anchors = {lid: mi for lid, mi in index.mutexes.items()
               if lid.startswith("lock_order::")}
    ranks: dict[str, int] = {}
    # Chain roots first, then propagate; bounded passes since chains are short.
    for _ in range(len(anchors) + 1):
        changed = False
        for lid, mi in anchors.items():
            preds = [a for a in mi.acquired_after if a in anchors]
            if not preds:
                rank = 0
            elif all(p in ranks for p in preds):
                rank = max(ranks[p] for p in preds) + 1
            else:
                continue
            if ranks.get(lid) != rank:
                ranks[lid] = rank
                changed = True
        if not changed:
            break
    lock_ranks: dict[str, int] = dict(ranks)
    for lid, mi in index.mutexes.items():
        if lid in anchors:
            continue
        anchor_preds = [ranks[a] for a in mi.acquired_after if a in ranks]
        if anchor_preds:
            lock_ranks[lid] = max(anchor_preds) + 1
    return lock_ranks


def _find_cycles(edges: list[Edge]) -> list[list[Edge]]:
    """Strongly-connected components with >1 node, plus self-loops, each
    returned as the list of their internal edges."""
    adj: dict[str, list[Edge]] = {}
    nodes: set[str] = set()
    for e in edges:
        adj.setdefault(e.src, []).append(e)
        nodes.update((e.src, e.dst))
    # Iterative Tarjan.
    index_of: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[set[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work = [(root, iter(adj.get(root, [])))]
        index_of[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            v, it = work[-1]
            advanced = False
            for e in it:
                w = e.dst
                if w not in index_of:
                    index_of[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(adj.get(w, []))))
                    advanced = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], index_of[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
            if low[v] == index_of[v]:
                comp = set()
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.add(w)
                    if w == v:
                        break
                sccs.append(comp)

    for n in sorted(nodes):
        if n not in index_of:
            strongconnect(n)

    out = []
    for comp in sccs:
        internal = [e for e in edges if e.src in comp and e.dst in comp]
        if len(comp) > 1 or any(e.src == e.dst for e in internal):
            out.append(sorted(internal, key=lambda e: (e.src, e.dst)))
    return out


@register
class LockOrderGraph(ProgramRule):
    """Cross-TU acquired-before graph: cycles are potential deadlocks.

    Every MutexLock / TCB_REQUIRES site contributes "src held while dst
    acquired" edges, closed over the call graph; a cycle means two threads
    can acquire the same pair in opposite orders. Edges must also agree
    with the canonical lock_order:: declaration.

    Violation (two TUs):
        void a() { MutexLock l(mu1); take2(); }   // mu1 -> mu2
        void b() { MutexLock l(mu2); take1(); }   // mu2 -> mu1: cycle
    Clean: all paths acquire mu1 before mu2 (or drop mu1 first).
    """

    name = "lock-order-graph"
    description = ("cross-TU acquired-before graph over every MutexLock / "
                   "TCB_REQUIRES site: cycles are potential deadlocks "
                   "(reported with both witness paths); edges must agree "
                   "with the canonical order declared via the lock_order "
                   "anchors (TCB_ACQUIRED_AFTER) in parallel/sync.hpp")

    def check_program(self, index: ProgramIndex) -> list[Finding]:
        edges = _collect_edges(index)
        ranks = _anchor_ranks(index)
        out: list[Finding] = []

        cycles = _find_cycles(edges)
        for cycle_edges in cycles:
            first = cycle_edges[0]
            if index.suppressed(self.name, first.path, first.line):
                continue
            locks = sorted({e.src for e in cycle_edges}
                           | {e.dst for e in cycle_edges})
            witnesses = "; ".join(
                f"[{e.path}:{e.line}] {e.witness}" for e in cycle_edges)
            out.append(Finding(
                self.name, first.path, first.line,
                f"potential deadlock: lock-order cycle between "
                f"{', '.join(locks)} — {witnesses}"))

        cyclic = {e for ce in cycles for e in ce}
        for e in edges:
            if e in cyclic or e.src == e.dst:
                continue
            if index.suppressed(self.name, e.path, e.line):
                continue
            src_rank, dst_rank = ranks.get(e.src), ranks.get(e.dst)
            if src_rank is not None and dst_rank is not None:
                if src_rank > dst_rank:
                    out.append(Finding(
                        self.name, e.path, e.line,
                        f"lock-order inversion against the declared canonical "
                        f"order: {e.src} (rank {src_rank}) acquired before "
                        f"{e.dst} (rank {dst_rank}) — {e.witness}; the "
                        f"TCB_ACQUIRED_AFTER anchors in parallel/sync.hpp "
                        f"require the opposite order"))
            elif e.src.split("::")[0] != e.dst.split("::")[0]:
                # A cross-class nesting the declared order does not cover:
                # surface the inferred annotation so the order stays total.
                unranked = e.dst if dst_rank is None else e.src
                out.append(Finding(
                    self.name, e.path, e.line,
                    f"cross-class lock nesting not covered by the declared "
                    f"order: {e.witness}; annotate {unranked} with "
                    f"TCB_ACQUIRED_AFTER(lock_order::<stage>) to make the "
                    f"canonical order total", severity="warning"))
        out.sort(key=lambda f: (f.path, f.line, f.message))
        return out


@register
class NoBlockingUnderLock(ProgramRule):
    """No potentially-blocking call while a tcb::Mutex is held.

    A queue pop or pool join under a lock serializes the pool behind one
    mutex at best and deadlocks at worst (the blocked thread may need the
    lock to make progress). The property is transitive: calling a helper
    that blocks is still blocking.

    Violation:
        MutexLock lock(mu_); group.join();
    Clean:
        { MutexLock lock(mu_); grab_state(); }  // drop first
        group.join();
    """

    name = "no-blocking-under-lock"
    description = ("no call that may block (RequestQueue::push/pop, "
                   "TaskGroup::join, ThreadPool::submit/parallel_for, "
                   "transitive CondVar waits, sleeps) may be made while a "
                   "tcb::Mutex is held; direct cv.wait(lock) is the "
                   "sanctioned pattern and stays exempt")

    def check_program(self, index: ProgramIndex) -> list[Finding]:
        out: list[Finding] = []
        seen: set[tuple[str, int, str]] = set()
        for fn in index.functions:
            for call in fn.calls:
                held = [(h, e, l) for h, e, l
                        in index.held_locks(fn, call.pos)]
                if not held:
                    continue
                # cv.wait(lock) releases the lock while waiting; exempt.
                if call.name == "wait" and call.recv_class == "CondVar":
                    continue
                for callee in index.resolve_call(fn, call):
                    reason = index.blocking_reason(callee)
                    if reason is None:
                        continue
                    key = (fn.path, call.line, callee.qualname)
                    if key in seen:
                        continue
                    seen.add(key)
                    if index.suppressed(self.name, fn.path, call.line):
                        continue
                    why, chain = reason
                    held_desc = ", ".join(
                        (h or f"'{e}' (unresolved)") for h, e, _l in held)
                    out.append(Finding(
                        self.name, fn.path, call.line,
                        f"{fn.qualname} calls {callee.qualname} while holding "
                        f"{held_desc}; {' -> '.join(chain)} {why} — blocking "
                        f"under a tcb::Mutex risks deadlock and unbounded "
                        f"lock hold times"))
                    break
        out.sort(key=lambda f: (f.path, f.line, f.message))
        return out
