"""Whole-program lifetime rules: the cross-TU checks clang's
-Wdangling family cannot do.

no-ref-capture-escape  a lambda that captures locals by reference (or
                       `this`) must not flow into a parameter declared
                       TCB_ESCAPES (ThreadPool::submit, TaskGroup::spawn,
                       RequestQueue callbacks): the callable outlives the
                       call, so every by-ref capture is a latent dangling
                       reference.  Escape sinks propagate through wrappers
                       resolved in the call-graph index, so a helper that
                       forwards its callable into `submit` is itself a
                       sink even when it lives in another TU.  The
                       structured-join pattern is exempt: a lambda handed
                       to a TaskGroup (`tg.spawn(...)` / `tg.add(...)`)
                       that the same function joins, where every by-ref
                       captured local is declared before the group, cannot
                       dangle.  TCB_NO_ESCAPE callables (parallel_for)
                       retire within the call and are never sinks.

use-after-move         intra-function moved-from tracking: a local or
                       member read after `std::move(x)` in the same scope,
                       or moved from inside a loop while declared outside
                       it with no reset (`x = ...`, `.clear()`,
                       `.reset()`, `.assign()`, `std::exchange`), observes
                       a valid-but-unspecified value.  Branch-exclusive
                       moves (if/else arms) and range-for loop variables
                       are understood and never flagged.

span-source-stability  a src/ function returning a reference or a
                       std::span must either carry TCB_LIFETIME_BOUND
                       (tying the return to its source object so clang
                       diagnoses call sites on temporaries) or provably
                       derive from stable storage (a static local, or
                       `return *this`).
"""

from __future__ import annotations

import re

from tcb_lint.program import (CallSite, FunctionInfo, LambdaInfo,
                              ProgramIndex, _match_paren)
from tcb_lint.rules import ProgramRule, register
from tcb_lint.source import Finding

# `std::function<void()> fn TCB_ESCAPES` -> ("fn", "TCB_ESCAPES")
PARAM_RE = re.compile(
    r"([A-Za-z_]\w*)\s*((?:TCB_\w+\s*(?:\([^()]*\))?\s*)*)$")

MOVE_RE = re.compile(
    r"\bstd\s*::\s*move\s*\(\s*"
    r"((?:this\s*->\s*)?[A-Za-z_]\w*(?:\s*\.\s*[A-Za-z_]\w*)*)\s*\)")

CONTROL_HEADER_RE = re.compile(r"\b(for|while|if)\s*\(")
LOOP_HEADER_RE = re.compile(r"\b(?:for|while)\s*\(")
RANGE_VAR_RE = re.compile(
    r"\(\s*(?:const\s+)?[\w:<>,\s]+?[&*\s]\s*([A-Za-z_]\w*)\s*:")


def _callable_params(fn: FunctionInfo) -> dict[str, str]:
    """name -> trailing TCB annotation text for std::function-ish params."""
    from tcb_lint.program import _split_args

    out: dict[str, str] = {}
    for p in _split_args(fn.params):
        if "function<" not in p.replace(" ", "") and "Callback" not in p:
            continue
        pm = PARAM_RE.search(p.strip())
        if pm:
            out[pm.group(1)] = pm.group(2)
    return out


def _escape_sinks(index: ProgramIndex) -> dict[str, str]:
    """qualname -> why its callable parameter escapes the call.

    Seeds are TCB_ESCAPES declarations; the fixpoint adds wrappers that
    forward a callable parameter into a known sink (resolved through the
    call graph, so the chain crosses TUs).  A TCB_NO_ESCAPE parameter is a
    containment promise and blocks both seeding and propagation.
    """
    sinks: dict[str, str] = {}
    for fn in index.functions:
        if "TCB_ESCAPES" in fn.params or "TCB_ESCAPES" in fn.annots:
            sinks[fn.qualname] = (f"declares its callable parameter "
                                  f"TCB_ESCAPES ({fn.path}:{fn.line})")
    changed = True
    while changed:
        changed = False
        for fn in index.functions:
            if fn.qualname in sinks:
                continue
            params = {name: annots
                      for name, annots in _callable_params(fn).items()
                      if "TCB_NO_ESCAPE" not in annots}
            if not params:
                continue
            for call in fn.calls:
                arg_end = _match_paren(fn.body, call.open_paren)
                args = fn.body[call.open_paren:arg_end]
                passed = [p for p in params
                          if re.search(rf"\b{re.escape(p)}\b", args)]
                if not passed:
                    continue
                for callee in index.resolve_call(fn, call):
                    if callee.qualname in sinks:
                        sinks[fn.qualname] = (
                            f"forwards its callable parameter "
                            f"'{passed[0]}' to {callee.qualname}, "
                            f"which {sinks[callee.qualname]}")
                        changed = True
                        break
                if fn.qualname in sinks:
                    break
    return sinks


def _dangerous_captures(lam: LambdaInfo) -> list[str]:
    out = []
    for c in lam.captures:
        c = c.strip()
        if c == "&" or c == "this" or (c.startswith("&") and "=" not in c):
            out.append(c)
    return out


def _first_word_pos(code: str, name: str) -> int:
    m = re.search(rf"(?<![\w.>]){re.escape(name)}\b", code)
    return m.start() if m else -1


def _structured_join(index: ProgramIndex, fn: FunctionInfo,
                     enclosing: list[CallSite], lam: LambdaInfo,
                     captures: list[str]) -> bool:
    """True when the lambda is handed to a TaskGroup the function joins and
    every by-ref captured local is declared before the group (so it strictly
    outlives every task the group still owns)."""
    for call in enclosing:
        if call.name not in ("add", "spawn") or call.recv_class != "TaskGroup":
            continue
        tg = (call.recv or "").strip()
        if not re.fullmatch(r"[A-Za-z_]\w*", tg):
            continue
        if not re.search(rf"\b{re.escape(tg)}\s*\.\s*join\s*\(", fn.body):
            continue
        tg_pos = _first_word_pos(fn.body, tg)
        ok = True
        for c in captures:
            if not c.startswith("&") or c == "&":
                continue  # `this` / default capture: nothing to order
            name = c.lstrip("&").strip()
            first = _first_word_pos(fn.body[:lam.start], name)
            if first > tg_pos:       # named local born after the group
                ok = False
                break
        if ok:
            return True
    return False


@register
class NoRefCaptureEscape(ProgramRule):
    """By-reference captures must not escape into deferred work.

    A callable passed to a TCB_ESCAPES parameter (ThreadPool::submit and
    anything that forwards into it, found by fixpoint) outlives the call;
    its [&] captures dangle the moment the enclosing frame returns. The
    structured-join pattern (TaskGroup declared after the state, joined in
    the same function) is the sanctioned exception.

    Violation:
        int hits = 0;
        pool.submit([&hits] { ++hits; });   // frame may be gone when it runs
    Clean:
        pool.submit([snapshot = hits] { consume(snapshot); });
    """

    name = "no-ref-capture-escape"
    description = ("a lambda capturing locals by reference (or `this`) must "
                   "not flow into a TCB_ESCAPES callable parameter "
                   "(ThreadPool::submit and wrappers that forward to it); "
                   "the task outlives the call, so by-ref captures dangle — "
                   "capture by value, or use the TaskGroup structured-join "
                   "pattern with captures declared before the group")

    def check_program(self, index: ProgramIndex) -> list[Finding]:
        sinks = _escape_sinks(index)
        out: list[Finding] = []
        for fn in index.functions:
            if not index.effective_path(fn.path).startswith("src/"):
                continue
            for lam in fn.lambdas:
                captures = _dangerous_captures(lam)
                if not captures:
                    continue
                enclosing = [
                    c for c in fn.calls
                    if 0 <= c.open_paren < lam.start
                    and _match_paren(fn.body, c.open_paren) >= lam.end]
                if not enclosing:
                    continue
                innermost = max(enclosing, key=lambda c: c.open_paren)
                sink = next(
                    (callee for callee in index.resolve_call(fn, innermost)
                     if callee.qualname in sinks), None)
                if sink is None:
                    continue
                if _structured_join(index, fn, enclosing, lam, captures):
                    continue
                line = index.line_of(fn, lam.start)
                if index.suppressed(self.name, fn.path, line):
                    continue
                out.append(Finding(
                    self.name, fn.path, line,
                    f"{fn.qualname} passes a lambda capturing "
                    f"[{', '.join(captures)}] by reference to "
                    f"{sink.qualname}, which {sinks[sink.qualname]}; the "
                    f"callable outlives the call, so these captures dangle "
                    f"— capture by value or join through a TaskGroup "
                    f"declared after the captured state"))
        out.sort(key=lambda f: (f.path, f.line, f.message))
        return out


def _reset_after(code: str, pos: int, target: str) -> bool:
    """Does `target` get reassigned/cleared right at `pos`?"""
    tail = code[pos:pos + 40]
    m = re.match(r"\s*(=[^=]|\.\s*(clear|reset|assign)\s*\()", tail)
    if m:
        return True
    head = code[:pos]
    return bool(re.search(r"\bstd\s*::\s*exchange\s*\(\s*$", head))


def _use_after_move_region(code: str, first_line: int, path: str,
                           where: str, index: ProgramIndex, rule: str,
                           members: frozenset[str] = frozenset()
                           ) -> list[Finding]:
    out: list[Finding] = []

    def line_of(pos: int) -> int:
        return first_line + code.count("\n", 0, pos)

    depth_at = []
    d = 0
    for ch in code:
        depth_at.append(d)
        if ch == "{":
            d += 1
        elif ch == "}":
            d = max(0, d - 1)

    # Loop body extents, with their header text for range-for detection.
    loops: list[tuple[int, int, int, str]] = []
    for lm in LOOP_HEADER_RE.finditer(code):
        hdr_end = _match_paren(code, lm.end() - 1)
        bm = re.match(r"\s*\{", code[hdr_end:])
        if bm:
            body_start = hdr_end + bm.end()
            close = next((i for i in range(body_start, len(code))
                          if depth_at[i] < depth_at[body_start]), len(code))
            loops.append((lm.start(), body_start, close,
                          code[lm.start():hdr_end]))

    for m in MOVE_RE.finditer(code):
        target = re.sub(r"\s+", "", m.group(1))
        base = target.split("->")[-1].split(".")[0] or target
        # A move inside a return statement: the moved-from object is dead
        # past the return.  Scan back to the previous ';' only — braces from
        # brace-init temporaries (`NaiveBatcher{}.build(std::move(x))`) are
        # part of the same statement.
        last_semi = code.rfind(";", 0, m.start())
        if re.search(r"\b(?:co_)?return\b", code[last_semi + 1:m.start()]):
            continue
        stmt_start = max(code.rfind(c, 0, m.start()) for c in ";{}") + 1
        lead = code[stmt_start:m.start()]
        # `for (...) stmt;` / `if (...) stmt;`: a brace-less control body is
        # its own scope — nothing after the ';' can see this statement's
        # state (handles move-push in a brace-less range-for followed by an
        # unrelated loop reusing the variable name).
        braceless = False
        for cm in CONTROL_HEADER_RE.finditer(lead):
            if _match_paren(lead, cm.end() - 1) <= len(lead):
                braceless = True
                break
        stmt_end = code.find(";", m.end())
        if stmt_end < 0:
            stmt_end = len(code)

        use_re = re.compile(rf"(?<![\w.>]){re.escape(target)}\b")

        if not braceless:
            scope_end = next(
                (i for i in range(stmt_end, len(code))
                 if depth_at[i] < depth_at[m.start()]), len(code))
            for um in use_re.finditer(code, stmt_end + 1, scope_end):
                if _reset_after(code, um.end(), target):
                    break
                line = line_of(um.start())
                if not index.suppressed(rule, path, line):
                    out.append(Finding(
                        rule, path, line,
                        f"'{target}' is used here after being moved from on "
                        f"line {line_of(m.start())} in {where}; a moved-from "
                        f"object holds a valid but unspecified value — "
                        f"reset it (assign / .clear()) before reuse, or "
                        f"restructure so the move is last"))
                break

        # Loop-carried move: moved every iteration, declared outside the
        # loop, never reset inside it -> iteration 2 reads moved-from state.
        # Every enclosing loop is judged on its own: an object fresh per
        # iteration of the inner loop can still be loop-carried state of an
        # outer one.
        for hdr_start, body_start, body_end, header in loops:
            if not (body_start <= m.start() < body_end):
                continue
            rv = RANGE_VAR_RE.search(header)
            if rv and rv.group(1) == base:
                continue  # fresh binding every iteration
            sb = re.search(r"\[([\w\s,]+)\]\s*:", header)
            if sb and base in [n.strip() for n in sb.group(1).split(",")]:
                continue  # structured-binding range-for: fresh per iteration
            if re.search(rf"[\w>\]]\s*[&*]?\s+{re.escape(base)}\s*[;={{(]",
                         code[body_start:m.start()]):
                continue  # declared inside this loop's body
            if target != "this" and base != "this" and base not in members \
                    and _first_word_pos(code[:hdr_start], base) < 0:
                continue  # base never named before the loop: not outer state
            body = code[body_start:body_end]
            if re.search(
                    rf"(?<![\w.>]){re.escape(target)}\s*"
                    rf"(=[^=]|\.\s*(clear|reset|assign)\s*\()", body) \
                    or re.search(
                        rf"\bstd\s*::\s*exchange\s*\(\s*"
                        rf"{re.escape(target)}\b", body):
                continue  # restored somewhere in the loop body
            line = line_of(m.start())
            if not index.suppressed(rule, path, line):
                out.append(Finding(
                    rule, path, line,
                    f"'{target}' is moved from inside a loop in {where} but "
                    f"declared outside it and never reset in the loop body; "
                    f"the next iteration reads a moved-from value — "
                    f"re-initialize it after the move or declare it inside "
                    f"the loop"))
            break
    return out


@register
class UseAfterMove(ProgramRule):
    """A moved-from object is unusable until reset.

    Reading a local/member after std::move in the same scope, or moving
    loop-external state inside a loop without re-initializing it, operates
    on a valid-but-unspecified husk — empty vectors, null handles —
    usually silently.

    Violation:
        sink(std::move(buf));
        use(buf.size());            // moved-from read
    Clean:
        sink(std::move(buf));
        buf.clear();                // reset re-arms it
        use(buf.size());
    """

    name = "use-after-move"
    description = ("no read of a local or member after std::move in the "
                   "same scope, and no loop-carried move of state declared "
                   "outside the loop without a reset (assignment, .clear(), "
                   ".reset(), .assign(), std::exchange); branch-exclusive "
                   "moves and range-for variables are exempt")

    def check_program(self, index: ProgramIndex) -> list[Finding]:
        out: list[Finding] = []
        for fn in index.functions:
            if not index.effective_path(fn.path).startswith("src/"):
                continue
            members = frozenset(index.classes[fn.cls].members) \
                if fn.cls in index.classes else frozenset()
            out.extend(_use_after_move_region(
                fn.body, fn.body_first_line, fn.path, fn.qualname,
                index, self.name, members))
            # Deferred bodies are their own execution: analyze each lambda
            # as a pseudo-function at its recorded offsets.
            for lam in fn.lambdas:
                open_brace = lam.text.find("{")
                out.extend(_use_after_move_region(
                    lam.text[open_brace + 1:-1],
                    fn.body_first_line
                    + fn.body.count("\n", 0, lam.start + open_brace),
                    fn.path, f"a lambda in {fn.qualname}", index, self.name,
                    members))
        out.sort(key=lambda f: (f.path, f.line, f.message))
        return out


@register
class SpanSourceStability(ProgramRule):
    """Reference/span returns must declare what they borrow from.

    A src/ function returning a reference or std::span either borrows
    from its arguments — then it must carry TCB_LIFETIME_BOUND so clang
    flags `auto& r = f(Temp{});` at the call site — or returns storage
    whose stability the rule can prove (static local, *this).

    Violation:
        const Row& first_row(const Plan& p) { return p.rows[0]; }
    Clean:
        const Row& first_row(const Plan& p TCB_LIFETIME_BOUND) {
          return p.rows[0];
        }
    """

    name = "span-source-stability"
    description = ("a src/ function returning a reference or std::span must "
                   "carry TCB_LIFETIME_BOUND (so clang diagnoses dangling "
                   "call sites on temporaries) or provably return stable "
                   "storage (a static local, or *this); see "
                   "src/util/lifetime.hpp")

    def check_program(self, index: ProgramIndex) -> list[Finding]:
        out: list[Finding] = []
        seen: set[tuple[str, int]] = set()
        for fn in index.functions:
            if not index.effective_path(fn.path).startswith("src/"):
                continue
            ret = fn.ret_type
            if not ret or fn.name.startswith("operator"):
                continue
            ref_ret = ret.endswith("&") and not ret.endswith("&&")
            span_ret = "span<" in ret.replace(" ", "")
            if not (ref_ret or span_ret):
                continue
            if "TCB_LIFETIME_BOUND" in fn.annots \
                    or "TCB_LIFETIME_BOUND" in fn.params:
                continue
            # Stable storage: function-local statics live forever; *this
            # chaining returns the caller's own object.
            if re.search(r"\bstatic\s+[\w:<>]+[^;]*;", fn.body) \
                    or re.search(r"\breturn\s*\*\s*this\b", fn.body):
                continue
            if (fn.path, fn.line) in seen:
                continue
            seen.add((fn.path, fn.line))
            if index.suppressed(self.name, fn.path, fn.line):
                continue
            kind = "a std::span" if span_ret else f"'{ret}'"
            out.append(Finding(
                self.name, fn.path, fn.line,
                f"{fn.qualname} returns {kind} without TCB_LIFETIME_BOUND; "
                f"the borrow is invisible to callers and clang cannot "
                f"diagnose dangling uses on temporaries — annotate it "
                f"(src/util/lifetime.hpp) or return stable storage"))
        out.sort(key=lambda f: (f.path, f.line, f.message))
        return out
