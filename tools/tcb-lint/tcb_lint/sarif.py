"""SARIF 2.1.0 output for CI artifact upload and code-scanning ingestion."""

from __future__ import annotations

import json

from tcb_lint.source import Finding

_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
           "Schemata/sarif-schema-2.1.0.json")


def render(findings: list[Finding], rules: dict[str, object],
           tool_version: str,
           suppressed: list[Finding] | None = None) -> str:
    rule_objs = []
    for name in sorted(rules):
        r = rules[name]
        rule_objs.append({
            "id": name,
            "shortDescription": {"text": getattr(r, "description", name)},
        })
    rule_index = {name: i for i, name in enumerate(sorted(rules))}
    results = []
    for f, is_suppressed in [(f, False) for f in findings] \
            + [(f, True) for f in (suppressed or [])]:
        res = {
            "ruleId": f.rule,
            "level": "error" if f.severity == "error" else "warning",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": max(1, f.line)},
                },
            }],
        }
        if f.rule in rule_index:
            res["ruleIndex"] = rule_index[f.rule]
        if is_suppressed:
            # Baselined findings stay visible in code-scanning UIs as
            # suppressed results rather than disappearing from the report.
            res["suppressions"] = [{
                "kind": "external",
                "justification": "baselined in tools/tcb-lint/baseline.json",
            }]
        results.append(res)
    doc = {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "tcb-lint",
                    "version": tool_version,
                    "informationUri":
                        "https://example.invalid/tcb/tools/tcb-lint",
                    "rules": rule_objs,
                },
            },
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": results,
        }],
    }
    # Deterministic output: stable key order, stable rule order, newline EOF.
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def write(path: str, findings: list[Finding], rules: dict[str, object],
          tool_version: str, suppressed: list[Finding] | None = None) -> None:
    with open(path, "w", encoding="utf-8") as f:
        f.write(render(findings, rules, tool_version, suppressed))
