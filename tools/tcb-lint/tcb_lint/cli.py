"""The tcb-lint driver.

File discovery is driven by compile_commands.json (same logic as
scripts/run-clang-tidy.sh): every first-party TU, plus all src/ headers
(which the compile DB never lists).  The per-file rules run on each lexed
file; the whole-program rules (lock-order-graph, no-blocking-under-lock,
tainted-admission) run once on a ProgramIndex built from the same lexed
set, so a single invocation is one coherent whole-program analysis.

Self-test fixtures come in two shapes under tools/tcb-lint/fixtures/:

  file fixtures       one .cpp/.hpp checked on its own (per-file rules and
                      the program rules over the single-file "program");
  directory fixtures  a multi-file mini-program (cross-TU cases like an
                      ABBA deadlock split over two TUs); expectations are
                      the union of `// expect:` annotations in the dir.

Exit codes: 0 clean, 1 findings (subject to --fail-on and the baseline),
2 usage or environment error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from tcb_lint import __version__, baseline as baseline_mod, sarif
from tcb_lint.backends import make_backend
from tcb_lint.program import build_index
from tcb_lint.rules import RULES, Rule, program_rules
from tcb_lint.source import EXPECT_RE, FIXTURE_DIR, REPO_ROOT, Finding


def discover_compile_db() -> str | None:
    for candidate in ("build", "build-release", "build-debug",
                      "build-asan-ubsan"):
        if os.path.isfile(os.path.join(REPO_ROOT, candidate,
                                       "compile_commands.json")):
            return os.path.join(REPO_ROOT, candidate)
    return None


def files_from_compile_db(db_dir: str) -> list[str]:
    from tcb_lint.source import rel

    with open(os.path.join(db_dir, "compile_commands.json"),
              encoding="utf-8") as f:
        entries = json.load(f)
    seen: dict[str, None] = {}
    for e in entries:
        p = os.path.abspath(os.path.join(e.get("directory", "."), e["file"]))
        r = rel(p)
        # Lint first-party translation units only; headers ride along below.
        if r.startswith(("src/", "tests/", "bench/", "examples/")):
            seen[p] = None
    # compile_commands.json has no headers; fold in first-party headers so
    # header-only misuse (e.g. a mutex in a sched header) is still caught.
    for root in ("src",):
        for dirpath, _dirs, names in os.walk(os.path.join(REPO_ROOT, root)):
            for n in sorted(names):
                if n.endswith((".hpp", ".h")):
                    seen[os.path.join(dirpath, n)] = None
    return list(seen)


# Per-worker state for --jobs: each spawned process builds its own backend
# (libclang handles are not fork-safe, hence the "spawn" context) and its
# own rule instances resolved from the registry by name.
_WORKER: dict = {}


def _init_worker(backend_kind: str, db_dir: str | None,
                 rule_names: list[str]) -> None:
    _WORKER["backend"] = make_backend(backend_kind, db_dir, quiet=True)
    _WORKER["rules"] = [RULES[r] for r in rule_names]


def _lint_one(path: str):
    """Lex one file and run the per-file rules on it (worker side)."""
    sf = _WORKER["backend"].lex(path)
    findings = []
    for rule in _WORKER["rules"]:
        if rule.applies_to(sf.effective_path):
            findings.extend(rule.check(sf))
    return sf, findings


def lint_paths(paths: list[str], backend, rules: list[Rule],
               jobs: int = 1, db_dir: str | None = None) -> list[Finding]:
    """Lex once, run per-file rules per file and program rules on the set.

    With jobs > 1 the lex + per-file stage fans out over a "spawn"
    process pool (order-preserving map, so output stays deterministic);
    the whole-program stage always runs in this process on the combined
    index.
    """
    findings: list[Finding] = []
    prog = program_rules(rules)
    file_rules = [r for r in rules if r not in prog]
    if jobs > 1 and len(paths) > 1:
        import multiprocessing

        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(min(jobs, len(paths)), initializer=_init_worker,
                      initargs=(backend.name, db_dir,
                                [r.name for r in file_rules])) as pool:
            per_file = pool.map(_lint_one, paths)
        sources = [sf for sf, _f in per_file]
        for _sf, file_findings in per_file:
            findings.extend(file_findings)
    else:
        sources = [backend.lex(p) for p in paths]
        for sf in sources:
            for rule in file_rules:
                if rule.applies_to(sf.effective_path):
                    findings.extend(rule.check(sf))
    if prog:
        index = build_index(sources)
        for rule in prog:
            findings.extend(rule.check_program(index))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def _fixture_units() -> list[tuple[str, list[str]]]:
    """(display name, file list) per fixture: files, then directories."""
    units: list[tuple[str, list[str]]] = []
    for name in sorted(os.listdir(FIXTURE_DIR)):
        full = os.path.join(FIXTURE_DIR, name)
        if os.path.isfile(full) and name.endswith((".cpp", ".hpp")):
            units.append((name, [full]))
        elif os.path.isdir(full):
            members = sorted(
                os.path.join(full, n) for n in os.listdir(full)
                if n.endswith((".cpp", ".hpp")))
            if members:
                units.append((name + "/", members))
    return units


def run_self_test(backend, rules: list[Rule]) -> int:
    if not os.path.isdir(FIXTURE_DIR):
        print(f"tcb-lint: fixture directory missing: {FIXTURE_DIR}",
              file=sys.stderr)
        return 2
    units = _fixture_units()
    if not units:
        print("tcb-lint: no fixtures found", file=sys.stderr)
        return 2
    failures = 0
    for display, paths in units:
        expected: list[str] = []
        for p in paths:
            with open(p, encoding="utf-8", errors="replace") as f:
                expected.extend(EXPECT_RE.findall(f.read()))
        expected = sorted(set(expected))
        unknown = [r for r in expected if r not in RULES]
        if unknown:
            print(f"SELF-TEST FAIL {display}: unknown rule(s) in "
                  f"expectations: {', '.join(unknown)}")
            failures += 1
            continue
        got = sorted({f.rule for f in lint_paths(paths, backend, rules)})
        if got == expected:
            print(f"self-test ok   {display}: "
                  f"{', '.join(expected) if expected else '(clean)'}")
        else:
            print(f"SELF-TEST FAIL {display}: expected "
                  f"[{', '.join(expected) or 'clean'}] got "
                  f"[{', '.join(got) or 'clean'}]")
            failures += 1
    if failures:
        print(f"tcb-lint self-test: {failures} fixture(s) failed",
              file=sys.stderr)
        return 1
    print(f"tcb-lint self-test: {len(units)} fixture(s) ok")
    return 0


def _parse_rule_args(rule_args: list[str] | None) -> list[str]:
    if not rule_args:
        return sorted(RULES)
    names: list[str] = []
    for arg in rule_args:
        names.extend(r.strip() for r in arg.split(",") if r.strip())
    return names


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="tcb-lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("-p", "--build-dir", default=None,
                    help="directory with compile_commands.json (default: "
                         "autodetect build*/ like run-clang-tidy.sh)")
    ap.add_argument("--backend", choices=("auto", "libclang", "text"),
                    default="auto")
    ap.add_argument("--strict-backend", action="store_true",
                    help="fail (exit 2) instead of falling back to the "
                         "textual backend when libclang is unavailable "
                         "under --backend auto/libclang")
    ap.add_argument("--rule", action="append", default=None,
                    help="restrict to these rules (repeatable, "
                         "comma-separated)")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--explain", metavar="RULE", default=None,
                    help="print a rule's rationale plus a minimal "
                         "violating/clean example pair, then exit")
    ap.add_argument("--self-test", action="store_true",
                    help="lint the bundled fixtures against their "
                         "// expect: annotations")
    ap.add_argument("--sarif", metavar="PATH", default=None,
                    help="also write findings as SARIF 2.1.0 to PATH")
    ap.add_argument("--baseline", metavar="PATH",
                    default=baseline_mod.DEFAULT_BASELINE,
                    help="findings baseline to ratchet against (default: "
                         "tools/tcb-lint/baseline.json)")
    ap.add_argument("--no-baseline", action="store_true",
                    help="ignore the baseline; report every finding")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline from the current findings "
                         "(deterministic: stable sort, relative paths)")
    ap.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="lex and run per-file rules in N processes "
                         "(0 = one per CPU); the whole-program stage still "
                         "runs once in the parent, and output order is "
                         "unchanged")
    ap.add_argument("--fail-on", choices=("error", "warning"),
                    default="error",
                    help="exit non-zero on findings at or above this "
                         "severity (default: error; 'warning' also fails "
                         "on advisory findings)")
    ap.add_argument("paths", nargs="*",
                    help="files to lint (default: every first-party TU in "
                         "compile_commands.json plus src/ headers)")
    args = ap.parse_args(argv)

    if args.list_rules:
        for name in sorted(RULES):
            print(f"{name}\n    {RULES[name].description}")
        return 0

    if args.explain:
        import inspect

        rule = RULES.get(args.explain)
        if rule is None:
            print(f"tcb-lint: unknown rule: {args.explain}; try "
                  f"--list-rules", file=sys.stderr)
            return 2
        doc = inspect.getdoc(type(rule))
        print(f"{rule.name}\n    {rule.description}\n")
        print(doc or "(no extended rationale recorded for this rule)")
        return 0

    rule_names = _parse_rule_args(args.rule)
    unknown = [r for r in rule_names if r not in RULES]
    if unknown:
        print(f"tcb-lint: unknown rule(s): {', '.join(unknown)}; "
              f"try --list-rules", file=sys.stderr)
        return 2
    rules = [RULES[r] for r in rule_names]

    db_dir = args.build_dir or discover_compile_db()
    backend = make_backend(args.backend, db_dir)
    if args.strict_backend and args.backend != "text" \
            and backend.name != "libclang":
        print("tcb-lint: --strict-backend: libclang is required but "
              "unavailable; install the clang Python bindings or pass "
              "--backend text explicitly.", file=sys.stderr)
        return 2

    if args.self_test:
        return run_self_test(backend, rules)

    if args.paths:
        paths = [os.path.abspath(p) for p in args.paths]
        missing = [p for p in paths if not os.path.isfile(p)]
        if missing:
            print(f"tcb-lint: no such file: {', '.join(missing)}",
                  file=sys.stderr)
            return 2
    else:
        if db_dir is None:
            print("tcb-lint: no compile_commands.json found; configure a "
                  "build first (cmake --preset release) or pass files "
                  "explicitly.", file=sys.stderr)
            return 2
        paths = files_from_compile_db(db_dir)

    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    findings = lint_paths(paths, backend, rules, jobs=jobs, db_dir=db_dir)

    if args.update_baseline:
        baseline_mod.update(findings, args.baseline)
        print(f"tcb-lint: baseline updated: {args.baseline} "
              f"({len(findings)} finding(s))", file=sys.stderr)
        return 0

    suppressed: list[Finding] = []
    if not args.no_baseline:
        known = baseline_mod.load(args.baseline)
        findings, suppressed, stale = baseline_mod.apply(findings, known)
        for k in stale:
            print(f"tcb-lint: stale baseline entry (fixed? prune it): "
                  f"[{k[0]}] {k[1]}: {k[2]}", file=sys.stderr)

    if args.sarif:
        sarif.write(args.sarif, findings, dict(RULES), __version__,
                    suppressed)

    for f in findings:
        print(f.render())
    failing = [f for f in findings
               if f.severity == "error" or args.fail_on == "warning"]
    summary = (f"tcb-lint ({backend.name}): {len(paths)} file(s), "
               f"{len(findings)} finding(s)")
    if suppressed:
        summary += f", {len(suppressed)} baselined"
    print(summary, file=sys.stderr)
    return 1 if failing else 0
