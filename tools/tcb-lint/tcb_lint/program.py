"""The whole-program index the cross-TU rules run on.

Clang Thread Safety Analysis is per-function and per-TU; the three
concurrency rules (lock-order-graph, no-blocking-under-lock,
tainted-admission) need facts that span translation units: which class
member every `MutexLock` resolves to, which locks a callee acquires
transitively, which functions block.  This module builds that view from the
same comment/string-blanked `SourceFile`s the per-file rules use:

  classes     name -> members (with types), bases, mutex members
  functions   every definition: owning class, parameter/local types,
              `MutexLock` scopes (with brace-matched lifetimes),
              call sites (with receiver-resolved callees)
  mutexes     lock identities ("Class::member" or "lock_order::anchor")
              with their declared TCB_ACQUIRED_BEFORE/AFTER ranks
  closures    memoized acquires-closure and blocking-closure over the
              name-resolved call graph

Precision policy: this is a lexical analysis, so resolution can fail
(templates, call-result receivers, lambdas).  Unresolved receivers are
*never* flagged — a `std::queue::pop` under a lock must not be confused
with the blocking `RequestQueue::pop`.  Lambda bodies are blanked before
scope analysis: code captured into a lambda runs later, on another thread,
not under the lock held at the capture site.  Virtual calls fan out to
every override found in subclasses of the receiver's static type.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from tcb_lint.source import SourceFile

KEYWORDS = {
    "if", "for", "while", "switch", "return", "catch", "sizeof", "throw",
    "static_assert", "decltype", "alignof", "new", "delete", "do", "else",
    "case", "default", "operator", "co_return", "co_await", "co_yield",
    "assert", "defined",
}

# Tokens that may legally precede a call expression; any *other* identifier
# directly before `name(` means `name` is a declarator (e.g. `MutexLock
# lock(mutex_)`), not a call.
CALL_PRECEDERS = {"return", "co_return", "co_await", "co_yield", "throw",
                  "else", "do", "case"}

CLASS_RE = re.compile(
    r"\b(class|struct)\s+([A-Za-z_]\w*)\s*(?:final\s*)?(:\s*[^{;]*)?\{")
BASE_RE = re.compile(r"(?:public|protected|private)?\s*(?:virtual\s+)?"
                     r"([A-Za-z_][\w:]*)")
NAMESPACE_RE = re.compile(
    r"\bnamespace\s+((?:[A-Za-z_]\w*\s*::\s*)*[A-Za-z_]\w*)?\s*\{")

MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:static\s+)?(?:inline\s+)?(?:constexpr\s+)?"
    r"(?:const\s+)?"
    r"([A-Za-z_][\w:]*(?:\s*<[^;()]*>)?)"       # type
    r"\s*[&*]?\s+([A-Za-z_]\w*)\s*"             # name
    r"((?:TCB_\w+\s*\([^;]*?\)\s*)*)"           # annotations
    r"(?:=[^;]*|\{[^;]*\})?;", re.M)

FN_RE = re.compile(
    r"((?:[A-Za-z_]\w*\s*::\s*)*)"              # qualified prefix
    r"([A-Za-z_~]\w*)\s*"                       # name
    r"\(((?:[^()]|\([^()]*\))*)\)\s*"           # params (1 nesting level, so
                                                # std::function<void()> works)
    r"((?:const\b\s*|noexcept\b\s*|override\b\s*|final\b\s*|"
    r"TCB_\w+\s*(?:\([^()]*\))?\s*|->\s*[\w:&<>,\s]+?\s*)*)"
    r"(?::\s*[^{;]*?)?\{")                      # ctor init list, then body

# Tokens stripped from the text preceding a definition to recover its return
# type (span-source-stability keys on it).
RET_STRIP_RE = re.compile(
    r"\[\[[^\]]*\]\]|\btemplate\s*<[^;{}]*>|"
    r"\b(?:inline|static|virtual|explicit|constexpr|friend|extern|typename|"
    r"mutable)\b|\b(?:public|protected|private)\s*:")

LAMBDA_RE = re.compile(
    r"\[[^\[\]]*\]\s*(?:\([^()]*\)\s*)?(?:mutable\s*)?"
    r"(?:noexcept\s*)?(?:->\s*[\w:&<>\s]+?\s*)?\{")

MUTEXLOCK_RE = re.compile(
    r"(?:const\s+)?(?:tcb\s*::\s*)?MutexLock\s+[A-Za-z_]\w*\s*"
    r"[({]\s*([^(){};]*?)\s*[)}]\s*;")

REQUIRES_RE = re.compile(r"TCB_REQUIRES\s*\(([^()]*)\)")
ACQ_AFTER_RE = re.compile(r"TCB_ACQUIRED_AFTER\s*\(([^()]*)\)")
ACQ_BEFORE_RE = re.compile(r"TCB_ACQUIRED_BEFORE\s*\(([^()]*)\)")

CALL_RE = re.compile(
    r"(?:"
    r"(?P<recv>this|[A-Za-z_]\w*(?:\s*\[[^\[\]]*\])?|[A-Za-z_]\w*\s*\{[^{}]*\}"
    r"|(?:[A-Za-z_]\w*\s*::\s*)+(?:global|instance)\s*\(\s*\))"
    r"\s*(?P<op>\.|->)\s*"
    r")?"
    r"(?P<quals>(?:[A-Za-z_]\w*\s*::\s*)*)"
    r"(?P<name>[A-Za-z_]\w*)\s*\(")

LOCAL_RE = re.compile(
    r"^\s*(?:const\s+)?"
    r"([A-Za-z_][\w:]*(?:<[^;=(){}]*>)?)"       # type
    r"\s*[&*]?\s+([A-Za-z_]\w*)\s*[=({;]", re.M)

RANGE_FOR_RE = re.compile(
    r"\bfor\s*\(\s*(?:const\s+)?([\w:]+(?:<[^()]*>)?|auto)\s*[&*]*\s*"
    r"([A-Za-z_]\w*)\s*:\s*([^)]+)\)")

TEMPLATE_ARG_RE = re.compile(r"<\s*(?:const\s+)?([\w:]+)\s*[&*]?\s*>")


def base_type(type_text: str) -> str:
    """'const tcb::RequestQueue&' -> 'RequestQueue'; keeps std:: prefixes."""
    t = type_text.strip()
    t = re.sub(r"\btcb\s*::\s*", "", t)
    t = re.sub(r"\bconst\b", "", t).strip()
    t = t.rstrip("&* ")
    if t.startswith("std::"):
        return t
    return t.split("::")[-1]


def element_type(type_text: str) -> str | None:
    """'std::vector<Request>' -> 'Request' (container element)."""
    m = TEMPLATE_ARG_RE.search(type_text)
    if m:
        return base_type(m.group(1))
    return None


@dataclass
class MutexInfo:
    lock_id: str                      # "Class::member" or "ns::name"
    path: str
    line: int
    acquired_after: list[str] = field(default_factory=list)
    acquired_before: list[str] = field(default_factory=list)


@dataclass
class ClassInfo:
    name: str
    path: str
    line: int
    bases: list[str] = field(default_factory=list)
    members: dict[str, str] = field(default_factory=dict)  # name -> base type
    mutex_members: set[str] = field(default_factory=set)


@dataclass
class LockScope:
    lock_id: str | None               # None = unresolved (still "a lock held")
    expr: str
    line: int
    start: int                        # char offsets into the function body
    end: int


@dataclass
class CallSite:
    name: str
    recv: str | None                  # raw receiver text (None = free call)
    recv_class: str | None            # resolved receiver class, or None
    quals: str                        # explicit A::B:: qualification
    line: int
    pos: int
    open_paren: int = -1              # offset of the call's '(' in the body


@dataclass
class LambdaInfo:
    start: int                        # char offsets into the *raw* function
    end: int                          # body (1:1 with the blanked body)
    captures: list[str]               # raw capture tokens ('&', '&x', 'this')
    text: str                         # full raw lambda text (introducer+body)


@dataclass
class FunctionInfo:
    name: str
    cls: str | None
    path: str
    line: int
    params: str
    body: str                         # lambda-blanked body text
    body_first_line: int
    ns: str | None = None             # innermost enclosing namespace
    ret_type: str = ""                # normalized return type ("" = ctor/dtor)
    annots: str = ""                  # trailing qualifiers + decl annotations
    raw_body: str = ""                # unblanked body (same length as body)
    requires: list[str] = field(default_factory=list)       # raw args
    scopes: list[LockScope] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    lambdas: list[LambdaInfo] = field(default_factory=list)
    types: dict[str, str] = field(default_factory=dict)     # var -> base type

    @property
    def qualname(self) -> str:
        return f"{self.cls}::{self.name}" if self.cls else self.name

    def held_at(self, pos: int) -> list[LockScope]:
        return [s for s in self.scopes if s.start <= pos < s.end]


def _match_brace(code: str, open_brace: int) -> int:
    """Index just past the brace matching code[open_brace] (== len on EOF)."""
    depth = 0
    for i in range(open_brace, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


def _match_paren(code: str, open_paren: int) -> int:
    """Index just past the paren matching code[open_paren] (== len on EOF)."""
    depth = 0
    for i in range(open_paren, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


def _collect_lambdas(body: str) -> tuple[str, list[LambdaInfo]]:
    """Blank every top-level lambda and record it.

    Deferred work does not run under the locks held at its capture site, so
    leaving lambda bodies in place would fabricate lock-order edges and
    blocking-under-lock findings (e.g. ThreadPool::parallel_for emplacing
    completion lambdas while holding the pool mutex).  Blanking is
    length-preserving (newlines survive), so the recorded offsets stay valid
    in both the raw and the blanked body; the lifetime rules analyze the
    recorded lambdas separately.
    """
    out = body
    lambdas: list[LambdaInfo] = []
    search_from = 0
    while True:
        m = LAMBDA_RE.search(out, search_from)
        if not m:
            return out, lambdas
        open_brace = m.end() - 1
        end = _match_brace(out, open_brace)
        raw = body[m.start():end]
        cm = re.match(r"\[([^\[\]]*)\]", raw)
        captures = _split_args(cm.group(1)) if cm else []
        lambdas.append(LambdaInfo(m.start(), end, captures, raw))
        blanked = "".join(c if c == "\n" else " " for c in out[m.start():end])
        out = out[:m.start()] + blanked + out[end:]
        search_from = m.start() + len(blanked)


def _blank_lambdas(body: str) -> str:
    return _collect_lambdas(body)[0]


def _extents(code: str, pattern: re.Pattern) -> list[tuple[re.Match, int, int]]:
    """(match, body_start, body_end) for every brace-introduced region."""
    out = []
    for m in pattern.finditer(code):
        open_brace = m.end() - 1
        out.append((m, open_brace + 1, _match_brace(code, open_brace) - 1))
    return out


def _split_args(text: str) -> list[str]:
    """Split annotation/parameter text on top-level commas."""
    parts, depth, cur = [], 0, []
    for c in text:
        if c in "<([{":
            depth += 1
        elif c in ">)]}":
            depth -= 1
        if c == "," and depth == 0:
            parts.append("".join(cur).strip())
            cur = []
        else:
            cur.append(c)
    tail = "".join(cur).strip()
    if tail:
        parts.append(tail)
    return parts


class ProgramIndex:
    """Cross-TU facts for one lint set (the real tree, or one fixture dir)."""

    BLOCKING_SEEDS = {
        "RequestQueue::push": "blocks on CondVar::wait until queue space frees",
        "RequestQueue::pop": "blocks on CondVar::wait until an item arrives",
        "TaskGroup::join": "blocks on future::get for every in-flight task",
        "ThreadPool::submit": "acquires the pool mutex and may run the task "
                              "inline when the pool has no workers",
        "ThreadPool::parallel_for": "blocks until every chunk completes",
    }

    def __init__(self, sources: list[SourceFile]):
        self.sources = {sf.path: sf for sf in sources}
        # Rules scope by effective path (fixtures impersonate src/ paths)
        # but report findings at the real path.
        self.effective = {sf.path: sf.effective_path for sf in sources}
        self.classes: dict[str, ClassInfo] = {}
        self.functions: list[FunctionInfo] = []
        self.by_name: dict[str, list[FunctionInfo]] = {}
        self.mutexes: dict[str, MutexInfo] = {}
        self.subclasses: dict[str, list[str]] = {}
        # (cls, method) -> annotation text from header declarations, so
        # TCB_REQUIRES on a declaration reaches the out-of-line definition.
        self._decl_annots: dict[tuple[str, str], str] = {}
        # (namespace, name) -> annotation text for *free* function
        # declarations (TCB_BITWISE on tcb::matmul in ops.hpp must reach the
        # definition in gemm.cpp without colliding with tcb::ref::matmul).
        self._free_decl_annots: dict[tuple[str | None, str], str] = {}
        for sf in sources:
            self._index_file(sf)
        # Merge declaration annotations after *all* files are indexed: the
        # compile DB lists TUs before headers, so an out-of-line definition
        # is usually indexed before the declaration carrying its
        # TCB_REQUIRES / TCB_LIFETIME_BOUND / TCB_ESCAPES annotations.
        for fn in self.functions:
            if fn.cls and (fn.cls, fn.name) in self._decl_annots:
                fn.annots += " " + self._decl_annots[(fn.cls, fn.name)]
            elif fn.cls is None \
                    and (fn.ns, fn.name) in self._free_decl_annots:
                fn.annots += " " + self._free_decl_annots[(fn.ns, fn.name)]
            for rm in REQUIRES_RE.finditer(fn.annots):
                fn.requires.extend(
                    a for a in _split_args(rm.group(1))
                    if a and not a.startswith("!"))
        self._resolve_subclasses()
        for fn in self.functions:
            self._analyze_function(fn)
        self._acq_cache: dict[str, dict[str, tuple[str, int, tuple[str, ...]]]] = {}
        self._blk_cache: dict[str, tuple[str, tuple[str, ...]] | None] = {}

    # -- indexing ----------------------------------------------------------

    def _index_file(self, sf: SourceFile) -> None:
        code = sf.code()
        class_extents = _extents(code, CLASS_RE)
        ns_extents = _extents(code, NAMESPACE_RE)

        def line_of(pos: int) -> int:
            return code.count("\n", 0, pos) + 1

        def innermost_namespace(pos: int) -> str | None:
            best = None
            for m, s, e in ns_extents:
                if s <= pos < e and m.group(1):
                    best = m.group(1)
            if best is None:
                return None
            # `namespace tcb::ref {` nests: the innermost component is the
            # one that disambiguates (tcb::matmul vs tcb::ref::matmul).
            return re.split(r"\s*::\s*", best)[-1]

        for m, s, e in class_extents:
            cname = m.group(2)
            ci = self.classes.setdefault(
                cname, ClassInfo(cname, sf.path, line_of(m.start())))
            if m.group(3):
                for bm in BASE_RE.finditer(m.group(3).lstrip(":")):
                    base = base_type(bm.group(1))
                    if base and base[0].isupper():
                        ci.bases.append(base)
            body = code[s:e]
            for dm in MEMBER_RE.finditer(body):
                mtype, mname, annots = dm.group(1), dm.group(2), dm.group(3)
                bt = base_type(mtype)
                if bt in KEYWORDS or mname in KEYWORDS:
                    continue
                ci.members[mname] = bt
                if bt == "Mutex":
                    ci.mutex_members.add(mname)
                    self._add_mutex(f"{cname}::{mname}", sf.path,
                                    line_of(s + dm.start()), annots, cname)
            # Method declarations carrying annotations (defined elsewhere).
            for dm in re.finditer(
                    r"([A-Za-z_]\w*)\s*\(((?:[^()]|\([^()]*\))*)\)\s*"
                    r"((?:const\b\s*|noexcept\b\s*|override\b\s*|"
                    r"TCB_\w+\s*(?:\([^()]*\))?\s*)*);", body):
                if "TCB_" in dm.group(3) or "TCB_" in dm.group(2):
                    self._decl_annots[(cname, dm.group(1))] = \
                        dm.group(3) + " " + dm.group(2)

        # Free-function declarations carrying annotations (defined in some
        # other TU), keyed by innermost namespace.  Mirrors the member
        # declaration merge above for namespace-scope functions.
        for dm in re.finditer(
                r"([A-Za-z_]\w*)\s*\(((?:[^()]|\([^()]*\))*)\)\s*"
                r"((?:const\b\s*|noexcept\b\s*|"
                r"TCB_\w+\s*(?:\([^()]*\))?\s*)*);", code):
            if "TCB_" not in dm.group(3) or dm.group(1) in KEYWORDS:
                continue
            if any(s <= dm.start() < e for _m, s, e in class_extents):
                continue
            key = (innermost_namespace(dm.start()), dm.group(1))
            prior = self._free_decl_annots.get(key, "")
            self._free_decl_annots[key] = (prior + " " + dm.group(3)).strip()

        # Namespace-scope mutexes (the lock_order anchors).  The annotation
        # group allows paren-less macros too (TCB_LOCK_ORDER_ANCHOR).
        for dm in re.finditer(
                r"^\s*(?:static\s+)?inline\s+(?:tcb\s*::\s*)?Mutex\s+"
                r"([A-Za-z_]\w*)\s*((?:TCB_\w+\s*(?:\([^;]*?\))?\s*)*);",
                code, re.M):
            if any(s <= dm.start() < e for _m, s, e in class_extents):
                continue
            ns = innermost_namespace(dm.start())
            lock_id = f"{ns}::{dm.group(1)}" if ns else dm.group(1)
            self._add_mutex(lock_id, sf.path, line_of(dm.start()),
                            dm.group(2), None)

        # Function definitions.
        for m in FN_RE.finditer(code):
            name = m.group(2)
            if name in KEYWORDS:
                continue
            quals = [q for q in re.split(r"\s*::\s*", m.group(1)) if q]
            open_brace = m.end() - 1
            body_end = _match_brace(code, open_brace) - 1
            cls = quals[-1] if quals else None
            if cls is None:
                for cm, cs, ce in class_extents:
                    if cs <= m.start() < ce:
                        cls = cm.group(2)
                        break
            raw_body = code[open_brace + 1:body_end]
            body, lambdas = _collect_lambdas(raw_body)
            fn = FunctionInfo(
                name=name, cls=cls, path=sf.path,
                line=line_of(m.start()), params=m.group(3), body=body,
                body_first_line=line_of(open_brace + 1),
                ns=innermost_namespace(m.start()),
                ret_type=self._ret_type(code, m.start()),
                raw_body=raw_body, lambdas=lambdas)
            fn.annots = m.group(4) or ""
            self.functions.append(fn)
            self.by_name.setdefault(name, []).append(fn)

    @staticmethod
    def _ret_type(code: str, def_start: int) -> str:
        """Normalized text between the previous statement and a definition.

        Empty for constructors/destructors (nothing precedes the name) and
        whenever the heuristic cannot see a type.  Multi-token types keep
        their '&'/'*'/template structure so rules can key on reference and
        span returns.
        """
        seg_start = max(code.rfind(c, 0, def_start) for c in ";{}") + 1
        seg = RET_STRIP_RE.sub(" ", code[seg_start:def_start])
        return re.sub(r"\s+", " ", seg).strip()

    def _add_mutex(self, lock_id: str, path: str, line: int,
                   annots: str, cls: str | None) -> None:
        mi = MutexInfo(lock_id, path, line)
        for rm in ACQ_AFTER_RE.finditer(annots):
            mi.acquired_after.extend(
                self._resolve_lock_name(a, cls)
                for a in _split_args(rm.group(1)))
        for rm in ACQ_BEFORE_RE.finditer(annots):
            mi.acquired_before.extend(
                self._resolve_lock_name(a, cls)
                for a in _split_args(rm.group(1)))
        self.mutexes[lock_id] = mi

    @staticmethod
    def _resolve_lock_name(arg: str, cls: str | None) -> str:
        arg = re.sub(r"\btcb\s*::\s*", "", arg.strip())
        if "::" in arg or cls is None:
            return arg
        return f"{cls}::{arg}"

    def _resolve_subclasses(self) -> None:
        for ci in self.classes.values():
            for b in ci.bases:
                self.subclasses.setdefault(b, []).append(ci.name)

    # -- per-function analysis --------------------------------------------

    def _analyze_function(self, fn: FunctionInfo) -> None:
        self._collect_types(fn)
        body = fn.body

        def line_of(pos: int) -> int:
            return fn.body_first_line + body.count("\n", 0, pos)

        # Brace depth at every position, for lock-scope lifetimes.
        depth_at = []
        d = 0
        for c in body:
            depth_at.append(d)
            if c == "{":
                d += 1
            elif c == "}":
                d = max(0, d - 1)

        for m in MUTEXLOCK_RE.finditer(body):
            expr = m.group(1)
            d0 = depth_at[m.start()] if m.start() < len(depth_at) else 0
            end = len(body)
            for i in range(m.end(), len(body)):
                if depth_at[i] < d0:
                    end = i
                    break
            fn.scopes.append(LockScope(
                lock_id=self._resolve_mutex_expr(expr, fn),
                expr=expr, line=line_of(m.start()), start=m.start(), end=end))

        for m in CALL_RE.finditer(body):
            name = m.group("name")
            if name in KEYWORDS or name == "MutexLock":
                continue
            recv = m.group("recv")
            if recv is None and not m.group("quals"):
                # `Type name(` is a declaration, not a call: reject when the
                # previous token is an identifier that cannot precede a call.
                before = body[:m.start()].rstrip()
                pm = re.search(r"([A-Za-z_]\w*|[>\]])\s*$", before)
                if pm and pm.group(1) not in CALL_PRECEDERS \
                        and pm.group(1) not in (">", "]"):
                    continue
            fn.calls.append(CallSite(
                name=name, recv=recv,
                recv_class=self._resolve_receiver(recv, fn),
                quals=re.sub(r"\s+", "", m.group("quals") or ""),
                line=line_of(m.start()), pos=m.start(),
                open_paren=m.end() - 1))

    def _collect_types(self, fn: FunctionInfo) -> None:
        for p in _split_args(fn.params):
            pm = re.match(r"(?:const\s+)?([\w:]+(?:<[^()]*>)?)\s*[&*]*\s*"
                          r"([A-Za-z_]\w*)$", p.strip())
            if pm and pm.group(2) not in KEYWORDS:
                fn.types[pm.group(2)] = base_type(pm.group(1))
        for lm in LOCAL_RE.finditer(fn.body):
            ltype, lname = base_type(lm.group(1)), lm.group(2)
            if ltype in KEYWORDS or lname in KEYWORDS or ltype == "return":
                continue
            fn.types.setdefault(lname, ltype)
        for rm in RANGE_FOR_RE.finditer(fn.body):
            rtype, rvar, rexpr = rm.group(1), rm.group(2), rm.group(3).strip()
            if rtype != "auto":
                fn.types[rvar] = base_type(rtype)
                continue
            container = self._expr_type(rexpr, fn)
            elem = element_type(container or "")
            if elem:
                fn.types[rvar] = elem

    def _expr_type(self, expr: str, fn: FunctionInfo) -> str | None:
        expr = expr.strip()
        if re.fullmatch(r"[A-Za-z_]\w*", expr):
            if expr in fn.types:
                return fn.types[expr]
            if fn.cls and fn.cls in self.classes:
                return self.classes[fn.cls].members.get(expr)
        return None

    def _resolve_receiver(self, recv: str | None,
                          fn: FunctionInfo) -> str | None:
        if recv is None:
            return None
        recv = recv.strip()
        if recv == "this":
            return fn.cls
        tm = re.fullmatch(r"([A-Za-z_]\w*)\s*\{[^{}]*\}", recv)
        if tm:  # temporary: NaiveBatcher{}.build(...)
            return tm.group(1) if tm.group(1) in self.classes else None
        sm = re.fullmatch(r"((?:[A-Za-z_]\w*\s*::\s*)+)(?:global|instance)"
                          r"\s*\(\s*\)", recv)
        if sm:  # singleton accessor: ThreadPool::global().submit(...)
            parts = [q for q in re.split(r"\s*::\s*", sm.group(1)) if q]
            return parts[-1] if parts else None
        im = re.fullmatch(r"([A-Za-z_]\w*)\s*\[[^\[\]]*\]", recv)
        if im:  # element access: candidates[i].length
            container = self._expr_type(im.group(1), fn)
            return element_type(container or "")
        t = self._expr_type(recv, fn)
        if t is None:
            return None
        return element_type(t) if t.startswith("std::") else t

    def _resolve_mutex_expr(self, expr: str, fn: FunctionInfo) -> str | None:
        expr = re.sub(r"\btcb\s*::\s*", "", expr.strip())
        if not expr:
            return None
        m = re.fullmatch(r"([A-Za-z_]\w*(?:::[A-Za-z_]\w*)*)", expr)
        if m:
            if "::" in expr:
                return expr if expr in self.mutexes else None
            if fn.cls and fn.cls in self.classes \
                    and expr in self.classes[fn.cls].mutex_members:
                return f"{fn.cls}::{expr}"
            return expr if expr in self.mutexes else None
        am = re.fullmatch(r"([A-Za-z_]\w*)\s*(?:\.|->)\s*([A-Za-z_]\w*)", expr)
        if am:
            cls = self._resolve_receiver(am.group(1), fn)
            if cls and cls in self.classes \
                    and am.group(2) in self.classes[cls].mutex_members:
                return f"{cls}::{am.group(2)}"
        return None

    # -- call resolution and closures -------------------------------------

    def resolve_call(self, fn: FunctionInfo, call: CallSite) -> list[FunctionInfo]:
        """Definitions a call may reach; empty when unresolved.

        Precision-first: a method call only resolves through a receiver
        whose class is known; free calls resolve only when exactly the
        named free function exists.  Virtual calls fan out to overrides in
        every known subclass of the receiver's static type.
        """
        candidates = self.by_name.get(call.name, [])
        if not candidates:
            return []
        if call.recv is not None or call.quals:
            cls = call.recv_class
            if cls is None and call.quals:
                parts = [q for q in call.quals.split("::") if q]
                cls = parts[-1] if parts and parts[-1] in self.classes else None
            if cls is None:
                return []
            wanted = {cls} | set(self._all_subclasses(cls))
            return [c for c in candidates if c.cls in wanted]
        return [c for c in candidates if c.cls is None]

    def _all_subclasses(self, cls: str) -> list[str]:
        out, stack = [], [cls]
        seen = {cls}
        while stack:
            for sub in self.subclasses.get(stack.pop(), []):
                if sub not in seen:
                    seen.add(sub)
                    out.append(sub)
                    stack.append(sub)
        return out

    def held_locks(self, fn: FunctionInfo, pos: int) -> list[tuple[str | None, str, int]]:
        """(lock_id, expr, line) for every lock held at `pos` in fn's body,
        including TCB_REQUIRES preconditions (held for the whole body)."""
        held = [(self._resolve_lock_name_in(r, fn), r, fn.line)
                for r in fn.requires]
        held += [(s.lock_id, s.expr, s.line) for s in fn.held_at(pos)]
        return held

    def _resolve_lock_name_in(self, arg: str, fn: FunctionInfo) -> str | None:
        resolved = self._resolve_mutex_expr(arg, fn)
        return resolved

    def acquires_closure(self, fn: FunctionInfo, _stack: frozenset = frozenset()
                         ) -> dict[str, tuple[str, int, tuple[str, ...]]]:
        """lock_id -> (path, line, call chain) for every lock `fn` may
        acquire, directly or through resolved callees."""
        key = f"{fn.path}:{fn.line}"
        if key in self._acq_cache:
            return self._acq_cache[key]
        if key in _stack:
            return {}
        out: dict[str, tuple[str, int, tuple[str, ...]]] = {}
        for s in fn.scopes:
            if s.lock_id is not None and s.lock_id not in out:
                out[s.lock_id] = (fn.path, s.line, (fn.qualname,))
        stack = _stack | {key}
        for call in fn.calls:
            for callee in self.resolve_call(fn, call):
                for lock_id, (p, ln, chain) in \
                        self.acquires_closure(callee, stack).items():
                    if lock_id not in out:
                        out[lock_id] = (p, ln, (fn.qualname,) + chain)
        if not _stack:
            self._acq_cache[key] = out
        return out

    def blocking_reason(self, fn: FunctionInfo, _stack: frozenset = frozenset()
                        ) -> tuple[str, tuple[str, ...]] | None:
        """Why `fn` may block, or None.  Returns (reason, call chain).

        Direct CondVar::wait makes a function blocking *for its callers*;
        the wait itself, under the lock it releases, is the sanctioned
        pattern and never flagged locally.
        """
        key = f"{fn.path}:{fn.line}"
        if key in self._blk_cache:
            return self._blk_cache[key]
        if key in _stack:
            return None
        result: tuple[str, tuple[str, ...]] | None = None
        if fn.qualname in self.BLOCKING_SEEDS:
            result = (self.BLOCKING_SEEDS[fn.qualname], (fn.qualname,))
        if result is None and re.search(r"\bthis_thread\s*::\s*sleep", fn.body):
            result = ("calls std::this_thread::sleep", (fn.qualname,))
        if result is None:
            for call in fn.calls:
                if call.name == "wait" and call.recv is not None:
                    cls = call.recv_class
                    if cls is None and call.recv:
                        t = self._expr_type(call.recv.strip(), fn)
                        cls = t
                    if cls == "CondVar":
                        result = (f"waits on a CondVar in {fn.qualname} "
                                  f"({fn.path}:{call.line})", (fn.qualname,))
                        break
        if result is None:
            stack = _stack | {key}
            for call in fn.calls:
                for callee in self.resolve_call(fn, call):
                    sub = self.blocking_reason(callee, stack)
                    if sub is not None:
                        result = (sub[0], (fn.qualname,) + sub[1])
                        break
                if result is not None:
                    break
        if not _stack:
            self._blk_cache[key] = result
        return result

    # -- helpers for rules -------------------------------------------------

    def suppressed(self, rule: str, path: str, line: int) -> bool:
        sf = self.sources.get(path)
        return sf is not None and sf.suppressed(rule, line)

    def effective_path(self, path: str) -> str:
        return self.effective.get(path, path)

    def line_of(self, fn: FunctionInfo, pos: int) -> int:
        return fn.body_first_line + fn.body.count("\n", 0, pos)


def build_index(sources: list[SourceFile]) -> ProgramIndex:
    return ProgramIndex(sources)
