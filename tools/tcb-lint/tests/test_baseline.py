"""Unit tests for the tcb-lint baseline ratchet and the backend probe cache.

Run directly (`python3 tools/tcb-lint/tests/test_baseline.py`) or through
the `tcb_lint_baseline_ratchet` ctest entry.  Everything here is pure
Python over the bundled fixtures — no C++ build required.
"""

import contextlib
import io
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from tcb_lint import backends, baseline  # noqa: E402
from tcb_lint.cli import main  # noqa: E402
from tcb_lint.source import Finding  # noqa: E402

FIXTURES = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "fixtures")
FAILING_FIXTURE = os.path.join(FIXTURES, "raw_new_delete.cpp")


def run_cli(*argv):
    """(exit code, stdout, stderr) of a cli.main invocation."""
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = main(list(argv))
    return code, out.getvalue(), err.getvalue()


class BaselineRatchetTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.baseline = os.path.join(self.tmp.name, "baseline.json")

    def tearDown(self):
        self.tmp.cleanup()

    def test_new_finding_fails_without_baseline_entry(self):
        # The baseline file does not exist: every finding is new and fails.
        code, out, _err = run_cli(
            "--backend", "text", "--baseline", self.baseline,
            FAILING_FIXTURE)
        self.assertEqual(code, 1)
        self.assertIn("no-raw-new-delete", out)

    def test_legacy_finding_suppressed_by_baseline(self):
        # Ratchet the current findings in, then re-lint: clean exit, the
        # legacy findings reported as baselined rather than failing.
        code, _out, _err = run_cli(
            "--backend", "text", "--baseline", self.baseline,
            "--update-baseline", FAILING_FIXTURE)
        self.assertEqual(code, 0)
        code, out, err = run_cli(
            "--backend", "text", "--baseline", self.baseline,
            FAILING_FIXTURE)
        self.assertEqual(code, 0)
        self.assertNotIn("no-raw-new-delete", out)
        self.assertIn("baselined", err)

    def test_no_baseline_flag_reports_everything(self):
        run_cli("--backend", "text", "--baseline", self.baseline,
                "--update-baseline", FAILING_FIXTURE)
        code, out, _err = run_cli(
            "--backend", "text", "--baseline", self.baseline,
            "--no-baseline", FAILING_FIXTURE)
        self.assertEqual(code, 1)
        self.assertIn("no-raw-new-delete", out)

    def test_update_baseline_is_deterministic(self):
        run_cli("--backend", "text", "--baseline", self.baseline,
                "--update-baseline", FAILING_FIXTURE)
        with open(self.baseline, encoding="utf-8") as f:
            first = f.read()
        run_cli("--backend", "text", "--baseline", self.baseline,
                "--update-baseline", FAILING_FIXTURE)
        with open(self.baseline, encoding="utf-8") as f:
            second = f.read()
        self.assertEqual(first, second)
        self.assertTrue(first.endswith("\n"))

    def test_stale_entries_reported_not_fatal(self):
        gone = Finding("no-raw-new-delete", "src/ghost.cpp", 1, "long gone")
        baseline.update([gone], self.baseline)
        # A clean file against a baseline with a stale entry: exit 0, but the
        # stale key is surfaced so it can be pruned.
        code, _out, err = run_cli(
            "--backend", "text", "--baseline", self.baseline,
            os.path.join(FIXTURES, "clean.cpp"))
        self.assertEqual(code, 0)
        self.assertIn("stale baseline entry", err)
        self.assertIn("src/ghost.cpp", err)

    def test_line_numbers_do_not_key_the_baseline(self):
        # Suppression keys on (rule, path, message): a finding that drifts to
        # a different line stays suppressed.
        f = Finding("r", "src/x.cpp", 10, "msg")
        baseline.update([f], self.baseline)
        known = baseline.load(self.baseline)
        drifted = Finding("r", "src/x.cpp", 99, "msg")
        new, suppressed, stale = baseline.apply([drifted], known)
        self.assertEqual(new, [])
        self.assertEqual(suppressed, [drifted])
        self.assertEqual(stale, [])

    def test_baselined_findings_kept_as_sarif_suppressions(self):
        # A baselined finding must not vanish from the SARIF report: it is
        # emitted as a result carrying a `suppressions` entry, while a fresh
        # finding in the same run carries none.
        import json

        from tcb_lint import sarif
        from tcb_lint.rules import RULES

        fresh = Finding("no-raw-new-delete", "src/a.cpp", 3, "fresh")
        legacy = Finding("no-raw-new-delete", "src/b.cpp", 7, "legacy")
        doc = json.loads(sarif.render([fresh], dict(RULES), "0",
                                      suppressed=[legacy]))
        results = doc["runs"][0]["results"]
        self.assertEqual(len(results), 2)
        by_uri = {r["locations"][0]["physicalLocation"]["artifactLocation"]
                  ["uri"]: r for r in results}
        self.assertNotIn("suppressions", by_uri["src/a.cpp"])
        sup = by_uri["src/b.cpp"]["suppressions"]
        self.assertEqual(sup[0]["kind"], "external")
        self.assertIn("baseline.json", sup[0]["justification"])

    def test_update_baseline_round_trips_byte_identically(self):
        # update -> load -> apply -> update must reproduce the file byte for
        # byte, regardless of the order findings arrive in.
        a = Finding("rule-b", "src/z.cpp", 5, "zzz")
        b = Finding("rule-a", "src/a.cpp", 9, "aaa")
        baseline.update([a, b], self.baseline)
        with open(self.baseline, encoding="utf-8") as f:
            first = f.read()
        known = baseline.load(self.baseline)
        new, suppressed, stale = baseline.apply([b, a], known)
        self.assertEqual(new, [])
        self.assertEqual(stale, [])
        baseline.update(suppressed, self.baseline)
        with open(self.baseline, encoding="utf-8") as f:
            second = f.read()
        self.assertEqual(first, second)

    def test_unsupported_version_rejected(self):
        with open(self.baseline, "w", encoding="utf-8") as f:
            f.write('{"version": 99, "findings": []}\n')
        with self.assertRaises(ValueError):
            baseline.load(self.baseline)


class ProbeCacheTest(unittest.TestCase):
    """`--backend auto` probes libclang once per process (satellite of the
    same PR: the old script re-probed and re-warned per construction)."""

    def setUp(self):
        backends.reset_probe_cache()
        if hasattr(backends.make_backend, "_warned"):
            del backends.make_backend._warned

    tearDown = setUp

    def test_probe_runs_once_across_make_backend_calls(self):
        calls = []
        orig = backends._probe_libclang

        def counting_probe():
            result = orig()
            calls.append(result)
            return result

        backends._probe_libclang = counting_probe
        try:
            backends.make_backend("auto", None, quiet=True)
            backends.make_backend("auto", None, quiet=True)
            backends.make_backend("auto", None, quiet=True)
        finally:
            backends._probe_libclang = orig
        # The probe wrapper runs per call, but the cached verdict means the
        # underlying import/load work happened at most once: all verdicts
        # are the identical cached tuple.
        self.assertEqual(len(set(calls)), 1)
        self.assertIsNotNone(backends._LIBCLANG_PROBE)

    def test_fallback_warns_once(self):
        if backends._probe_libclang()[0]:
            self.skipTest("libclang available: no fallback warning to test")
        backends.reset_probe_cache()
        err = io.StringIO()
        with contextlib.redirect_stderr(err):
            backends.make_backend("auto", None)
            backends.make_backend("auto", None)
        self.assertEqual(err.getvalue().count("libclang backend unavailable"),
                         1)


if __name__ == "__main__":
    unittest.main(verbosity=2)
