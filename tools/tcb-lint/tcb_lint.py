#!/usr/bin/env python3
"""tcb-lint entry point.

The rule pack lives in the tcb_lint/ package next to this file (see
tcb_lint/__init__.py for the layout and DESIGN.md §11 for the
architecture).  This shim keeps the historical invocation —
`python3 tools/tcb-lint/tcb_lint.py` — working for ctest entries, CI, and
muscle memory.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from tcb_lint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
