#!/usr/bin/env python3
"""tcb-lint: project-specific rule pack for the TCB codebase.

Enforces invariants that generic clang-tidy checks cannot express because
they are about *this* project's architecture (see DESIGN.md, "Lint rule
pack"):

  no-raw-token-indexing    token storage is indexed only through its owning
                           accessor (PackedBatch::token_at); raw `tokens[...]`
                           or `tokens.data()` arithmetic elsewhere is how the
                           row/column swap bugs of the pre-strong-type era
                           slipped in.
  threads-only-in-parallel all concurrency primitives live in src/parallel/;
                           the rest of the engine stays single-threaded and
                           uses the ThreadPool API.
  no-wall-clock-in-sched   scheduling and serving are driven by the virtual
                           clock so runs replay deterministically; wall-clock
                           reads there break reproducibility.
  checked-engine-boundary  functions taking an (offset, length)-style pair
                           must TCB_CHECK/TCB_DCHECK their span before using
                           it.
  no-raw-new-delete        first-party code owns memory via containers and
                           smart pointers only.
  include-layering         #include edges between src/ modules must follow
                           the documented layering DAG (util at the bottom,
                           core at the top), including the serving-internal
                           edges of the staged pipeline (clock < backend <
                           pipeline < simulator).
  engine-behind-backend    within src/serving/ only the execution-backend
                           layer (backend.*, cost_model.*) may include the
                           engine headers nn/model.hpp / nn/classifier.hpp;
                           the pipeline's stages stay engine-agnostic behind
                           ExecutionBackend (DESIGN.md §10).
  use-tcb-sync             raw std::mutex / std::condition_variable /
                           std::lock_guard / std::unique_lock (and friends)
                           live only in src/parallel/sync.hpp; everything
                           else uses the capability-annotated tcb::Mutex /
                           tcb::CondVar / tcb::MutexLock wrappers so Clang
                           Thread Safety Analysis sees every lock.
  annotated-shared-state   every tcb::Mutex or std::atomic declaration in
                           src/ must state its role in the lock discipline:
                           TCB_GUARDS(...) on mutexes, TCB_GUARDED_BY /
                           TCB_LOCK_FREE on atomics (DESIGN.md §9).

Backends
--------
The checker is driven by compile_commands.json (same discovery logic as
scripts/run-clang-tidy.sh).  Two backends produce the preprocessed view the
rules run on:

  libclang  accurate lexing through clang.cindex when the Python bindings
            and a loadable libclang are present.
  text      a dependency-free fallback that strips comments and string
            literals itself.  Always available; this is what minimal
            containers and the repo's own ctest entries use.

`--backend auto` (the default) picks libclang when importable and falls back
to text with a notice, mirroring how run-clang-tidy.sh degrades when
clang-tidy is absent.

Suppressions
------------
A finding is suppressed by `// tcb-lint: allow(<rule>)` on the offending
line, or on a line of its own immediately above it.  Suppressions are
deliberate, reviewable artifacts -- use them the way NOLINT is used.

Fixtures / self-test
--------------------
`--self-test` runs the rule pack over tools/tcb-lint/fixtures/ and checks
each file's findings against its `// expect: <rule>` annotations.  Fixtures
declare the path they impersonate with `// tcb-lint-fixture-path: <path>`
so path-scoped rules fire without the fixture living inside src/.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
FIXTURE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")

SUPPRESS_RE = re.compile(r"//\s*tcb-lint:\s*allow\(([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\)")
FIXTURE_PATH_RE = re.compile(r"//\s*tcb-lint-fixture-path:\s*(\S+)")
EXPECT_RE = re.compile(r"//\s*expect:\s*([a-z0-9-]+)")


# --------------------------------------------------------------------------
# Source model
# --------------------------------------------------------------------------

@dataclass
class SourceFile:
    """A lexed view of one translation unit member.

    `lines` hold the code with comments and string/char literals blanked
    (newlines preserved, so indices are 1:1 with the original file).
    `suppressions` maps line number -> set of rule names allowed there.
    """

    path: str                 # repo-relative path of the real file on disk
    effective_path: str       # path the rules see (fixtures override this)
    raw_lines: list[str] = field(default_factory=list)
    lines: list[str] = field(default_factory=list)
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    def code(self) -> str:
        return "\n".join(self.lines)

    def suppressed(self, rule: str, line_no: int) -> bool:
        return rule in self.suppressions.get(line_no, set())


@dataclass(frozen=True)
class Finding:
    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _collect_suppressions(raw_lines: list[str]) -> dict[int, set[str]]:
    """Map line numbers to the rules allowed on them.

    `// tcb-lint: allow(rule)` covers its own line; when the comment is the
    whole line it also covers the next line (the NOLINTNEXTLINE idiom).
    """
    out: dict[int, set[str]] = {}
    for idx, line in enumerate(raw_lines, start=1):
        m = SUPPRESS_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",")}
        out.setdefault(idx, set()).update(rules)
        if line.strip().startswith("//"):
            out.setdefault(idx + 1, set()).update(rules)
    return out


def _strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving newlines.

    A hand-rolled scanner rather than regex so `//` inside strings and `*/`
    inside line comments behave correctly.  Raw strings are handled enough
    for this codebase (which does not use them).
    """
    out: list[str] = []
    i, n = 0, len(text)
    NORMAL, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR = range(5)
    state = NORMAL
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = STRING
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = CHAR
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == LINE_COMMENT:
            if c == "\n":
                state = NORMAL
                out.append(c)
            else:
                out.append(" ")
        elif state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                state = NORMAL
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state == STRING:
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = NORMAL
                out.append('"')
            elif c == "\n":  # unterminated; recover
                state = NORMAL
                out.append(c)
            else:
                out.append(" ")
        elif state == CHAR:
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = NORMAL
                out.append("'")
            elif c == "\n":
                state = NORMAL
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


# --------------------------------------------------------------------------
# Backends
# --------------------------------------------------------------------------

class TextBackend:
    """Dependency-free lexer: strips comments/strings itself."""

    name = "text"

    def lex(self, path: str) -> SourceFile:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        raw_lines = text.splitlines()
        stripped = _strip_comments_and_strings(text).splitlines()
        # splitlines() drops a trailing empty segment symmetrically for both.
        sf = SourceFile(path=_rel(path), effective_path=_rel(path),
                        raw_lines=raw_lines, lines=stripped,
                        suppressions=_collect_suppressions(raw_lines))
        _apply_fixture_path(sf)
        return sf


class LibclangBackend:
    """Lexes through clang.cindex for exact tokenization.

    Only the token stream is used (the rules below are lexical and
    path-structural), so a TU that fails to fully parse still lints.
    """

    name = "libclang"

    def __init__(self, compile_db_dir: str | None):
        import clang.cindex as cindex  # noqa: F401  (import errors gate the backend)

        self._cindex = cindex
        self._index = cindex.Index.create()  # raises if libclang cannot load
        self._db = None
        if compile_db_dir:
            try:
                self._db = cindex.CompilationDatabase.fromDirectory(compile_db_dir)
            except cindex.CompilationDatabaseError:
                self._db = None

    def _args_for(self, path: str) -> list[str]:
        if self._db is None:
            return ["-std=c++20", f"-I{os.path.join(REPO_ROOT, 'src')}"]
        cmds = self._db.getCompileCommands(path)
        if not cmds:
            return ["-std=c++20", f"-I{os.path.join(REPO_ROOT, 'src')}"]
        args = list(cmds[0].arguments)[1:]  # drop the compiler itself
        # Drop the output/input file arguments; keep -I/-D/-std et al.
        cleaned, skip = [], False
        for a in args:
            if skip:
                skip = False
                continue
            if a in ("-o", "-c"):
                skip = a == "-o"
                continue
            if a == path or a.endswith(os.path.basename(path)):
                continue
            cleaned.append(a)
        return cleaned

    def lex(self, path: str) -> SourceFile:
        cindex = self._cindex
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        raw_lines = text.splitlines()
        tu = self._index.parse(
            path, args=self._args_for(path),
            options=cindex.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
        # Rebuild a comment/string-blanked view from the token stream so the
        # shared rule logic sees identical structure from both backends.
        blank = [" " * len(l) for l in raw_lines]
        for tok in tu.get_tokens(extent=tu.cursor.extent):
            if tok.kind in (cindex.TokenKind.COMMENT,):
                continue
            spelled = tok.spelling
            if tok.kind == cindex.TokenKind.LITERAL and spelled.startswith(('"', "'")):
                spelled = spelled[0] + " " * max(0, len(spelled) - 2) + spelled[0]
            loc = tok.location
            ln, col = loc.line - 1, loc.column - 1
            for part_no, part in enumerate(spelled.splitlines() or [""]):
                row = ln + part_no
                if row >= len(blank):
                    break
                start = col if part_no == 0 else 0
                line = blank[row]
                blank[row] = line[:start] + part + line[start + len(part):]
        sf = SourceFile(path=_rel(path), effective_path=_rel(path),
                        raw_lines=raw_lines, lines=blank,
                        suppressions=_collect_suppressions(raw_lines))
        _apply_fixture_path(sf)
        return sf


def _rel(path: str) -> str:
    return os.path.relpath(os.path.abspath(path), REPO_ROOT).replace(os.sep, "/")


def _apply_fixture_path(sf: SourceFile) -> None:
    for line in sf.raw_lines[:10]:
        m = FIXTURE_PATH_RE.search(line)
        if m:
            sf.effective_path = m.group(1)
            return


def make_backend(kind: str, compile_db_dir: str | None):
    if kind == "text":
        return TextBackend()
    if kind == "libclang":
        return LibclangBackend(compile_db_dir)
    # auto
    try:
        return LibclangBackend(compile_db_dir)
    except Exception as e:  # ImportError or libclang load failure
        print(f"tcb-lint: libclang backend unavailable ({e.__class__.__name__}); "
              "using the textual backend.", file=sys.stderr)
        return TextBackend()


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------

RULES: dict[str, "Rule"] = {}


class Rule:
    name = ""
    description = ""

    def applies_to(self, effective_path: str) -> bool:
        raise NotImplementedError

    def check(self, sf: SourceFile) -> list[Finding]:
        raise NotImplementedError


def register(cls):
    RULES[cls.name] = cls()
    return cls


def _scan_lines(sf: SourceFile, pattern: re.Pattern, rule: str,
                message: str) -> list[Finding]:
    out = []
    for idx, line in enumerate(sf.lines, start=1):
        if pattern.search(line) and not sf.suppressed(rule, idx):
            out.append(Finding(rule, sf.path, idx, message))
    return out


@register
class NoRawTokenIndexing(Rule):
    name = "no-raw-token-indexing"
    description = ("token storage is indexed only through its owning accessor "
                   "(PackedBatch::token_at / flat_offset); raw tokens[...] or "
                   "tokens.data() arithmetic elsewhere reintroduces the "
                   "swapped-row/column bug class")
    OWNERS = ("src/batching/packed_batch.hpp", "src/batching/packed_batch.cpp")
    PATTERN = re.compile(r"\btokens\s*(\[|\.\s*data\s*\()")

    def applies_to(self, path: str) -> bool:
        return path not in self.OWNERS

    def check(self, sf: SourceFile) -> list[Finding]:
        return _scan_lines(
            sf, self.PATTERN, self.name,
            "raw token-buffer indexing outside the owning accessor; go through "
            "PackedBatch::token_at(Row, Col) or Request token helpers")


@register
class ThreadsOnlyInParallel(Rule):
    name = "threads-only-in-parallel"
    description = ("concurrency primitives (std::thread/async/mutex/"
                   "condition_variable...) are confined to src/parallel/; "
                   "everything else uses the ThreadPool API")
    PATTERN = re.compile(
        r"\bstd\s*::\s*(thread|jthread|async|mutex|timed_mutex|recursive_mutex|"
        r"recursive_timed_mutex|shared_mutex|shared_timed_mutex|"
        r"condition_variable(_any)?)\b")

    def applies_to(self, path: str) -> bool:
        in_scope = path.startswith(("src/", "tests/", "bench/", "examples/"))
        return in_scope and not path.startswith(("src/parallel/", "tests/parallel/"))

    def check(self, sf: SourceFile) -> list[Finding]:
        return _scan_lines(
            sf, self.PATTERN, self.name,
            "raw concurrency primitive outside src/parallel/; submit work "
            "through tcb::ThreadPool instead")


@register
class NoWallClockInSched(Rule):
    name = "no-wall-clock-in-sched"
    description = ("src/sched/ and src/serving/ run on the deterministic "
                   "virtual clock; wall-clock reads (steady_clock::now, "
                   "Timer) break replayability unless explicitly allowed")
    PATTERN = re.compile(
        r"\b(system_clock|steady_clock|high_resolution_clock)\s*::\s*now\s*\(|"
        r"\bTimer\b")

    def applies_to(self, path: str) -> bool:
        return path.startswith(("src/sched/", "src/serving/"))

    def check(self, sf: SourceFile) -> list[Finding]:
        return _scan_lines(
            sf, self.PATTERN, self.name,
            "wall-clock read in virtual-clock code; use the simulation clock, "
            "or annotate a deliberate overhead measurement with "
            "// tcb-lint: allow(no-wall-clock-in-sched)")


@register
class CheckedEngineBoundary(Rule):
    name = "checked-engine-boundary"
    description = ("function definitions taking an (offset, length)-style "
                   "parameter pair must validate the span with "
                   "TCB_CHECK/TCB_DCHECK before indexing with it")
    # A function header: name(params) [qualifiers] {   -- captured lazily and
    # verified by counting braces from the opening one.
    HEADER_RE = re.compile(
        r"\b([A-Za-z_]\w*)\s*\(([^()]*)\)\s*"
        r"(?:const\s*)?(?:noexcept\s*)?(?:->\s*[\w:<>]+\s*)?\{", re.S)
    OFFSET_RE = re.compile(r"\b\w*(offset|begin|start)\w*\b", re.I)
    LENGTH_RE = re.compile(r"\b\w*(length|len|count)\w*\b", re.I)
    CHECK_RE = re.compile(r"\bTCB_D?CHECK\b")
    KEYWORDS = {"if", "for", "while", "switch", "return", "catch", "sizeof",
                "static_assert", "decltype", "alignof", "new", "delete"}

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/")

    def check(self, sf: SourceFile) -> list[Finding]:
        code = sf.code()
        out = []
        for m in self.HEADER_RE.finditer(code):
            fn_name, params = m.group(1), m.group(2)
            if fn_name in self.KEYWORDS:
                continue
            if not (self.OFFSET_RE.search(params) and self.LENGTH_RE.search(params)):
                continue
            body = self._body(code, m.end() - 1)
            if body is None or self.CHECK_RE.search(body):
                continue
            line_no = code.count("\n", 0, m.start()) + 1
            if sf.suppressed(self.name, line_no):
                continue
            out.append(Finding(
                self.name, sf.path, line_no,
                f"'{fn_name}' takes an offset/length pair but its body has no "
                "TCB_CHECK/TCB_DCHECK guarding the span"))
        return out

    @staticmethod
    def _body(code: str, open_brace: int) -> str | None:
        depth = 0
        for i in range(open_brace, len(code)):
            if code[i] == "{":
                depth += 1
            elif code[i] == "}":
                depth -= 1
                if depth == 0:
                    return code[open_brace + 1:i]
        return None


@register
class NoRawNewDelete(Rule):
    name = "no-raw-new-delete"
    description = ("first-party engine code owns memory through containers "
                   "and smart pointers; raw new/delete expressions are "
                   "forbidden in src/")
    PATTERN = re.compile(r"(?<!_)\b(new|delete)\b(?!_)(?!\s*\()")
    DELETED_FN_RE = re.compile(r"=\s*delete\b")

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/")

    def check(self, sf: SourceFile) -> list[Finding]:
        out = []
        for idx, line in enumerate(sf.lines, start=1):
            # `= delete` declarations are the C++ idiom, not a deallocation.
            scrubbed = self.DELETED_FN_RE.sub("", line)
            if self.PATTERN.search(scrubbed) and not sf.suppressed(self.name, idx):
                out.append(Finding(
                    self.name, sf.path, idx,
                    "raw new/delete expression; use std::vector, "
                    "std::unique_ptr, or std::make_unique"))
        return out


@register
class UseTcbSync(Rule):
    name = "use-tcb-sync"
    description = ("raw std synchronization primitives (mutex, "
                   "condition_variable, lock_guard, unique_lock, ...) are "
                   "confined to src/parallel/sync.hpp; everything else uses "
                   "the annotated tcb::Mutex/CondVar/MutexLock wrappers so "
                   "Clang Thread Safety Analysis can check the lock "
                   "discipline")
    OWNER = "src/parallel/sync.hpp"
    PATTERN = re.compile(
        r"\bstd\s*::\s*(mutex|timed_mutex|recursive_mutex|"
        r"recursive_timed_mutex|shared_mutex|shared_timed_mutex|"
        r"condition_variable(_any)?|lock_guard|unique_lock|scoped_lock|"
        r"shared_lock)\b")

    def applies_to(self, path: str) -> bool:
        in_scope = path.startswith(("src/", "tests/", "bench/", "examples/"))
        return in_scope and path != self.OWNER

    def check(self, sf: SourceFile) -> list[Finding]:
        return _scan_lines(
            sf, self.PATTERN, self.name,
            "raw synchronization primitive outside parallel/sync.hpp; use "
            "tcb::Mutex / tcb::CondVar / tcb::MutexLock so the thread "
            "safety analysis sees the lock")


@register
class AnnotatedSharedState(Rule):
    name = "annotated-shared-state"
    description = ("every tcb::Mutex or std::atomic declaration in src/ "
                   "must declare its role in the lock discipline: "
                   "TCB_GUARDS(...) on a mutex (what it protects), "
                   "TCB_GUARDED_BY(...) or TCB_LOCK_FREE on an atomic, or "
                   "an explicit // tcb-lint: allow(annotated-shared-state)")
    # A mutex- or atomic-typed declaration starting a line. MutexLock (the
    # scope) is excluded by the lookahead; raw std mutexes are use-tcb-sync's
    # business, so only the sanctioned tcb::Mutex and std::atomic are here.
    DECL_RE = re.compile(
        r"^\s*(?:mutable\s+)?(?:static\s+)?"
        r"(?:(?:tcb\s*::\s*)?Mutex(?!Lock)\b"
        r"|std\s*::\s*atomic(?:_flag\b|\w*\b)?(?:\s*<[^;{}()]*>)?)"
        r"\s+\w+")
    ANNOT_RE = re.compile(
        r"\bTCB_(GUARDS|GUARDED_BY|PT_GUARDED_BY|LOCK_FREE|"
        r"ACQUIRED_BEFORE|ACQUIRED_AFTER)\b")

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/")

    def check(self, sf: SourceFile) -> list[Finding]:
        out = []
        for idx, line in enumerate(sf.lines, start=1):
            if not self.DECL_RE.match(line):
                continue
            # The annotation may sit on the declaration's continuation line
            # when the declarator wraps; join until the terminating ';'.
            stmt = line
            if ";" not in line and idx < len(sf.lines):
                stmt += " " + sf.lines[idx]
            if self.ANNOT_RE.search(stmt) or sf.suppressed(self.name, idx):
                continue
            out.append(Finding(
                self.name, sf.path, idx,
                "mutex/atomic declaration without a lock-discipline "
                "annotation; add TCB_GUARDS(...) / TCB_GUARDED_BY(...) / "
                "TCB_LOCK_FREE (see src/parallel/sync.hpp and DESIGN.md §9)"))
        return out


@register
class IncludeLayering(Rule):
    name = "include-layering"
    description = ("#include edges between src/ modules must follow the "
                   "layering DAG (DESIGN.md): util at the bottom, core at "
                   "the top; e.g. sched may not include nn")
    # module -> modules it may include (its own module is always allowed).
    DAG = {
        "util": set(),
        "parallel": {"util"},
        "tensor": {"parallel", "util"},
        "batching": {"parallel", "tensor", "util"},
        "text": {"batching", "tensor", "util"},
        "workload": {"batching", "tensor", "util"},
        "sched": {"batching", "tensor", "util"},
        "nn": {"batching", "parallel", "tensor", "util"},
        "serving": {"batching", "nn", "parallel", "sched", "tensor", "util"},
        "core": {"batching", "nn", "parallel", "sched", "serving", "tensor",
                 "text", "util", "workload"},
    }
    INCLUDE_RE = re.compile(r'#\s*include\s*"([a-z]+)/[^"]+"')

    # Serving-internal refinement for the staged pipeline: file stem ->
    # serving stems it may include (its own stem is always allowed). Clock
    # and the queue sit at the bottom, the backend above the cost model, the
    # pipeline above both, and the thin simulator wrapper on top. Stems not
    # listed here (future serving files) are only module-checked.
    SERVING_DAG = {
        "clock": set(),
        "cost_model": set(),
        "request_queue": set(),
        "backend": {"cost_model"},
        "pipeline": {"backend", "clock", "request_queue"},
        "simulator": {"cost_model", "pipeline"},
    }
    SERVING_INCLUDE_RE = re.compile(r'#\s*include\s*"serving/(\w+)\.hpp"')

    def applies_to(self, path: str) -> bool:
        parts = path.split("/")
        return len(parts) >= 3 and parts[0] == "src" and parts[1] in self.DAG

    def check(self, sf: SourceFile) -> list[Finding]:
        module = sf.effective_path.split("/")[1]
        allowed = self.DAG[module] | {module}
        stem = os.path.splitext(os.path.basename(sf.effective_path))[0]
        serving_allowed = None
        if module == "serving" and stem in self.SERVING_DAG:
            serving_allowed = self.SERVING_DAG[stem] | {stem}
        out = []
        # Includes survive stripping, but the quoted path does not -- read the
        # raw lines and skip ones that are commented out via the stripped view.
        for idx, (raw, stripped) in enumerate(
                zip(sf.raw_lines, sf.lines), start=1):
            if "#" not in stripped:
                continue
            m = self.INCLUDE_RE.search(raw)
            if not m:
                continue
            target = m.group(1)
            if (target in self.DAG and target not in allowed
                    and not sf.suppressed(self.name, idx)):
                out.append(Finding(
                    self.name, sf.path, idx,
                    f"module '{module}' may not include '{target}' "
                    f"(allowed: {', '.join(sorted(allowed))})"))
                continue
            if serving_allowed is None:
                continue
            sm = self.SERVING_INCLUDE_RE.search(raw)
            if not sm:
                continue
            starget = sm.group(1)
            if (starget in self.SERVING_DAG and starget not in serving_allowed
                    and not sf.suppressed(self.name, idx)):
                out.append(Finding(
                    self.name, sf.path, idx,
                    f"serving-internal layering: '{stem}' may not include "
                    f"'serving/{starget}.hpp' (allowed: "
                    f"{', '.join(sorted(serving_allowed))})"))
        return out


@register
class EngineBehindBackend(Rule):
    name = "engine-behind-backend"
    description = ("within src/serving/ only the execution-backend layer "
                   "(backend.*, cost_model.*) may include the engine headers "
                   "nn/model.hpp / nn/classifier.hpp; the pipeline's stages "
                   "stay engine-agnostic behind ExecutionBackend "
                   "(DESIGN.md §10)")
    ALLOWED = ("src/serving/backend.hpp", "src/serving/backend.cpp",
               "src/serving/cost_model.hpp", "src/serving/cost_model.cpp")
    PATTERN = re.compile(r'#\s*include\s*"nn/(model|classifier)\.hpp"')

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/serving/") and path not in self.ALLOWED

    def check(self, sf: SourceFile) -> list[Finding]:
        out = []
        # Same raw/stripped split as include-layering: the include path is
        # blanked in the stripped view, comments are blanked in the raw one.
        for idx, (raw, stripped) in enumerate(
                zip(sf.raw_lines, sf.lines), start=1):
            if "#" not in stripped:
                continue
            if self.PATTERN.search(raw) and not sf.suppressed(self.name, idx):
                out.append(Finding(
                    self.name, sf.path, idx,
                    "serving code outside the backend layer includes an "
                    "engine header; route execution through ExecutionBackend "
                    "(serving/backend.hpp)"))
        return out


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def discover_compile_db() -> str | None:
    for candidate in ("build", "build-release", "build-debug",
                      "build-asan-ubsan"):
        if os.path.isfile(os.path.join(REPO_ROOT, candidate,
                                       "compile_commands.json")):
            return os.path.join(REPO_ROOT, candidate)
    return None


def files_from_compile_db(db_dir: str) -> list[str]:
    with open(os.path.join(db_dir, "compile_commands.json"),
              encoding="utf-8") as f:
        entries = json.load(f)
    seen: dict[str, None] = {}
    for e in entries:
        p = os.path.abspath(os.path.join(e.get("directory", "."), e["file"]))
        rel = _rel(p)
        # Lint first-party translation units only; headers ride along below.
        if rel.startswith(("src/", "tests/", "bench/", "examples/")):
            seen[p] = None
    # compile_commands.json has no headers; fold in first-party headers so
    # header-only misuse (e.g. a mutex in a sched header) is still caught.
    for root in ("src",):
        for dirpath, _dirs, names in os.walk(os.path.join(REPO_ROOT, root)):
            for n in sorted(names):
                if n.endswith((".hpp", ".h")):
                    seen[os.path.join(dirpath, n)] = None
    return list(seen)


def lint_paths(paths: list[str], backend, rules: list[Rule]) -> list[Finding]:
    findings: list[Finding] = []
    for path in paths:
        sf = backend.lex(path)
        for rule in rules:
            if rule.applies_to(sf.effective_path):
                findings.extend(rule.check(sf))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def run_self_test(backend, rules: list[Rule]) -> int:
    if not os.path.isdir(FIXTURE_DIR):
        print(f"tcb-lint: fixture directory missing: {FIXTURE_DIR}",
              file=sys.stderr)
        return 2
    failures = 0
    fixture_files = sorted(
        os.path.join(FIXTURE_DIR, n) for n in os.listdir(FIXTURE_DIR)
        if n.endswith((".cpp", ".hpp")))
    if not fixture_files:
        print("tcb-lint: no fixtures found", file=sys.stderr)
        return 2
    for path in fixture_files:
        sf = backend.lex(path)
        expected = sorted(EXPECT_RE.findall("\n".join(sf.raw_lines)))
        got = sorted({f.rule for f in lint_paths([path], backend, rules)})
        unknown = [r for r in expected if r not in RULES]
        if unknown:
            print(f"SELF-TEST FAIL {sf.path}: unknown rule(s) in expectations: "
                  f"{', '.join(unknown)}")
            failures += 1
            continue
        if got == sorted(set(expected)):
            print(f"self-test ok   {sf.path}: "
                  f"{', '.join(expected) if expected else '(clean)'}")
        else:
            print(f"SELF-TEST FAIL {sf.path}: expected "
                  f"[{', '.join(expected) or 'clean'}] got "
                  f"[{', '.join(got) or 'clean'}]")
            failures += 1
    if failures:
        print(f"tcb-lint self-test: {failures} fixture(s) failed",
              file=sys.stderr)
        return 1
    print(f"tcb-lint self-test: {len(fixture_files)} fixture(s) ok")
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(prog="tcb-lint", description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("-p", "--build-dir", default=None,
                    help="directory with compile_commands.json (default: "
                         "autodetect build*/ like run-clang-tidy.sh)")
    ap.add_argument("--backend", choices=("auto", "libclang", "text"),
                    default="auto")
    ap.add_argument("--rule", action="append", default=None,
                    help="restrict to this rule (repeatable)")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--self-test", action="store_true",
                    help="lint the bundled fixtures against their "
                         "// expect: annotations")
    ap.add_argument("paths", nargs="*",
                    help="files to lint (default: every first-party TU in "
                         "compile_commands.json plus src/ headers)")
    args = ap.parse_args(argv)

    if args.list_rules:
        for name in sorted(RULES):
            print(f"{name}\n    {RULES[name].description}")
        return 0

    rule_names = args.rule or sorted(RULES)
    unknown = [r for r in rule_names if r not in RULES]
    if unknown:
        print(f"tcb-lint: unknown rule(s): {', '.join(unknown)}; "
              f"try --list-rules", file=sys.stderr)
        return 2
    rules = [RULES[r] for r in rule_names]

    db_dir = args.build_dir or discover_compile_db()
    backend = make_backend(args.backend, db_dir)

    if args.self_test:
        return run_self_test(backend, rules)

    if args.paths:
        paths = [os.path.abspath(p) for p in args.paths]
        missing = [p for p in paths if not os.path.isfile(p)]
        if missing:
            print(f"tcb-lint: no such file: {', '.join(missing)}",
                  file=sys.stderr)
            return 2
    else:
        if db_dir is None:
            print("tcb-lint: no compile_commands.json found; configure a "
                  "build first (cmake --preset release) or pass files "
                  "explicitly.", file=sys.stderr)
            return 2
        paths = files_from_compile_db(db_dir)

    findings = lint_paths(paths, backend, rules)
    for f in findings:
        print(f.render())
    print(f"tcb-lint ({backend.name}): {len(paths)} file(s), "
          f"{len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
