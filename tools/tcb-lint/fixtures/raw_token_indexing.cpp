// tcb-lint-fixture-path: src/nn/bad_token_access.cpp
// Fixture: indexes the packed token buffer directly instead of going
// through PackedBatch::token_at(Row, Col).  This is exactly the access
// pattern that produced the swapped row/column bugs the strong-index layer
// exists to prevent.
// expect: no-raw-token-indexing

#include <vector>

struct FakeBatch {
  std::vector<long> tokens;
  long width = 0;
};

long read_token(const FakeBatch& b, long r, long c) {
  return b.tokens[r * b.width + c];  // flagged: raw tokens[...] arithmetic
}

const long* token_base(const FakeBatch& b) {
  return b.tokens.data();  // flagged: raw .data() escape hatch
}
