// tcb-lint-fixture-path: src/tensor/closure_fixture.cpp
// The violating chain is indirect: kernel -> helper (unannotated) ->
// fast_norm (TCB_REASSOC). Extracting a helper must not launder the
// forbidden call — the rule traverses every unannotated callee and only
// stops at annotated (trusted) boundaries.
// expect: bitwise-closure

namespace demo {

float fast_norm(const float* x, int n) TCB_REASSOC {
  float acc = 0.0f;
  for (int i = 0; i < n; ++i) acc += x[i] * x[i];
  return acc;
}

float helper(const float* x, int n) {
  return fast_norm(x, n);
}

float kernel(const float* x, int n) TCB_BITWISE {
  return helper(x, n);  // reaches TCB_REASSOC two hops down
}

}  // namespace demo
