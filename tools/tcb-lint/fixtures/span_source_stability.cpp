// tcb-lint-fixture-path: src/tensor/span_fixture.cpp
// Fixture: reference- and span-returning accessors with no
// TCB_LIFETIME_BOUND annotation.  Callers on temporaries
// (`Block{}.cells()`) dangle silently because clang never learns the
// return borrows from `this`.
// expect: span-source-stability

namespace demo {

class Block {
 public:
  const float& front() const { return cells_[0]; }  // flagged: bare ref
  std::span<const float> cells() const { return cells_; }  // flagged: span
  int size() const { return 4; }  // by value: clean

 private:
  float cells_[4] = {0.0f, 0.0f, 0.0f, 0.0f};
};

}  // namespace demo
