// Fixture: first half of a cross-TU ABBA deadlock.  This TU acquires
// mu_a_ then mu_b_; ba.cpp acquires them in the opposite order.  Each TU
// compiles clean under per-TU analysis — the cycle only exists in the
// whole-program lock-order graph.
// expect: lock-order-graph

#include "locks.hpp"

namespace demo {

void Pair::lock_ab() {
  tcb::MutexLock a(mu_a_);
  tcb::MutexLock b(mu_b_);  // edge: mu_a_ acquired-before mu_b_
}

}  // namespace demo
