// Fixture header shared by the two TUs of the lock_order_cycle mini-program.
// Pair owns two mutexes; ab.cpp nests a-then-b, ba.cpp nests b-then-a.
// Neither TU is wrong on its own — only the whole-program acquired-before
// graph sees the ABBA cycle, which is exactly what lock-order-graph exists
// to catch across translation units.
#pragma once

namespace demo {

class Pair {
 public:
  void lock_ab();
  void lock_ba();

 private:
  tcb::Mutex mu_a_;
  tcb::Mutex mu_b_;
};

}  // namespace demo
