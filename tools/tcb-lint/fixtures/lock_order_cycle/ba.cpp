// Fixture: second half of the cross-TU ABBA deadlock (see ab.cpp).  The
// reverse nesting below closes the cycle mu_a_ -> mu_b_ -> mu_a_.

#include "locks.hpp"

namespace demo {

void Pair::lock_ba() {
  tcb::MutexLock b(mu_b_);
  tcb::MutexLock a(mu_a_);  // edge: mu_b_ acquired-before mu_a_ -- cycle
}

}  // namespace demo
