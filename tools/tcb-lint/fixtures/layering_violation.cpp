// tcb-lint-fixture-path: src/sched/bad_layering.cpp
// Fixture: the scheduler reaching into nn/ inverts the layering DAG --
// sched sits below nn precisely so scheduling policy can be tested without
// building models.  (The include target does not need to exist; the rule is
// purely structural.)
// expect: include-layering

#include "nn/model.hpp"       // flagged: sched may not include nn
#include "serving/report.hpp" // flagged: sched may not include serving

int bad_layering_marker() { return 0; }
