// tcb-lint-fixture-path: src/batching/geom_fixture.cpp
// One TU of the cross-TU geometry-taint case: Plan::max_width is the
// annotated batch-global accessor, and padded_total returns a value
// derived from it, so the source fixpoint must mark padded_total itself
// as a geometry source for callers in *other* TUs.

namespace demo {

struct Plan {
  int capacity = 0;
  int max_width() const TCB_BATCH_GEOMETRY { return capacity; }
};

int padded_total(const Plan& plan) {
  const int w = plan.max_width();
  return w * 4;  // derived: the source propagates through the return
}

}  // namespace demo
