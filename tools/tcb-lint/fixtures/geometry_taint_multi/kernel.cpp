// tcb-lint-fixture-path: src/tensor/geom_kernel_fixture.cpp
// The other TU: reduce_row never mentions max_width — the batch width
// arrives through padded_total (defined in geom.cpp), so the finding
// requires the cross-TU source fixpoint, exactly like a real kernel
// picking its bound from a BatchPlan helper.
// expect: batch-geometry-taint

namespace demo {

struct Plan;
int padded_total(const Plan& plan);

float reduce_row(const Plan& plan, const float* x) TCB_BITWISE {
  const int w = padded_total(plan);  // batch-global, via the helper
  float acc = 0.0f;
  for (int j = 0; j < w; ++j) acc += x[j];  // flagged: bound = batch shape
  return acc;
}

}  // namespace demo
