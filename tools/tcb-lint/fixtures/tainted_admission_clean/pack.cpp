// tcb-lint-fixture-path: src/batching/pack_clean_fixture.cpp
// Sink half of the clean control: same arithmetic as the failing twin; it
// stays silent because the caller sanitized the fields first.

namespace tcb {

void pack_rows(std::vector<Request>& pending) {
  int used = 0;
  for (const Request& r : pending) {
    used += r.length + 1;
  }
}

}  // namespace tcb
