// tcb-lint-fixture-path: src/serving/admit_clean_fixture.cpp
// Clean control for tainted-admission: identical flow to the
// tainted_admission/ fixture, but the entry point validates the external
// fields with TCB_CHECK before they reach the batching sink, so the taint
// is sanitized on every path.  (No `// expect:` lines on purpose.)

namespace tcb {

void admit_pending(std::vector<Request>& pending) {
  for (const Request& r : pending) {
    TCB_CHECK(r.length >= 1 && r.length <= 64,
              "admit: length outside schedulable range");
    TCB_CHECK(r.deadline >= 0.0, "admit: deadline before epoch");
  }
  pack_rows(pending);  // fields validated above: clean
}

}  // namespace tcb
