// Clean control for no-blocking-under-lock: the two sanctioned shapes.
// Worker::drain drops its lock before the blocking push, and
// Worker::wait_for_item uses the direct cv.wait(lock) pattern — the one
// blocking call that is exempt at its own site, because the wait releases
// the mutex while sleeping.  (No `// expect:` lines on purpose.)

namespace demo {

class RequestQueue {
 public:
  void push(int v) { last_ = v; }

 private:
  int last_ = 0;
};

class Worker {
 public:
  void drain(RequestQueue& q) {
    {
      tcb::MutexLock l(mu_);
      pending_ = 0;
    }  // lock released before the blocking call: clean
    q.push(1);
  }

  void wait_for_item() {
    tcb::MutexLock l(mu_);
    while (pending_ == 0) cv_.wait(l);  // sanctioned pattern: exempt
  }

 private:
  tcb::Mutex mu_;
  tcb::CondVar cv_;
  int pending_ = 0;
};

}  // namespace demo
