// tcb-lint-fixture-path: src/batching/move_fixture.cpp
// Fixture: both use-after-move shapes.  drain reads `items` in the very
// scope that moved it; Accumulator::collect moves a member from inside a
// loop without ever resetting it, so iteration 2 donates a moved-from
// vector.
// expect: use-after-move

namespace demo {

struct Item {
  int weight = 0;
};

int drain(std::vector<Item> items) {
  std::vector<Item> taken = std::move(items);
  // flagged: `items` holds a valid but unspecified value here.
  return static_cast<int>(items.size()) + static_cast<int>(taken.size());
}

struct Accumulator {
  std::vector<int> scratch;
  std::vector<std::vector<int>> rounds;

  void collect(int n) {
    for (int i = 0; i < n; ++i) {
      rounds.push_back(std::move(scratch));  // flagged: never reset in loop
    }
  }
};

}  // namespace demo
