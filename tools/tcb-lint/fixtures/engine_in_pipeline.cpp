// tcb-lint-fixture-path: src/serving/pipeline_stage.cpp
// Fixture: serving-pipeline code reaching past ExecutionBackend straight
// into the engine.  Only the backend layer (backend.*, cost_model.*) may
// include nn/model.hpp or nn/classifier.hpp from src/serving/ -- the
// pipeline's stages stay engine-agnostic (DESIGN.md §10).
// expect: engine-behind-backend

#include "nn/model.hpp"  // flagged: engine header outside the backend layer

int engine_in_pipeline_marker() { return 0; }
