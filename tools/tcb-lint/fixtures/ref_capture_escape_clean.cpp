// tcb-lint-fixture-path: src/serving/escape_fixture_clean.cpp
// Clean control for no-ref-capture-escape: the two sanctioned shapes.
// A by-value capture may escape freely; a by-reference capture is fine
// under the structured-join pattern — the TaskGroup is declared after the
// captured state and joined in the same function, so every task retires
// while the capture is still alive.

namespace demo {

class WorkerPool {
 public:
  void submit(std::function<void()> fn TCB_ESCAPES) {
    pending_ += fn ? 1 : 0;
  }

 private:
  int pending_ = 0;
};

class TaskGroup {
 public:
  void spawn(WorkerPool& pool, std::function<void()> fn TCB_ESCAPES) {
    pool.submit(std::move(fn));
  }
  void join() { joined_ = true; }

 private:
  bool joined_ = false;
};

int run(WorkerPool& pool) {
  int total = 0;      // declared before the group: outlives every task
  TaskGroup tg;
  tg.spawn(pool, [&total] { total += 1; });  // exempt: joined below
  tg.join();
  return total;
}

int snapshot(WorkerPool& pool) {
  int seed = 3;
  pool.submit([seed] { static_cast<void>(seed); });  // by value: clean
  return seed;
}

}  // namespace demo
