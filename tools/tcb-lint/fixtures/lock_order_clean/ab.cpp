// Clean control, TU one: nests mu_a_ then mu_b_, matching the declared
// ranks (mu_a_ rank 1 < mu_b_ rank 2 via the anchors in locks.hpp).

#include "locks.hpp"

namespace demo {

void Pair::lock_ab() {
  tcb::MutexLock a(mu_a_);
  tcb::MutexLock b(mu_b_);  // consistent with the declared order: clean
}

}  // namespace demo
