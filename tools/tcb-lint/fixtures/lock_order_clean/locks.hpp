// Clean control for lock-order-graph: the same two-mutex shape as
// lock_order_cycle/, but both TUs nest in the same direction AND the order
// is declared through a lock_order anchor chain (the mechanism
// parallel/sync.hpp uses), so the observed edge agrees with the declared
// ranks.  No finding may be produced.
#pragma once

namespace lock_order {
inline tcb::Mutex first TCB_LOCK_ORDER_ANCHOR;
inline tcb::Mutex second TCB_LOCK_ORDER_ANCHOR
    TCB_ACQUIRED_AFTER(lock_order::first);
}  // namespace lock_order

namespace demo {

class Pair {
 public:
  void lock_ab();
  void also_lock_ab();

 private:
  tcb::Mutex mu_a_ TCB_ACQUIRED_AFTER(lock_order::first);
  tcb::Mutex mu_b_ TCB_ACQUIRED_AFTER(lock_order::second);
};

}  // namespace demo
