// Clean control, TU two: the same nesting direction as ab.cpp, so the
// whole-program graph has one edge and no cycle.

#include "locks.hpp"

namespace demo {

void Pair::also_lock_ab() {
  tcb::MutexLock a(mu_a_);
  tcb::MutexLock b(mu_b_);
}

}  // namespace demo
