// tcb-lint-fixture-path: src/nn/accum_clean_fixture.cpp
// Clean controls for raw-fp-accumulation: route through simd::, use a
// double accumulator (sampling weights), accumulate into indexed output
// rows, or carry TCB_REASSOC (the sanctioned scalar reference copies).

namespace demo {

float dot(const float* a, const float* b, int n) {
  return simd::dot(a, b, n);
}

double weight_total(const double* w, int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += w[i];  // double: excluded
  return total;
}

void accumulate_rows(const float* x, float* out, int m, int n) {
  for (int i = 0; i < m; ++i)
    for (int c = 0; c < n; ++c) out[c] += x[i * n + c];  // indexed: excluded
}

float oracle_dot(const float* a, const float* b, int n) TCB_REASSOC {
  float acc = 0.0f;
  for (int i = 0; i < n; ++i) acc += a[i] * b[i];  // sanctioned scalar copy
  return acc;
}

}  // namespace demo
