// tcb-lint-fixture-path: src/tensor/closure_clean_fixture.cpp
// Clean control for bitwise-closure: annotated callees are trusted
// boundaries. A TCB_BITWISE kernel may call other TCB_BITWISE code (the
// shape the simd:: primitives have in the real tree), and TCB_REASSOC
// code may exist beside it as long as no bitwise chain reaches it.

namespace demo {

float dot_fixed(const float* a, const float* b, int n) TCB_BITWISE {
  float acc = 0.0f;
  for (int i = 0; i < n; ++i) acc += a[i] * b[i];  // the blessed copy
  return acc;
}

float scale_fixed(float v, float s) TCB_BITWISE { return v * s; }

float kernel(const float* a, const float* b, int n) TCB_BITWISE {
  return scale_fixed(dot_fixed(a, b, n), 0.5f);
}

float oracle(const float* a, const float* b, int n) TCB_REASSOC {
  float acc = 0.0f;
  for (int i = 0; i < n; ++i) acc += b[i] * a[i];  // never called from kernel
  return acc;
}

}  // namespace demo
