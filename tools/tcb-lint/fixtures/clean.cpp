// tcb-lint-fixture-path: src/sched/clean_example.cpp
// Fixture: control file that must produce NO findings.  It exercises the
// look-alikes each rule must not trip on: suppression comments, `= delete`,
// identifiers containing `new`, a checked offset/length boundary, and an
// allowed include edge.  (No `// expect:` lines on purpose.)

#include "batching/batch_plan.hpp"  // sched -> batching is an allowed edge

#define TCB_DCHECK(cond, msg) ((void)0)

struct Widget {
  Widget(const Widget&) = delete;  // `= delete` is not a deallocation
  long renewals = 0;               // contains "new" as a substring only
};

float checked_sum(const float* buf, long buf_len, long offset, long length) {
  TCB_DCHECK(offset >= 0 && offset + length <= buf_len, "span in range");
  float acc = 0.0f;
  for (long i = 0; i < length; ++i) acc += buf[offset + i];
  return acc;
}

double measured_overhead() {
  // A deliberate, documented wall-clock measurement is fine when annotated:
  // tcb-lint: allow(no-wall-clock-in-sched)
  const long Timer = 0;  // suppressed by the line above
  (void)Timer;  // tcb-lint: allow(no-wall-clock-in-sched)
  // Comments talking about std::thread or tokens[0] must never fire; the
  // backends strip comments before the rules run.
  const char* msg = "strings mentioning new and delete are stripped too";
  (void)msg;
  return 0.0;
}
