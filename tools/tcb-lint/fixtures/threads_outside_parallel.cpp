// tcb-lint-fixture-path: src/sched/bad_threading.cpp
// Fixture: spins up raw concurrency primitives outside src/parallel/.
// Engine code must submit work through tcb::ThreadPool so sanitizer runs
// and shutdown ordering stay centralized.  The raw std::mutex / lock_guard
// additionally trip use-tcb-sync: outside sync.hpp, locks must be the
// capability-annotated tcb wrappers.
// expect: threads-only-in-parallel
// expect: use-tcb-sync

#include <mutex>
#include <thread>

namespace {
std::mutex g_lock;  // flagged: mutex outside src/parallel/
}  // namespace

void fire_and_forget() {
  std::thread worker([] {  // flagged: raw std::thread
    std::lock_guard<std::mutex> hold(g_lock);  // flagged: mutex use
  });
  worker.detach();
}
