// tcb-lint-fixture-path: src/tensor/geom_clean_fixture.cpp
// Clean control for batch-geometry-taint: batch-global geometry may be
// *validated* in TCB_CHECK argument text, consumed span-relatively
// (bounds from the request's own segment), or used freely outside
// TCB_BITWISE code. Only FP loop bounds and float casts inside bitwise
// kernels are sinks.

namespace demo {

struct Plan {
  int capacity = 0;
  int max_width() const TCB_BATCH_GEOMETRY { return capacity; }
};

struct Span {
  int lo = 0;
  int hi = 0;
};

float seg_sum(const Plan& plan, const Span& seg, const float* x) TCB_BITWISE {
  TCB_CHECK(seg.hi <= plan.max_width(), "span outside the row");
  float acc = 0.0f;
  for (int j = seg.lo; j < seg.hi; ++j) acc += x[j];  // own span: clean
  return acc;
}

int row_bytes(const Plan& plan) {
  return plan.max_width() * 4;  // unannotated caller: geometry flows freely
}

}  // namespace demo
