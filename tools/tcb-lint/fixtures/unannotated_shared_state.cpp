// tcb-lint-fixture-path: src/serving/bad_shared_state.cpp
// Fixture: shared state with no declared lock discipline.  A mutex that
// doesn't say what it guards (TCB_GUARDS) and an atomic that doesn't say
// whether it's guarded or deliberately lock-free (TCB_GUARDED_BY /
// TCB_LOCK_FREE) are exactly how a data race survives review: the next
// editor has to guess the protocol.  See DESIGN.md §9.
// expect: annotated-shared-state

#include <atomic>

#include "parallel/sync.hpp"

namespace tcb {

class WorkerRegistry {
 public:
  void admit() { inflight_.fetch_add(1); }

 private:
  Mutex mutex_;                    // flagged: guards... what, exactly?
  std::atomic<int> inflight_{0};   // flagged: guarded or lock-free?
  int jobs_served_ = 0;            // plain members are not this rule's beat
};

}  // namespace tcb
