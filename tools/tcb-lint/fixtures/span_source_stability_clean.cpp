// tcb-lint-fixture-path: src/tensor/span_fixture_clean.cpp
// Clean control for span-source-stability: annotated accessors, *this
// chaining, and a static-local factory — each a provably stable or
// explicitly bound borrow.

namespace demo {

class Store {
 public:
  const float& front() const TCB_LIFETIME_BOUND { return cells_[0]; }
  std::span<const float> cells() const TCB_LIFETIME_BOUND { return cells_; }
  Store& touch() {
    ++version_;
    return *this;  // chaining returns the caller's own object: clean
  }
  int version() const { return version_; }

 private:
  float cells_[4] = {0.0f, 0.0f, 0.0f, 0.0f};
  int version_ = 0;
};

Store& global_store() {
  static Store store;  // function-local static: stable storage, clean
  return store;
}

}  // namespace demo
