// tcb-lint-fixture-path: src/serving/escape_fixture.cpp
// Fixture: a lambda capturing a local by reference handed to a callable
// parameter declared TCB_ESCAPES.  The pool retains the callable beyond
// the call, so `&total` dangles as soon as enqueue_all returns; the rule
// keys on the annotation, not the ThreadPool name.
// expect: no-ref-capture-escape

namespace demo {

class WorkerPool {
 public:
  void submit(std::function<void()> fn TCB_ESCAPES) {
    pending_ += fn ? 1 : 0;  // body irrelevant: the annotation is the fact
  }

 private:
  int pending_ = 0;
};

int enqueue_all(WorkerPool& pool) {
  int total = 0;
  pool.submit([&total] { total += 1; });  // flagged: &total outlives the call
  return total;
}

}  // namespace demo
