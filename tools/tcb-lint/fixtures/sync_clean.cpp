// tcb-lint-fixture-path: src/serving/good_shared_state.cpp
// Fixture: control for use-tcb-sync and annotated-shared-state — this file
// must produce NO findings.  It exercises the look-alikes the rules must not
// trip on: tcb::MutexLock (a lock scope, not a Mutex declaration), annotated
// mutex/atomic members, an explicitly allowed atomic, and std primitives
// appearing only in comments and string literals.
// (No `// expect:` lines on purpose.)

#include <atomic>

#include "parallel/sync.hpp"  // serving -> parallel is an allowed edge

namespace tcb {

class AdmissionCounters {
 public:
  void bump() TCB_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);  // wrapper scope, not a raw std lock
    ++admitted_;
  }

 private:
  mutable Mutex mutex_ TCB_GUARDS(admitted_);
  long admitted_ TCB_GUARDED_BY(mutex_) = 0;
  std::atomic<long> fast_hits_ TCB_LOCK_FREE{0};
  // A migration remnant can opt out explicitly, reviewably:
  // tcb-lint: allow(annotated-shared-state)
  std::atomic<long> legacy_counter_{0};
};

inline const char* discipline_doc() {
  // Comments naming std::mutex or std::unique_lock never fire, and neither
  // do strings: both backends strip them before the rules run.
  return "prefer tcb::MutexLock over std::lock_guard";
}

}  // namespace tcb
