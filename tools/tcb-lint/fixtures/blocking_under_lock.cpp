// Fixture: a blocking call made while a tcb::Mutex is held.  The class is
// named RequestQueue on purpose — push/pop on the admission queue are
// blocking seeds for no-blocking-under-lock (the real queue blocks on a
// CondVar when full/empty), so Worker::drain calling q.push(...) while
// holding its own mutex risks deadlock and unbounded lock hold times.
// expect: no-blocking-under-lock

namespace demo {

class RequestQueue {
 public:
  void push(int v) { last_ = v; }  // seed by name; body irrelevant

 private:
  int last_ = 0;
};

class Worker {
 public:
  void drain(RequestQueue& q) {
    tcb::MutexLock l(mu_);
    pending_ = 0;
    q.push(1);  // flagged: blocking call under Worker::mu_
  }

 private:
  tcb::Mutex mu_;
  int pending_ = 0;
};

}  // namespace demo
