// tcb-lint-fixture-path: src/sched/bad_clock.cpp
// Fixture: reads the wall clock inside the scheduler.  Scheduling decisions
// must be a pure function of the virtual clock so simulation runs replay
// bit-identically (the determinism the serving tests rely on).
// expect: no-wall-clock-in-sched

#include <chrono>

double stale_penalty(double enqueue_seconds) {
  const auto now = std::chrono::steady_clock::now();  // flagged: wall clock
  return std::chrono::duration<double>(now.time_since_epoch()).count() -
         enqueue_seconds;
}
