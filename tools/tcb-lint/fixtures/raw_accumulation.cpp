// tcb-lint-fixture-path: src/nn/accum_fixture.cpp
// A hand-rolled scalar float reduction in model code: a second,
// uncoordinated accumulation order next to the simd:: primitives.
// expect: raw-fp-accumulation

namespace demo {

float dot(const float* a, const float* b, int n) {
  float acc = 0.0f;
  for (int i = 0; i < n; ++i) acc += a[i] * b[i];  // flagged
  return acc;
}

}  // namespace demo
