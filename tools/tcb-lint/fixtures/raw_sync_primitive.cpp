// tcb-lint-fixture-path: src/parallel/raw_lock.cpp
// Fixture: reaches for raw std synchronization *inside* src/parallel/ but
// outside sync.hpp.  Even the pool implementation must go through the
// capability-annotated wrappers — a raw std::mutex is invisible to Clang
// Thread Safety Analysis, so the lock discipline around it is unchecked.
// (threads-only-in-parallel does not fire here: src/parallel/ is its home
// turf; use-tcb-sync is the stricter rule that still applies.)
// expect: use-tcb-sync

#include <mutex>

namespace {

int drain_counter() {
  static int counter = 0;
  std::mutex m;                             // flagged: raw mutex
  const std::lock_guard<std::mutex> l(m);   // flagged: raw lock scope
  return ++counter;
}

int poll() {
  std::unique_lock<std::mutex> deferred;    // flagged: raw unique_lock
  (void)deferred;
  return drain_counter();
}

}  // namespace
