// tcb-lint-fixture-path: src/batching/move_fixture_clean.cpp
// Clean control for use-after-move: every sanctioned pattern the rule must
// understand.  A loop move followed by .clear(); branch-exclusive moves in
// if/else arms; a move inside a return statement (also behind a brace-init
// temporary); a brace-less range-for move followed by an unrelated loop
// reusing the variable name.

namespace demo {

struct Router {
  std::vector<std::vector<int>> sent;
  std::vector<int> current;

  void flush(int rounds) {
    for (int i = 0; i < rounds; ++i) {
      sent.push_back(std::move(current));  // reset on the next line: clean
      current.clear();
    }
  }
};

std::vector<int> pick(bool left, std::vector<int> a) {
  std::vector<int> out;
  if (left) {
    out = std::move(a);  // branch-exclusive with the else arm below
  } else {
    out.assign(a.begin(), a.end());
  }
  return out;
}

struct Wrap {
  std::vector<int> inner;
};

Wrap seal(std::vector<int> v) {
  return Wrap{std::move(v)};  // move in a return statement: clean
}

void forward(std::vector<std::vector<int>> rows,
             std::vector<std::vector<int>>& out) {
  for (auto& row : rows) out.push_back(std::move(row));  // brace-less body
  for (auto& row : out) row.push_back(1);  // fresh binding, not a reuse
}

}  // namespace demo
