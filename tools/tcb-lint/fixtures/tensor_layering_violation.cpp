// tcb-lint-fixture-path: src/tensor/workspace.cpp
// Fixture: the tensor-internal layering of the kernel stack (tensor <
// simd/ops < gemm, with workspace standalone over util/parallel).  The
// scratch arena sits below every kernel; reaching up into the SIMD layer
// from it inverts the DAG.
// expect: include-layering

#include "tensor/simd.hpp"  // flagged: workspace may not include simd

int tensor_layering_marker() { return 0; }
