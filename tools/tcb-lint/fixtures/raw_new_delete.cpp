// tcb-lint-fixture-path: src/util/bad_ownership.cpp
// Fixture: manual new/delete ownership.  First-party code uses containers
// and smart pointers; raw allocation is how the early prototype leaked
// encoder scratch buffers.
// expect: no-raw-new-delete

struct Scratch {
  float* data;
};

Scratch* make_scratch(long n) {
  Scratch* s = new Scratch;        // flagged: raw new
  s->data = new float[static_cast<unsigned long>(n)];  // flagged: raw array new
  return s;
}

void free_scratch(Scratch* s) {
  delete[] s->data;  // flagged: raw delete
  delete s;          // flagged: raw delete
}
