// tcb-lint-fixture-path: src/serving/backend.cpp
// Clean control for engine-behind-backend: the execution-backend layer is
// exactly where the engine headers are supposed to be included, so neither
// include below may be flagged.

#include "nn/classifier.hpp"
#include "nn/model.hpp"

int engine_behind_backend_clean_marker() { return 0; }
