// tcb-lint-fixture-path: src/serving/clock.cpp
// Fixture: the serving-internal layering of the staged pipeline (clock <
// backend < pipeline < simulator).  The Clock sits at the bottom of the
// pipeline stack; including the pipeline from it inverts the DAG.
// expect: include-layering

#include "serving/pipeline.hpp"  // flagged: clock may not include pipeline

int pipeline_layering_marker() { return 0; }
