// tcb-lint-fixture-path: src/batching/pack_fixture.cpp
// Sink half of the tainted_admission mini-program: raw arithmetic on
// Request::length inside batch formation.  Unvalidated, a hostile length
// (zero, negative, > row capacity) corrupts the row-packing slot math.

namespace tcb {

void pack_rows(std::vector<Request>& pending) {
  int used = 0;
  for (const Request& r : pending) {
    used += r.length + 1;  // sink: geometry arithmetic on a tainted field
  }
}

}  // namespace tcb
