// tcb-lint-fixture-path: src/serving/admit_fixture.cpp
// Fixture: admission-side entry point that forwards externally-supplied
// Request fields straight into batch-geometry arithmetic without passing
// them through a TCB_CHECK sanitizer first.  The sink lives in the other
// TU (pack.cpp, impersonating src/batching/) — the flow only exists in the
// whole-program call graph, which is what tainted-admission tracks.
// expect: tainted-admission

namespace tcb {

void admit_pending(std::vector<Request>& pending) {
  pack_rows(pending);  // tainted length/deadline flow into slot math
}

}  // namespace tcb
