// tcb-lint-fixture-path: src/serving/escape_pool.cpp
// One TU of the cross-TU escape case: WorkerPool::submit declares its
// callable TCB_ESCAPES, and run_deferred forwards its own callable
// parameter into it.  The sink fixpoint must mark run_deferred as an
// escape sink so callers in *other* TUs are checked against it.

namespace demo {

class WorkerPool {
 public:
  void submit(std::function<void()> fn TCB_ESCAPES) {
    pending_ += fn ? 1 : 0;
  }

 private:
  int pending_ = 0;
};

void run_deferred(WorkerPool& pool, std::function<void()> fn) {
  pool.submit(std::move(fn));  // makes run_deferred a sink by propagation
}

}  // namespace demo
