// tcb-lint-fixture-path: src/serving/escape_caller.cpp
// The other TU: this file never mentions TCB_ESCAPES or submit; the lambda
// reaches the escaping queue only through run_deferred (defined in
// pool.cpp), so the finding requires the whole-program sink propagation.
// expect: no-ref-capture-escape

namespace demo {

class WorkerPool;

void defer_count(WorkerPool& pool) {
  int hits = 0;
  run_deferred(pool, [&hits] { hits += 1; });  // flagged through the wrapper
}

}  // namespace demo
