// tcb-lint-fixture-path: src/batching/bad_boundary.cpp
// Fixture: a function takes an (offset, length) span but never validates it
// with TCB_CHECK/TCB_DCHECK before indexing.  Boundary functions are where
// an inconsistent BatchPlan becomes a heap overrun.
// expect: checked-engine-boundary

#include <vector>

float sum_span(const std::vector<float>& buf, long offset, long length) {
  float acc = 0.0f;  // flagged: no TCB_CHECK of [offset, offset+length)
  for (long i = 0; i < length; ++i) acc += buf[static_cast<size_t>(offset + i)];
  return acc;
}
