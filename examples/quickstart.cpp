// Quickstart: build a TCB system (slotted ConcatBatching + Slotted-DAS),
// generate a small online workload, serve it on the real engine, and print
// per-request results plus serving statistics.
//
//   ./examples/quickstart
#include <cstdio>

#include "core/tcb.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace tcb;

  // 1. Configure the system. The defaults are the paper's full design:
  //    slotted ConcatBatching with the Slotted-DAS online scheduler.
  TcbConfig cfg;
  cfg.model.vocab_size = 512;
  cfg.model.d_model = 64;
  cfg.model.d_ff = 256;
  cfg.sched.batch_rows = 8;
  cfg.sched.row_capacity = 64;
  cfg.max_decode_steps = 12;
  cfg.workers = 4;  // engine batches execute concurrently; dynamics stay
                    // deterministic (simulated time comes from the cost model)
  TcbSystem tcb{cfg};

  // 2. Generate an online trace: Poisson arrivals, truncated-normal lengths,
  //    per-request deadlines — the paper's workload in miniature.
  WorkloadConfig workload;
  workload.rate = 40.0;
  workload.duration = 1.0;
  workload.min_len = 3;
  workload.max_len = 40;
  workload.mean_len = 12.0;
  workload.len_variance = 20.0;
  workload.with_tokens = true;
  workload.vocab_size = cfg.model.vocab_size;
  workload.seed = 7;
  const auto trace = generate_trace(workload);
  std::printf("generated %zu requests over %.1fs\n", trace.size(),
              workload.duration);

  // 3. Serve. The engine batches with request concatenation, decodes every
  //    request greedily, and returns the generated tokens.
  const ServeResult result = tcb.serve(trace);

  TablePrinter table({"request", "len", "scheduled", "completed", "output tokens"});
  for (std::size_t i = 0; i < result.responses.size() && i < 10; ++i) {
    const auto& resp = result.responses[i];
    std::string tokens;
    for (const auto t : resp.tokens) {
      if (!tokens.empty()) tokens += ' ';
      tokens += std::to_string(t);
    }
    table.row({std::to_string(resp.id),
               std::to_string(trace[static_cast<std::size_t>(resp.id)].length),
               format_number(resp.scheduled_at),
               format_number(resp.completed_at), tokens});
  }
  table.print();

  std::printf(
      "\nserved=%zu failed=%zu batches=%zu utility=%.3f makespan=%.3fs\n",
      result.responses.size(), result.failed, result.batches,
      result.total_utility, result.makespan);
  std::printf("peak KV bytes=%zu, freed early=%zu (slotted early cleaning)\n",
              result.peak_kv_bytes, result.early_freed_bytes);
  std::printf("pipeline: %s\n", result.report.summary().c_str());
  return 0;
}
