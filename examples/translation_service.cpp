// Translation-style online serving: the paper's motivating scenario. A
// sentence stream (variable lengths, Poisson arrivals, per-request
// deadlines) is served by the full TCB stack — Slotted-DAS scheduling +
// slotted ConcatBatching on the real engine — and compared, on the same
// trace, against the NaiveBatching + FCFS configuration a stock serving
// system would use.
//
//   ./examples/translation_service [rate] [duration_s]
#include <cstdio>
#include <cstdlib>

#include "core/tcb.hpp"
#include "util/csv.hpp"
#include "util/histogram.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace tcb;

  const double rate = argc > 1 ? std::atof(argv[1]) : 60.0;
  const double duration = argc > 2 ? std::atof(argv[2]) : 2.0;

  // Shared engine/workload configuration.
  TcbConfig base;
  base.model.d_model = 64;
  base.model.d_ff = 256;
  base.model.vocab_size = 512;
  base.sched.batch_rows = 8;
  base.sched.row_capacity = 64;
  base.max_decode_steps = 10;

  WorkloadConfig workload;
  workload.rate = rate;
  workload.duration = duration;
  workload.min_len = 3;
  workload.max_len = 50;
  workload.mean_len = 15;
  workload.len_variance = 40;
  workload.deadline_slack_min = 0.2;
  workload.deadline_slack_max = 1.0;
  workload.with_tokens = true;
  workload.vocab_size = base.model.vocab_size;
  workload.seed = 99;
  const auto trace = generate_trace(workload);

  std::printf("translation workload: %zu sentences over %.1fs (%.0f req/s)\n",
              trace.size(), duration, rate);
  Histogram lengths(0, 50, 10);
  for (const auto& req : trace) lengths.add(static_cast<double>(req.length));
  std::printf("sentence length distribution:\n%s\n",
              lengths.render(40).c_str());

  struct Setup {
    const char* name;
    Scheme scheme;
    const char* scheduler;
  };
  TablePrinter table({"system", "served", "failed", "utility", "batches",
                      "makespan (s)", "peak KV (KiB)"});
  for (const Setup s : {Setup{"TCB (Slotted-DAS + slotted concat)",
                              Scheme::kConcatSlotted, "slotted-das"},
                        Setup{"stock (FCFS + naive batching)", Scheme::kNaive,
                              "fcfs"}}) {
    TcbConfig cfg = base;
    cfg.scheme = s.scheme;
    cfg.scheduler = s.scheduler;
    const TcbSystem tcb(cfg);
    const ServeResult result = tcb.serve(trace);
    table.row({s.name, std::to_string(result.responses.size()),
               std::to_string(result.failed),
               format_number(result.total_utility),
               std::to_string(result.batches),
               format_number(result.makespan),
               format_number(static_cast<double>(result.peak_kv_bytes) / 1024)});
  }
  table.print();
  std::printf("\n(identical trace, identical engine weights — only batching"
              " scheme and scheduler differ)\n");
  return 0;
}
