// End-to-end NLP frontend: sentences in, sentences out. Builds a vocabulary
// from a small corpus, tokenizes user sentences into Requests, serves them
// through the full TCB stack (Slotted-DAS + slotted ConcatBatching on the
// real engine) and decodes the generated ids back to words — the complete
// pipeline of paper Fig. 3 ("user applications" -> scheduler -> engine).
#include <cstdio>

#include "core/tcb.hpp"
#include "text/tokenizer.hpp"
#include "util/table.hpp"

int main() {
  using namespace tcb;

  // 1. Vocabulary + tokenizer from a toy corpus.
  const std::vector<std::string> corpus = {
      "the quick brown fox jumps over the lazy dog",
      "a transformer serves translation requests with low latency",
      "requests arrive online and carry deadlines",
      "short sentences have high utility in the scheduler",
      "batching concatenates requests to remove padded zeros",
      "the scheduler packs rows and the engine masks attention",
  };
  const Vocabulary vocab = Vocabulary::build(corpus, 256);
  const Tokenizer tokenizer{vocab};
  std::printf("vocabulary: %lld entries\n",
              static_cast<long long>(vocab.size()));

  // 2. The serving system; the model's output space is exactly the
  //    tokenizer's vocabulary, so every generated id decodes to a word.
  TcbConfig cfg;
  cfg.model.vocab_size = vocab.size();
  cfg.model.d_model = 64;
  cfg.model.d_ff = 256;
  cfg.sched.batch_rows = 4;
  cfg.sched.row_capacity = 32;
  cfg.max_decode_steps = 8;
  const TcbSystem tcb{cfg};

  // 3. Sentences become Requests with arrival times and deadlines.
  const std::vector<std::string> sentences = {
      "the quick brown fox",
      "requests arrive online",
      "the lazy dog jumps",
      "batching removes padded zeros",
      "short sentences have high utility",
      "a transformer serves requests",
  };
  std::vector<Request> trace;
  for (std::size_t i = 0; i < sentences.size(); ++i) {
    const double arrival = 0.01 * static_cast<double>(i);
    trace.push_back(tokenizer.make_request(static_cast<RequestId>(i),
                                           sentences[i], arrival,
                                           arrival + 10.0));
  }

  // 4. Serve and decode the outputs back to words.
  const ServeResult result = tcb.serve(trace);
  TablePrinter table({"input sentence", "generated output"});
  for (const auto& resp : result.responses)
    table.row({sentences[static_cast<std::size_t>(resp.id)],
               tokenizer.decode(resp.tokens)});
  table.print();
  std::printf(
      "\n(untrained weights: the output is not a real translation, but the\n"
      " pipeline — tokenize, schedule, concat-batch, decode, detokenize —\n"
      " is the production path, and each output is identical to running\n"
      " that sentence alone.)\n");
  return 0;
}
