// Trace persistence and replay: generate a workload trace, save it to CSV,
// load it back, and replay it through the serving simulator under every
// batching scheme. Demonstrates the workload tooling a user needs to test
// TCB against their own recorded traffic.
//
//   ./examples/trace_replay [path]
#include <cstdio>

#include "core/tcb.hpp"
#include "sched/factory.hpp"
#include "serving/simulator.hpp"
#include "util/table.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace tcb;
  const std::string path = argc > 1 ? argv[1] : "replay_trace.csv";

  // 1. Record: generate and persist a trace.
  WorkloadConfig w;
  w.rate = 300;
  w.duration = 3.0;
  w.seed = 7;
  const auto original = generate_trace(w);
  save_trace(path, original);
  std::printf("saved %zu requests to %s\n", original.size(), path.c_str());

  // 2. Replay: load and serve under each scheme with the DAS scheduler.
  const auto trace = load_trace(path);
  SchedulerConfig sc;
  sc.batch_rows = 32;
  sc.row_capacity = 100;
  const AnalyticalCostModel cost(ModelConfig::paper_scale(),
                                 HardwareProfile::v100_like());

  TablePrinter table({"scheme", "scheduler", "completed", "failed", "utility",
                      "throughput (resp/s)", "avg occupancy"});
  struct Setup {
    Scheme scheme;
    const char* scheduler;
  };
  for (const Setup s : {Setup{Scheme::kNaive, "das"},
                        Setup{Scheme::kTurbo, "das"},
                        Setup{Scheme::kConcatPure, "das"},
                        Setup{Scheme::kConcatSlotted, "slotted-das"}}) {
    const auto sched = make_scheduler(s.scheduler, sc);
    SimulatorConfig sim;
    sim.scheme = s.scheme;
    const auto report = ServingSimulator(*sched, cost, sim).run(trace);
    table.row({scheme_name(s.scheme), report.scheduler,
               std::to_string(report.completed),
               std::to_string(report.failed),
               format_number(report.total_utility),
               format_number(report.throughput),
               report.batch_occupancy.empty()
                   ? "-"
                   : format_number(report.batch_occupancy.mean())});
  }
  table.print();
  std::printf("\nreplayed %zu requests from %s under four batching schemes\n",
              trace.size(), path.c_str());
  return 0;
}
