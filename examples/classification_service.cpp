// Encoder-only classification service (GLUE-style workload, which the paper
// cites as a highly length-variable dataset): sentences are tokenized,
// DAS-selected, concat-batched, encoded once, and classified per request —
// no auto-regressive decoding at all. Demonstrates that ConcatBatching's
// engine customizations carry over to BERT-style services unchanged.
#include <cstdio>

#include "batching/concat_batcher.hpp"
#include "batching/stats.hpp"
#include "core/tcb.hpp"
#include "nn/classifier.hpp"
#include "sched/factory.hpp"
#include "text/tokenizer.hpp"
#include "util/table.hpp"

int main() {
  using namespace tcb;

  const std::vector<std::string> corpus = {
      "this movie was wonderful and moving",
      "a dreadful waste of two hours",
      "the plot is clever and the acting superb",
      "i have never been so bored",
      "an instant classic that rewards rewatching",
      "flat characters and a predictable ending",
  };
  const Vocabulary vocab = Vocabulary::build(corpus, 128);
  const Tokenizer tokenizer{vocab};

  ModelConfig cfg = ModelConfig::test_scale();
  cfg.d_model = 64;
  cfg.vocab_size = vocab.size();
  cfg.max_len = 64;
  const Seq2SeqModel model(cfg);
  const ClassificationHead head(cfg.d_model, /*n_classes=*/2, /*seed=*/7);

  // Requests with deadlines, scheduled by DAS and packed by ConcatBatching.
  std::vector<Request> requests;
  for (std::size_t i = 0; i < corpus.size(); ++i)
    requests.push_back(tokenizer.make_request(static_cast<RequestId>(i),
                                              corpus[i], 0.0, 1.0));
  SchedulerConfig sc;
  sc.batch_rows = 2;
  sc.row_capacity = 24;
  const auto das = make_scheduler("das", sc);
  const auto sel = das->select(0.0, requests);
  const ConcatBatcher batcher;
  const auto built = batcher.build(sel.ordered, Row{sc.batch_rows}, Col{sc.row_capacity});

  const BatchStats stats = analyze(built.plan);
  std::printf("batch: %s\n", built.plan.summary().c_str());
  std::printf("padding ratio %.1f%%, attention redundancy %.1f%%\n\n",
              stats.padding_ratio * 100, stats.attention_redundancy * 100);

  const InferenceOptions opts;
  const auto memory = model.encode(pack_batch(built.plan, requests), opts);
  const auto classes = head.classify(memory);

  TablePrinter table({"sentence", "class"});
  for (const auto& req : requests) {
    if (!classes.contains(req.id)) continue;
    table.row({corpus[static_cast<std::size_t>(req.id)],
               classes.at(req.id) == 0 ? "negative" : "positive"});
  }
  table.print();
  std::printf(
      "\n(untrained head: labels are arbitrary but deterministic, and each\n"
      " one equals the label the sentence gets when classified alone.)\n");
  return 0;
}
