// Scheduler playground: sweep arrival rate x scheduling policy on the
// cost-model simulator and print total utility, completions and drops —
// a quick way to see where deadline-aware scheduling (DAS) pays off against
// FCFS / SJF / DEF.
//
//   ./examples/scheduler_playground [B] [L] [duration_s] [slack_min] [slack_max]
#include <cstdio>
#include <cstdlib>

#include "core/tcb.hpp"
#include "sched/factory.hpp"
#include "serving/simulator.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace tcb;

  SchedulerConfig sc;
  sc.batch_rows = argc > 1 ? std::atoll(argv[1]) : 16;
  sc.row_capacity = argc > 2 ? std::atoll(argv[2]) : 100;
  const double duration = argc > 3 ? std::atof(argv[3]) : 5.0;
  const double slack_min = argc > 4 ? std::atof(argv[4]) : 0.5;
  const double slack_max = argc > 5 ? std::atof(argv[5]) : 2.0;

  const AnalyticalCostModel cost(ModelConfig::paper_scale(),
                                 HardwareProfile::v100_like());

  std::printf("B=%lld L=%lld duration=%.1fs slack=[%.2f, %.2f]s\n",
              static_cast<long long>(sc.batch_rows),
              static_cast<long long>(sc.row_capacity), duration, slack_min,
              slack_max);

  TablePrinter table({"rate", "scheduler", "utility", "completed", "failed",
                      "p95 latency (s)"});
  for (const double rate : {50.0, 100.0, 200.0, 300.0, 500.0, 800.0}) {
    WorkloadConfig w;
    w.rate = rate;
    w.duration = duration;
    w.deadline_slack_min = slack_min;
    w.deadline_slack_max = slack_max;
    w.seed = 2024;
    const auto trace = generate_trace(w);
    for (const auto& name : {"das", "sjf", "fcfs", "def"}) {
      const auto sched = make_scheduler(name, sc);
      SimulatorConfig sim;
      sim.scheme = Scheme::kConcatPure;
      const auto report = ServingSimulator(*sched, cost, sim).run(trace);
      table.row({format_number(rate), report.scheduler,
                 format_number(report.total_utility),
                 std::to_string(report.completed),
                 std::to_string(report.failed),
                 report.latency.empty() ? "-"
                                        : format_number(report.latency.p95())});
    }
  }
  table.print();
  return 0;
}
