// Why the engine customizations are necessary (paper §4.1): runs the same
// concatenated batch four ways —
//   1. TCB (separate PE + segment mask)          -> matches per-request runs
//   2. traditional PE + segment mask             -> wrong outputs
//   3. separate PE + row-shared (no) mask        -> wrong outputs
//   4. traditional PE + no mask (stock engine)   -> wrong outputs
// and reports, for each, how many requests decode to the same tokens as
// isolated single-request inference.
#include <cstdio>

#include "batching/concat_batcher.hpp"
#include "batching/packed_batch.hpp"
#include "core/tcb.hpp"
#include "util/table.hpp"

int main() {
  using namespace tcb;

  ModelConfig cfg = ModelConfig::test_scale();
  cfg.d_model = 64;
  cfg.vocab_size = 256;
  const Seq2SeqModel model(cfg);

  // A batch of 12 requests concatenated into 3 rows.
  Rng rng(5);
  std::vector<Request> requests;
  for (int i = 0; i < 12; ++i) {
    Request req;
    req.id = i;
    req.length = rng.uniform_int(3, 12);
    for (Index t = 0; t < req.length; ++t)
      req.tokens.push_back(rng.uniform_int(kFirstWordToken, cfg.vocab_size - 1));
    requests.push_back(std::move(req));
  }
  const ConcatBatcher batcher;
  const auto built = batcher.build(requests, Row{3}, Col{40});
  const PackedBatch packed = pack_batch(built.plan, requests);
  std::printf("batch: %s\n\n", built.plan.summary().c_str());

  // Reference: each request inferred alone.
  std::unordered_map<RequestId, std::vector<Index>> reference;
  for (const auto& req : requests) {
    BatchPlan plan;
    plan.scheme = Scheme::kConcatPure;
    plan.row_capacity = req.length;
    RowLayout row;
    row.width = req.length;
    row.segments.push_back(Segment{req.id, 0, req.length, 0});
    plan.rows.push_back(row);
    InferenceOptions opts;
    opts.max_decode_steps = 8;
    reference[req.id] =
        model.infer(pack_batch(plan, requests), opts).outputs.at(req.id);
  }

  struct Variant {
    const char* name;
    bool separate_pe;
    MaskPolicy mask;
  };
  TablePrinter table({"engine variant", "correct", "wrong"});
  for (const Variant v :
       {Variant{"TCB: separate PE + mask (Eq. 5-6)", true, MaskPolicy::kSegment},
        Variant{"traditional PE + mask", false, MaskPolicy::kSegment},
        Variant{"separate PE, no mask", true, MaskPolicy::kRowShared},
        Variant{"stock engine (traditional PE, no mask)", false,
                MaskPolicy::kRowShared}}) {
    InferenceOptions opts;
    opts.separate_positional_encoding = v.separate_pe;
    opts.mask_policy = v.mask;
    opts.max_decode_steps = 8;
    const auto result = model.infer(packed, opts);
    int correct = 0;
    for (const auto& req : requests)
      if (result.outputs.at(req.id) == reference.at(req.id)) ++correct;
    table.row({v.name, std::to_string(correct),
               std::to_string(static_cast<int>(requests.size()) - correct)});
  }
  table.print();
  std::printf(
      "\nOnly the full TCB customization reproduces per-request inference;\n"
      "dropping either the separate positional encoding (Fig. 5) or the\n"
      "concatenation mask (Eq. 6) corrupts results, as §4.1 predicts.\n");
  return 0;
}
