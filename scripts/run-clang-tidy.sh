#!/usr/bin/env bash
# Runs clang-tidy over the first-party sources with the repo's .clang-tidy
# config and a compile_commands.json exported by any CMake preset.
#
# Usage:
#   scripts/run-clang-tidy.sh [--all] [build-dir] [file...]
#
#   --all      lint every first-party .cpp (src/, tests/, bench/, examples/,
#              tools/) instead of just src/; the scheduled nightly CI job
#              uses this full-tree mode
#   build-dir  directory containing compile_commands.json (default: the
#              first of build, build-release, build-debug that has one;
#              configured automatically by every preset via
#              CMAKE_EXPORT_COMPILE_COMMANDS)
#   file...    restrict the run to these sources (the CI changed-files job
#              does this); default is every .cpp under src/.
#
# Exits 0 with a notice when clang-tidy is not installed so that local
# pre-commit hooks and minimal containers degrade gracefully; CI installs
# clang-tidy explicitly and will therefore always enforce the gate.
set -euo pipefail

cd "$(dirname "$0")/.."

TIDY_BIN="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY_BIN" >/dev/null 2>&1; then
  echo "run-clang-tidy: '$TIDY_BIN' not found on PATH; skipping lint (install" \
       "clang-tidy or set CLANG_TIDY to enforce the gate locally)." >&2
  exit 0
fi

all_tree=0
if [[ "${1:-}" == "--all" ]]; then
  all_tree=1
  shift
fi

build_dir="${1:-}"
if [[ $# -gt 0 ]]; then shift; fi
if [[ -z "$build_dir" ]]; then
  for candidate in build build-release build-debug build-asan-ubsan; do
    if [[ -f "$candidate/compile_commands.json" ]]; then
      build_dir="$candidate"
      break
    fi
  done
fi
if [[ -z "$build_dir" || ! -f "$build_dir/compile_commands.json" ]]; then
  echo "run-clang-tidy: no compile_commands.json found; configure first, e.g." >&2
  echo "  cmake --preset release" >&2
  exit 2
fi

files=("$@")
if [[ ${#files[@]} -eq 0 ]]; then
  if [[ $all_tree -eq 1 ]]; then
    # Full-tree mode (nightly CI): every first-party translation unit that
    # appears in compile_commands.json, i.e. everything CMake builds.
    mapfile -t files < <(find src tests bench examples -name '*.cpp' | sort)
  else
    mapfile -t files < <(find src -name '*.cpp' | sort)
  fi
fi
if [[ ${#files[@]} -eq 0 ]]; then
  echo "run-clang-tidy: nothing to lint." >&2
  exit 0
fi

echo "run-clang-tidy: linting ${#files[@]} file(s) against $build_dir" >&2
status=0
for f in "${files[@]}"; do
  # Non-source arguments (headers, deleted files from a git diff) are skipped.
  [[ "$f" == *.cpp && -f "$f" ]] || continue
  "$TIDY_BIN" -p "$build_dir" --quiet "$f" || status=1
done

if [[ $status -ne 0 ]]; then
  echo "run-clang-tidy: findings above must be fixed (WarningsAsErrors=*)." >&2
fi
exit $status
