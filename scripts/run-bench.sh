#!/usr/bin/env bash
# Builds the `release` preset and records the reproducible benchmark
# baseline: kernel micro-benchmarks (bench/micro_kernels) into
# BENCH_kernels.json and the end-to-end encoder path (bench/e2e_encoder)
# into BENCH_e2e.json. Each file is the raw google-benchmark JSON wrapped
# with machine metadata (CPU model, core count, git revision, UTC date) so a
# committed baseline states exactly what it was measured on.
#
# Usage:
#   scripts/run-bench.sh [--smoke] [--min-time SECS] [--before FILE]
#                        [--out-dir DIR] [--build-dir DIR]
#
#   --smoke           fast sanity pass (min-time 0.05); use in CI to prove
#                     the benches run, not to produce comparable numbers
#   --min-time SECS   per-benchmark measuring time (default: 0.2)
#   --before FILE     embed a pre-change google-benchmark JSON under the
#                     "before" key of BENCH_kernels.json so the speedup the
#                     change delivered stays recorded next to the new numbers
#   --out-dir DIR     where to write BENCH_*.json (default: repo root)
#   --build-dir DIR   reuse an existing release build tree
#                     (default: build-release, the preset's binaryDir)
set -euo pipefail

cd "$(dirname "$0")/.."

min_time=0.2
smoke=0
before_file=""
out_dir=.
build_dir=build-release
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke)     smoke=1; min_time=0.05; shift ;;
    --min-time)  min_time="$2"; shift 2 ;;
    --before)    before_file="$2"; shift 2 ;;
    --out-dir)   out_dir="$2"; shift 2 ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    *) echo "run-bench: unknown argument '$1'" >&2; exit 2 ;;
  esac
done

if [[ ! -f "$build_dir/CMakeCache.txt" ]]; then
  cmake --preset release -B "$build_dir" >/dev/null
fi

# A committed baseline measured from a debug tree is worse than none: every
# later comparison against it reports phantom regressions or phantom wins.
# (The old BENCH_kernels.json silently recorded library_build_type=debug.)
# Refuse anything but an optimized build type up front.
build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build_dir/CMakeCache.txt")
case "$build_type" in
  Release|RelWithDebInfo) ;;
  *)
    echo "run-bench: refusing to record a baseline from build type" \
         "'${build_type:-<unset>}' in $build_dir (need Release or" \
         "RelWithDebInfo). Use --build-dir or the release preset." >&2
    exit 3
    ;;
esac

cmake --build "$build_dir" -j "$(nproc)" --target micro_kernels e2e_encoder \
  >/dev/null

# google-benchmark changed the --benchmark_min_time syntax: up to 1.7 it is a
# plain double ("0.2"), from 1.8 it requires a unit suffix ("0.2s"). Probe
# with the plain form and fall back, so the script works against whichever
# the toolchain ships.
min_time_flag="--benchmark_min_time=${min_time}"
if ! "$build_dir/bench/micro_kernels" --benchmark_list_tests=true \
     "$min_time_flag" >/dev/null 2>&1; then
  min_time_flag="--benchmark_min_time=${min_time}s"
fi

run_bench() {  # run_bench <binary> <raw-json-out>
  "$1" "$min_time_flag" --benchmark_format=console \
    --benchmark_out_format=json --benchmark_out="$2"
}

wrap_json() {  # wrap_json <raw-json> <final-json> <label>
  python3 - "$1" "$2" "$3" "$smoke" "$before_file" "$build_type" <<'EOF'
import json, platform, subprocess, sys

raw_path, out_path, label, smoke, before_path, build_type = sys.argv[1:7]

def sh(*cmd):
    try:
        return subprocess.run(cmd, capture_output=True, text=True,
                              check=True).stdout.strip()
    except Exception:
        return ""

cpu_model = ""
for line in sh("lscpu").splitlines():
    if line.startswith("Model name:"):
        cpu_model = line.split(":", 1)[1].strip()
        break

doc = {
    "label": label,
    "smoke": smoke == "1",
    # The tcb build type (the guard above enforces Release/RelWithDebInfo);
    # distinct from the benchmark library's own library_build_type field.
    "tcb_build_type": build_type,
    "machine": {
        "cpu_model": cpu_model,
        "nproc": sh("nproc"),
        "platform": platform.platform(),
    },
    "git_revision": sh("git", "rev-parse", "HEAD"),
    "git_describe": sh("git", "log", "-1", "--format=%cI %h %s"),
    "date_utc": sh("date", "-u", "+%Y-%m-%dT%H:%M:%SZ"),
    "benchmark": json.load(open(raw_path)),
}
if before_path:
    doc["before"] = json.load(open(before_path))
json.dump(doc, open(out_path, "w"), indent=1)
print(f"run-bench: wrote {out_path}")
EOF
}

mkdir -p "$out_dir"
tmp_kernels=$(mktemp) tmp_e2e=$(mktemp)
trap 'rm -f "$tmp_kernels" "$tmp_e2e"' EXIT

echo "== micro kernels (min_time=${min_time}) =="
run_bench "$build_dir/bench/micro_kernels" "$tmp_kernels"
wrap_json "$tmp_kernels" "$out_dir/BENCH_kernels.json" micro_kernels

echo "== end-to-end encoder (min_time=${min_time}) =="
run_bench "$build_dir/bench/e2e_encoder" "$tmp_e2e"
wrap_json "$tmp_e2e" "$out_dir/BENCH_e2e.json" e2e_encoder
