#!/usr/bin/env bash
# Runs tcb-lint over the first-party C++ files changed vs origin/main — the
# fast pre-commit loop (the CI jobs lint the whole tree).
#
# Usage:
#   scripts/lint-changed.sh [tcb-lint args...]
#
# Extra arguments are forwarded to tcb-lint (e.g. --rule use-after-move,
# --backend text, --jobs 4).  The diff base is the merge-base with
# origin/main when that ref exists, falling back to HEAD for fresh clones
# without a remote; deleted files are excluded (diff-filter=d).
#
# Exits 0 when nothing relevant changed.  The whole-program rules see only
# the changed files here, so cross-TU findings may need the full run
# (`tools/tcb-lint/tcb_lint.py`); this script is the quick local gate, not
# the CI gate.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

base="HEAD"
if git rev-parse --verify --quiet origin/main >/dev/null; then
  base="$(git merge-base HEAD origin/main)"
fi

mapfile -t changed < <(
  {
    git diff --name-only --diff-filter=d "${base}"
    git diff --name-only --diff-filter=d          # unstaged edits too
  } | sort -u \
    | grep -E '^(src|tests|bench|examples)/.*\.(cpp|hpp|h)$' || true)

if [[ ${#changed[@]} -eq 0 ]]; then
  echo "lint-changed: no first-party C++ changes vs ${base:0:12}; nothing to lint"
  exit 0
fi

echo "lint-changed: ${#changed[@]} changed file(s) vs ${base:0:12}"
exec python3 tools/tcb-lint/tcb_lint.py "$@" "${changed[@]}"
