#!/usr/bin/env python3
"""Minimal gcov aggregator: per-file and total line coverage for src/.

Fallback reporting backend for scripts/run-coverage.sh in environments
without gcovr.  Walks a --coverage build tree, invokes `gcov` in JSON
intermediate mode on every .gcno file, merges the per-source line counts
(a source is typically instrumented into several objects: the library and
each test binary), and prints a summary table.

Exits 1 when total line coverage over the filtered sources is below
--fail-under, mirroring `gcovr --fail-under-line`.
"""

from __future__ import annotations

import argparse
import gzip
import json
import os
import subprocess
import sys
import tempfile


def find_gcno(build_dir: str) -> list[str]:
    # Absolute paths: gcov runs from a scratch directory (it litters *.gcov
    # files into its cwd in the non---stdout fallback).
    out = []
    for dirpath, _dirs, names in os.walk(os.path.abspath(build_dir)):
        out.extend(os.path.join(dirpath, n) for n in names if n.endswith(".gcno"))
    return sorted(out)


def run_gcov(gcno_files: list[str], scratch: str) -> list[dict]:
    """Run gcov in JSON mode; returns the parsed per-object reports."""
    reports = []
    # Batch to keep command lines reasonable.
    for i in range(0, len(gcno_files), 64):
        batch = gcno_files[i:i + 64]
        res = subprocess.run(
            ["gcov", "--json-format", "--stdout"] + batch,
            cwd=scratch, capture_output=True)
        if res.returncode != 0:
            # --stdout may be unsupported (gcc < 9): fall back to files.
            subprocess.run(["gcov", "--json-format"] + batch,
                           cwd=scratch, capture_output=True, check=False)
            continue
        for line in res.stdout.splitlines():
            line = line.strip()
            if line.startswith(b"{"):
                try:
                    reports.append(json.loads(line))
                except json.JSONDecodeError:
                    pass
    # File mode fallback: gcov writes <name>.gcov.json.gz next to cwd.
    for name in os.listdir(scratch):
        if name.endswith(".gcov.json.gz"):
            with gzip.open(os.path.join(scratch, name), "rt",
                           encoding="utf-8") as f:
                try:
                    reports.append(json.load(f))
                except json.JSONDecodeError:
                    pass
    return reports


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", required=True)
    ap.add_argument("--filter", default="src/",
                    help="only count sources whose repo-relative path starts "
                         "with this prefix (default: src/)")
    ap.add_argument("--fail-under", type=float, default=0.0,
                    help="exit 1 if total line coverage %% is below this")
    args = ap.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    gcno = find_gcno(args.build_dir)
    if not gcno:
        print("gcov-summary: no .gcno files found; was the tree built with "
              "--coverage (cmake --preset coverage)?", file=sys.stderr)
        return 2

    # lines[source][line_no] = total execution count across all objects.
    lines: dict[str, dict[int, int]] = {}
    with tempfile.TemporaryDirectory(prefix="gcov-summary.") as scratch:
        for report in run_gcov(gcno, scratch):
            for f in report.get("files", []):
                src = f.get("file", "")
                abs_src = os.path.abspath(
                    src if os.path.isabs(src)
                    else os.path.join(args.build_dir, src))
                rel = os.path.relpath(abs_src, repo_root).replace(os.sep, "/")
                if not rel.startswith(args.filter):
                    continue
                per_line = lines.setdefault(rel, {})
                for ln in f.get("lines", []):
                    n = ln.get("line_number")
                    if n is None:
                        continue
                    per_line[n] = per_line.get(n, 0) + int(ln.get("count", 0))

    if not lines:
        print(f"gcov-summary: no sources under '{args.filter}' in the "
              "coverage data", file=sys.stderr)
        return 2

    total_lines = total_hit = 0
    width = max(len(p) for p in lines)
    print(f"{'file':<{width}}  lines   hit   cover")
    for path in sorted(lines):
        per_line = lines[path]
        n = len(per_line)
        hit = sum(1 for c in per_line.values() if c > 0)
        total_lines += n
        total_hit += hit
        pct = 100.0 * hit / n if n else 100.0
        print(f"{path:<{width}}  {n:5d} {hit:5d}  {pct:5.1f}%")
    total_pct = 100.0 * total_hit / total_lines if total_lines else 100.0
    print(f"{'TOTAL':<{width}}  {total_lines:5d} {total_hit:5d}  "
          f"{total_pct:5.1f}%")

    if total_pct < args.fail_under:
        print(f"gcov-summary: line coverage {total_pct:.1f}% is below the "
              f"floor {args.fail_under:.1f}%", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
