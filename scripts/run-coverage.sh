#!/usr/bin/env bash
# Builds the `coverage` preset, runs the test suite, and reports line
# coverage for src/.
#
# Usage:
#   scripts/run-coverage.sh [--fail-under PCT] [--build-dir DIR]
#
#   --fail-under PCT  exit 1 if src/ line coverage falls below PCT
#                     (default: 80; CI enforces this floor)
#   --build-dir DIR   reuse an existing coverage build tree
#                     (default: build-coverage, the preset's binaryDir)
#
# Reporting backend: gcovr when installed (also writes coverage.xml for CI
# annotation); otherwise a bundled aggregator (scripts/gcov-summary.py) that
# drives plain `gcov` directly, so minimal containers still get the gate.
set -euo pipefail

cd "$(dirname "$0")/.."

fail_under=80
build_dir=build-coverage
while [[ $# -gt 0 ]]; do
  case "$1" in
    --fail-under) fail_under="$2"; shift 2 ;;
    --build-dir)  build_dir="$2"; shift 2 ;;
    *) echo "run-coverage: unknown argument '$1'" >&2; exit 2 ;;
  esac
done

if ! command -v gcov >/dev/null 2>&1; then
  echo "run-coverage: gcov not found on PATH; skipping (install gcc to" \
       "collect coverage locally)." >&2
  exit 0
fi

if [[ ! -f "$build_dir/CMakeCache.txt" ]]; then
  cmake --preset coverage -B "$build_dir" >/dev/null
fi
cmake --build "$build_dir" -j "$(nproc)" >/dev/null

# Zero stale counters so reruns measure only this test run.
find "$build_dir" -name '*.gcda' -delete

ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" >/dev/null

if command -v gcovr >/dev/null 2>&1; then
  echo "run-coverage: reporting via gcovr (floor: ${fail_under}% on src/)" >&2
  gcovr --root . --filter 'src/' \
        --exclude-unreachable-branches \
        --print-summary \
        --xml "$build_dir/coverage.xml" \
        --fail-under-line "$fail_under" \
        "$build_dir"
else
  echo "run-coverage: gcovr not installed; using bundled gcov aggregator" \
       "(floor: ${fail_under}% on src/)" >&2
  python3 scripts/gcov-summary.py --build-dir "$build_dir" --filter src/ \
          --fail-under "$fail_under"
fi
