#!/usr/bin/env python3
"""Gate kernel benchmarks against the committed baseline.

Compares per-benchmark real_time of a fresh google-benchmark run against a
committed baseline (BENCH_kernels.json, possibly wrapped by run-bench.sh) and
fails when any matching benchmark regressed by more than the threshold. The
default gate covers the attention kernels plus the GEMM and whole-encoder-
layer benches, so a blocking or fusion regression cannot hide behind a
healthy attention number.

Benchmark numbers are only comparable on the machine they were recorded on,
so the gate is conditional: the bench binary records the detected cache
geometry in its context (tcb_cache_l1d / tcb_cache_l2, see
bench/micro_kernels.cpp), and when the current run's geometry differs from
the baseline's — a CI runner judging a baseline recorded on a dev box — the
gate prints what it skipped and exits 0. A baseline recorded in smoke mode
is likewise not judged.

A second, machine-independent mode gates the continuous-batching sweep
(bench/continuous_batching.cpp). The serving simulator is analytical and
deterministic, so its CSV reproduces bit-for-bit anywhere: at every rate at
or above the saturation knee (--saturation-rate, default 200 req/s) the
continuous pipeline must beat run-to-completion on both goodput and utility,
or the iteration-level splicing machinery has regressed.

Usage:
  scripts/check_bench_regression.py --baseline BENCH_kernels.json \
      --current bench-results/BENCH_kernels.json \
      [--filter BM_Attention,BM_Matmul] [--threshold 0.25]
  scripts/check_bench_regression.py --continuous-csv continuous_batching.csv \
      [--saturation-rate 200]

Exit codes: 0 pass/skip, 1 regression, 2 bad input.
"""

import argparse
import csv
import json
import sys

TIME_UNITS_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_report(path):
    """Returns (context, benchmarks, wrapper) from a raw or wrapped report."""
    with open(path) as f:
        doc = json.load(f)
    wrapper = {}
    if "benchmark" in doc and "context" not in doc:  # run-bench.sh wrapper
        wrapper = doc
        doc = doc["benchmark"]
    if "context" not in doc or "benchmarks" not in doc:
        raise ValueError(f"{path}: not a google-benchmark JSON report")
    return doc["context"], doc["benchmarks"], wrapper


def real_time_ns(entry):
    return entry["real_time"] * TIME_UNITS_NS[entry.get("time_unit", "ns")]


def geometry(context):
    return {k: context.get(k) for k in ("tcb_cache_l1d", "tcb_cache_l2")}


def check_continuous_csv(path, saturation_rate):
    """Gates the continuous-batching sweep: cont > rtc beyond saturation."""
    required = {"rate", "rtc_goodput", "cont_goodput", "rtc_utility",
                "cont_utility"}
    try:
        with open(path, newline="") as f:
            rows = list(csv.DictReader(f))
    except OSError as e:
        print(f"check_bench_regression: {e}", file=sys.stderr)
        return 2
    if not rows or not required.issubset(rows[0].keys()):
        print(f"check_bench_regression: {path}: expected columns {sorted(required)}",
              file=sys.stderr)
        return 2

    failures = []
    gated = 0
    for row in rows:
        rate = float(row["rate"])
        rtc_g, cont_g = float(row["rtc_goodput"]), float(row["cont_goodput"])
        rtc_u, cont_u = float(row["rtc_utility"]), float(row["cont_utility"])
        if rate < saturation_rate:
            print(f"  skip rate={rate:g}: below saturation knee "
                  f"({saturation_rate:g} req/s)")
            continue
        gated += 1
        ok = cont_g > rtc_g and cont_u > rtc_u
        print(f"  {'ok' if ok else 'FAIL':4} rate={rate:g}: goodput "
              f"{rtc_g:.1f} -> {cont_g:.1f} ({cont_g / rtc_g:.2f}x), utility "
              f"{rtc_u:.1f} -> {cont_u:.1f} ({cont_u / rtc_u:.2f}x)")
        if not ok:
            failures.append(rate)

    if gated == 0:
        print(f"check_bench_regression: no rates at or above "
              f"{saturation_rate:g} req/s in {path}", file=sys.stderr)
        return 2
    if failures:
        print(f"check_bench_regression: continuous batching lost to "
              f"run-to-completion at rate(s) "
              + ", ".join(f"{r:g}" for r in failures))
        return 1
    print(f"check_bench_regression: PASS — continuous beats "
          f"run-to-completion on goodput and utility at all {gated} "
          f"saturated rate(s)")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline")
    ap.add_argument("--current")
    ap.add_argument("--filter",
                    default="BM_Attention,BM_Matmul,BM_EncoderLayer",
                    help="comma-separated benchmark name prefixes to gate "
                         "(default: BM_Attention,BM_Matmul,BM_EncoderLayer)")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="max tolerated slowdown fraction (default: 0.25)")
    ap.add_argument("--continuous-csv",
                    help="gate a continuous_batching.csv sweep instead of a "
                         "google-benchmark report")
    ap.add_argument("--saturation-rate", type=float, default=200.0,
                    help="gate only rates at or above this (default: 200)")
    args = ap.parse_args()

    if args.continuous_csv:
        return check_continuous_csv(args.continuous_csv, args.saturation_rate)
    if not args.baseline or not args.current:
        ap.error("--baseline and --current are required unless "
                 "--continuous-csv is given")

    try:
        base_ctx, base_benches, base_wrap = load_report(args.baseline)
        cur_ctx, cur_benches, _ = load_report(args.current)
    except (OSError, ValueError, KeyError) as e:
        print(f"check_bench_regression: {e}", file=sys.stderr)
        return 2

    if base_wrap.get("smoke"):
        print("check_bench_regression: SKIP — baseline was recorded in smoke "
              "mode, numbers are not comparable")
        return 0

    base_geo, cur_geo = geometry(base_ctx), geometry(cur_ctx)
    if None in base_geo.values() or None in cur_geo.values():
        print("check_bench_regression: SKIP — cache geometry missing from "
              f"context (baseline={base_geo}, current={cur_geo}); cannot "
              "establish same-machine comparability")
        return 0
    if base_geo != cur_geo:
        print("check_bench_regression: SKIP — cache geometry differs "
              f"(baseline={base_geo}, current={cur_geo}); the baseline was "
              "recorded on a different machine class")
        return 0

    prefixes = tuple(p.strip() for p in args.filter.split(",") if p.strip())
    if not prefixes:
        print("check_bench_regression: --filter matched no prefixes",
              file=sys.stderr)
        return 2
    base_times = {
        b["name"]: real_time_ns(b)
        for b in base_benches
        if b["name"].startswith(prefixes) and "aggregate_name" not in b
    }
    if not base_times:
        print(f"check_bench_regression: no baseline benchmarks match "
              f"'{args.filter}'", file=sys.stderr)
        return 2

    failures = []
    compared = 0
    for entry in cur_benches:
        name = entry["name"]
        if name not in base_times or "aggregate_name" in entry:
            continue
        compared += 1
        base_ns, cur_ns = base_times[name], real_time_ns(entry)
        ratio = cur_ns / base_ns if base_ns > 0 else float("inf")
        status = "FAIL" if ratio > 1.0 + args.threshold else "ok"
        print(f"  {status:4} {name}: {base_ns / 1e6:.3f} ms -> "
              f"{cur_ns / 1e6:.3f} ms ({ratio:.2f}x baseline)")
        if status == "FAIL":
            failures.append(name)

    if compared == 0:
        print(f"check_bench_regression: current run has no benchmarks "
              f"matching '{args.filter}'", file=sys.stderr)
        return 2
    if failures:
        print(f"check_bench_regression: {len(failures)}/{compared} gated "
              f"benchmark(s) regressed more than {args.threshold:.0%}: "
              + ", ".join(failures))
        return 1
    print(f"check_bench_regression: PASS — {compared} benchmark(s) within "
          f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
