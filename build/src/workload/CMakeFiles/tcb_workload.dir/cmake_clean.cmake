file(REMOVE_RECURSE
  "CMakeFiles/tcb_workload.dir/trace.cpp.o"
  "CMakeFiles/tcb_workload.dir/trace.cpp.o.d"
  "libtcb_workload.a"
  "libtcb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
