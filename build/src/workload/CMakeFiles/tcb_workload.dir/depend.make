# Empty dependencies file for tcb_workload.
# This may be replaced when dependencies are built.
