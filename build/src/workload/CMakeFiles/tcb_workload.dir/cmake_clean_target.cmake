file(REMOVE_RECURSE
  "libtcb_workload.a"
)
