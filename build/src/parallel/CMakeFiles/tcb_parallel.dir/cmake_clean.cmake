file(REMOVE_RECURSE
  "CMakeFiles/tcb_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/tcb_parallel.dir/thread_pool.cpp.o.d"
  "libtcb_parallel.a"
  "libtcb_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcb_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
