# Empty compiler generated dependencies file for tcb_parallel.
# This may be replaced when dependencies are built.
