file(REMOVE_RECURSE
  "libtcb_parallel.a"
)
