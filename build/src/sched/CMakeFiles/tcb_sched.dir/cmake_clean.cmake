file(REMOVE_RECURSE
  "CMakeFiles/tcb_sched.dir/baselines.cpp.o"
  "CMakeFiles/tcb_sched.dir/baselines.cpp.o.d"
  "CMakeFiles/tcb_sched.dir/das.cpp.o"
  "CMakeFiles/tcb_sched.dir/das.cpp.o.d"
  "CMakeFiles/tcb_sched.dir/factory.cpp.o"
  "CMakeFiles/tcb_sched.dir/factory.cpp.o.d"
  "CMakeFiles/tcb_sched.dir/offline_bound.cpp.o"
  "CMakeFiles/tcb_sched.dir/offline_bound.cpp.o.d"
  "CMakeFiles/tcb_sched.dir/scheduler.cpp.o"
  "CMakeFiles/tcb_sched.dir/scheduler.cpp.o.d"
  "CMakeFiles/tcb_sched.dir/slotted_das.cpp.o"
  "CMakeFiles/tcb_sched.dir/slotted_das.cpp.o.d"
  "libtcb_sched.a"
  "libtcb_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcb_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
