# Empty compiler generated dependencies file for tcb_sched.
# This may be replaced when dependencies are built.
