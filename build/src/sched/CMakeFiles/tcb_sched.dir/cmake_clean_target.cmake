file(REMOVE_RECURSE
  "libtcb_sched.a"
)
