
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/baselines.cpp" "src/sched/CMakeFiles/tcb_sched.dir/baselines.cpp.o" "gcc" "src/sched/CMakeFiles/tcb_sched.dir/baselines.cpp.o.d"
  "/root/repo/src/sched/das.cpp" "src/sched/CMakeFiles/tcb_sched.dir/das.cpp.o" "gcc" "src/sched/CMakeFiles/tcb_sched.dir/das.cpp.o.d"
  "/root/repo/src/sched/factory.cpp" "src/sched/CMakeFiles/tcb_sched.dir/factory.cpp.o" "gcc" "src/sched/CMakeFiles/tcb_sched.dir/factory.cpp.o.d"
  "/root/repo/src/sched/offline_bound.cpp" "src/sched/CMakeFiles/tcb_sched.dir/offline_bound.cpp.o" "gcc" "src/sched/CMakeFiles/tcb_sched.dir/offline_bound.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/sched/CMakeFiles/tcb_sched.dir/scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/tcb_sched.dir/scheduler.cpp.o.d"
  "/root/repo/src/sched/slotted_das.cpp" "src/sched/CMakeFiles/tcb_sched.dir/slotted_das.cpp.o" "gcc" "src/sched/CMakeFiles/tcb_sched.dir/slotted_das.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/batching/CMakeFiles/tcb_batching.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tcb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/tcb_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/tcb_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
