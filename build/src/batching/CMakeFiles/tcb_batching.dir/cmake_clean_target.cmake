file(REMOVE_RECURSE
  "libtcb_batching.a"
)
