# Empty dependencies file for tcb_batching.
# This may be replaced when dependencies are built.
