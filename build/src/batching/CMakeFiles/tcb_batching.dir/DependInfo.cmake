
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/batching/batch_plan.cpp" "src/batching/CMakeFiles/tcb_batching.dir/batch_plan.cpp.o" "gcc" "src/batching/CMakeFiles/tcb_batching.dir/batch_plan.cpp.o.d"
  "/root/repo/src/batching/concat_batcher.cpp" "src/batching/CMakeFiles/tcb_batching.dir/concat_batcher.cpp.o" "gcc" "src/batching/CMakeFiles/tcb_batching.dir/concat_batcher.cpp.o.d"
  "/root/repo/src/batching/naive_batcher.cpp" "src/batching/CMakeFiles/tcb_batching.dir/naive_batcher.cpp.o" "gcc" "src/batching/CMakeFiles/tcb_batching.dir/naive_batcher.cpp.o.d"
  "/root/repo/src/batching/packed_batch.cpp" "src/batching/CMakeFiles/tcb_batching.dir/packed_batch.cpp.o" "gcc" "src/batching/CMakeFiles/tcb_batching.dir/packed_batch.cpp.o.d"
  "/root/repo/src/batching/slotted_batcher.cpp" "src/batching/CMakeFiles/tcb_batching.dir/slotted_batcher.cpp.o" "gcc" "src/batching/CMakeFiles/tcb_batching.dir/slotted_batcher.cpp.o.d"
  "/root/repo/src/batching/stats.cpp" "src/batching/CMakeFiles/tcb_batching.dir/stats.cpp.o" "gcc" "src/batching/CMakeFiles/tcb_batching.dir/stats.cpp.o.d"
  "/root/repo/src/batching/turbo_batcher.cpp" "src/batching/CMakeFiles/tcb_batching.dir/turbo_batcher.cpp.o" "gcc" "src/batching/CMakeFiles/tcb_batching.dir/turbo_batcher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/tcb_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tcb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/tcb_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
