file(REMOVE_RECURSE
  "CMakeFiles/tcb_batching.dir/batch_plan.cpp.o"
  "CMakeFiles/tcb_batching.dir/batch_plan.cpp.o.d"
  "CMakeFiles/tcb_batching.dir/concat_batcher.cpp.o"
  "CMakeFiles/tcb_batching.dir/concat_batcher.cpp.o.d"
  "CMakeFiles/tcb_batching.dir/naive_batcher.cpp.o"
  "CMakeFiles/tcb_batching.dir/naive_batcher.cpp.o.d"
  "CMakeFiles/tcb_batching.dir/packed_batch.cpp.o"
  "CMakeFiles/tcb_batching.dir/packed_batch.cpp.o.d"
  "CMakeFiles/tcb_batching.dir/slotted_batcher.cpp.o"
  "CMakeFiles/tcb_batching.dir/slotted_batcher.cpp.o.d"
  "CMakeFiles/tcb_batching.dir/stats.cpp.o"
  "CMakeFiles/tcb_batching.dir/stats.cpp.o.d"
  "CMakeFiles/tcb_batching.dir/turbo_batcher.cpp.o"
  "CMakeFiles/tcb_batching.dir/turbo_batcher.cpp.o.d"
  "libtcb_batching.a"
  "libtcb_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcb_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
