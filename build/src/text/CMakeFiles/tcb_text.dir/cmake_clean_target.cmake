file(REMOVE_RECURSE
  "libtcb_text.a"
)
