file(REMOVE_RECURSE
  "CMakeFiles/tcb_text.dir/tokenizer.cpp.o"
  "CMakeFiles/tcb_text.dir/tokenizer.cpp.o.d"
  "CMakeFiles/tcb_text.dir/vocabulary.cpp.o"
  "CMakeFiles/tcb_text.dir/vocabulary.cpp.o.d"
  "libtcb_text.a"
  "libtcb_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcb_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
