# Empty dependencies file for tcb_text.
# This may be replaced when dependencies are built.
