
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/tokenizer.cpp" "src/text/CMakeFiles/tcb_text.dir/tokenizer.cpp.o" "gcc" "src/text/CMakeFiles/tcb_text.dir/tokenizer.cpp.o.d"
  "/root/repo/src/text/vocabulary.cpp" "src/text/CMakeFiles/tcb_text.dir/vocabulary.cpp.o" "gcc" "src/text/CMakeFiles/tcb_text.dir/vocabulary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/batching/CMakeFiles/tcb_batching.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tcb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/tcb_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/tcb_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
