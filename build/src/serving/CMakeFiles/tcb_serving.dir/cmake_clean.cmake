file(REMOVE_RECURSE
  "CMakeFiles/tcb_serving.dir/cost_model.cpp.o"
  "CMakeFiles/tcb_serving.dir/cost_model.cpp.o.d"
  "CMakeFiles/tcb_serving.dir/simulator.cpp.o"
  "CMakeFiles/tcb_serving.dir/simulator.cpp.o.d"
  "libtcb_serving.a"
  "libtcb_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcb_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
