# Empty dependencies file for tcb_serving.
# This may be replaced when dependencies are built.
