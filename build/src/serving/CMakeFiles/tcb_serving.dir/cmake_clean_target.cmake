file(REMOVE_RECURSE
  "libtcb_serving.a"
)
