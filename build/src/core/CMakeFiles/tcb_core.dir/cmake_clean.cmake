file(REMOVE_RECURSE
  "CMakeFiles/tcb_core.dir/tcb.cpp.o"
  "CMakeFiles/tcb_core.dir/tcb.cpp.o.d"
  "libtcb_core.a"
  "libtcb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
