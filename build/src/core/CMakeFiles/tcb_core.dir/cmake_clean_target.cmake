file(REMOVE_RECURSE
  "libtcb_core.a"
)
