# Empty dependencies file for tcb_core.
# This may be replaced when dependencies are built.
