file(REMOVE_RECURSE
  "libtcb_nn.a"
)
