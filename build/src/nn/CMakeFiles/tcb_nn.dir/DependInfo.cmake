
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/attention.cpp" "src/nn/CMakeFiles/tcb_nn.dir/attention.cpp.o" "gcc" "src/nn/CMakeFiles/tcb_nn.dir/attention.cpp.o.d"
  "/root/repo/src/nn/classifier.cpp" "src/nn/CMakeFiles/tcb_nn.dir/classifier.cpp.o" "gcc" "src/nn/CMakeFiles/tcb_nn.dir/classifier.cpp.o.d"
  "/root/repo/src/nn/decoder.cpp" "src/nn/CMakeFiles/tcb_nn.dir/decoder.cpp.o" "gcc" "src/nn/CMakeFiles/tcb_nn.dir/decoder.cpp.o.d"
  "/root/repo/src/nn/embedding.cpp" "src/nn/CMakeFiles/tcb_nn.dir/embedding.cpp.o" "gcc" "src/nn/CMakeFiles/tcb_nn.dir/embedding.cpp.o.d"
  "/root/repo/src/nn/encoder.cpp" "src/nn/CMakeFiles/tcb_nn.dir/encoder.cpp.o" "gcc" "src/nn/CMakeFiles/tcb_nn.dir/encoder.cpp.o.d"
  "/root/repo/src/nn/feed_forward.cpp" "src/nn/CMakeFiles/tcb_nn.dir/feed_forward.cpp.o" "gcc" "src/nn/CMakeFiles/tcb_nn.dir/feed_forward.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/tcb_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/tcb_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/nn/CMakeFiles/tcb_nn.dir/model.cpp.o" "gcc" "src/nn/CMakeFiles/tcb_nn.dir/model.cpp.o.d"
  "/root/repo/src/nn/model_config.cpp" "src/nn/CMakeFiles/tcb_nn.dir/model_config.cpp.o" "gcc" "src/nn/CMakeFiles/tcb_nn.dir/model_config.cpp.o.d"
  "/root/repo/src/nn/positional_encoding.cpp" "src/nn/CMakeFiles/tcb_nn.dir/positional_encoding.cpp.o" "gcc" "src/nn/CMakeFiles/tcb_nn.dir/positional_encoding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/tcb_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/batching/CMakeFiles/tcb_batching.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/tcb_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tcb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
