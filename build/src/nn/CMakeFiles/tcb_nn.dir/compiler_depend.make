# Empty compiler generated dependencies file for tcb_nn.
# This may be replaced when dependencies are built.
