file(REMOVE_RECURSE
  "CMakeFiles/tcb_nn.dir/attention.cpp.o"
  "CMakeFiles/tcb_nn.dir/attention.cpp.o.d"
  "CMakeFiles/tcb_nn.dir/classifier.cpp.o"
  "CMakeFiles/tcb_nn.dir/classifier.cpp.o.d"
  "CMakeFiles/tcb_nn.dir/decoder.cpp.o"
  "CMakeFiles/tcb_nn.dir/decoder.cpp.o.d"
  "CMakeFiles/tcb_nn.dir/embedding.cpp.o"
  "CMakeFiles/tcb_nn.dir/embedding.cpp.o.d"
  "CMakeFiles/tcb_nn.dir/encoder.cpp.o"
  "CMakeFiles/tcb_nn.dir/encoder.cpp.o.d"
  "CMakeFiles/tcb_nn.dir/feed_forward.cpp.o"
  "CMakeFiles/tcb_nn.dir/feed_forward.cpp.o.d"
  "CMakeFiles/tcb_nn.dir/linear.cpp.o"
  "CMakeFiles/tcb_nn.dir/linear.cpp.o.d"
  "CMakeFiles/tcb_nn.dir/model.cpp.o"
  "CMakeFiles/tcb_nn.dir/model.cpp.o.d"
  "CMakeFiles/tcb_nn.dir/model_config.cpp.o"
  "CMakeFiles/tcb_nn.dir/model_config.cpp.o.d"
  "CMakeFiles/tcb_nn.dir/positional_encoding.cpp.o"
  "CMakeFiles/tcb_nn.dir/positional_encoding.cpp.o.d"
  "libtcb_nn.a"
  "libtcb_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcb_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
