# Empty compiler generated dependencies file for tcb_tensor.
# This may be replaced when dependencies are built.
