file(REMOVE_RECURSE
  "CMakeFiles/tcb_tensor.dir/io.cpp.o"
  "CMakeFiles/tcb_tensor.dir/io.cpp.o.d"
  "CMakeFiles/tcb_tensor.dir/ops.cpp.o"
  "CMakeFiles/tcb_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/tcb_tensor.dir/tensor.cpp.o"
  "CMakeFiles/tcb_tensor.dir/tensor.cpp.o.d"
  "libtcb_tensor.a"
  "libtcb_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcb_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
