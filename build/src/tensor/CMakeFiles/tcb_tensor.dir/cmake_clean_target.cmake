file(REMOVE_RECURSE
  "libtcb_tensor.a"
)
