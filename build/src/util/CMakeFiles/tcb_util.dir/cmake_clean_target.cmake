file(REMOVE_RECURSE
  "libtcb_util.a"
)
