# Empty dependencies file for tcb_util.
# This may be replaced when dependencies are built.
