file(REMOVE_RECURSE
  "CMakeFiles/tcb_util.dir/csv.cpp.o"
  "CMakeFiles/tcb_util.dir/csv.cpp.o.d"
  "CMakeFiles/tcb_util.dir/env.cpp.o"
  "CMakeFiles/tcb_util.dir/env.cpp.o.d"
  "CMakeFiles/tcb_util.dir/histogram.cpp.o"
  "CMakeFiles/tcb_util.dir/histogram.cpp.o.d"
  "CMakeFiles/tcb_util.dir/rng.cpp.o"
  "CMakeFiles/tcb_util.dir/rng.cpp.o.d"
  "CMakeFiles/tcb_util.dir/stats.cpp.o"
  "CMakeFiles/tcb_util.dir/stats.cpp.o.d"
  "CMakeFiles/tcb_util.dir/table.cpp.o"
  "CMakeFiles/tcb_util.dir/table.cpp.o.d"
  "libtcb_util.a"
  "libtcb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
