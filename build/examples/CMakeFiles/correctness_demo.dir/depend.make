# Empty dependencies file for correctness_demo.
# This may be replaced when dependencies are built.
