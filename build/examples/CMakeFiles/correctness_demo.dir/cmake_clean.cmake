file(REMOVE_RECURSE
  "CMakeFiles/correctness_demo.dir/correctness_demo.cpp.o"
  "CMakeFiles/correctness_demo.dir/correctness_demo.cpp.o.d"
  "correctness_demo"
  "correctness_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/correctness_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
