# Empty compiler generated dependencies file for classification_service.
# This may be replaced when dependencies are built.
