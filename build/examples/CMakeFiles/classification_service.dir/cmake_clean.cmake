file(REMOVE_RECURSE
  "CMakeFiles/classification_service.dir/classification_service.cpp.o"
  "CMakeFiles/classification_service.dir/classification_service.cpp.o.d"
  "classification_service"
  "classification_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classification_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
