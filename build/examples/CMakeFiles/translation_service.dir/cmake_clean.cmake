file(REMOVE_RECURSE
  "CMakeFiles/translation_service.dir/translation_service.cpp.o"
  "CMakeFiles/translation_service.dir/translation_service.cpp.o.d"
  "translation_service"
  "translation_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translation_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
