# Empty compiler generated dependencies file for translation_service.
# This may be replaced when dependencies are built.
