# Empty dependencies file for text_service.
# This may be replaced when dependencies are built.
