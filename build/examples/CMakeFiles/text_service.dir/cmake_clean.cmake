file(REMOVE_RECURSE
  "CMakeFiles/text_service.dir/text_service.cpp.o"
  "CMakeFiles/text_service.dir/text_service.cpp.o.d"
  "text_service"
  "text_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
