# Empty compiler generated dependencies file for fig16_das_overhead.
# This may be replaced when dependencies are built.
