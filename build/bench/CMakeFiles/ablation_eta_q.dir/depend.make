# Empty dependencies file for ablation_eta_q.
# This may be replaced when dependencies are built.
