file(REMOVE_RECURSE
  "CMakeFiles/ablation_eta_q.dir/ablation_eta_q.cpp.o"
  "CMakeFiles/ablation_eta_q.dir/ablation_eta_q.cpp.o.d"
  "ablation_eta_q"
  "ablation_eta_q.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_eta_q.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
