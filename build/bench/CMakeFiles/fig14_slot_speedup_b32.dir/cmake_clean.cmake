file(REMOVE_RECURSE
  "CMakeFiles/fig14_slot_speedup_b32.dir/fig14_slot_speedup_b32.cpp.o"
  "CMakeFiles/fig14_slot_speedup_b32.dir/fig14_slot_speedup_b32.cpp.o.d"
  "fig14_slot_speedup_b32"
  "fig14_slot_speedup_b32.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_slot_speedup_b32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
