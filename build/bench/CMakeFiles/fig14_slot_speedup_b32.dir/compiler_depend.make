# Empty compiler generated dependencies file for fig14_slot_speedup_b32.
# This may be replaced when dependencies are built.
