# Empty dependencies file for competitive_ratio.
# This may be replaced when dependencies are built.
