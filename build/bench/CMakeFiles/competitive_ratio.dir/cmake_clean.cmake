file(REMOVE_RECURSE
  "CMakeFiles/competitive_ratio.dir/competitive_ratio.cpp.o"
  "CMakeFiles/competitive_ratio.dir/competitive_ratio.cpp.o.d"
  "competitive_ratio"
  "competitive_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/competitive_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
