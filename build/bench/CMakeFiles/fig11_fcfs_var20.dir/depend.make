# Empty dependencies file for fig11_fcfs_var20.
# This may be replaced when dependencies are built.
