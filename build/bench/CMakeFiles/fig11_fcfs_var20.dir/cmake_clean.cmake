file(REMOVE_RECURSE
  "CMakeFiles/fig11_fcfs_var20.dir/fig11_fcfs_var20.cpp.o"
  "CMakeFiles/fig11_fcfs_var20.dir/fig11_fcfs_var20.cpp.o.d"
  "fig11_fcfs_var20"
  "fig11_fcfs_var20.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_fcfs_var20.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
