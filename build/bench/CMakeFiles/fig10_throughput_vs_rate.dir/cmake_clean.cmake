file(REMOVE_RECURSE
  "CMakeFiles/fig10_throughput_vs_rate.dir/fig10_throughput_vs_rate.cpp.o"
  "CMakeFiles/fig10_throughput_vs_rate.dir/fig10_throughput_vs_rate.cpp.o.d"
  "fig10_throughput_vs_rate"
  "fig10_throughput_vs_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_throughput_vs_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
