# Empty compiler generated dependencies file for fig10_throughput_vs_rate.
# This may be replaced when dependencies are built.
