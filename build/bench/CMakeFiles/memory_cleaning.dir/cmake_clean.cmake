file(REMOVE_RECURSE
  "CMakeFiles/memory_cleaning.dir/memory_cleaning.cpp.o"
  "CMakeFiles/memory_cleaning.dir/memory_cleaning.cpp.o.d"
  "memory_cleaning"
  "memory_cleaning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_cleaning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
