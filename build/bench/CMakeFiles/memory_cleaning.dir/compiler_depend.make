# Empty compiler generated dependencies file for memory_cleaning.
# This may be replaced when dependencies are built.
