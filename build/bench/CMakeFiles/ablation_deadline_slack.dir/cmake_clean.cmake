file(REMOVE_RECURSE
  "CMakeFiles/ablation_deadline_slack.dir/ablation_deadline_slack.cpp.o"
  "CMakeFiles/ablation_deadline_slack.dir/ablation_deadline_slack.cpp.o.d"
  "ablation_deadline_slack"
  "ablation_deadline_slack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_deadline_slack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
