# Empty compiler generated dependencies file for fig15b_sched_variance.
# This may be replaced when dependencies are built.
