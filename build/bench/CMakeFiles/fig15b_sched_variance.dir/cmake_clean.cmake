file(REMOVE_RECURSE
  "CMakeFiles/fig15b_sched_variance.dir/fig15b_sched_variance.cpp.o"
  "CMakeFiles/fig15b_sched_variance.dir/fig15b_sched_variance.cpp.o.d"
  "fig15b_sched_variance"
  "fig15b_sched_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15b_sched_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
