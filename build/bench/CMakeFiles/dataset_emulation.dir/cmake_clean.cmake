file(REMOVE_RECURSE
  "CMakeFiles/dataset_emulation.dir/dataset_emulation.cpp.o"
  "CMakeFiles/dataset_emulation.dir/dataset_emulation.cpp.o.d"
  "dataset_emulation"
  "dataset_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
