# Empty dependencies file for dataset_emulation.
# This may be replaced when dependencies are built.
