file(REMOVE_RECURSE
  "CMakeFiles/fig09_utility_vs_rate.dir/fig09_utility_vs_rate.cpp.o"
  "CMakeFiles/fig09_utility_vs_rate.dir/fig09_utility_vs_rate.cpp.o.d"
  "fig09_utility_vs_rate"
  "fig09_utility_vs_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_utility_vs_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
