# Empty compiler generated dependencies file for fig09_utility_vs_rate.
# This may be replaced when dependencies are built.
