# Empty compiler generated dependencies file for fig15c_sched_rowlen.
# This may be replaced when dependencies are built.
