file(REMOVE_RECURSE
  "CMakeFiles/fig15c_sched_rowlen.dir/fig15c_sched_rowlen.cpp.o"
  "CMakeFiles/fig15c_sched_rowlen.dir/fig15c_sched_rowlen.cpp.o.d"
  "fig15c_sched_rowlen"
  "fig15c_sched_rowlen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15c_sched_rowlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
