# Empty dependencies file for fig12_fcfs_var100.
# This may be replaced when dependencies are built.
