file(REMOVE_RECURSE
  "CMakeFiles/fig12_fcfs_var100.dir/fig12_fcfs_var100.cpp.o"
  "CMakeFiles/fig12_fcfs_var100.dir/fig12_fcfs_var100.cpp.o.d"
  "fig12_fcfs_var100"
  "fig12_fcfs_var100.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_fcfs_var100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
