file(REMOVE_RECURSE
  "CMakeFiles/fig15a_sched_batchsize.dir/fig15a_sched_batchsize.cpp.o"
  "CMakeFiles/fig15a_sched_batchsize.dir/fig15a_sched_batchsize.cpp.o.d"
  "fig15a_sched_batchsize"
  "fig15a_sched_batchsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15a_sched_batchsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
