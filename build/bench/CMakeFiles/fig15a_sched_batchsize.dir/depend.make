# Empty dependencies file for fig15a_sched_batchsize.
# This may be replaced when dependencies are built.
