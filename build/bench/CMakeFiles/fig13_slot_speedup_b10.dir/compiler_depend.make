# Empty compiler generated dependencies file for fig13_slot_speedup_b10.
# This may be replaced when dependencies are built.
