file(REMOVE_RECURSE
  "CMakeFiles/fig13_slot_speedup_b10.dir/fig13_slot_speedup_b10.cpp.o"
  "CMakeFiles/fig13_slot_speedup_b10.dir/fig13_slot_speedup_b10.cpp.o.d"
  "fig13_slot_speedup_b10"
  "fig13_slot_speedup_b10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_slot_speedup_b10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
