
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_slot_policy.cpp" "bench/CMakeFiles/ablation_slot_policy.dir/ablation_slot_policy.cpp.o" "gcc" "bench/CMakeFiles/ablation_slot_policy.dir/ablation_slot_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tcb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/serving/CMakeFiles/tcb_serving.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/tcb_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/tcb_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tcb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/tcb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/batching/CMakeFiles/tcb_batching.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/tcb_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/tcb_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tcb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
