# Empty compiler generated dependencies file for ablation_slot_policy.
# This may be replaced when dependencies are built.
