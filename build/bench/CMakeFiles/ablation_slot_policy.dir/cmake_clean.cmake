file(REMOVE_RECURSE
  "CMakeFiles/ablation_slot_policy.dir/ablation_slot_policy.cpp.o"
  "CMakeFiles/ablation_slot_policy.dir/ablation_slot_policy.cpp.o.d"
  "ablation_slot_policy"
  "ablation_slot_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_slot_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
