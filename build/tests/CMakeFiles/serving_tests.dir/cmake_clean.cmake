file(REMOVE_RECURSE
  "CMakeFiles/serving_tests.dir/serving/cost_model_property_test.cpp.o"
  "CMakeFiles/serving_tests.dir/serving/cost_model_property_test.cpp.o.d"
  "CMakeFiles/serving_tests.dir/serving/cost_model_test.cpp.o"
  "CMakeFiles/serving_tests.dir/serving/cost_model_test.cpp.o.d"
  "CMakeFiles/serving_tests.dir/serving/cost_model_validation_test.cpp.o"
  "CMakeFiles/serving_tests.dir/serving/cost_model_validation_test.cpp.o.d"
  "CMakeFiles/serving_tests.dir/serving/multi_worker_test.cpp.o"
  "CMakeFiles/serving_tests.dir/serving/multi_worker_test.cpp.o.d"
  "CMakeFiles/serving_tests.dir/serving/report_test.cpp.o"
  "CMakeFiles/serving_tests.dir/serving/report_test.cpp.o.d"
  "CMakeFiles/serving_tests.dir/serving/simulator_property_test.cpp.o"
  "CMakeFiles/serving_tests.dir/serving/simulator_property_test.cpp.o.d"
  "CMakeFiles/serving_tests.dir/serving/simulator_test.cpp.o"
  "CMakeFiles/serving_tests.dir/serving/simulator_test.cpp.o.d"
  "serving_tests"
  "serving_tests.pdb"
  "serving_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
