# Empty dependencies file for text_tests.
# This may be replaced when dependencies are built.
