file(REMOVE_RECURSE
  "CMakeFiles/text_tests.dir/text/tokenizer_test.cpp.o"
  "CMakeFiles/text_tests.dir/text/tokenizer_test.cpp.o.d"
  "CMakeFiles/text_tests.dir/text/vocabulary_test.cpp.o"
  "CMakeFiles/text_tests.dir/text/vocabulary_test.cpp.o.d"
  "text_tests"
  "text_tests.pdb"
  "text_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
