# Empty compiler generated dependencies file for batching_tests.
# This may be replaced when dependencies are built.
