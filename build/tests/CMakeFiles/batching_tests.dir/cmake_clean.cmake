file(REMOVE_RECURSE
  "CMakeFiles/batching_tests.dir/batching/batch_plan_test.cpp.o"
  "CMakeFiles/batching_tests.dir/batching/batch_plan_test.cpp.o.d"
  "CMakeFiles/batching_tests.dir/batching/batcher_property_test.cpp.o"
  "CMakeFiles/batching_tests.dir/batching/batcher_property_test.cpp.o.d"
  "CMakeFiles/batching_tests.dir/batching/concat_batcher_test.cpp.o"
  "CMakeFiles/batching_tests.dir/batching/concat_batcher_test.cpp.o.d"
  "CMakeFiles/batching_tests.dir/batching/naive_batcher_test.cpp.o"
  "CMakeFiles/batching_tests.dir/batching/naive_batcher_test.cpp.o.d"
  "CMakeFiles/batching_tests.dir/batching/packed_batch_test.cpp.o"
  "CMakeFiles/batching_tests.dir/batching/packed_batch_test.cpp.o.d"
  "CMakeFiles/batching_tests.dir/batching/slotted_batcher_test.cpp.o"
  "CMakeFiles/batching_tests.dir/batching/slotted_batcher_test.cpp.o.d"
  "CMakeFiles/batching_tests.dir/batching/stats_test.cpp.o"
  "CMakeFiles/batching_tests.dir/batching/stats_test.cpp.o.d"
  "CMakeFiles/batching_tests.dir/batching/turbo_batcher_test.cpp.o"
  "CMakeFiles/batching_tests.dir/batching/turbo_batcher_test.cpp.o.d"
  "batching_tests"
  "batching_tests.pdb"
  "batching_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batching_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
