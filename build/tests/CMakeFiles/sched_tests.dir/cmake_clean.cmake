file(REMOVE_RECURSE
  "CMakeFiles/sched_tests.dir/sched/baselines_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/baselines_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/competitive_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/competitive_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/das_property_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/das_property_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/das_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/das_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/offline_bound_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/offline_bound_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/slotted_das_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/slotted_das_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/weighted_utility_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/weighted_utility_test.cpp.o.d"
  "sched_tests"
  "sched_tests.pdb"
  "sched_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
