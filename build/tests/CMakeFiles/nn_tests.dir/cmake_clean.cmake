file(REMOVE_RECURSE
  "CMakeFiles/nn_tests.dir/nn/attention_reference_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/attention_reference_test.cpp.o.d"
  "CMakeFiles/nn_tests.dir/nn/attention_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/attention_test.cpp.o.d"
  "CMakeFiles/nn_tests.dir/nn/classifier_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/classifier_test.cpp.o.d"
  "CMakeFiles/nn_tests.dir/nn/decode_cap_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/decode_cap_test.cpp.o.d"
  "CMakeFiles/nn_tests.dir/nn/decoder_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/decoder_test.cpp.o.d"
  "CMakeFiles/nn_tests.dir/nn/encoder_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/encoder_test.cpp.o.d"
  "CMakeFiles/nn_tests.dir/nn/equivalence_property_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/equivalence_property_test.cpp.o.d"
  "CMakeFiles/nn_tests.dir/nn/equivalence_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/equivalence_test.cpp.o.d"
  "CMakeFiles/nn_tests.dir/nn/linear_embedding_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/linear_embedding_test.cpp.o.d"
  "CMakeFiles/nn_tests.dir/nn/model_determinism_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/model_determinism_test.cpp.o.d"
  "CMakeFiles/nn_tests.dir/nn/positional_encoding_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/positional_encoding_test.cpp.o.d"
  "CMakeFiles/nn_tests.dir/nn/sampling_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/sampling_test.cpp.o.d"
  "nn_tests"
  "nn_tests.pdb"
  "nn_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
