# Sanitizer composition for the TCB build.
#
# Usage: set TCB_SANITIZE to a semicolon- or comma-separated subset of
# {address, undefined, thread} (the CMake presets do this; -DTCB_SANITIZE=...
# works too). address+undefined compose; thread is mutually exclusive with
# address by toolchain rule, and this module enforces that early with a
# readable error instead of a cryptic link failure.
#
# Any enabled sanitizer also defines TCB_ENABLE_DCHECKS so the per-element
# invariant checks in src/util/check.hpp run at full strength exactly in the
# builds meant to catch memory/threading bugs.

set(TCB_SANITIZE "" CACHE STRING
    "Sanitizers to enable: any of address;undefined;thread")

string(REPLACE "," ";" _tcb_sanitizers "${TCB_SANITIZE}")

set(TCB_SANITIZER_FLAGS "")
set(_tcb_has_address OFF)
set(_tcb_has_thread OFF)

foreach(_san IN LISTS _tcb_sanitizers)
  string(STRIP "${_san}" _san)
  string(TOLOWER "${_san}" _san)
  if(_san STREQUAL "")
    continue()
  elseif(_san STREQUAL "address")
    list(APPEND TCB_SANITIZER_FLAGS -fsanitize=address)
    set(_tcb_has_address ON)
  elseif(_san STREQUAL "undefined")
    # Trap-free UBSan with full default checks; halt on the first report so
    # ctest fails loudly instead of scrolling diagnostics past a green run.
    list(APPEND TCB_SANITIZER_FLAGS -fsanitize=undefined
         -fno-sanitize-recover=undefined)
  elseif(_san STREQUAL "thread")
    list(APPEND TCB_SANITIZER_FLAGS -fsanitize=thread)
    set(_tcb_has_thread ON)
  else()
    message(FATAL_ERROR "Unknown TCB_SANITIZE entry '${_san}' "
            "(expected address, undefined, or thread)")
  endif()
endforeach()

if(_tcb_has_address AND _tcb_has_thread)
  message(FATAL_ERROR "TCB_SANITIZE: address and thread sanitizers cannot be "
          "combined in one build; configure two presets instead")
endif()

if(TCB_SANITIZER_FLAGS)
  list(REMOVE_DUPLICATES TCB_SANITIZER_FLAGS)
  # Keep frames honest for sanitizer reports and make the instrumented code
  # debuggable; -O1 keeps TSan runs of the stress suite tolerable.
  list(APPEND TCB_SANITIZER_FLAGS -fno-omit-frame-pointer -g)
  add_compile_options(${TCB_SANITIZER_FLAGS} -O1)
  add_link_options(${TCB_SANITIZER_FLAGS})
  add_compile_definitions(TCB_ENABLE_DCHECKS)
  message(STATUS "TCB sanitizers enabled: ${TCB_SANITIZE}")
endif()
