// Empirical competitive ratio (Theorem 5.1): DAS's achieved utility divided
// by the offline upper bound, across arrival rates. The theorem guarantees
// eta*q/(eta*q+1) = 1/5 with eta = q = 1/2; in practice DAS lands far above
// the worst case.
#include "common.hpp"
#include "sched/offline_bound.hpp"

int main() {
  using namespace tcb;
  using namespace tcb::bench;
  print_figure_banner("Theorem 5.1",
                      "empirical DAS competitive ratio vs the 1/5 bound");

  SchedulerConfig sc;
  sc.batch_rows = 16;
  sc.row_capacity = 100;
  const AnalyticalCostModel cost(ModelConfig::paper_scale(),
                                 HardwareProfile::v100_like());

  // Representative full batch prices the token budget of the bound.
  BatchPlan full;
  full.scheme = Scheme::kConcatPure;
  full.row_capacity = sc.row_capacity;
  for (Index r = 0; r < sc.batch_rows; ++r) {
    RowLayout row;
    row.width = sc.row_capacity;
    for (Index off = 0; off < sc.row_capacity; off += 20)
      row.segments.push_back(Segment{r * 5 + off / 20, off, 20, 0});
    full.rows.push_back(std::move(row));
  }
  const double batch_seconds = cost.batch_seconds(full);

  TablePrinter table({"rate (req/s)", "DAS utility", "offline bound",
                      "empirical ratio", "guaranteed ratio"});
  CsvWriter csv("competitive_ratio.csv",
                {"rate", "das_utility", "offline_bound", "ratio"});
  for (const double rate : {100.0, 200.0, 400.0, 800.0, 1500.0}) {
    const auto workload = paper_workload(rate);
    const auto trace = generate_trace(workload);
    const auto report =
        run_serving(Scheme::kConcatPure, "das", sc, workload);

    OfflineBoundConfig bound_cfg;
    bound_cfg.batch_rows = sc.batch_rows;
    bound_cfg.row_capacity = sc.row_capacity;
    bound_cfg.batch_seconds = batch_seconds;
    bound_cfg.horizon =
        workload.duration + workload.deadline_slack_max + batch_seconds;
    const double bound = offline_utility_upper_bound(trace, bound_cfg);

    const double ratio = bound > 0.0 ? report.total_utility / bound : 1.0;
    table.row_numeric({rate, report.total_utility, bound, ratio, 0.2});
    csv.row_numeric({rate, report.total_utility, bound, ratio});
  }
  table.print();
  std::printf("series written to %s\n", "competitive_ratio.csv");
  return 0;
}
