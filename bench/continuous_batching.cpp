// Continuous iteration-level batching vs run-to-completion (DESIGN.md §15).
//
// Successor of the memory_cleaning bench: early memory cleaning (§4.2.2)
// frees a slot's K/V cache the moment its last request finishes; this bench
// measures what happens when the freed slot becomes a *scheduling* resource
// — the serving loop splices waiting requests into vacated spans between
// decoder iterations instead of waiting for the whole batch to retire.
//
// Sweep: Slotted-DAS at the paper's serving workload across the Fig. 9/10
// rate grid, run-to-completion vs continuous, aggregated over several trace
// seeds. Expected shape: identical service below saturation (nothing queues
// long enough to splice), then a widening goodput/utility gap once the
// accelerator saturates — backfilled slots keep the iteration kernel full
// where run-to-completion decays toward a sparse tail. The CSV is the
// committed evidence for that claim; scripts/check_bench_regression.py
// --continuous-csv gates it in CI (the analytical simulator is
// deterministic, so the sweep reproduces bit-for-bit on any machine).
#include <cstddef>
#include <cstdint>

#include "common.hpp"

int main() {
  using namespace tcb;
  using namespace tcb::bench;
  print_figure_banner("§4.2.2 / DESIGN.md §15",
                      "continuous batching: goodput vs run-to-completion");

  SchedulerConfig sc;
  sc.batch_rows = 16;
  sc.row_capacity = 100;

  const AnalyticalCostModel cost(ModelConfig::paper_scale(),
                                 HardwareProfile::v100_like());
  const std::vector<double> rates = {100, 200, 300, 400, 500, 600};
  const std::vector<std::uint64_t> seeds =
      fast_mode() ? std::vector<std::uint64_t>{2022}
                  : std::vector<std::uint64_t>{2022, 7, 19};

  struct Aggregate {
    double goodput = 0.0;        ///< completed responses / second
    double utility = 0.0;        ///< objective (9), summed over the trace
    double slot_occupancy = 0.0; ///< mean occupied-slot fraction per step
    double splice_share = 0.0;   ///< spliced / completed
  };

  const auto sweep = [&](double rate, bool continuous) {
    Aggregate agg;
    for (const std::uint64_t seed : seeds) {
      const auto trace = generate_trace(paper_workload(rate, 20.0, seed));
      const auto sched = make_scheduler("slotted-das", sc);
      SimulatorConfig sim;
      sim.scheme = Scheme::kConcatSlotted;
      sim.continuous = continuous;
      const ServingSimulator simulator(*sched, cost, sim);
      const ServingReport r = simulator.run(trace);
      agg.goodput += r.throughput;
      agg.utility += r.total_utility;
      agg.slot_occupancy += r.slot_occupancy.mean();
      agg.splice_share +=
          r.completed > 0 ? static_cast<double>(r.spliced_requests) /
                                static_cast<double>(r.completed)
                          : 0.0;
    }
    const double n = static_cast<double>(seeds.size());
    agg.goodput /= n;
    agg.utility /= n;
    agg.slot_occupancy /= n;
    agg.splice_share /= n;
    return agg;
  };

  TablePrinter table({"rate (req/s)", "RTC goodput", "cont goodput",
                      "RTC utility", "cont utility", "occupancy",
                      "spliced/served", "goodput gain"});
  CsvWriter csv("continuous_batching.csv",
                {"rate", "rtc_goodput", "cont_goodput", "rtc_utility",
                 "cont_utility", "cont_slot_occupancy", "cont_splice_share"});
  for (const double rate : rates) {
    const Aggregate rtc = sweep(rate, /*continuous=*/false);
    const Aggregate cont = sweep(rate, /*continuous=*/true);
    table.row({format_number(rate), format_number(rtc.goodput),
               format_number(cont.goodput), format_number(rtc.utility),
               format_number(cont.utility),
               format_number(cont.slot_occupancy),
               format_number(cont.splice_share),
               format_number(cont.goodput / rtc.goodput)});
    csv.row_numeric({rate, rtc.goodput, cont.goodput, rtc.utility,
                     cont.utility, cont.slot_occupancy, cont.splice_share});
  }
  table.print();
  std::printf("series written to %s\n", "continuous_batching.csv");
  return 0;
}
