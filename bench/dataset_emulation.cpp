// Dataset-shape study (paper §1: "TurboBatching has low GPU utilization on
// several datasets, e.g., ParaCrawl and DIA, whose workloads are highly
// variable in length"): throughput of TNB/TTB/TCB under three length
// distributions at a fixed overload rate. The bimodal shape emulates
// web-crawl corpora; TTB's edge over TNB should shrink and TCB's edge over
// TTB grow as length variability rises.
#include "common.hpp"

int main() {
  using namespace tcb;
  using namespace tcb::bench;
  print_figure_banner("§1 motivation",
                      "batching schemes under dataset-like length shapes");

  SchedulerConfig sc;
  sc.batch_rows = 64;
  sc.row_capacity = 100;

  struct Shape {
    const char* name;
    LengthDistribution dist;
    double variance;
  };
  TablePrinter table({"length shape", "FCFS-TNB", "FCFS-TTB", "FCFS-TCB",
                      "TCB/TNB", "TCB/TTB"});
  CsvWriter csv("dataset_emulation.csv",
                {"shape", "tnb", "ttb", "tcb"});
  // Two tight clusters are length-aware batching's BEST case (perfect
  // groups); spread-out lengths are its worst — that spread is what the
  // paper means by "highly variable" web-crawl workloads.
  for (const Shape shape :
       {Shape{"normal, var 20 (paper default)", LengthDistribution::kNormal, 20},
        Shape{"normal, var 400 (wide)", LengthDistribution::kNormal, 400},
        Shape{"bimodal tight clusters (TTB best case)",
              LengthDistribution::kBimodal, 20},
        Shape{"uniform 3-100 (ParaCrawl-like spread)",
              LengthDistribution::kUniform, 0}}) {
    WorkloadConfig w = paper_workload(/*rate=*/800);
    w.length_distribution = shape.dist;
    if (shape.variance > 0) w.len_variance = shape.variance;
    const double tnb =
        run_serving(Scheme::kNaive, "fcfs-full", sc, w).throughput;
    const double ttb =
        run_serving(Scheme::kTurbo, "fcfs-full", sc, w).throughput;
    const double tcb =
        run_serving(Scheme::kConcatPure, "fcfs-full", sc, w).throughput;
    table.row({shape.name, format_number(tnb), format_number(ttb),
               format_number(tcb), format_number(tcb / tnb),
               format_number(tcb / ttb)});
    csv.row({shape.name, format_number(tnb), format_number(ttb),
             format_number(tcb)});
  }
  table.print();
  std::printf("series written to %s\n", "dataset_emulation.csv");
  return 0;
}
