// Shared driver for Figs. 13/14: measures real-engine batch inference time
// of pure ConcatBatching vs slotted ConcatBatching at a fixed batch geometry
// (row length 400) while sweeping the number of slots, and reports
// speedup = T(pure) / T(slotted).
//
// Workload: rows filled with 20-token requests (the paper's average length),
// packed per slot. slots = 1 is exactly the pure scheme. The engine is the
// real CPU transformer (dimensions below scale the paper's model so a run
// finishes in tens of seconds; attention/GEMM ratio is preserved).
#pragma once

#include <cstdio>

#include "batching/packed_batch.hpp"
#include "nn/model.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace tcb::bench {

struct SlotSpeedupConfig {
  Index batch_rows = 10;
  Index row_len = 400;
  Index request_len = 20;
  Index decode_steps = 12;
  int repeats = 2;
};

inline ModelConfig engine_config(Index row_len) {
  ModelConfig cfg;
  cfg.d_model = 128;
  cfg.n_heads = 8;
  cfg.d_ff = 512;
  cfg.n_encoder_layers = 3;
  cfg.n_decoder_layers = 3;
  cfg.vocab_size = 512;
  cfg.max_len = row_len;
  return cfg;
}

/// Builds a batch of `rows` rows, each `row_len` wide and divided into
/// `slots` slots; every slot is packed with as many `request_len`-token
/// requests as fit. slots == 1 yields the pure-concat plan.
inline BatchPlan build_slot_plan(Index rows, Index row_len, Index slots,
                                 Index request_len) {
  BatchPlan plan;
  plan.row_capacity = row_len;
  const Index z = row_len / slots;
  plan.scheme = slots > 1 ? Scheme::kConcatSlotted : Scheme::kConcatPure;
  plan.slot_len = slots > 1 ? z : 0;
  RequestId next_id = 0;
  for (Index r = 0; r < rows; ++r) {
    RowLayout row;
    for (Index s = 0; s < slots; ++s) {
      const Index begin = s * z;
      Index cursor = begin;
      while (cursor + request_len <= begin + z) {
        row.segments.push_back(
            Segment{next_id++, cursor, request_len, slots > 1 ? s : 0});
        cursor += request_len;
      }
    }
    row.width = slots > 1 ? z * slots : row_len;
    plan.rows.push_back(std::move(row));
  }
  plan.validate();
  return plan;
}

inline void run_slot_speedup(const char* figure, SlotSpeedupConfig cfg,
                             const std::string& csv_path) {
  if (fast_mode()) {
    cfg.row_len = 200;
    cfg.decode_steps = 6;
    cfg.repeats = 1;
  }
  std::printf("batch size %lld, row length %lld, request length %lld, "
              "%lld decode steps, model d=%lld h=%lld ff=%lld\n",
              static_cast<long long>(cfg.batch_rows),
              static_cast<long long>(cfg.row_len),
              static_cast<long long>(cfg.request_len),
              static_cast<long long>(cfg.decode_steps),
              static_cast<long long>(engine_config(cfg.row_len).d_model),
              static_cast<long long>(engine_config(cfg.row_len).n_heads),
              static_cast<long long>(engine_config(cfg.row_len).d_ff));

  const Seq2SeqModel model(engine_config(cfg.row_len));
  Rng rng(0xF16);

  auto time_plan = [&](const BatchPlan& plan) {
    // Deterministic token payloads for the plan.
    std::vector<Request> requests;
    for (const auto& row : plan.rows)
      for (const auto& seg : row.segments) {
        Request req;
        req.id = seg.request_id;
        req.length = seg.length;
        for (Index i = 0; i < seg.length; ++i)
          req.tokens.push_back(rng.uniform_int(
              kFirstWordToken, model.config().vocab_size - 1));
        requests.push_back(std::move(req));
      }
    const PackedBatch packed = pack_batch(plan, requests);
    InferenceOptions opts;
    opts.mode = plan.scheme == Scheme::kConcatSlotted
                    ? AttentionMode::kSlotted
                    : AttentionMode::kPureConcat;
    opts.max_decode_steps = cfg.decode_steps;
    opts.early_memory_cleaning = plan.scheme == Scheme::kConcatSlotted;
    (void)model.infer(packed, opts);  // warm-up
    double best = 1e99;
    for (int i = 0; i < cfg.repeats; ++i) {
      const Timer timer;
      (void)model.infer(packed, opts);
      best = std::min(best, timer.elapsed_seconds());
    }
    return best;
  };

  const std::vector<Index> slot_counts = {1, 2, 4, 5, 7, 10, 20};
  TablePrinter table(
      {"slots", "batch time (s)", "speedup", "requests/batch"});
  CsvWriter csv(csv_path, {"slots", "batch_seconds", "speedup"});

  double pure_time = 0.0;
  for (const Index slots : slot_counts) {
    const BatchPlan plan =
        build_slot_plan(cfg.batch_rows, cfg.row_len, slots, cfg.request_len);
    const double t = time_plan(plan);
    if (slots == 1) pure_time = t;
    const double speedup = pure_time / t;
    table.row({format_number(static_cast<double>(slots)), format_number(t),
               format_number(speedup),
               format_number(static_cast<double>(plan.request_count()))});
    csv.row_numeric({static_cast<double>(slots), t, speedup});
  }
  table.print();
  std::printf("series written to %s\n", csv_path.c_str());
  (void)figure;
}

}  // namespace tcb::bench
