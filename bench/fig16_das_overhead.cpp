// Figure 16: the DAS algorithm's own running time as a percentage of one
// batch inference time, at request rates 100-400 req/s. Expected shape: the
// ratio grows with the rate (more pending requests to sort and place) but
// stays small — ~2% at 400 req/s in the paper.
//
// The DAS time is measured for real (wall clock of select() over the
// simulation's actual pending pools); the batch inference time comes from
// the V100-like cost model, matching how the serving figures are produced.
#include "common.hpp"

int main() {
  using namespace tcb;
  using namespace tcb::bench;
  print_figure_banner("Fig. 16", "DAS runtime / batch inference time");

  SchedulerConfig sc;
  sc.batch_rows = 64;
  sc.row_capacity = 100;

  const std::vector<double> rates = {100, 200, 300, 400};
  TablePrinter table({"rate (req/s)", "avg DAS time (ms)",
                      "avg batch time (ms)", "ratio (%)"});
  CsvWriter csv("fig16_das_overhead.csv",
                {"rate", "das_ms", "batch_ms", "ratio_percent"});
  for (const double rate : rates) {
    const auto report =
        run_serving(Scheme::kConcatPure, "das", sc, paper_workload(rate));
    const double das_ms =
        report.batches ? report.scheduler_seconds * 1e3 /
                             static_cast<double>(report.batches)
                       : 0.0;
    const double batch_ms =
        report.batches ? report.busy_seconds * 1e3 /
                             static_cast<double>(report.batches)
                       : 0.0;
    const double ratio = batch_ms > 0.0 ? das_ms / batch_ms * 100.0 : 0.0;
    table.row_numeric({rate, das_ms, batch_ms, ratio});
    csv.row_numeric({rate, das_ms, batch_ms, ratio});
  }
  table.print();
  std::printf("series written to %s\n", "fig16_das_overhead.csv");
  return 0;
}
