// Ablation (design choice, paper §5.3 / Algorithm 2): the Slotted-DAS rule
// "slot size = longest request in the utility-dominant set" vs fixed slot
// sizes. A slot that is too small discards requests (they do not fit any
// slot); a slot that is too large leaves redundancy. Algorithm 2's adaptive
// choice should track the best fixed size without tuning.
#include "common.hpp"

int main() {
  using namespace tcb;
  using namespace tcb::bench;
  print_figure_banner("Ablation", "slot-size policy for slotted ConcatBatching");

  SchedulerConfig sc;
  sc.batch_rows = 16;
  sc.row_capacity = 100;
  const auto workload = paper_workload(300);

  TablePrinter table({"policy", "utility", "completed", "failed"});
  CsvWriter csv("ablation_slot_policy.csv",
                {"policy", "utility", "completed", "failed"});

  auto emit = [&](const std::string& name, const ServingReport& report) {
    table.row({name, format_number(report.total_utility),
               std::to_string(report.completed),
               std::to_string(report.failed)});
    csv.row({name, format_number(report.total_utility),
             std::to_string(report.completed),
             std::to_string(report.failed)});
  };

  // Adaptive: Slotted-DAS chooses z per batch (Algorithm 2).
  emit("slotted-das (adaptive z)",
       run_serving(Scheme::kConcatSlotted, "slotted-das", sc, workload));

  // Fixed z: DAS selection, slotted layout with a hard-coded slot size.
  for (const Index z : {10, 20, 40, 60, 100}) {
    const auto trace = generate_trace(workload);
    const auto sched = make_scheduler("das", sc);
    const AnalyticalCostModel cost(ModelConfig::paper_scale(),
                                   HardwareProfile::v100_like());
    SimulatorConfig sim;
    sim.scheme = Scheme::kConcatSlotted;
    sim.fixed_slot_len = z;
    const auto report = ServingSimulator(*sched, cost, sim).run(trace);
    emit("fixed z=" + std::to_string(z), report);
  }

  // Reference: pure ConcatBatching (z = L, no slotting).
  emit("pure concat",
       run_serving(Scheme::kConcatPure, "das", sc, workload));

  table.print();
  std::printf("series written to %s\n", "ablation_slot_policy.csv");
  return 0;
}
