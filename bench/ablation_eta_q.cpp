// Ablation (design choice, paper §5.2): DAS's tunable parameters eta and q
// with eta + q = 1. eta controls the utility-dominant fraction of each row;
// q gates the deadline-aware set. The paper fixes eta = q = 1/2 (giving the
// 1/5-competitive bound); this sweep shows how sensitive the achieved
// utility is to that choice.
#include "common.hpp"

int main() {
  using namespace tcb;
  using namespace tcb::bench;
  print_figure_banner("Ablation", "DAS eta/q sweep (eta + q = 1)");

  TablePrinter table({"eta", "q", "utility", "completed", "failed",
                      "theoretical ratio eta*q/(eta*q+1)"});
  CsvWriter csv("ablation_eta_q.csv",
                {"eta", "q", "utility", "completed", "failed"});
  for (const double eta : {0.1, 0.25, 0.4, 0.5, 0.6, 0.75, 0.9}) {
    const double q = 1.0 - eta;
    SchedulerConfig sc;
    sc.batch_rows = 16;
    sc.row_capacity = 100;
    sc.eta = eta;
    sc.q = q;
    const auto report =
        run_serving(Scheme::kConcatPure, "das", sc, paper_workload(300));
    table.row_numeric({eta, q, report.total_utility,
                       static_cast<double>(report.completed),
                       static_cast<double>(report.failed),
                       eta * q / (eta * q + 1.0)});
    csv.row_numeric({eta, q, report.total_utility,
                     static_cast<double>(report.completed),
                     static_cast<double>(report.failed)});
  }
  table.print();
  std::printf("series written to %s\n", "ablation_eta_q.csv");
  return 0;
}
