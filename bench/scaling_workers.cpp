// Scale-out extension (not a paper figure): throughput and utility of
// DAS-TCB when 1-8 accelerators share the pending queue, at a rate that
// overloads a single worker. Complements the paper's single-V100 evaluation.
#include "common.hpp"

int main() {
  using namespace tcb;
  using namespace tcb::bench;
  print_figure_banner("Extension", "multi-accelerator scaling of DAS-TCB");

  SchedulerConfig sc;
  sc.batch_rows = 32;
  sc.row_capacity = 100;
  const auto workload = paper_workload(/*rate=*/1200);
  const auto trace = generate_trace(workload);
  const AnalyticalCostModel cost(ModelConfig::paper_scale(),
                                 HardwareProfile::v100_like());

  TablePrinter table({"workers", "throughput (resp/s)", "utility", "completed",
                      "failed", "p95 latency (s)", "speedup vs 1"});
  CsvWriter csv("scaling_workers.csv",
                {"workers", "throughput", "utility", "completed", "failed"});
  double base = 0.0;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    const auto sched = make_scheduler("das", sc);
    SimulatorConfig sim;
    sim.scheme = Scheme::kConcatPure;
    sim.workers = workers;
    const auto report = ServingSimulator(*sched, cost, sim).run(trace);
    if (workers == 1) base = report.throughput;
    table.row({std::to_string(workers), format_number(report.throughput),
               format_number(report.total_utility),
               std::to_string(report.completed),
               std::to_string(report.failed),
               report.latency.empty() ? "-" : format_number(report.latency.p95()),
               format_number(report.throughput / base)});
    csv.row_numeric({static_cast<double>(workers), report.throughput,
                     report.total_utility,
                     static_cast<double>(report.completed),
                     static_cast<double>(report.failed)});
  }
  table.print();
  std::printf("series written to %s\n", "scaling_workers.csv");
  return 0;
}
