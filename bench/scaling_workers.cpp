// Scale-out extension (not a paper figure): throughput and utility of
// DAS-TCB when 1-8 accelerators share the pending queue, at a rate that
// overloads a single worker. Complements the paper's single-V100 evaluation.
// Also prints the pipeline's per-stage overhead (WallClock: admission /
// selection / batching host milliseconds) and per-worker simulated busy
// time, so scaling studies can see where coordinator time goes.
#include <algorithm>

#include "common.hpp"

int main() {
  using namespace tcb;
  using namespace tcb::bench;
  print_figure_banner("Extension", "multi-accelerator scaling of DAS-TCB");

  SchedulerConfig sc;
  sc.batch_rows = 32;
  sc.row_capacity = 100;
  const auto workload = paper_workload(/*rate=*/1200);
  const auto trace = generate_trace(workload);
  const AnalyticalCostModel cost(ModelConfig::paper_scale(),
                                 HardwareProfile::v100_like());

  TablePrinter table({"workers", "throughput (resp/s)", "utility", "completed",
                      "failed", "p95 latency (s)", "speedup vs 1",
                      "stage adm/sched/batch (ms)", "busy min/max (s)"});
  CsvWriter csv("scaling_workers.csv",
                {"workers", "throughput", "utility", "completed", "failed",
                 "admission_seconds", "scheduler_seconds", "batching_seconds",
                 "execute_seconds", "worker_busy_min", "worker_busy_max"});
  double base = 0.0;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    const auto sched = make_scheduler("das", sc);
    SimulatorConfig sim;
    sim.scheme = Scheme::kConcatPure;
    sim.workers = workers;
    const auto report = ServingSimulator(*sched, cost, sim).run(trace);
    if (workers == 1) base = report.throughput;
    const auto [busy_min, busy_max] =
        std::minmax_element(report.worker_busy_seconds.begin(),
                            report.worker_busy_seconds.end());
    const std::string stage_ms =
        format_number(report.admission_seconds * 1e3) + "/" +
        format_number(report.scheduler_seconds * 1e3) + "/" +
        format_number(report.batching_seconds * 1e3);
    table.row({std::to_string(workers), format_number(report.throughput),
               format_number(report.total_utility),
               std::to_string(report.completed),
               std::to_string(report.failed),
               report.latency.empty() ? "-" : format_number(report.latency.p95()),
               format_number(report.throughput / base), stage_ms,
               format_number(*busy_min) + "/" + format_number(*busy_max)});
    csv.row_numeric({static_cast<double>(workers), report.throughput,
                     report.total_utility,
                     static_cast<double>(report.completed),
                     static_cast<double>(report.failed),
                     report.admission_seconds, report.scheduler_seconds,
                     report.batching_seconds, report.execute_seconds,
                     *busy_min, *busy_max});
  }
  table.print();
  std::printf("series written to %s\n", "scaling_workers.csv");
  return 0;
}
