// Figure 15(b): total utility under different request-length variances
// {10, 50, 100} (batch size 16) for DAS/SJF/FCFS/DEF on the TCB engine.
// Expected shape: DAS-TCB clearly ahead at every variance — it is aware of
// the variable lengths when composing batches.
#include "common.hpp"

int main() {
  using namespace tcb;
  using namespace tcb::bench;
  print_figure_banner("Fig. 15b", "utility vs length variance, TCB engine");

  const std::vector<double> variances = {10, 50, 100};
  const std::vector<std::string> schedulers = {"das", "sjf", "fcfs", "def"};

  SchedulerConfig sc;
  sc.batch_rows = 16;
  sc.row_capacity = 100;

  TablePrinter table({"variance", "DAS-TCB", "SJF-TCB", "FCFS-TCB", "DEF-TCB"});
  CsvWriter csv("fig15b_sched_variance.csv",
                {"variance", "das", "sjf", "fcfs", "def"});
  for (const double variance : variances) {
    const auto workload = paper_workload(/*rate=*/300, variance);
    std::vector<double> row{variance};
    for (const auto& name : schedulers)
      row.push_back(
          run_serving(Scheme::kConcatPure, name, sc, workload).total_utility);
    table.row_numeric(row);
    csv.row_numeric(row);
  }
  table.print();
  std::printf("series written to %s\n", "fig15b_sched_variance.csv");
  return 0;
}
