// Ablation (system model, DESIGN.md §2): the paper does not specify its
// deadline distribution; this reproduction uses slack ~ U[0.5, 2.0] s. This
// sweep varies the slack window's tightness and shows that the headline
// conclusions (DAS > SJF > FCFS/DEF on the TCB engine) are robust to that
// choice — and where they stop being so (slack far below one batch time, no
// scheduler can help).
#include "common.hpp"

int main() {
  using namespace tcb;
  using namespace tcb::bench;
  print_figure_banner("Ablation", "sensitivity to the deadline-slack window");

  SchedulerConfig sc;
  sc.batch_rows = 16;
  sc.row_capacity = 100;

  struct Window {
    double lo;
    double hi;
  };
  TablePrinter table({"slack window (s)", "DAS", "SJF", "FCFS", "DEF",
                      "DAS/SJF"});
  CsvWriter csv("ablation_deadline_slack.csv",
                {"slack_lo", "slack_hi", "das", "sjf", "fcfs", "def"});
  for (const Window w : {Window{0.1, 0.3}, Window{0.25, 1.0},
                         Window{0.5, 2.0}, Window{1.0, 4.0},
                         Window{2.0, 8.0}}) {
    WorkloadConfig workload = paper_workload(/*rate=*/300);
    workload.deadline_slack_min = w.lo;
    workload.deadline_slack_max = w.hi;
    std::vector<double> utilities;
    for (const auto& name : {"das", "sjf", "fcfs", "def"})
      utilities.push_back(
          run_serving(Scheme::kConcatPure, name, sc, workload).total_utility);
    table.row({format_number(w.lo) + "-" + format_number(w.hi),
               format_number(utilities[0]), format_number(utilities[1]),
               format_number(utilities[2]), format_number(utilities[3]),
               format_number(utilities[0] / utilities[1])});
    csv.row_numeric({w.lo, w.hi, utilities[0], utilities[1], utilities[2],
                     utilities[3]});
  }
  table.print();
  std::printf("series written to %s\n", "ablation_deadline_slack.csv");
  return 0;
}
