// google-benchmark micro kernels: GEMM, masked softmax, layer norm, GELU,
// the two attention execution paths (pure full-row vs slotted) on identical
// payloads, and a full encoder layer at BERT-base dimensions. These quantify
// the kernel-level redundancy the slotted scheme removes, independent of any
// serving dynamics. The *Ref variants run the naive scalar reference kernels
// (src/tensor/kernel_ref.hpp) so the blocked/SIMD speedup is visible in the
// same JSON report.
#include <benchmark/benchmark.h>

#include <string>

#include "nn/attention.hpp"
#include "nn/encoder.hpp"
#include "tensor/kernel_ref.hpp"
#include "tensor/ops.hpp"
#include "tensor/tuning.hpp"
#include "util/env.hpp"

namespace tcb {
namespace {

void BM_Matmul(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::random_uniform(Shape{n, n}, rng, 1.0f);
  const Tensor b = Tensor::random_uniform(Shape{n, n}, rng, 1.0f);
  Tensor c;
  for (auto _ : state) {
    matmul(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulRef(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::random_uniform(Shape{n, n}, rng, 1.0f);
  const Tensor b = Tensor::random_uniform(Shape{n, n}, rng, 1.0f);
  Tensor c;
  for (auto _ : state) {
    ref::matmul(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatmulRef)->Arg(128)->Arg(256);

void BM_MatmulNt(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(2);
  const Tensor a = Tensor::random_uniform(Shape{n, n}, rng, 1.0f);
  const Tensor b = Tensor::random_uniform(Shape{n, n}, rng, 1.0f);
  Tensor c;
  for (auto _ : state) {
    matmul_nt(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
}
BENCHMARK(BM_MatmulNt)->Arg(128)->Arg(256);

void BM_MaskedSoftmax(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(3);
  Tensor base = Tensor::random_uniform(Shape{n, n}, rng, 2.0f);
  // Mask everything off the block diagonal (4 blocks).
  const Index block = n / 4;
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < n; ++j)
      if (i / block != j / block) base.at(i, j) = kMaskedOut;
  for (auto _ : state) {
    Tensor t = base.clone();
    softmax_rows_inplace(t);
    benchmark::DoNotOptimize(t.raw());
  }
}
BENCHMARK(BM_MaskedSoftmax)->Arg(128)->Arg(400);

void BM_LayerNorm(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(5);
  const Tensor x = Tensor::random_uniform(Shape{512, n}, rng, 1.0f);
  const Tensor gamma = Tensor::random_uniform(Shape{n}, rng, 1.0f);
  const Tensor beta = Tensor::random_uniform(Shape{n}, rng, 1.0f);
  Tensor out;
  for (auto _ : state) {
    layer_norm(x, gamma, beta, 1e-5f, out);
    benchmark::DoNotOptimize(out.raw());
  }
  state.SetItemsProcessed(state.iterations() * 512 * n);
}
BENCHMARK(BM_LayerNorm)->Arg(256)->Arg(768);

void BM_Gelu(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(6);
  const Tensor base = Tensor::random_uniform(Shape{512, n}, rng, 2.0f);
  for (auto _ : state) {
    Tensor t = base.clone();
    gelu_inplace(t);
    benchmark::DoNotOptimize(t.raw());
  }
  state.SetItemsProcessed(state.iterations() * 512 * n);
}
BENCHMARK(BM_Gelu)->Arg(768)->Arg(3072);

/// Builds a single-row plan of `slots` segments, each `z` tokens, in the
/// layout the given mode expects (slot-per-segment when slotted).
BatchPlan attention_plan(Index z, Index slots, AttentionMode mode) {
  const Index width = z * slots;
  BatchPlan plan;
  plan.row_capacity = width;
  plan.scheme =
      mode == AttentionMode::kSlotted ? Scheme::kConcatSlotted : Scheme::kConcatPure;
  plan.slot_len = mode == AttentionMode::kSlotted ? z : 0;
  RowLayout row;
  for (Index s = 0; s < slots; ++s)
    row.segments.push_back(Segment{
        s, s * z, z, mode == AttentionMode::kSlotted ? s : static_cast<Index>(0)});
  row.width = width;
  plan.rows.push_back(row);
  return plan;
}

ModelConfig attention_cfg() {
  ModelConfig cfg;
  cfg.d_model = 128;
  cfg.n_heads = 8;
  cfg.d_ff = 512;
  cfg.max_len = 512;
  return cfg;
}

/// Attention-work counters for a plan where every query attends `k_len`
/// keys. items_per_second becomes attention FLOP/s (score + value madds,
/// projections excluded); bytes_touched is the streamed unique-byte
/// footprint per forward (Q/K/V reads, head-output writes, and the packed
/// K^T panels), so items / bytes is the kernel's arithmetic intensity.
void set_attention_counters(benchmark::State& state, Index tokens, Index k_len,
                            Index d) {
  const double flops = 4.0 * static_cast<double>(tokens) *
                       static_cast<double>(k_len) * static_cast<double>(d);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(flops));
  const double bytes = sizeof(float) * 5.0 * static_cast<double>(tokens) *
                       static_cast<double>(d);
  state.counters["bytes_touched"] = benchmark::Counter(
      bytes, benchmark::Counter::kIsIterationInvariantRate);
}

/// Pure path over `segments` segments of `k_len` tokens each: every query's
/// admitted span — the k_len of the attention — is its own segment.
void BM_AttentionPure(benchmark::State& state) {
  const Index k_len = state.range(0);
  const Index segments = state.range(1);
  const Index width = k_len * segments;
  const ModelConfig cfg = attention_cfg();
  Rng rng(4);
  const MultiHeadAttention mha(cfg, rng);
  const Tensor x = Tensor::random_uniform(Shape{width, cfg.d_model}, rng, 1.0f);
  const BatchPlan plan = attention_plan(k_len, segments, AttentionMode::kPureConcat);
  for (auto _ : state) {
    const Tensor y =
        mha.encoder_forward(x, plan, Col{width}, AttentionMode::kPureConcat);
    benchmark::DoNotOptimize(y.raw());
  }
  set_attention_counters(state, width, k_len, cfg.d_model);
}
BENCHMARK(BM_AttentionPure)
    ->ArgNames({"k_len", "segments"})
    ->Args({100, 4})  // the historical 400-token payload
    ->Args({512, 2})
    ->Args({1024, 2})
    ->Args({2048, 2});

void BM_AttentionSlotted(benchmark::State& state) {
  const Index k_len = state.range(0);
  const Index slots = state.range(1);
  const Index width = k_len * slots;
  const ModelConfig cfg = attention_cfg();
  Rng rng(4);
  const MultiHeadAttention mha(cfg, rng);
  const Tensor x = Tensor::random_uniform(Shape{width, cfg.d_model}, rng, 1.0f);
  const BatchPlan plan = attention_plan(k_len, slots, AttentionMode::kSlotted);
  for (auto _ : state) {
    const Tensor y =
        mha.encoder_forward(x, plan, Col{width}, AttentionMode::kSlotted);
    benchmark::DoNotOptimize(y.raw());
  }
  set_attention_counters(state, width, k_len, cfg.d_model);
}
BENCHMARK(BM_AttentionSlotted)
    ->ArgNames({"k_len", "slots"})
    ->Args({100, 4})  // the historical 400-token payloads
    ->Args({40, 10})
    ->Args({512, 2})
    ->Args({1024, 2})
    ->Args({2048, 2});

/// Head-to-head on identical single-segment payloads: the flash kernel
/// (online softmax, vectorized exp, packed K^T tiles) vs the previous
/// production kernel (fused masking, two-pass softmax, scalar exp). The
/// flash/fused time ratio at a given k_len is the tentpole speedup this
/// revision claims; the CI gate and README table read it from here.
void BM_AttentionFlashVsFused(benchmark::State& state) {
  const Index k_len = state.range(0);
  const bool flash = state.range(1) == 1;
  const ModelConfig cfg = attention_cfg();
  Rng rng(4);
  const MultiHeadAttention mha(cfg, rng);
  const Tensor x = Tensor::random_uniform(Shape{k_len, cfg.d_model}, rng, 1.0f);
  const BatchPlan plan = attention_plan(k_len, 1, AttentionMode::kPureConcat);
  for (auto _ : state) {
    const Tensor y =
        flash ? mha.encoder_forward(x, plan, Col{k_len},
                                    AttentionMode::kPureConcat)
              : mha.encoder_forward_fused(x, plan, Col{k_len},
                                          AttentionMode::kPureConcat);
    benchmark::DoNotOptimize(y.raw());
  }
  set_attention_counters(state, k_len, k_len, cfg.d_model);
}
BENCHMARK(BM_AttentionFlashVsFused)
    ->ArgNames({"k_len", "flash"})
    ->Args({512, 0})
    ->Args({512, 1})
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Args({2048, 0})
    ->Args({2048, 1});

/// Same payload as BM_AttentionPure but through the pre-optimization
/// full-matrix scalar path; the Pure/PureRef ratio is the fused-kernel
/// speedup on identical work.
void BM_AttentionPureRef(benchmark::State& state) {
  const Index width = 400;
  const Index slots = state.range(0);
  const ModelConfig cfg = attention_cfg();
  Rng rng(4);
  const MultiHeadAttention mha(cfg, rng);
  const Tensor x = Tensor::random_uniform(Shape{width, cfg.d_model}, rng, 1.0f);
  BatchPlan plan;
  plan.row_capacity = width;
  plan.scheme = Scheme::kConcatPure;
  plan.slot_len = 0;
  RowLayout row;
  const Index z = width / slots;
  for (Index s = 0; s < slots; ++s)
    row.segments.push_back(Segment{s, s * z, z, 0});
  row.width = width;
  plan.rows.push_back(row);
  for (auto _ : state) {
    const Tensor y = mha.encoder_forward_reference(x, plan, Col{width},
                                                   AttentionMode::kPureConcat);
    benchmark::DoNotOptimize(y.raw());
  }
}
BENCHMARK(BM_AttentionPureRef)->Arg(4)->ArgName("segments");

/// Full encoder layer (attention + FFN + two layer norms) at BERT-base
/// dimensions: d_model 768, 12 heads, d_ff 3072. The widths 128/256 bracket
/// the concatenated-row sizes the serving experiments use.
void BM_EncoderLayer(benchmark::State& state) {
  const Index width = state.range(0);
  ModelConfig cfg;
  cfg.d_model = 768;
  cfg.n_heads = 12;
  cfg.d_ff = 3072;
  cfg.max_len = 512;
  Rng rng(7);
  const EncoderLayer layer(cfg, rng);
  const Tensor x = Tensor::random_uniform(Shape{width, cfg.d_model}, rng, 1.0f);
  BatchPlan plan;
  plan.row_capacity = width;
  plan.scheme = Scheme::kConcatPure;
  plan.slot_len = 0;
  RowLayout row;
  const Index z = width / 4;
  for (Index s = 0; s < 4; ++s)
    row.segments.push_back(Segment{s, s * z, z, 0});
  row.width = width;
  plan.rows.push_back(row);
  for (auto _ : state) {
    const Tensor y = layer.forward(x, plan, Col{width},
                                   AttentionMode::kPureConcat,
                                   MaskPolicy::kSegment);
    benchmark::DoNotOptimize(y.raw());
  }
}
BENCHMARK(BM_EncoderLayer)->Arg(128)->Arg(256)->ArgName("width");

}  // namespace
}  // namespace tcb

int main(int argc, char** argv) {
  // Tune eagerly so the selection cost never lands inside a measured region,
  // and record what was selected: a stored baseline is only comparable to a
  // later run if the cache geometry (and thus the tuned blocking) matches —
  // scripts/check_bench_regression.py keys its gate on this context.
  tcb::gemm_autotune_all();
  benchmark::AddCustomContext("tcb_gemm_tuning", tcb::gemm_tuning_summary());
  benchmark::AddCustomContext("tcb_cache_l1d",
                              std::to_string(tcb::cache_geometry().l1d_bytes));
  benchmark::AddCustomContext("tcb_cache_l2",
                              std::to_string(tcb::cache_geometry().l2_bytes));
#ifdef NDEBUG
  benchmark::AddCustomContext("tcb_library_build_type", "release");
#else
  benchmark::AddCustomContext("tcb_library_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
