// google-benchmark micro kernels: GEMM, masked softmax, layer norm, GELU,
// the two attention execution paths (pure full-row vs slotted) on identical
// payloads, and a full encoder layer at BERT-base dimensions. These quantify
// the kernel-level redundancy the slotted scheme removes, independent of any
// serving dynamics. The *Ref variants run the naive scalar reference kernels
// (src/tensor/kernel_ref.hpp) so the blocked/SIMD speedup is visible in the
// same JSON report.
#include <benchmark/benchmark.h>

#include "nn/attention.hpp"
#include "nn/encoder.hpp"
#include "tensor/kernel_ref.hpp"
#include "tensor/ops.hpp"
#include "util/env.hpp"

namespace tcb {
namespace {

void BM_Matmul(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::random_uniform(Shape{n, n}, rng, 1.0f);
  const Tensor b = Tensor::random_uniform(Shape{n, n}, rng, 1.0f);
  Tensor c;
  for (auto _ : state) {
    matmul(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulRef(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::random_uniform(Shape{n, n}, rng, 1.0f);
  const Tensor b = Tensor::random_uniform(Shape{n, n}, rng, 1.0f);
  Tensor c;
  for (auto _ : state) {
    ref::matmul(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatmulRef)->Arg(128)->Arg(256);

void BM_MatmulNt(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(2);
  const Tensor a = Tensor::random_uniform(Shape{n, n}, rng, 1.0f);
  const Tensor b = Tensor::random_uniform(Shape{n, n}, rng, 1.0f);
  Tensor c;
  for (auto _ : state) {
    matmul_nt(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
}
BENCHMARK(BM_MatmulNt)->Arg(128)->Arg(256);

void BM_MaskedSoftmax(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(3);
  Tensor base = Tensor::random_uniform(Shape{n, n}, rng, 2.0f);
  // Mask everything off the block diagonal (4 blocks).
  const Index block = n / 4;
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < n; ++j)
      if (i / block != j / block) base.at(i, j) = kMaskedOut;
  for (auto _ : state) {
    Tensor t = base.clone();
    softmax_rows_inplace(t);
    benchmark::DoNotOptimize(t.raw());
  }
}
BENCHMARK(BM_MaskedSoftmax)->Arg(128)->Arg(400);

void BM_LayerNorm(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(5);
  const Tensor x = Tensor::random_uniform(Shape{512, n}, rng, 1.0f);
  const Tensor gamma = Tensor::random_uniform(Shape{n}, rng, 1.0f);
  const Tensor beta = Tensor::random_uniform(Shape{n}, rng, 1.0f);
  Tensor out;
  for (auto _ : state) {
    layer_norm(x, gamma, beta, 1e-5f, out);
    benchmark::DoNotOptimize(out.raw());
  }
  state.SetItemsProcessed(state.iterations() * 512 * n);
}
BENCHMARK(BM_LayerNorm)->Arg(256)->Arg(768);

void BM_Gelu(benchmark::State& state) {
  const Index n = state.range(0);
  Rng rng(6);
  const Tensor base = Tensor::random_uniform(Shape{512, n}, rng, 2.0f);
  for (auto _ : state) {
    Tensor t = base.clone();
    gelu_inplace(t);
    benchmark::DoNotOptimize(t.raw());
  }
  state.SetItemsProcessed(state.iterations() * 512 * n);
}
BENCHMARK(BM_Gelu)->Arg(768)->Arg(3072);

/// One encoder self-attention layer over a single batch row of `width`
/// tokens split into `slots` segments, executed with the given mode.
void attention_once(Index width, Index slots, AttentionMode mode,
                    const MultiHeadAttention& mha, const Tensor& x) {
  BatchPlan plan;
  plan.row_capacity = width;
  const Index z = width / slots;
  plan.scheme =
      mode == AttentionMode::kSlotted ? Scheme::kConcatSlotted : Scheme::kConcatPure;
  plan.slot_len = mode == AttentionMode::kSlotted ? z : 0;
  RowLayout row;
  for (Index s = 0; s < slots; ++s)
    row.segments.push_back(Segment{
        s, s * z, z, mode == AttentionMode::kSlotted ? s : static_cast<Index>(0)});
  row.width = width;
  plan.rows.push_back(row);
  const Tensor y = mha.encoder_forward(x, plan, Col{width}, mode);
  benchmark::DoNotOptimize(y.raw());
}

ModelConfig attention_cfg() {
  ModelConfig cfg;
  cfg.d_model = 128;
  cfg.n_heads = 8;
  cfg.d_ff = 512;
  cfg.max_len = 512;
  return cfg;
}

void BM_AttentionPure(benchmark::State& state) {
  const Index width = 400;
  const ModelConfig cfg = attention_cfg();
  Rng rng(4);
  const MultiHeadAttention mha(cfg, rng);
  const Tensor x = Tensor::random_uniform(Shape{width, cfg.d_model}, rng, 1.0f);
  for (auto _ : state)
    attention_once(width, state.range(0), AttentionMode::kPureConcat, mha, x);
}
BENCHMARK(BM_AttentionPure)->Arg(4)->ArgName("segments");

void BM_AttentionSlotted(benchmark::State& state) {
  const Index width = 400;
  const ModelConfig cfg = attention_cfg();
  Rng rng(4);
  const MultiHeadAttention mha(cfg, rng);
  const Tensor x = Tensor::random_uniform(Shape{width, cfg.d_model}, rng, 1.0f);
  for (auto _ : state)
    attention_once(width, state.range(0), AttentionMode::kSlotted, mha, x);
}
BENCHMARK(BM_AttentionSlotted)->Arg(4)->Arg(10)->ArgName("slots");

/// Same payload as BM_AttentionPure but through the pre-optimization
/// full-matrix scalar path; the Pure/PureRef ratio is the fused-kernel
/// speedup on identical work.
void BM_AttentionPureRef(benchmark::State& state) {
  const Index width = 400;
  const Index slots = state.range(0);
  const ModelConfig cfg = attention_cfg();
  Rng rng(4);
  const MultiHeadAttention mha(cfg, rng);
  const Tensor x = Tensor::random_uniform(Shape{width, cfg.d_model}, rng, 1.0f);
  BatchPlan plan;
  plan.row_capacity = width;
  plan.scheme = Scheme::kConcatPure;
  plan.slot_len = 0;
  RowLayout row;
  const Index z = width / slots;
  for (Index s = 0; s < slots; ++s)
    row.segments.push_back(Segment{s, s * z, z, 0});
  row.width = width;
  plan.rows.push_back(row);
  for (auto _ : state) {
    const Tensor y = mha.encoder_forward_reference(x, plan, Col{width},
                                                   AttentionMode::kPureConcat);
    benchmark::DoNotOptimize(y.raw());
  }
}
BENCHMARK(BM_AttentionPureRef)->Arg(4)->ArgName("segments");

/// Full encoder layer (attention + FFN + two layer norms) at BERT-base
/// dimensions: d_model 768, 12 heads, d_ff 3072. The widths 128/256 bracket
/// the concatenated-row sizes the serving experiments use.
void BM_EncoderLayer(benchmark::State& state) {
  const Index width = state.range(0);
  ModelConfig cfg;
  cfg.d_model = 768;
  cfg.n_heads = 12;
  cfg.d_ff = 3072;
  cfg.max_len = 512;
  Rng rng(7);
  const EncoderLayer layer(cfg, rng);
  const Tensor x = Tensor::random_uniform(Shape{width, cfg.d_model}, rng, 1.0f);
  BatchPlan plan;
  plan.row_capacity = width;
  plan.scheme = Scheme::kConcatPure;
  plan.slot_len = 0;
  RowLayout row;
  const Index z = width / 4;
  for (Index s = 0; s < 4; ++s)
    row.segments.push_back(Segment{s, s * z, z, 0});
  row.width = width;
  plan.rows.push_back(row);
  for (auto _ : state) {
    const Tensor y = layer.forward(x, plan, Col{width},
                                   AttentionMode::kPureConcat,
                                   MaskPolicy::kSegment);
    benchmark::DoNotOptimize(y.raw());
  }
}
BENCHMARK(BM_EncoderLayer)->Arg(128)->Arg(256)->ArgName("width");

}  // namespace
}  // namespace tcb

BENCHMARK_MAIN();
