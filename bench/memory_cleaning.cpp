// Early memory cleaning (paper §4.2.2): under slotted ConcatBatching, a
// slot's K/V cache is released as soon as all its requests finish decoding;
// under pure ConcatBatching nothing can be separated from the row tensor
// until the whole batch completes. This bench measures peak KV bytes and
// early-freed bytes on the real engine with a mixed-length batch (requests
// finish at different times, which is exactly the paper's observation that
// makes early cleaning worthwhile). No paper figure shows this directly —
// it is the supporting measurement for the §4.2.2 design.
#include "batching/concat_batcher.hpp"
#include "batching/slotted_batcher.hpp"
#include "common.hpp"
#include "slot_speedup.hpp"

int main() {
  using namespace tcb;
  using namespace tcb::bench;
  print_figure_banner("§4.2.2", "early memory cleaning: peak KV memory");

  const Index rows = fast_mode() ? 4 : 16;
  const Index row_len = fast_mode() ? 120 : 240;
  const Index decode_steps = fast_mode() ? 24 : 48;
  const Seq2SeqModel model(engine_config(row_len));
  Rng rng(0x3E3);

  // Mixed-length requests: finish times spread from 4 to 40 decode steps.
  std::vector<Request> requests;
  for (int i = 0; i < rows * 8; ++i) {
    Request req;
    req.id = i;
    req.length = 4 + (i % 10) * 4;  // 4, 8, ..., 40
    for (Index t = 0; t < req.length; ++t)
      req.tokens.push_back(
          rng.uniform_int(kFirstWordToken, model.config().vocab_size - 1));
    requests.push_back(std::move(req));
  }

  auto run = [&](Index slot_len, bool cleaning) {
    BatchBuildResult built;
    if (slot_len > 0) {
      const SlottedConcatBatcher batcher(slot_len);
      built = batcher.build(requests, Row{rows}, Col{row_len});
    } else {
      const ConcatBatcher batcher;
      built = batcher.build(requests, Row{rows}, Col{row_len});
    }
    const PackedBatch packed = pack_batch(built.plan, requests);
    InferenceOptions opts;
    opts.mode = slot_len > 0 ? AttentionMode::kSlotted
                             : AttentionMode::kPureConcat;
    opts.max_decode_steps = decode_steps;
    opts.early_memory_cleaning = cleaning;
    opts.cap_decode_at_source_length = true;  // requests finish at their length
    return model.infer(packed, opts);
  };

  // "reclaimable" = what an ideal per-request cleaner could have freed (a
  // request's final cache bytes, summed at its finish); "freed early" = what
  // the scheme actually freed at slot granularity. The gap is the accounting
  // blind spot of pure concat: everything is reclaimable, nothing is freed.
  TablePrinter table({"configuration", "peak KV (KiB)", "freed early (KiB)",
                      "reclaimable (KiB)", "freed/reclaimable",
                      "peak vs pure"});
  CsvWriter csv("memory_cleaning.csv",
                {"configuration", "peak_kv_bytes", "early_freed_bytes",
                 "reclaimable_kv_bytes"});
  struct Case {
    const char* name;
    Index slot_len;
    bool cleaning;
  };
  double pure_peak = 0.0;
  for (const Case c : {Case{"pure concat", 0, false},
                       Case{"slotted z=40, no cleaning", 40, false},
                       Case{"slotted z=40 + early cleaning", 40, true},
                       Case{"slotted z=24 + early cleaning", 24, true}}) {
    const auto result = run(c.slot_len, c.cleaning);
    const double peak = static_cast<double>(result.peak_kv_bytes);
    const double freed = static_cast<double>(result.early_freed_bytes);
    const double reclaimable =
        static_cast<double>(result.reclaimable_kv_bytes);
    if (pure_peak == 0.0) pure_peak = peak;
    table.row({c.name, format_number(peak / 1024),
               format_number(freed / 1024), format_number(reclaimable / 1024),
               format_number(reclaimable > 0.0 ? freed / reclaimable : 0.0),
               format_number(peak / pure_peak)});
    csv.row({c.name, std::to_string(result.peak_kv_bytes),
             std::to_string(result.early_freed_bytes),
             std::to_string(result.reclaimable_kv_bytes)});
  }
  table.print();
  std::printf("series written to %s\n", "memory_cleaning.csv");
  return 0;
}
