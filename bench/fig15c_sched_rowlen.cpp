// Figure 15(c): total utility under different batch row lengths
// L in {100, 200, 300} for DAS/SJF/FCFS/DEF on the TCB engine.
// Expected shape: DAS-TCB ~40% above SJF-TCB and more above FCFS/DEF;
// longer rows help the concat-aware DAS most.
#include "common.hpp"

int main() {
  using namespace tcb;
  using namespace tcb::bench;
  print_figure_banner("Fig. 15c", "utility vs batch row length, TCB engine");

  const std::vector<Index> row_lens = {100, 200, 300};
  const std::vector<std::string> schedulers = {"das", "sjf", "fcfs", "def"};

  TablePrinter table(
      {"row length", "DAS-TCB", "SJF-TCB", "FCFS-TCB", "DEF-TCB", "DAS/SJF"});
  CsvWriter csv("fig15c_sched_rowlen.csv",
                {"row_length", "das", "sjf", "fcfs", "def"});
  for (const Index L : row_lens) {
    SchedulerConfig sc;
    sc.batch_rows = 16;
    sc.row_capacity = L;
    const auto workload = paper_workload(/*rate=*/300);
    std::vector<double> row{static_cast<double>(L)};
    for (const auto& name : schedulers)
      row.push_back(
          run_serving(Scheme::kConcatPure, name, sc, workload).total_utility);
    csv.row_numeric(row);
    row.push_back(row[1] / row[2]);
    table.row_numeric(row);
  }
  table.print();
  std::printf("series written to %s\n", "fig15c_sched_rowlen.csv");
  return 0;
}
