// Figure 15(a): total utility under different batch sizes {5, 10, 16} for
// the DAS, SJF, FCFS and DEF schedulers, all on the TCB (ConcatBatching)
// engine. Expected shape: utility grows with batch size for every policy
// and DAS-TCB is on top at every batch size.
#include "common.hpp"

int main() {
  using namespace tcb;
  using namespace tcb::bench;
  print_figure_banner("Fig. 15a", "utility vs batch size, TCB engine");

  const std::vector<Index> batch_sizes = {5, 10, 16};
  const std::vector<std::string> schedulers = {"das", "sjf", "fcfs", "def"};

  TablePrinter table({"batch size", "DAS-TCB", "SJF-TCB", "FCFS-TCB",
                      "DEF-TCB"});
  CsvWriter csv("fig15a_sched_batchsize.csv",
                {"batch_size", "das", "sjf", "fcfs", "def"});
  for (const Index b : batch_sizes) {
    SchedulerConfig sc;
    sc.batch_rows = b;
    sc.row_capacity = 100;
    const auto workload = paper_workload(/*rate=*/300);
    std::vector<double> row{static_cast<double>(b)};
    for (const auto& name : schedulers)
      row.push_back(
          run_serving(Scheme::kConcatPure, name, sc, workload).total_utility);
    table.row_numeric(row);
    csv.row_numeric(row);
  }
  table.print();
  std::printf("series written to %s\n", "fig15a_sched_batchsize.csv");
  return 0;
}
