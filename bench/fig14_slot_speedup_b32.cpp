// Figure 14: speedup of slotted over pure ConcatBatching on the real engine,
// batch size 32, row length 400. Expected shape: larger batches expose more
// attention redundancy, so the peak speedup exceeds Fig. 13's (paper: ~2.3x
// at 7 slots) and flattens beyond that.
#include "common.hpp"
#include "slot_speedup.hpp"

int main() {
  using namespace tcb::bench;
  print_figure_banner("Fig. 14", "slotted ConcatBatching speedup, batch 32");
  SlotSpeedupConfig cfg;
  cfg.batch_rows = 32;
  run_slot_speedup("fig14", cfg, "fig14_slot_speedup_b32.csv");
  return 0;
}
