// Figure 9: total utility vs request arrival rate for DAS-TNB, DAS-TTB and
// DAS-TCB (input length 3-100, average 20, variance 20, batch size 64).
//
// Expected shape (paper §6.2.1): all systems' utility grows with the rate
// until they saturate; TNB/TTB flatten around 350 req/s, TCB sustains higher
// load, and after saturation TCB's utility exceeds TNB by ~2.2x and TTB by
// ~1.3x.
#include "common.hpp"

int main() {
  using namespace tcb;
  using namespace tcb::bench;
  print_figure_banner("Fig. 9", "utility vs request rate (DAS scheduling)");

  SchedulerConfig sc;
  sc.batch_rows = 64;
  sc.row_capacity = 100;

  const std::vector<double> rates = {40,  80,  120, 180,  200,
                                     250, 350, 450, 1000, 1500};
  TablePrinter table({"rate (req/s)", "DAS-TNB", "DAS-TTB", "DAS-TCB",
                      "TCB/TNB", "TCB/TTB"});
  CsvWriter csv("fig09_utility_vs_rate.csv",
                {"rate", "das_tnb", "das_ttb", "das_tcb"});
  for (const double rate : rates) {
    const auto workload = paper_workload(rate);
    const double tnb =
        run_serving(Scheme::kNaive, "das", sc, workload).total_utility;
    const double ttb =
        run_serving(Scheme::kTurbo, "das", sc, workload).total_utility;
    const double tcb =
        run_serving(Scheme::kConcatPure, "das", sc, workload).total_utility;
    table.row({format_number(rate), format_number(tnb), format_number(ttb),
               format_number(tcb), format_number(tcb / tnb),
               format_number(tcb / ttb)});
    csv.row_numeric({rate, tnb, ttb, tcb});
  }
  table.print();
  std::printf("series written to %s\n", "fig09_utility_vs_rate.csv");
  return 0;
}
