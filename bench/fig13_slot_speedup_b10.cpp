// Figure 13: speedup of slotted over pure ConcatBatching on the real engine,
// batch size 10, row length 400. Expected shape: modest speedup that grows
// with the slot count and saturates (~1.2x peak in the paper).
#include "common.hpp"
#include "slot_speedup.hpp"

int main() {
  using namespace tcb::bench;
  print_figure_banner("Fig. 13", "slotted ConcatBatching speedup, batch 10");
  SlotSpeedupConfig cfg;
  cfg.batch_rows = 10;
  run_slot_speedup("fig13", cfg, "fig13_slot_speedup_b10.csv");
  return 0;
}
