// End-to-end encoder benchmark: batcher -> pack -> embed -> full encoder
// stack, i.e. the complete prefill path a serving request takes, measured as
// one google-benchmark timer so BENCH_e2e.json captures a single
// reproducible number per (scheme, batch) point. Complements
// micro_kernels.cpp, which isolates individual kernels.
//
// Workload: a fixed mix of request lengths drawn deterministically, packed
// by the real ConcatBatcher / SlottedBatcher into rows of capacity 400
// (the paper's L), then encoded with the paper-standard 3-layer model.
#include <benchmark/benchmark.h>

#include <numeric>
#include <vector>

#include "batching/concat_batcher.hpp"
#include "batching/packed_batch.hpp"
#include "batching/slotted_batcher.hpp"
#include "nn/model.hpp"

namespace tcb {
namespace {

constexpr Index kRowCapacity = 400;

/// Deterministic request mix: lengths cycling through a spread that fills
/// rows unevenly, with real token payloads so pack_batch and the embedding
/// run exactly as in serving.
std::vector<Request> make_requests(Index count) {
  static constexpr Index kLengths[] = {23, 57, 96, 41, 128, 64, 17, 80};
  std::vector<Request> reqs;
  reqs.reserve(static_cast<std::size_t>(count));
  for (Index i = 0; i < count; ++i) {
    Request r;
    r.id = i;
    r.length = kLengths[static_cast<std::size_t>(i) % std::size(kLengths)];
    r.tokens.reserve(static_cast<std::size_t>(r.length));
    for (Index t = 0; t < r.length; ++t)
      r.tokens.push_back(kFirstWordToken + (i * 31 + t * 7) % 900);
    reqs.push_back(std::move(r));
  }
  return reqs;
}

PackedBatch build_batch(const Batcher& batcher, Index n_requests) {
  std::vector<Request> reqs = make_requests(n_requests);
  BatchBuildResult built =
      batcher.build(reqs, Row{n_requests}, Col{kRowCapacity});
  return pack_batch(built.plan, reqs);
}

void run_encode(benchmark::State& state, const Batcher& batcher,
                AttentionMode mode) {
  ModelConfig cfg;  // paper defaults: d_model 128, 8 heads, 3 layers
  cfg.max_len = kRowCapacity + 1;
  const Seq2SeqModel model(cfg);
  const PackedBatch batch = build_batch(batcher, state.range(0));
  InferenceOptions opts;
  opts.mode = mode;
  Index tokens = 0;
  for (const auto& row : batch.plan.rows) tokens += row.used_tokens();
  for (auto _ : state) {
    const EncoderMemory mem = model.encode(batch, opts);
    benchmark::DoNotOptimize(mem.states.raw());
  }
  state.SetItemsProcessed(state.iterations() * tokens);
  state.counters["rows"] =
      static_cast<double>(batch.plan.rows.size());
}

void BM_E2eEncodePure(benchmark::State& state) {
  run_encode(state, ConcatBatcher{}, AttentionMode::kPureConcat);
}
BENCHMARK(BM_E2eEncodePure)->Arg(16)->Arg(32)->ArgName("requests");

void BM_E2eEncodeSlotted(benchmark::State& state) {
  // z = 128: the longest request in the mix, the choice Slotted-DAS makes.
  run_encode(state, SlottedConcatBatcher{128}, AttentionMode::kSlotted);
}
BENCHMARK(BM_E2eEncodeSlotted)->Arg(16)->Arg(32)->ArgName("requests");

}  // namespace
}  // namespace tcb

BENCHMARK_MAIN();
