// Shared plumbing for the figure-reproduction benches: every bench builds the
// paper's workload, runs the serving simulator (or the real engine), prints
// the figure's series as an aligned table and writes it as CSV next to the
// binary.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/tcb.hpp"
#include "sched/factory.hpp"
#include "serving/simulator.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace tcb::bench {

/// The paper's default serving workload (§6.2.1): 3-100 tokens, mean 20,
/// Poisson arrivals; deadline slack documented in DESIGN.md.
inline WorkloadConfig paper_workload(double rate, double variance = 20.0,
                                     std::uint64_t seed = 2022) {
  WorkloadConfig w;
  w.rate = rate;
  w.duration = fast_mode() ? 2.0 : 5.0;
  w.min_len = 3;
  w.max_len = 100;
  w.mean_len = 20.0;
  w.len_variance = variance;
  w.deadline_slack_min = 0.5;
  w.deadline_slack_max = 2.0;
  w.seed = seed;
  return w;
}

/// One serving simulation: scheme + scheduler + workload -> report.
inline ServingReport run_serving(Scheme scheme, const std::string& scheduler,
                                 const SchedulerConfig& sched_cfg,
                                 const WorkloadConfig& workload) {
  const auto trace = generate_trace(workload);
  const auto sched = make_scheduler(scheduler, sched_cfg);
  const AnalyticalCostModel cost(ModelConfig::paper_scale(),
                                 HardwareProfile::v100_like());
  SimulatorConfig sim;
  sim.scheme = scheme;
  const ServingSimulator simulator(*sched, cost, sim);
  return simulator.run(trace);
}

/// Figure header boilerplate.
inline void print_figure_banner(const char* figure, const char* description) {
  std::printf("=== %s — %s ===\n", figure, description);
  if (fast_mode()) std::printf("(TCB_FAST=1: reduced trace duration)\n");
}

}  // namespace tcb::bench
