// Figure 12: like Fig. 11 but with request length variance 100. Higher
// variance makes it harder for length-aware TurboBatching to find enough
// similar-length requests, so TCB's edge over TTB grows (paper: ~1.7x).
#include "common.hpp"

int main() {
  using namespace tcb;
  using namespace tcb::bench;
  print_figure_banner("Fig. 12", "throughput under FCFS, length variance 100");

  SchedulerConfig sc;
  sc.batch_rows = 64;
  sc.row_capacity = 100;

  const std::vector<double> rates = {40,  60,  80,   100,  120,
                                     140, 250, 1000, 1250, 1500};
  TablePrinter table({"rate (req/s)", "FCFS-TNB", "FCFS-TTB", "FCFS-TCB",
                      "TCB/TNB", "TCB/TTB"});
  CsvWriter csv("fig12_fcfs_var100.csv",
                {"rate", "fcfs_tnb", "fcfs_ttb", "fcfs_tcb"});
  for (const double rate : rates) {
    const auto workload = paper_workload(rate, /*variance=*/100.0);
    const double tnb =
        run_serving(Scheme::kNaive, "fcfs-full", sc, workload).throughput;
    const double ttb =
        run_serving(Scheme::kTurbo, "fcfs-full", sc, workload).throughput;
    const double tcb =
        run_serving(Scheme::kConcatPure, "fcfs-full", sc, workload).throughput;
    table.row({format_number(rate), format_number(tnb), format_number(ttb),
               format_number(tcb), format_number(tcb / tnb),
               format_number(tcb / ttb)});
    csv.row_numeric({rate, tnb, ttb, tcb});
  }
  table.print();
  std::printf("series written to %s\n", "fig12_fcfs_var100.csv");
  return 0;
}
