#include "util/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace tcb {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("TCB_TEST_VAR");
    unsetenv("TCB_FAST");
  }
};

TEST_F(EnvTest, UnsetGivesFallback) {
  unsetenv("TCB_TEST_VAR");
  EXPECT_EQ(env_int("TCB_TEST_VAR", 42), 42);
}

TEST_F(EnvTest, ParsesInteger) {
  setenv("TCB_TEST_VAR", "17", 1);
  EXPECT_EQ(env_int("TCB_TEST_VAR", 0), 17);
  setenv("TCB_TEST_VAR", "-3", 1);
  EXPECT_EQ(env_int("TCB_TEST_VAR", 0), -3);
}

TEST_F(EnvTest, GarbageGivesFallback) {
  setenv("TCB_TEST_VAR", "not-a-number", 1);
  EXPECT_EQ(env_int("TCB_TEST_VAR", 7), 7);
  setenv("TCB_TEST_VAR", "", 1);
  EXPECT_EQ(env_int("TCB_TEST_VAR", 9), 9);
}

TEST_F(EnvTest, FastMode) {
  unsetenv("TCB_FAST");
  EXPECT_FALSE(fast_mode());
  setenv("TCB_FAST", "1", 1);
  EXPECT_TRUE(fast_mode());
  setenv("TCB_FAST", "0", 1);
  EXPECT_FALSE(fast_mode());
}

}  // namespace
}  // namespace tcb
