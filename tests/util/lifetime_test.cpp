// The lifetime annotation layer's runtime contract: the macros are pure
// metadata. Layout and member-function types are pinned by static_asserts
// inside lifetime.hpp itself; this suite exercises annotated accessors end
// to end so a macro definition that accidentally changed semantics (instead
// of compiling away) would show up as a behavioral failure, not just a
// compile error on one vendor.
#include "util/lifetime.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "parallel/task_group.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/tensor.hpp"

namespace tcb {
namespace {

TEST(LifetimeTest, AnnotatedAccessorsBehaveIdentically) {
  Tensor t(Shape{2, 3}, 1.5f);
  EXPECT_EQ(t.data().size(), 6u);
  EXPECT_EQ(t.shape().rank(), 2u);
  EXPECT_EQ(t.shape().dims().size(), 2u);
  t.at(1, 2) = 4.0f;
  EXPECT_FLOAT_EQ(t.row(1)[2], 4.0f);
}

TEST(LifetimeTest, NoEscapeCallableRunsWithinCall) {
  // parallel_for's TCB_NO_ESCAPE contract: the body has fully retired when
  // the call returns, so a by-reference capture of a local is sound.
  int sum = 0;
  std::function<void(std::size_t, std::size_t)> body =
      [&sum](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) sum += static_cast<int>(i);
      };
  ThreadPool pool(0);  // inline execution: deterministic, single-threaded
  pool.parallel_for(5, 1, body);
  EXPECT_EQ(sum, 0 + 1 + 2 + 3 + 4);
}

TEST(LifetimeTest, SpawnJoinsEscapingCallable) {
  // TaskGroup::spawn is the structured spelling for TCB_ESCAPES callables:
  // captured state declared above the group strictly outlives the task.
  int witness = 0;
  ThreadPool pool(1);
  {
    TaskGroup group;
    group.spawn(pool, [&witness] { witness = 7; });
    group.join();
    EXPECT_EQ(witness, 7);
  }
  EXPECT_EQ(witness, 7);
}

}  // namespace
}  // namespace tcb
