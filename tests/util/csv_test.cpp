#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace tcb {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "tcb_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_, {"rate", "utility"});
    csv.row({"40", "12.5"});
    csv.row_numeric({80, 25});
  }
  EXPECT_EQ(slurp(path_), "rate,utility\n40,12.5\n80,25\n");
}

TEST_F(CsvTest, EscapesCommasAndQuotes) {
  {
    CsvWriter csv(path_, {"name", "note"});
    csv.row({"a,b", "say \"hi\""});
  }
  EXPECT_EQ(slurp(path_), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST_F(CsvTest, RowWidthMismatchThrows) {
  CsvWriter csv(path_, {"a", "b"});
  EXPECT_THROW(csv.row({"only-one"}), std::invalid_argument);
}

TEST_F(CsvTest, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), std::runtime_error);
}

TEST(FormatNumberTest, IntegersHaveNoDecimals) {
  EXPECT_EQ(format_number(42.0), "42");
  EXPECT_EQ(format_number(-3.0), "-3");
  EXPECT_EQ(format_number(0.0), "0");
}

TEST(FormatNumberTest, FractionsKeepPrecisionWithoutTrailingZeros) {
  EXPECT_EQ(format_number(12.5), "12.5");
  EXPECT_EQ(format_number(0.001), "0.001");
}

}  // namespace
}  // namespace tcb
