#include "util/histogram.hpp"

#include <gtest/gtest.h>

namespace tcb {
namespace {

TEST(HistogramTest, BinsSamplesByValue) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(3.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, OutOfRangeClampsIntoEdgeBins) {
  Histogram h(0.0, 10.0, 2);
  h.add(-5.0);
  h.add(100.0);
  h.add(10.0);  // hi is exclusive; clamps into the last bin
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, BinBoundaries) {
  Histogram h(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 12.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 17.5);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 20.0);
}

TEST(HistogramTest, InvalidConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(5.0, 5.0, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(5.0, 1.0, 3), std::invalid_argument);
}

TEST(HistogramTest, RenderContainsOneLinePerBin) {
  Histogram h(0.0, 3.0, 3);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string text = h.render(10);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
  EXPECT_NE(text.find('#'), std::string::npos);
}

}  // namespace
}  // namespace tcb
