#include "util/timer.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace tcb {
namespace {

TEST(TimerTest, ElapsedIsNonNegativeAndMonotonic) {
  const Timer timer;
  const double a = timer.elapsed_seconds();
  const double b = timer.elapsed_seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(TimerTest, MeasuresSleeps) {
  const Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(timer.elapsed_millis(), 15.0);
  EXPECT_LT(timer.elapsed_seconds(), 5.0);
}

TEST(TimerTest, ResetRestartsTheClock) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  timer.reset();
  EXPECT_LT(timer.elapsed_millis(), 10.0);
}

TEST(TimerTest, MillisMatchesSeconds) {
  const Timer timer;
  const double s = timer.elapsed_seconds();
  const double ms = timer.elapsed_millis();
  EXPECT_GE(ms, s * 1e3 * 0.5);
}

}  // namespace
}  // namespace tcb
