// Negative-compile fixture for TCB_LIFETIME_SAFETY: a span taken from a
// temporary Tensor dangles the moment the full-expression ends. The
// TCB_LIFETIME_BOUND annotation on Tensor::data() is what lets clang see
// that, so this fixture also proves the annotation adoption is live, not
// just the warning flags. Compiled only by the WILL_FAIL ctest entry.
#include <span>

#include "tensor/tensor.hpp"

int lifetime_negative_bound_anchor() {
  // -Werror=dangling: the temporary backing `view` dies at the semicolon.
  std::span<float> view = tcb::Tensor(tcb::Shape{2, 2}).data();
  return static_cast<int>(view.size());
}
