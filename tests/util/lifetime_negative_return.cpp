// Negative-compile fixture for TCB_LIFETIME_SAFETY: returning the address
// of a stack local must fail under -Werror=return-stack-address. Compiled
// only by the WILL_FAIL ctest entry (EXCLUDE_FROM_ALL object target); if it
// ever compiles, the lifetime gate has silently stopped enforcing.
#include "util/lifetime.hpp"

namespace {

const int& broken() {
  int local = 42;
  return local;  // -Werror=return-stack-address
}

}  // namespace

int lifetime_negative_return_anchor() { return broken(); }
