#include "util/table.hpp"

#include <gtest/gtest.h>

namespace tcb {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"x", "value"});
  t.row({"1", "a"});
  t.row({"100", "bb"});
  const std::string out = t.render();
  // Each line starts with the first column left-padded to the widest cell.
  EXPECT_NE(out.find("x    value"), std::string::npos);
  EXPECT_NE(out.find("1    a"), std::string::npos);
  EXPECT_NE(out.find("100  bb"), std::string::npos);
}

TEST(TablePrinterTest, NumericRows) {
  TablePrinter t({"a", "b"});
  t.row_numeric({1.0, 2.5});
  const std::string out = t.render();
  EXPECT_NE(out.find("1"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
}

TEST(TablePrinterTest, WidthMismatchThrows) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.row({"1"}), std::invalid_argument);
  EXPECT_THROW(t.row_numeric({1, 2, 3}), std::invalid_argument);
}

TEST(TablePrinterTest, HeaderRuleRows) {
  TablePrinter t({"col"});
  t.row({"x"});
  const std::string out = t.render();
  // header line, rule line, one row
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_NE(out.find("---"), std::string::npos);
}

}  // namespace
}  // namespace tcb
