#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace tcb {
namespace {

TEST(RunningStatTest, EmptyState) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, KnownMoments) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  RunningStat all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37 - 3.0;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmptyIsIdentity) {
  RunningStat a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(SamplesTest, ExactQuantiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.p50(), 50.5, 1e-9);
  EXPECT_NEAR(s.quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(s.quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(s.p99(), 99.01, 1e-9);
}

TEST(SamplesTest, QuantileClampsOutOfRangeQ) {
  Samples s;
  s.add(5.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(-1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(2.0), 10.0);
}

TEST(SamplesTest, EmptyThrows) {
  Samples s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW((void)s.quantile(0.5), std::logic_error);
  EXPECT_THROW((void)s.min(), std::logic_error);
  EXPECT_THROW((void)s.max(), std::logic_error);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);  // mean of nothing is defined as 0
}

TEST(SamplesTest, AddAfterQuantileStillCorrect) {
  Samples s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 2.0);  // forces a sort
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(SamplesTest, MeanAndSum) {
  Samples s;
  s.add(1.5);
  s.add(2.5);
  s.add(6.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.mean(), 10.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace tcb
