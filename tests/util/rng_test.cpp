#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace tcb {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng a(99);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(99);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(RngTest, ForkStreamsAreIndependent) {
  Rng parent(7);
  Rng c0 = parent.fork(0);
  Rng c1 = parent.fork(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (c0.next_u64() == c1.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // every value of a tiny range appears
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(13);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.gaussian();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianShiftScale) {
  Rng rng(19);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.gaussian(20.0, 5.0);
  EXPECT_NEAR(sum / kN, 20.0, 0.2);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(23);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.exponential(4.0);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 0.25, 0.01);
}

TEST(RngTest, SplitMix64IsDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace tcb
