#include "batching/batch_plan.hpp"

#include <gtest/gtest.h>

namespace tcb {
namespace {

BatchPlan valid_concat_plan() {
  BatchPlan plan;
  plan.scheme = Scheme::kConcatPure;
  plan.row_capacity = 10;
  RowLayout row;
  row.width = 9;
  row.segments.push_back(Segment{1, 0, 4, 0});
  row.segments.push_back(Segment{2, 4, 5, 0});
  plan.rows.push_back(row);
  return plan;
}

TEST(BatchPlanTest, Accounting) {
  const BatchPlan plan = valid_concat_plan();
  EXPECT_EQ(plan.request_count(), 2);
  EXPECT_EQ(plan.used_tokens(), 9);
  EXPECT_EQ(plan.padded_tokens(), 0);
  EXPECT_EQ(plan.max_width(), 9);
  EXPECT_FALSE(plan.empty());
  const auto ids = plan.request_ids();
  EXPECT_EQ(ids, (std::vector<RequestId>{1, 2}));
}

TEST(BatchPlanTest, PaddingCounted) {
  BatchPlan plan = valid_concat_plan();
  plan.rows[0].width = 10;  // one padding column
  EXPECT_EQ(plan.padded_tokens(), 1);
}

TEST(BatchPlanTest, EmptyPlan) {
  BatchPlan plan;
  plan.row_capacity = 4;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.request_count(), 0);
  EXPECT_EQ(plan.max_width(), 0);
  BatchPlan with_empty_row = plan;
  with_empty_row.rows.push_back(RowLayout{});
  EXPECT_TRUE(with_empty_row.empty());
}

TEST(BatchPlanTest, ValidateAcceptsGoodPlans) {
  EXPECT_NO_THROW(valid_concat_plan().validate());
}

TEST(BatchPlanTest, ValidateRejectsOverlap) {
  BatchPlan plan = valid_concat_plan();
  plan.rows[0].segments[1].offset = 3;  // overlaps segment 0
  EXPECT_THROW(plan.validate(), std::logic_error);
}

TEST(BatchPlanTest, ValidateRejectsSegmentBeyondWidth) {
  BatchPlan plan = valid_concat_plan();
  plan.rows[0].segments[1].length = 7;  // 4 + 7 > width 9
  EXPECT_THROW(plan.validate(), std::logic_error);
}

TEST(BatchPlanTest, ValidateRejectsWidthOverCapacity) {
  BatchPlan plan = valid_concat_plan();
  plan.rows[0].width = 11;
  EXPECT_THROW(plan.validate(), std::logic_error);
}

TEST(BatchPlanTest, ValidateRejectsEmptySegment) {
  BatchPlan plan = valid_concat_plan();
  plan.rows[0].segments[0].length = 0;
  EXPECT_THROW(plan.validate(), std::logic_error);
}

TEST(BatchPlanTest, ValidateRejectsSlotStraddle) {
  BatchPlan plan;
  plan.scheme = Scheme::kConcatSlotted;
  plan.row_capacity = 12;
  plan.slot_len = 4;
  RowLayout row;
  row.width = 8;
  row.segments.push_back(Segment{1, 2, 4, 0});  // spans columns 2..6: straddles
  plan.rows.push_back(row);
  EXPECT_THROW(plan.validate(), std::logic_error);
}

TEST(BatchPlanTest, ValidateRejectsWrongSlotIndex) {
  BatchPlan plan;
  plan.scheme = Scheme::kConcatSlotted;
  plan.row_capacity = 12;
  plan.slot_len = 4;
  RowLayout row;
  row.width = 8;
  row.segments.push_back(Segment{1, 4, 3, 0});  // offset 4 is slot 1, not 0
  plan.rows.push_back(row);
  EXPECT_THROW(plan.validate(), std::logic_error);
}

TEST(BatchPlanTest, ValidateRejectsMultiSegmentNaiveRows) {
  BatchPlan plan = valid_concat_plan();
  plan.scheme = Scheme::kNaive;
  EXPECT_THROW(plan.validate(), std::logic_error);
}

TEST(BatchPlanTest, ValidateTiesSlotLenToScheme) {
  BatchPlan plan = valid_concat_plan();
  plan.slot_len = 5;  // slot_len on a pure plan
  EXPECT_THROW(plan.validate(), std::logic_error);
  BatchPlan slotted;
  slotted.scheme = Scheme::kConcatSlotted;
  slotted.row_capacity = 10;
  slotted.slot_len = 0;  // slotted without slot_len
  EXPECT_THROW(slotted.validate(), std::logic_error);
}

TEST(BatchPlanTest, EffectiveSlotLen) {
  BatchPlan plan = valid_concat_plan();
  EXPECT_EQ(plan.effective_slot_len(plan.rows[0]), 9);  // pure: whole row
  plan.scheme = Scheme::kConcatSlotted;
  plan.slot_len = 3;
  EXPECT_EQ(plan.effective_slot_len(plan.rows[0]), 3);
}

TEST(SegmentMapTest, MapsPositionsToSegments) {
  const BatchPlan plan = valid_concat_plan();
  const auto map = segment_map(plan.rows[0]);
  ASSERT_EQ(map.size(), 9u);
  for (Index i = 0; i < 4; ++i) EXPECT_EQ(map[static_cast<std::size_t>(i)], 0);
  for (Index i = 4; i < 9; ++i) EXPECT_EQ(map[static_cast<std::size_t>(i)], 1);
}

TEST(SegmentMapTest, PaddingIsMinusOne) {
  RowLayout row;
  row.width = 6;
  row.segments.push_back(Segment{1, 0, 2, 0});
  row.segments.push_back(Segment{2, 3, 2, 0});  // gap at 2, padding at 5
  const auto map = segment_map(row);
  EXPECT_EQ(map[2], -1);
  EXPECT_EQ(map[5], -1);
  EXPECT_EQ(map[3], 1);
}

TEST(SchemeNameTest, AllNamesDistinct) {
  EXPECT_STREQ(scheme_name(Scheme::kNaive), "naive");
  EXPECT_STREQ(scheme_name(Scheme::kTurbo), "turbo");
  EXPECT_STREQ(scheme_name(Scheme::kConcatPure), "concat-pure");
  EXPECT_STREQ(scheme_name(Scheme::kConcatSlotted), "concat-slotted");
}

TEST(BatchPlanTest, SummaryMentionsKeyNumbers) {
  const std::string s = valid_concat_plan().summary();
  EXPECT_NE(s.find("concat-pure"), std::string::npos);
  EXPECT_NE(s.find("requests=2"), std::string::npos);
}

}  // namespace
}  // namespace tcb
