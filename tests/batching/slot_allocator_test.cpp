// SlotAllocator unit tests: grid construction per scheme, occupancy
// transitions, FIFO vacancy order, idempotent releases, and the
// occupancy/lifetime counters the continuous-batching coordinator reports.
#include "batching/slot_allocator.hpp"

#include <gtest/gtest.h>

#include "batching/concat_batcher.hpp"
#include "batching/slotted_batcher.hpp"

namespace tcb {
namespace {

std::vector<Request> short_requests(std::size_t count, Index length) {
  std::vector<Request> reqs;
  for (std::size_t i = 0; i < count; ++i) {
    Request r;
    r.id = static_cast<RequestId>(i);
    r.length = length;
    reqs.push_back(std::move(r));
  }
  return reqs;
}

TEST(SlotAllocatorTest, SlottedGridOneSlotPerZColumns) {
  // 8 requests of length 4, z=4, 2 rows x 16 columns -> 4 slots per row,
  // one request per slot, everything occupied at formation (the batcher
  // trims each row to its last occupied slot, so a fresh grid is full).
  const SlottedConcatBatcher batcher(/*slot_len=*/4);
  const auto built = batcher.build(short_requests(8, 4), Row{2}, Col{16});
  ASSERT_TRUE(built.leftover.empty());

  SlotAllocator alloc(built.plan);
  EXPECT_EQ(alloc.total_slots(), 8);
  const auto stats = alloc.stats();
  EXPECT_EQ(stats.total_slots, 8);
  EXPECT_EQ(stats.occupied_slots, 8);
  EXPECT_EQ(stats.releases, 0u);
  EXPECT_EQ(stats.acquires, 0u);
  EXPECT_DOUBLE_EQ(alloc.occupied_fraction(), 1.0);
  EXPECT_TRUE(alloc.vacant().empty());

  // Releasing one slot surfaces its z-aligned span.
  ASSERT_TRUE(alloc.release(Row{0}, Slot{1}));
  const auto vacant = alloc.vacant();
  ASSERT_EQ(vacant.size(), 1u);
  EXPECT_EQ(vacant[0].width, 4);
  EXPECT_EQ(vacant[0].begin.value(), 4);
  EXPECT_DOUBLE_EQ(alloc.occupied_fraction(), 7.0 / 8.0);
}

TEST(SlotAllocatorTest, UnslottedSchemesGetOneSlotPerRow) {
  const ConcatBatcher batcher;
  const auto built = batcher.build(short_requests(6, 4), Row{3}, Col{8});
  ASSERT_TRUE(built.leftover.empty());

  SlotAllocator alloc(built.plan);
  EXPECT_EQ(alloc.total_slots(), static_cast<Index>(built.plan.rows.size()));
  EXPECT_DOUBLE_EQ(alloc.occupied_fraction(), 1.0);
  EXPECT_TRUE(alloc.vacant().empty());

  ASSERT_TRUE(alloc.release(Row{0}, Slot{0}));
  const auto vacant = alloc.vacant();
  ASSERT_EQ(vacant.size(), 1u);
  EXPECT_EQ(vacant[0].row.value(), 0);
  EXPECT_EQ(vacant[0].begin.value(), 0);
  EXPECT_EQ(vacant[0].width, built.plan.rows[0].width);
}

TEST(SlotAllocatorTest, ReleaseIsIdempotentAndAcquireReclaims) {
  const SlottedConcatBatcher batcher(4);
  const auto built = batcher.build(short_requests(8, 4), Row{2}, Col{16});
  ASSERT_TRUE(built.leftover.empty());
  SlotAllocator alloc(built.plan);
  EXPECT_DOUBLE_EQ(alloc.occupied_fraction(), 1.0);

  EXPECT_TRUE(alloc.release(Row{1}, Slot{2}));
  EXPECT_FALSE(alloc.release(Row{1}, Slot{2}))
      << "second release of a vacant slot must be a no-op";
  EXPECT_EQ(alloc.stats().releases, 1u);
  EXPECT_EQ(alloc.stats().occupied_slots, 7);

  EXPECT_TRUE(alloc.acquire(Row{1}, Slot{2}));
  EXPECT_FALSE(alloc.acquire(Row{1}, Slot{2}))
      << "acquiring an occupied slot must fail";
  EXPECT_EQ(alloc.stats().acquires, 1u);
  EXPECT_DOUBLE_EQ(alloc.occupied_fraction(), 1.0);
  EXPECT_TRUE(alloc.vacant().empty());
}

TEST(SlotAllocatorTest, VacancyOrderIsReleaseOrder) {
  const SlottedConcatBatcher batcher(4);
  const auto built = batcher.build(short_requests(8, 4), Row{2}, Col{16});
  ASSERT_TRUE(built.leftover.empty());
  SlotAllocator alloc(built.plan);

  ASSERT_TRUE(alloc.release(Row{1}, Slot{3}));
  ASSERT_TRUE(alloc.release(Row{0}, Slot{0}));
  ASSERT_TRUE(alloc.release(Row{0}, Slot{2}));

  const auto vacant = alloc.vacant();
  ASSERT_EQ(vacant.size(), 3u);
  EXPECT_EQ(vacant[0].row.value(), 1);
  EXPECT_EQ(vacant[0].slot.value(), 3);
  EXPECT_EQ(vacant[1].row.value(), 0);
  EXPECT_EQ(vacant[1].slot.value(), 0);
  EXPECT_EQ(vacant[2].row.value(), 0);
  EXPECT_EQ(vacant[2].slot.value(), 2);

  // Re-acquiring the middle one keeps the others' relative order.
  ASSERT_TRUE(alloc.acquire(Row{0}, Slot{0}));
  const auto after = alloc.vacant();
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after[0].slot.value(), 3);
  EXPECT_EQ(after[1].slot.value(), 2);
}

TEST(SlotAllocatorTest, TailSlotWidthIsClippedToTheRow) {
  // Row width 10 with z=4: slots at columns 0, 4 and 8 — the last is 2 wide.
  BatchPlan plan;
  plan.scheme = Scheme::kConcatSlotted;
  plan.slot_len = 4;
  plan.row_capacity = 10;
  RowLayout row;
  row.width = 10;
  row.segments.push_back(Segment{0, 0, 4, 0});
  plan.rows.push_back(row);

  SlotAllocator alloc(plan);
  EXPECT_EQ(alloc.total_slots(), 3);
  const auto vacant = alloc.vacant();
  ASSERT_EQ(vacant.size(), 2u);
  EXPECT_EQ(vacant[0].begin.value(), 4);
  EXPECT_EQ(vacant[0].width, 4);
  EXPECT_EQ(vacant[1].begin.value(), 8);
  EXPECT_EQ(vacant[1].width, 2);
}

TEST(SlotAllocatorTest, EmptyPlanHasNoSlots) {
  const BatchPlan plan;
  SlotAllocator alloc(plan);
  EXPECT_EQ(alloc.total_slots(), 0);
  EXPECT_TRUE(alloc.vacant().empty());
  EXPECT_DOUBLE_EQ(alloc.occupied_fraction(), 1.0);
}

}  // namespace
}  // namespace tcb
