#include "batching/stats.hpp"

#include <gtest/gtest.h>

#include "batching/concat_batcher.hpp"
#include "batching/naive_batcher.hpp"
#include "batching/slotted_batcher.hpp"

namespace tcb {
namespace {

Request req(RequestId id, Index len) {
  Request r;
  r.id = id;
  r.length = len;
  return r;
}

TEST(BatchStatsTest, EmptyPlan) {
  BatchPlan plan;
  plan.row_capacity = 10;
  const BatchStats stats = analyze(plan);
  EXPECT_EQ(stats.rows, 0);
  EXPECT_EQ(stats.materialized_tokens, 0);
}

TEST(BatchStatsTest, NaivePaddingAccounted) {
  const NaiveBatcher batcher;
  // Lengths 2 and 10 -> both rows 10 wide -> 8 padded tokens.
  const auto plan = batcher.build({req(0, 2), req(1, 10)}, Row{4}, Col{16}).plan;
  const BatchStats stats = analyze(plan);
  EXPECT_EQ(stats.rows, 2);
  EXPECT_EQ(stats.materialized_tokens, 20);
  EXPECT_EQ(stats.used_tokens, 12);
  EXPECT_EQ(stats.padded_tokens, 8);
  EXPECT_NEAR(stats.padding_ratio, 0.4, 1e-12);
  // Attention: computed 2 * 10^2 = 200; useful 4 + 100 = 104.
  EXPECT_EQ(stats.score_entries_computed, 200);
  EXPECT_EQ(stats.score_entries_useful, 104);
  EXPECT_NEAR(stats.attention_redundancy, 1.0 - 104.0 / 200.0, 1e-12);
}

TEST(BatchStatsTest, ConcatReducesPaddingButKeepsAttentionRedundancy) {
  const std::vector<Request> reqs = {req(0, 5), req(1, 5), req(2, 5),
                                     req(3, 5)};
  const NaiveBatcher naive;
  const ConcatBatcher concat;
  const auto naive_stats = analyze(naive.build(reqs, Row{4}, Col{20}).plan);
  const auto concat_stats = analyze(concat.build(reqs, Row{1}, Col{20}).plan);
  EXPECT_LE(concat_stats.padding_ratio, naive_stats.padding_ratio);
  // One 20-wide concat row computes 400 entries for 100 useful -> 75%
  // redundancy, the cost pure ConcatBatching pays (paper §4.2 motivation).
  EXPECT_NEAR(concat_stats.attention_redundancy, 0.75, 1e-12);
}

TEST(BatchStatsTest, SlottingRemovesAttentionRedundancy) {
  const std::vector<Request> reqs = {req(0, 5), req(1, 5), req(2, 5),
                                     req(3, 5)};
  const ConcatBatcher pure;
  const SlottedConcatBatcher slotted(5);
  const auto pure_stats = analyze(pure.build(reqs, Row{1}, Col{20}).plan);
  const auto slot_stats = analyze(slotted.build(reqs, Row{1}, Col{20}).plan);
  EXPECT_EQ(slot_stats.score_entries_computed, 4 * 25);
  EXPECT_NEAR(slot_stats.attention_redundancy, 0.0, 1e-12);
  EXPECT_LT(slot_stats.attention_redundancy, pure_stats.attention_redundancy);
  EXPECT_EQ(slot_stats.score_entries_useful, pure_stats.score_entries_useful);
}

TEST(BatchStatsTest, OccupancyAgainstCapacity) {
  const ConcatBatcher batcher;
  const auto plan = batcher.build({req(0, 10), req(1, 10)}, Row{2}, Col{20}).plan;
  const BatchStats stats = analyze(plan);
  // Both fit row 0: one row of 20 used tokens over capacity 20.
  EXPECT_NEAR(stats.occupancy, 1.0, 1e-12);
}

}  // namespace
}  // namespace tcb
