// TSan stress for the BatchPlan::segment_cache() first touch. Before the
// SegmentCacheSlot fix, `seg_cache_` was a lazily-assigned mutable
// shared_ptr with no synchronization: many threads hitting segment_cache()
// on a shared plan raced on the assignment (and could observe a half-reset
// pointer). Now first touch is serialized and published with
// acquire/release; this suite hammers exactly that window — many threads,
// cold cache, same width — and runs under the tsan preset like every other
// test. The steady-state assertions check that all threads converge on ONE
// cache instance (the build is not just safe but shared).
//
// Fan-out goes through tcb::ThreadPool (raw std::thread in tests/batching
// would trip tcb-lint's threads-only-in-parallel rule).
#include "batching/batch_plan.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace tcb {
namespace {

BatchPlan slotted_plan() {
  BatchPlan plan;
  plan.scheme = Scheme::kConcatSlotted;
  plan.row_capacity = 16;
  plan.slot_len = 8;
  for (int r = 0; r < 4; ++r) {
    RowLayout row;
    row.width = 16;
    row.segments.push_back(Segment{4 * r + 1, 0, 5, 0});
    row.segments.push_back(Segment{4 * r + 2, 5, 3, 0});
    row.segments.push_back(Segment{4 * r + 3, 8, 8, 1});
    plan.rows.push_back(row);
  }
  return plan;
}

TEST(SegmentCacheRaceTest, ConcurrentFirstTouchBuildsOneCache) {
  static constexpr int kThreads = 8;
  static constexpr int kRounds = 50;
  ThreadPool pool(kThreads);

  for (int round = 0; round < kRounds; ++round) {
    const BatchPlan plan = slotted_plan();  // cache is cold every round
    const Col width{plan.max_width()};
    std::atomic<int> gate{0};
    std::vector<const SegmentCache*> seen(kThreads, nullptr);
    std::vector<std::future<void>> futs;
    futs.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      futs.push_back(pool.submit([&plan, &gate, &seen, width, t] {
        gate.fetch_add(1);
        while (gate.load() < kThreads) {
        }  // line up so first touches genuinely collide
        seen[static_cast<std::size_t>(t)] = &plan.segment_cache(width);
      }));
    }
    for (auto& f : futs) f.get();
    for (int t = 1; t < kThreads; ++t)
      ASSERT_EQ(seen[static_cast<std::size_t>(t)], seen[0])
          << "threads must share one built cache (round " << round << ")";
    ASSERT_NE(seen[0], nullptr);
    EXPECT_EQ(seen[0]->width(), plan.max_width());
    EXPECT_EQ(seen[0]->row_count(), 4);
  }
}

TEST(SegmentCacheRaceTest, SteadyStateReadersShareTheFirstBuild) {
  const BatchPlan plan = slotted_plan();
  const Col width{plan.max_width()};
  const SegmentCache* first = &plan.segment_cache(width);  // warm build
  ThreadPool pool(4);
  std::vector<std::future<void>> futs;
  for (int t = 0; t < 4; ++t) {
    futs.push_back(pool.submit([&plan, width, first] {
      for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(&plan.segment_cache(width), first)
            << "fast path must not rebuild";
    }));
  }
  for (auto& f : futs) f.get();
}

TEST(SegmentCacheRaceTest, CopiedPlansShareTheBuiltCache) {
  const BatchPlan plan = slotted_plan();
  const Col width{plan.max_width()};
  const SegmentCache* built = &plan.segment_cache(width);
  const BatchPlan copy = plan;  // copy after build: shares the instance
  EXPECT_EQ(&copy.segment_cache(width), built);
  BatchPlan cold_copy = slotted_plan();
  cold_copy = plan;  // assignment also adopts the built cache
  EXPECT_EQ(&cold_copy.segment_cache(width), built);
}

}  // namespace
}  // namespace tcb
