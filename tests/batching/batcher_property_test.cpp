// Cross-scheme batcher properties over randomized workloads: every batcher
// must conserve requests (placed + leftover == selected), never exceed its
// geometry, emit structurally valid plans, and respect selection precedence.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "batching/concat_batcher.hpp"
#include "batching/naive_batcher.hpp"
#include "batching/slotted_batcher.hpp"
#include "batching/turbo_batcher.hpp"
#include "util/rng.hpp"

namespace tcb {
namespace {

struct Param {
  Scheme scheme;
  std::uint64_t seed;
};

void PrintTo(const Param& p, std::ostream* os) {
  *os << scheme_name(p.scheme) << "_seed" << p.seed;
}

std::unique_ptr<Batcher> make_batcher(Scheme scheme, Index slot_len) {
  switch (scheme) {
    case Scheme::kNaive:
      return std::make_unique<NaiveBatcher>();
    case Scheme::kTurbo:
      return std::make_unique<TurboBatcher>();
    case Scheme::kConcatPure:
      return std::make_unique<ConcatBatcher>();
    case Scheme::kConcatSlotted:
      return std::make_unique<SlottedConcatBatcher>(slot_len);
  }
  return nullptr;
}

class BatcherPropertyTest : public ::testing::TestWithParam<Param> {};

TEST_P(BatcherPropertyTest, InvariantsOverRandomWorkloads) {
  const Param p = GetParam();
  Rng rng(p.seed);
  for (int iter = 0; iter < 30; ++iter) {
    const Index B = rng.uniform_int(1, 8);
    const Index L = rng.uniform_int(8, 64);
    const Index z = rng.uniform_int(1, L);
    const auto batcher = make_batcher(p.scheme, z);
    ASSERT_NE(batcher, nullptr);
    EXPECT_EQ(batcher->scheme(), p.scheme);

    std::vector<Request> selected;
    const int n = static_cast<int>(rng.uniform_int(0, 40));
    for (int i = 0; i < n; ++i) {
      Request r;
      r.id = i;
      r.length = rng.uniform_int(1, L + 8);  // some oversized on purpose
      r.deadline = rng.uniform(0.0, 5.0);
      selected.push_back(std::move(r));
    }

    const auto built = batcher->build(selected, Row{B}, Col{L});

    // Structural validity.
    built.plan.validate();
    EXPECT_EQ(built.plan.scheme, p.scheme);
    EXPECT_LE(built.plan.rows.size(), static_cast<std::size_t>(B));
    EXPECT_LE(built.plan.max_width(), L);

    // Conservation, no duplication, no inventing requests.
    std::multiset<RequestId> seen;
    for (const auto id : built.plan.request_ids()) seen.insert(id);
    for (const auto& r : built.leftover) seen.insert(r.id);
    EXPECT_EQ(seen.size(), selected.size()) << "iter " << iter;
    for (const auto& r : selected)
      EXPECT_EQ(seen.count(r.id), 1u) << "request " << r.id;

    // Oversized requests can never be placed.
    for (const auto& row : built.plan.rows)
      for (const auto& seg : row.segments) {
        EXPECT_LE(seg.length, L);
        if (p.scheme == Scheme::kConcatSlotted) {
          EXPECT_LE(seg.length, z);
        }
      }

    // Placed segment lengths must match the original requests.
    for (const auto& row : built.plan.rows)
      for (const auto& seg : row.segments)
        EXPECT_EQ(seg.length,
                  selected[static_cast<std::size_t>(seg.request_id)].length);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, BatcherPropertyTest,
    ::testing::Values(Param{Scheme::kNaive, 101}, Param{Scheme::kNaive, 102},
                      Param{Scheme::kTurbo, 201}, Param{Scheme::kTurbo, 202},
                      Param{Scheme::kConcatPure, 301},
                      Param{Scheme::kConcatPure, 302},
                      Param{Scheme::kConcatSlotted, 401},
                      Param{Scheme::kConcatSlotted, 402}));

TEST(BatcherPrecedenceTest, HeadOfSelectionIsNeverDroppedForSpace) {
  // For every scheme: if anything was placed, the first eligible request of
  // the selection is among the placed ones.
  Rng rng(777);
  for (int iter = 0; iter < 40; ++iter) {
    const Index B = 2, L = 20, z = 10;
    std::vector<Request> selected;
    for (int i = 0; i < 12; ++i) {
      Request r;
      r.id = i;
      r.length = rng.uniform_int(1, 9);  // everything fits a slot
      selected.push_back(std::move(r));
    }
    for (const auto scheme :
         {Scheme::kNaive, Scheme::kConcatPure, Scheme::kConcatSlotted}) {
      const auto batcher = make_batcher(scheme, z);
      const auto built = batcher->build(selected, Row{B}, Col{L});
      const auto ids = built.plan.request_ids();
      ASSERT_FALSE(ids.empty());
      EXPECT_NE(std::find(ids.begin(), ids.end(), 0), ids.end())
          << scheme_name(scheme) << " dropped the selection head";
    }
  }
}

}  // namespace
}  // namespace tcb
