#include "batching/concat_batcher.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace tcb {
namespace {

Request req(RequestId id, Index len) {
  Request r;
  r.id = id;
  r.length = len;
  return r;
}

TEST(ConcatBatcherTest, ConcatenatesIntoRows) {
  const ConcatBatcher batcher;
  const auto built =
      batcher.build({req(0, 4), req(1, 3), req(2, 2), req(3, 5)}, Row{2}, Col{10});
  built.plan.validate();
  EXPECT_EQ(built.plan.scheme, Scheme::kConcatPure);
  EXPECT_TRUE(built.leftover.empty());
  EXPECT_EQ(built.plan.request_count(), 4);
  // First-fit in order: row0 = [4,3,2] (9 <= 10), row1 = [5].
  ASSERT_EQ(built.plan.rows.size(), 2u);
  EXPECT_EQ(built.plan.rows[0].segments.size(), 3u);
  EXPECT_EQ(built.plan.rows[0].width, 9);
  EXPECT_EQ(built.plan.rows[1].segments.size(), 1u);
}

TEST(ConcatBatcherTest, SegmentsAreContiguous) {
  const ConcatBatcher batcher;
  const auto built = batcher.build({req(0, 4), req(1, 3)}, Row{1}, Col{10});
  const auto& segs = built.plan.rows[0].segments;
  EXPECT_EQ(segs[0].offset, 0);
  EXPECT_EQ(segs[1].offset, 4);
}

TEST(ConcatBatcherTest, RespectsRowCapacity) {
  const ConcatBatcher batcher;
  const auto built = batcher.build({req(0, 6), req(1, 6), req(2, 6)}, Row{2}, Col{10});
  EXPECT_EQ(built.plan.request_count(), 2);
  ASSERT_EQ(built.leftover.size(), 1u);
  EXPECT_EQ(built.leftover[0].id, 2);
  for (const auto& row : built.plan.rows) EXPECT_LE(row.used_tokens(), 10);
}

TEST(ConcatBatcherTest, OversizedRequestLeftover) {
  const ConcatBatcher batcher;
  const auto built = batcher.build({req(0, 11)}, Row{2}, Col{10});
  EXPECT_TRUE(built.plan.empty());
  EXPECT_EQ(built.leftover.size(), 1u);
}

TEST(ConcatBatcherTest, EmptyRowsAreDropped) {
  const ConcatBatcher batcher;
  const auto built = batcher.build({req(0, 2)}, Row{8}, Col{10});
  EXPECT_EQ(built.plan.rows.size(), 1u);
}

TEST(ConcatBatcherTest, PreservesSelectionPrecedence) {
  // When space runs out, the tail of the selection is dropped, never the head.
  const ConcatBatcher batcher;
  std::vector<Request> sel;
  for (int i = 0; i < 12; ++i) sel.push_back(req(i, 5));
  const auto built = batcher.build(sel, Row{2}, Col{20});  // capacity: 8 requests
  const auto ids = built.plan.request_ids();
  for (int i = 0; i < 8; ++i)
    EXPECT_NE(std::find(ids.begin(), ids.end(), i), ids.end()) << i;
  for (const auto& r : built.leftover) EXPECT_GE(r.id, 8);
}

TEST(ConcatBatcherTest, PropertyPackingIsTightForUniformLoads) {
  // Property sweep: for random workloads whose total exactly fills the batch,
  // first-fit in order must place everything (no fragmentation is possible
  // when each row is filled greedily to capacity in order).
  Rng rng(77);
  for (int iter = 0; iter < 50; ++iter) {
    const Index L = 24;
    const Index B = 4;
    std::vector<Request> sel;
    RequestId id = 0;
    for (Index b = 0; b < B; ++b) {
      Index remaining = L;
      while (remaining > 0) {
        const Index len = std::min<Index>(remaining, rng.uniform_int(1, 8));
        sel.push_back(req(id++, len));
        remaining -= len;
      }
    }
    const ConcatBatcher batcher;
    const auto built = batcher.build(sel, Row{B}, Col{L});
    EXPECT_TRUE(built.leftover.empty()) << "iter " << iter;
    EXPECT_EQ(built.plan.used_tokens(), B * L);
    built.plan.validate();
  }
}

}  // namespace
}  // namespace tcb
