#include "batching/turbo_batcher.hpp"

#include <gtest/gtest.h>

namespace tcb {
namespace {

Request req(RequestId id, Index len, double deadline = 1.0) {
  Request r;
  r.id = id;
  r.length = len;
  r.deadline = deadline;
  return r;
}

TEST(TurboDpTest, SingleGroupWhenLengthsSimilar) {
  const auto ends = TurboBatcher::dp_partition({10, 10, 11, 11}, 8);
  EXPECT_EQ(ends, (std::vector<std::size_t>{4}));
}

TEST(TurboDpTest, SplitsBimodalLengths) {
  // Padding 2,2,2 up to 50 is far worse than two tight groups.
  const auto ends = TurboBatcher::dp_partition({2, 2, 2, 50, 50}, 8);
  EXPECT_EQ(ends, (std::vector<std::size_t>{3, 5}));
}

TEST(TurboDpTest, RespectsMaxGroupSize) {
  const auto ends = TurboBatcher::dp_partition({5, 5, 5, 5, 5}, 2);
  std::size_t begin = 0;
  for (const auto end : ends) {
    EXPECT_LE(end - begin, 2u);
    begin = end;
  }
  EXPECT_EQ(begin, 5u);
}

TEST(TurboDpTest, OptimalCostOnKnownInstance) {
  // lengths 1,1,10 with group overhead C = 32:
  //   {1,1,10}       -> 3*10 + C        = 62   (optimal)
  //   {1,1},{10}     -> 2 + C + 10 + C  = 76
  //   {1},{1,10}     -> 1 + C + 20 + C  = 85
  const auto ends = TurboBatcher::dp_partition({1, 1, 10}, 8);
  EXPECT_EQ(ends, (std::vector<std::size_t>{3}));

  // With a large spread the split pays for its overhead:
  //   {1,1,100}      -> 300 + C        = 332
  //   {1,1},{100}    -> 2 + C + 100 + C = 166  (optimal)
  const auto ends2 = TurboBatcher::dp_partition({1, 1, 100}, 8);
  EXPECT_EQ(ends2, (std::vector<std::size_t>{2, 3}));
}

TEST(TurboDpTest, EmptyAndInvalid) {
  EXPECT_TRUE(TurboBatcher::dp_partition({}, 4).empty());
  EXPECT_THROW((void)TurboBatcher::dp_partition({1}, 0), std::invalid_argument);
}

TEST(TurboBatcherTest, BatchesSimilarLengthsTogether) {
  const TurboBatcher batcher;
  const auto built = batcher.build(
      {req(0, 3), req(1, 40), req(2, 4), req(3, 41), req(4, 3)}, Row{8}, Col{100});
  built.plan.validate();
  EXPECT_EQ(built.plan.scheme, Scheme::kTurbo);
  // One group runs; its rows all share the group width.
  ASSERT_FALSE(built.plan.rows.empty());
  const Index width = built.plan.rows[0].width;
  for (const auto& row : built.plan.rows) EXPECT_EQ(row.width, width);
  // Short and long requests must not be mixed in one batch.
  Index min_len = 1000, max_len = 0;
  for (const auto& row : built.plan.rows) {
    min_len = std::min(min_len, row.segments[0].length);
    max_len = std::max(max_len, row.segments[0].length);
  }
  EXPECT_LE(max_len - min_len, 2);
}

TEST(TurboBatcherTest, ExecutesGroupWithEarliestDeadline) {
  const TurboBatcher batcher;
  // Two clear groups; the long one holds the urgent request.
  const auto built = batcher.build(
      {req(0, 3, 9.0), req(1, 3, 9.0), req(2, 50, 0.5), req(3, 51, 9.0)}, Row{8}, Col{100});
  std::vector<RequestId> served = built.plan.request_ids();
  EXPECT_NE(std::find(served.begin(), served.end(), 2), served.end());
}

TEST(TurboBatcherTest, LeftoverHoldsEverythingNotExecuted) {
  const TurboBatcher batcher;
  const auto built = batcher.build(
      {req(0, 3, 0.1), req(1, 4, 0.2), req(2, 50), req(3, 51)}, Row{8}, Col{100});
  EXPECT_EQ(built.plan.request_count() + static_cast<Index>(built.leftover.size()),
            4);
}

TEST(TurboBatcherTest, OversizedRequestsNeverPlaced) {
  const TurboBatcher batcher;
  const auto built = batcher.build({req(0, 200), req(1, 5)}, Row{4}, Col{100});
  for (const auto id : built.plan.request_ids()) EXPECT_NE(id, 0);
  bool in_leftover = false;
  for (const auto& r : built.leftover) in_leftover |= (r.id == 0);
  EXPECT_TRUE(in_leftover);
}

TEST(TurboBatcherTest, GroupRespectsBatchRows) {
  const TurboBatcher batcher;
  std::vector<Request> reqs;
  for (int i = 0; i < 10; ++i) reqs.push_back(req(i, 10));
  const auto built = batcher.build(reqs, Row{4}, Col{100});
  EXPECT_LE(built.plan.rows.size(), 4u);
}

TEST(TurboBatcherTest, EmptySelection) {
  const TurboBatcher batcher;
  const auto built = batcher.build({}, Row{4}, Col{100});
  EXPECT_TRUE(built.plan.empty());
}

}  // namespace
}  // namespace tcb
