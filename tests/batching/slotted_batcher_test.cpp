#include "batching/slotted_batcher.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace tcb {
namespace {

Request req(RequestId id, Index len) {
  Request r;
  r.id = id;
  r.length = len;
  return r;
}

TEST(SlottedBatcherTest, PlacesWithinSlotBoundaries) {
  const SlottedConcatBatcher batcher(5);
  const auto built =
      batcher.build({req(0, 3), req(1, 2), req(2, 4), req(3, 5)}, Row{2}, Col{20});
  built.plan.validate();
  EXPECT_EQ(built.plan.scheme, Scheme::kConcatSlotted);
  EXPECT_EQ(built.plan.slot_len, 5);
  EXPECT_TRUE(built.leftover.empty());
  for (const auto& row : built.plan.rows)
    for (const auto& seg : row.segments) {
      const Index slot_begin = seg.slot * 5;
      EXPECT_GE(seg.offset, slot_begin);
      EXPECT_LE(seg.offset + seg.length, slot_begin + 5);
    }
}

TEST(SlottedBatcherTest, RequestsLongerThanSlotAreDiscarded) {
  // Paper §5.3: "the ones larger than the slot would be discarded".
  const SlottedConcatBatcher batcher(4);
  const auto built = batcher.build({req(0, 6), req(1, 3)}, Row{2}, Col{16});
  const auto ids = built.plan.request_ids();
  EXPECT_EQ(ids, (std::vector<RequestId>{1}));
  ASSERT_EQ(built.leftover.size(), 1u);
  EXPECT_EQ(built.leftover[0].id, 0);
}

TEST(SlottedBatcherTest, ConcatenatesShortRequestsWithinSlot) {
  const SlottedConcatBatcher batcher(6);
  const auto built = batcher.build({req(0, 2), req(1, 2), req(2, 2)}, Row{1}, Col{6});
  ASSERT_EQ(built.plan.rows.size(), 1u);
  EXPECT_EQ(built.plan.rows[0].segments.size(), 3u);
  for (const auto& seg : built.plan.rows[0].segments) EXPECT_EQ(seg.slot, 0);
}

TEST(SlottedBatcherTest, RowWidthSnapsToSlotBoundary) {
  const SlottedConcatBatcher batcher(4);
  const auto built = batcher.build({req(0, 3), req(1, 4), req(2, 2)}, Row{1}, Col{16});
  // Slots: [0: 3+?]. 4 won't fit slot 0 (3+4>4) -> slot 1; 2 fits slot 0? No:
  // first-fit checks slot 0 first: 3+2>4, so 2 goes to slot 2.
  ASSERT_EQ(built.plan.rows.size(), 1u);
  EXPECT_EQ(built.plan.rows[0].width, 12);  // three slots used
}

TEST(SlottedBatcherTest, SlotLenLargerThanCapacityThrows) {
  const SlottedConcatBatcher batcher(32);
  EXPECT_THROW((void)batcher.build({req(0, 2)}, Row{1}, Col{16}), std::invalid_argument);
}

TEST(SlottedBatcherTest, InvalidSlotLenThrows) {
  EXPECT_THROW(SlottedConcatBatcher(0), std::invalid_argument);
  EXPECT_THROW(SlottedConcatBatcher(-3), std::invalid_argument);
}

TEST(SlottedBatcherTest, SlotEqualsCapacityBehavesLikePureConcat) {
  const SlottedConcatBatcher slotted(10);
  const auto a = slotted.build({req(0, 4), req(1, 3), req(2, 3)}, Row{2}, Col{10});
  EXPECT_TRUE(a.leftover.empty());
  EXPECT_EQ(a.plan.rows[0].segments.size(), 3u);
}

TEST(SlottedBatcherTest, PropertyNoSegmentEverStraddles) {
  Rng rng(99);
  for (int iter = 0; iter < 50; ++iter) {
    const Index z = rng.uniform_int(2, 8);
    const Index L = z * rng.uniform_int(1, 4);
    std::vector<Request> sel;
    for (int i = 0; i < 20; ++i)
      sel.push_back(req(i, rng.uniform_int(1, 10)));
    const SlottedConcatBatcher batcher(z);
    const Index rows = 3;
    const auto built = batcher.build(sel, Row{rows}, Col{L});
    built.plan.validate();  // validate() checks slot boundaries

    // First-fit guarantee: a leftover that fits a slot implies no slot in
    // the whole batch still has that much free space.
    const Index slots_per_row = L / z;
    std::vector<std::vector<Index>> used(
        static_cast<std::size_t>(rows),
        std::vector<Index>(static_cast<std::size_t>(slots_per_row), 0));
    for (std::size_t r = 0; r < built.plan.rows.size(); ++r)
      for (const auto& seg : built.plan.rows[r].segments)
        used[r][static_cast<std::size_t>(seg.slot)] += seg.length;
    Index max_free = 0;
    for (const auto& row_used : used)
      for (const auto u : row_used) max_free = std::max(max_free, z - u);
    for (const auto& r : built.leftover)
      if (r.length <= z) {
        EXPECT_GT(r.length, max_free) << "iter " << iter;
      }

    // Conservation: placed + leftover == selected.
    EXPECT_EQ(built.plan.request_count() +
                  static_cast<Index>(built.leftover.size()),
              20);
  }
}

}  // namespace
}  // namespace tcb
