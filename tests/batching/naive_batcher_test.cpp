#include "batching/naive_batcher.hpp"

#include <gtest/gtest.h>

namespace tcb {
namespace {

Request req(RequestId id, Index len, double deadline = 1.0) {
  Request r;
  r.id = id;
  r.length = len;
  r.deadline = deadline;
  return r;
}

TEST(NaiveBatcherTest, OneRequestPerRowPaddedToLongest) {
  const NaiveBatcher batcher;
  const auto built = batcher.build({req(0, 5), req(1, 9), req(2, 3)}, Row{4}, Col{20});
  built.plan.validate();
  EXPECT_EQ(built.plan.scheme, Scheme::kNaive);
  ASSERT_EQ(built.plan.rows.size(), 3u);
  for (const auto& row : built.plan.rows) {
    EXPECT_EQ(row.segments.size(), 1u);
    EXPECT_EQ(row.width, 9);  // padded to the longest request
  }
  EXPECT_EQ(built.plan.used_tokens(), 17);
  EXPECT_EQ(built.plan.padded_tokens(), 27 - 17);
  EXPECT_TRUE(built.leftover.empty());
}

TEST(NaiveBatcherTest, TakesAtMostBRequestsInOrder) {
  const NaiveBatcher batcher;
  const auto built =
      batcher.build({req(0, 2), req(1, 2), req(2, 2), req(3, 2)}, Row{2}, Col{10});
  ASSERT_EQ(built.plan.rows.size(), 2u);
  EXPECT_EQ(built.plan.rows[0].segments[0].request_id, 0);
  EXPECT_EQ(built.plan.rows[1].segments[0].request_id, 1);
  ASSERT_EQ(built.leftover.size(), 2u);
  EXPECT_EQ(built.leftover[0].id, 2);
  EXPECT_EQ(built.leftover[1].id, 3);
}

TEST(NaiveBatcherTest, OversizedRequestsAreLeftover) {
  const NaiveBatcher batcher;
  const auto built = batcher.build({req(0, 30), req(1, 4)}, Row{4}, Col{10});
  ASSERT_EQ(built.plan.rows.size(), 1u);
  EXPECT_EQ(built.plan.rows[0].segments[0].request_id, 1);
  ASSERT_EQ(built.leftover.size(), 1u);
  EXPECT_EQ(built.leftover[0].id, 0);
}

TEST(NaiveBatcherTest, EmptySelection) {
  const NaiveBatcher batcher;
  const auto built = batcher.build({}, Row{4}, Col{10});
  EXPECT_TRUE(built.plan.empty());
  EXPECT_TRUE(built.leftover.empty());
}

TEST(NaiveBatcherTest, BadGeometryThrows) {
  const NaiveBatcher batcher;
  EXPECT_THROW((void)batcher.build({req(0, 1)}, Row{0}, Col{10}), std::invalid_argument);
  EXPECT_THROW((void)batcher.build({req(0, 1)}, Row{4}, Col{0}), std::invalid_argument);
}

}  // namespace
}  // namespace tcb
