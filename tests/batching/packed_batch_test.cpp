#include "batching/packed_batch.hpp"

#include <gtest/gtest.h>

#include "batching/concat_batcher.hpp"

namespace tcb {
namespace {

Request req_with_tokens(RequestId id, std::vector<Index> tokens) {
  Request r;
  r.id = id;
  r.length = static_cast<Index>(tokens.size());
  r.tokens = std::move(tokens);
  return r;
}

TEST(PackedBatchTest, CopiesTokensIntoSegments) {
  const std::vector<Request> reqs = {req_with_tokens(0, {10, 11, 12}),
                                     req_with_tokens(1, {20, 21})};
  const ConcatBatcher batcher;
  const auto built = batcher.build(reqs, Row{1}, Col{8});
  const PackedBatch packed = pack_batch(built.plan, reqs);
  EXPECT_EQ(packed.rows(), Row{1});
  EXPECT_EQ(packed.width(), Col{5});
  EXPECT_EQ(packed.token_at(Row{0}, Col{0}), 10);
  EXPECT_EQ(packed.token_at(Row{0}, Col{2}), 12);
  EXPECT_EQ(packed.token_at(Row{0}, Col{3}), 20);
  EXPECT_EQ(packed.token_at(Row{0}, Col{4}), 21);
}

TEST(PackedBatchTest, PaddingIsPadToken) {
  const std::vector<Request> reqs = {req_with_tokens(0, {10, 11, 12}),
                                     req_with_tokens(1, {20})};
  // Two rows of different widths -> the narrow one is padded.
  BatchPlan plan;
  plan.scheme = Scheme::kConcatPure;
  plan.row_capacity = 4;
  RowLayout r0;
  r0.width = 3;
  r0.segments.push_back(Segment{0, 0, 3, 0});
  RowLayout r1;
  r1.width = 1;
  r1.segments.push_back(Segment{1, 0, 1, 0});
  plan.rows = {r0, r1};
  const PackedBatch packed = pack_batch(plan, reqs);
  EXPECT_EQ(packed.width(), Col{3});
  EXPECT_EQ(packed.token_at(Row{1}, Col{1}), kPadToken);
  EXPECT_EQ(packed.token_at(Row{1}, Col{2}), kPadToken);
}

TEST(PackedBatchTest, MissingRequestThrows) {
  BatchPlan plan;
  plan.scheme = Scheme::kConcatPure;
  plan.row_capacity = 4;
  RowLayout row;
  row.width = 2;
  row.segments.push_back(Segment{42, 0, 2, 0});
  plan.rows.push_back(row);
  EXPECT_THROW((void)pack_batch(plan, std::vector<Request>{}),
               std::invalid_argument);
}

TEST(PackedBatchTest, TokenCountMismatchThrows) {
  const std::vector<Request> reqs = {req_with_tokens(0, {10})};  // 1 token
  BatchPlan plan;
  plan.scheme = Scheme::kConcatPure;
  plan.row_capacity = 4;
  RowLayout row;
  row.width = 2;
  row.segments.push_back(Segment{0, 0, 2, 0});  // claims 2 tokens
  plan.rows.push_back(row);
  EXPECT_THROW((void)pack_batch(plan, reqs), std::invalid_argument);
}

TEST(PackedBatchTest, ReservedTokensAreDistinct) {
  EXPECT_NE(kPadToken, kBosToken);
  EXPECT_NE(kBosToken, kEosToken);
  EXPECT_GT(kFirstWordToken, kEosToken);
}

}  // namespace
}  // namespace tcb
