// Differential test: MultiHeadAttention::encoder_forward against an
// independent straight-line reference implementation built only from the
// layer's public weights and the paper's equations (3)-(6). Catches indexing
// or masking bugs in the optimized kernels that equivalence tests (which run
// the same kernel twice) cannot see.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/attention.hpp"
#include "tensor/ops.hpp"

namespace tcb {
namespace {

/// Reference attention: no parallelism, no slot logic — computes Eq. (5)
/// literally for a multi-row plan with the segment mask.
Tensor reference_attention(const MultiHeadAttention& mha, const Tensor& x,
                           const BatchPlan& plan, Index width) {
  const Index d = x.dim(1);
  const Index heads = mha.n_heads();
  const Index dh = mha.head_dim();
  const Tensor q = mha.wq().forward(x);
  const Tensor k = mha.wk().forward(x);
  const Tensor v = mha.wv().forward(x);

  Tensor concat(Shape{x.dim(0), d});
  for (std::size_t r = 0; r < plan.rows.size(); ++r) {
    auto seg = segment_map(plan.rows[r]);
    seg.resize(static_cast<std::size_t>(width), -1);
    for (Index h = 0; h < heads; ++h) {
      for (Index i = 0; i < width; ++i) {
        if (seg[static_cast<std::size_t>(i)] < 0) continue;  // padding query
        // Scores over the row, masked to the query's segment.
        std::vector<double> scores(static_cast<std::size_t>(width));
        double mx = -1e300;
        for (Index j = 0; j < width; ++j) {
          if (seg[static_cast<std::size_t>(j)] !=
              seg[static_cast<std::size_t>(i)]) {
            scores[static_cast<std::size_t>(j)] = -1e300;
            continue;
          }
          double dot = 0.0;
          for (Index c = 0; c < dh; ++c)
            dot += static_cast<double>(
                       q.at(static_cast<Index>(r) * width + i, h * dh + c)) *
                   static_cast<double>(
                       k.at(static_cast<Index>(r) * width + j, h * dh + c));
          scores[static_cast<std::size_t>(j)] =
              dot / std::sqrt(static_cast<double>(dh));
          mx = std::max(mx, scores[static_cast<std::size_t>(j)]);
        }
        double denom = 0.0;
        for (Index j = 0; j < width; ++j)
          if (scores[static_cast<std::size_t>(j)] > -1e299)
            denom += std::exp(scores[static_cast<std::size_t>(j)] - mx);
        for (Index c = 0; c < dh; ++c) {
          double acc = 0.0;
          for (Index j = 0; j < width; ++j) {
            if (scores[static_cast<std::size_t>(j)] <= -1e299) continue;
            const double w =
                std::exp(scores[static_cast<std::size_t>(j)] - mx) / denom;
            acc += w * static_cast<double>(
                           v.at(static_cast<Index>(r) * width + j, h * dh + c));
          }
          concat.at(static_cast<Index>(r) * width + i, h * dh + c) =
              static_cast<float>(acc);
        }
      }
    }
  }
  return mha.wo().forward(concat);
}

BatchPlan two_row_plan() {
  BatchPlan plan;
  plan.scheme = Scheme::kConcatPure;
  plan.row_capacity = 10;
  RowLayout r0;
  r0.width = 9;
  r0.segments.push_back(Segment{0, 0, 4, 0});
  r0.segments.push_back(Segment{1, 4, 5, 0});
  RowLayout r1;
  r1.width = 7;
  r1.segments.push_back(Segment{2, 0, 7, 0});
  plan.rows = {r0, r1};
  return plan;
}

TEST(AttentionReferenceTest, OptimizedKernelMatchesReferenceMath) {
  ModelConfig cfg = ModelConfig::test_scale();
  cfg.d_model = 24;
  cfg.n_heads = 3;
  Rng rng(21);
  const MultiHeadAttention mha(cfg, rng);

  const BatchPlan plan = two_row_plan();
  const Index width = plan.max_width();
  Rng data(22);
  const Tensor x = Tensor::random_uniform(
      Shape{static_cast<Index>(plan.rows.size()) * width, cfg.d_model}, data,
      1.0f);

  const Tensor fast =
      mha.encoder_forward(x, plan, Col{width}, AttentionMode::kPureConcat);
  const Tensor ref = reference_attention(mha, x, plan, width);

  // Compare only real-token positions (padding outputs are defined as the
  // projection of zeros by the kernel, unspecified by the reference).
  for (std::size_t r = 0; r < plan.rows.size(); ++r)
    for (const auto& seg : plan.rows[r].segments)
      for (Index i = seg.offset; i < seg.offset + seg.length; ++i)
        for (Index c = 0; c < cfg.d_model; ++c) {
          const Index pos = static_cast<Index>(r) * width + i;
          EXPECT_NEAR(fast.at(pos, c), ref.at(pos, c), 2e-4f)
              << "row " << r << " pos " << i << " dim " << c;
        }
}

TEST(AttentionReferenceTest, SlottedKernelMatchesReferenceMath) {
  ModelConfig cfg = ModelConfig::test_scale();
  cfg.d_model = 16;
  cfg.n_heads = 2;
  Rng rng(31);
  const MultiHeadAttention mha(cfg, rng);

  BatchPlan plan;
  plan.scheme = Scheme::kConcatSlotted;
  plan.row_capacity = 12;
  plan.slot_len = 6;
  RowLayout row;
  row.width = 12;
  row.segments.push_back(Segment{0, 0, 3, 0});
  row.segments.push_back(Segment{1, 3, 3, 0});
  row.segments.push_back(Segment{2, 6, 6, 1});
  plan.rows.push_back(row);
  plan.validate();

  Rng data(32);
  const Tensor x =
      Tensor::random_uniform(Shape{12, cfg.d_model}, data, 1.0f);
  const Tensor fast =
      mha.encoder_forward(x, plan, Col{12}, AttentionMode::kSlotted);
  const Tensor ref = reference_attention(mha, x, plan, 12);
  for (const auto& seg : plan.rows[0].segments)
    for (Index i = seg.offset; i < seg.offset + seg.length; ++i)
      for (Index c = 0; c < cfg.d_model; ++c)
        EXPECT_NEAR(fast.at(i, c), ref.at(i, c), 2e-4f)
            << "pos " << i << " dim " << c;
}

}  // namespace
}  // namespace tcb
